#!/usr/bin/env python
"""Repo gate: lint + the tier-1 test suite (a ``make lint`` equivalent).

Usage::

    python scripts/check.py           # lint + tier-1 tests
    python scripts/check.py --lint    # lint only

Lint runs ``ruff check`` when ruff is installed.  When it is not (the
hermetic CI container ships no linters), a conservative stdlib fallback
still gates on the defect classes that bite: syntax errors (via
``compile``) and unused module-level imports (via ``ast``).  The
fallback intentionally under-reports rather than false-positives: a
name is "used" if it appears anywhere in the file outside its own
import statement, including inside string annotations and ``__all__``.

Both paths additionally gate on **import cycles** inside ``src/repro``:
runtime module-level imports must form a DAG (``if TYPE_CHECKING:``
blocks are excluded — they vanish at runtime).  The stage extraction
relies on this: ``repro.stages`` must never import ``repro.pipeline``
at runtime, and the check keeps the whole package honest, not just that
pair.

Both paths also gate on **per-sample loops over batch columns** inside
``src/repro/analysis``: the streaming analysis plane is columnar, so a
``for ... in zip(batch.components, ...)`` loop (or direct iteration
over ``.components`` / ``.times`` / ``.values``) on the hot plane is a
regression.  The retained scalar reference implementations mark their
loops with ``# per-sample: allowed``.

Both paths also gate on **module-level mutable state** inside
``src/repro/transport`` and ``src/repro/storage``: the parallel runtime
runs those planes on worker threads, so a module-global ``dict`` /
``list`` / ``set`` there is unsynchronized cross-thread shared state.
Keep mutable state on instances; a deliberate module global carries
``# shared-state: allowed``.

Both paths also gate on **unmanaged file/mmap handles** inside
``src/repro/storage``: the out-of-core tier keeps long-lived segment
writers and memory maps, and a stray ``open()`` or ``mmap.mmap()``
whose handle nobody owns leaks a descriptor per segment until the
process hits its rlimit.  Every such call must either be the context
expression of a ``with`` block or sit on a line documenting its owner
with ``# handle-owner: <who closes it>`` (the disk tier routes these
through its handle registry, closed on ``close()``/crash).

Both paths also gate on **blind exception swallows** inside
``src/repro``: an ``except Exception:`` (or bare ``except:``) whose
body only discards (``pass``/``continue``/``break``/``...``) hides
faults the supervised lifecycle exists to surface — the paper's sites
report silent data loss as a top pain point.  Catch the specific
exception, count/log the failure, or mark the line with
``# swallow: allowed``.

Finally both paths gate on **config drift** between the pipeline
assembly surface and the declarative site layer: every parameter of
``default_pipeline`` and ``MonitoringPipeline.__init__`` must map to a
``SiteConfig`` field (directly, via the alias table, or as exempted
instance plumbing), so a knob can never again exist only as code the
way the paper's hand-maintained Table I drifted from the deployments
it described.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "examples", "scripts")


def python_files() -> list[Path]:
    out: list[Path] = []
    for d in CHECKED_DIRS:
        root = REPO / d
        if root.is_dir():
            out.extend(sorted(root.rglob("*.py")))
    return out


def _imported_names(tree: ast.Module) -> list[tuple[str, int]]:
    """(bound-name, lineno) for every module-level import."""
    names: list[tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for a in node.names:
                bound = a.asname or a.name.split(".")[0]
                names.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue             # compiler directive, not a binding
            for a in node.names:
                if a.name == "*":
                    continue
                names.append((a.asname or a.name, node.lineno))
    return names


def check_file(path: Path) -> list[str]:
    src = path.read_text()
    problems: list[str] = []
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    if path.name == "__init__.py":
        return problems              # re-export surface: imports are the API
    lines = src.splitlines()
    for name, lineno in _imported_names(tree):
        # "used" = the word appears anywhere outside the import line itself
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        used = any(
            pattern.search(line)
            for i, line in enumerate(lines, start=1)
            if i != lineno and not line.lstrip().startswith(("import ",
                                                             "from "))
        )
        if not used:
            problems.append(f"{path}:{lineno}: unused import {name!r}")
    return problems


def _is_type_checking_if(node: ast.stmt) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_imports(tree: ast.Module, module: str, package: str) -> set[str]:
    """Modules (dotted names inside ``package``) that ``module`` imports
    at runtime — module-level statements only, TYPE_CHECKING excluded."""

    def resolve_relative(level: int, target: str | None) -> str | None:
        # `from .x import y` inside a.b.c: level 1 strips the leaf
        parts = module.split(".")
        if level > len(parts):
            return None
        base = parts[: len(parts) - level]
        return ".".join(base + ([target] if target else []))

    out: set[str] = set()

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name.startswith(package):
                        out.add(a.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    mod = resolve_relative(node.level, node.module)
                elif node.module and node.module.startswith(package):
                    mod = node.module
                else:
                    mod = None
                if mod is not None:
                    out.add(mod)
                    # `from .pkg import name` may bind the submodule
                    # pkg.name; record both spellings — the cycle check
                    # collapses names that aren't real modules.
                    for a in node.names:
                        if a.name != "*":
                            out.add(f"{mod}.{a.name}")
            elif _is_type_checking_if(node):
                continue            # erased at runtime
            elif isinstance(node, (ast.If, ast.Try)):
                visit(node.body)
                for h in getattr(node, "handlers", []):
                    visit(h.body)
                visit(node.orelse)
                visit(getattr(node, "finalbody", []))

    visit(tree.body)
    return out


def import_graph(root: Path, package: str = "repro") -> dict[str, set[str]]:
    """Runtime import graph over every module under ``root/<package>``."""
    pkg_root = root / package
    modules: dict[str, Path] = {}
    for path in sorted(pkg_root.rglob("*.py")):
        rel = path.relative_to(root).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    graph: dict[str, set[str]] = {}
    for mod, path in modules.items():
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue                 # surfaced by check_file already
        deps = set()
        for target in _runtime_imports(tree, mod, package):
            # collapse `from .pkg import name` bindings onto real modules
            while target and target not in modules:
                target = target.rpartition(".")[0]
            if target and target != mod:
                deps.add(target)
        graph[mod] = deps
    return graph


def find_import_cycle(graph: dict[str, set[str]]) -> list[str] | None:
    """First runtime import cycle found, as a module path, else None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in graph}
    stack: list[str] = []

    def dfs(mod: str) -> list[str] | None:
        color[mod] = GREY
        stack.append(mod)
        for dep in sorted(graph.get(mod, ())):
            if color.get(dep, BLACK) == GREY:
                return stack[stack.index(dep):] + [dep]
            if color.get(dep) == WHITE:
                found = dfs(dep)
                if found:
                    return found
        stack.pop()
        color[mod] = BLACK
        return None

    for mod in sorted(graph):
        if color[mod] == WHITE:
            found = dfs(mod)
            if found:
                return found
    return None


def check_import_cycles() -> list[str]:
    cycle = find_import_cycle(import_graph(REPO / "src"))
    if cycle:
        return ["import cycle in src/repro: " + " -> ".join(cycle)]
    return []


#: SeriesBatch per-sample columns; iterating them in analysis code is a
#: columnar-plane regression
_BATCH_COLUMNS = frozenset({"components", "times", "values"})
_PER_SAMPLE_MARKER = "# per-sample: allowed"


def _is_batch_column(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in _BATCH_COLUMNS


def check_columnar(path: Path) -> list[str]:
    """Flag per-sample loops over batch columns in one analysis module.

    Catches ``for ... in zip(batch.components, ...)`` (any batch column
    among the zip arguments) and direct ``for x in batch.values`` style
    iteration, in both statement loops and comprehensions.  A loop whose
    source line carries ``# per-sample: allowed`` is exempt — that is
    how the retained scalar reference implementations opt out.
    """
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return []                    # surfaced by check_file already
    lines = src.splitlines()
    problems: list[str] = []
    loops: list[tuple[int, ast.expr]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            loops.append((node.lineno, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                loops.append((gen.iter.lineno, gen.iter))
    for lineno, it in loops:
        hit = _is_batch_column(it) or (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("zip", "enumerate")
            and any(_is_batch_column(a) for a in it.args)
        )
        if not hit:
            continue
        span = lines[lineno - 1: getattr(it, "end_lineno", lineno)]
        if any(_PER_SAMPLE_MARKER in line for line in span):
            continue
        problems.append(
            f"{path}:{lineno}: per-sample loop over batch columns in the "
            f"streaming analysis plane; vectorize it or mark the line "
            f"'{_PER_SAMPLE_MARKER}'"
        )
    return problems


#: handlers this broad that do nothing hide real faults (the paper's
#: silent-syslog-loss lesson); catch something specific or record it
_BLIND_TYPES = frozenset({"Exception", "BaseException"})
_SWALLOW_MARKER = "# swallow: allowed"


def _is_blind_handler(handler: ast.ExceptHandler) -> bool:
    """True for ``except:`` / ``except Exception:`` (incl. as-names and
    tuples containing one) whose body discards the exception outright."""
    t = handler.type
    if t is None:
        broad = True                 # bare except
    else:
        names = t.elts if isinstance(t, ast.Tuple) else [t]
        broad = any(
            isinstance(n, ast.Name) and n.id in _BLIND_TYPES
            for n in names
        )
    if not broad:
        return False
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue, ast.Break))
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in handler.body
    )


def check_swallows(path: Path) -> list[str]:
    """Flag blind exception swallows in one module.

    A handler is *blind* when it catches ``Exception`` (or everything)
    and its body only discards — ``pass`` / ``continue`` / ``break`` /
    ``...`` — so the fault neither surfaces nor gets accounted.  A
    handler whose ``except`` line carries ``# swallow: allowed`` is
    exempt (for the rare case where discarding is genuinely correct and
    has been argued in a comment).
    """
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return []                    # surfaced by check_file already
    lines = src.splitlines()
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if not _is_blind_handler(handler):
                continue
            if _SWALLOW_MARKER in lines[handler.lineno - 1]:
                continue
            what = "bare except" if handler.type is None else \
                "except Exception"
            problems.append(
                f"{path}:{handler.lineno}: blind swallow ({what} with a "
                f"discard-only body); catch the specific exception, "
                f"count/log the failure, or mark the line "
                f"'{_SWALLOW_MARKER}'"
            )
    return problems


def check_swallows_repro() -> list[str]:
    """Run :func:`check_swallows` over all of ``src/repro``."""
    root = REPO / "src" / "repro"
    problems: list[str] = []
    if root.is_dir():
        for path in sorted(root.rglob("*.py")):
            problems.extend(check_swallows(path))
    return problems


#: module-level mutable containers in the planes the parallel runtime
#: fans out across workers are cross-thread shared state by definition
_SHARED_STATE_DIRS = ("src/repro/transport", "src/repro/storage")
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "Counter",
})
_SHARED_STATE_MARKER = "# shared-state: allowed"


def _is_mutable_container(value: ast.expr) -> bool:
    """True when ``value`` builds a mutable container literal/ctor."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        f = value.func
        name = f.id if isinstance(f, ast.Name) else (
            f.attr if isinstance(f, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def check_module_state(path: Path) -> list[str]:
    """Flag module-level mutable-container state in one module.

    The parallel runtime runs transport coalescing and store-shard
    ingest on worker threads; a module-global ``dict``/``list``/``set``
    in those packages is state shared across every pipeline *and* every
    worker, with no lock anyone remembers to take.  Keep mutable state
    on instances (or behind an explicit lock) — a deliberate module
    global carries ``# shared-state: allowed`` on its assignment line.
    ``__all__`` and other dunder assignments are exempt (import-time
    constants by convention).
    """
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return []                    # surfaced by check_file already
    lines = src.splitlines()
    problems: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            continue
        if value is None or not _is_mutable_container(value):
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        if all(n.startswith("__") and n.endswith("__") for n in names):
            continue                 # __all__ and friends
        if _SHARED_STATE_MARKER in lines[node.lineno - 1]:
            continue
        problems.append(
            f"{path}:{node.lineno}: module-level mutable state "
            f"({', '.join(names)}); worker threads share module globals "
            f"— move it onto an instance, freeze it "
            f"(tuple/frozenset/MappingProxyType), or mark the line "
            f"'{_SHARED_STATE_MARKER}'"
        )
    return problems


def check_shared_state() -> list[str]:
    """Run :func:`check_module_state` over the worker-shared packages."""
    problems: list[str] = []
    for rel in _SHARED_STATE_DIRS:
        root = REPO / rel
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                problems.extend(check_module_state(path))
    return problems


_HANDLE_OWNER_MARKER = "# handle-owner:"

#: directories whose file/mmap handles must be context-managed or
#: ownership-documented (the out-of-core tier lives here)
_FD_LIFETIME_DIRS = ("src/repro/storage",)


def _is_handle_call(node: ast.expr) -> bool:
    """True for ``open(...)`` and ``mmap.mmap(...)`` call expressions."""
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Name):
        return f.id == "open"
    if isinstance(f, ast.Attribute):
        return (f.attr == "mmap" and isinstance(f.value, ast.Name)
                and f.value.id == "mmap")
    return False


def check_fd_lifetime(path: Path) -> list[str]:
    """Flag unmanaged ``open()``/``mmap.mmap()`` calls in one module.

    A handle created outside a ``with`` block and outside an
    ownership-documented registry line is a descriptor leak waiting for
    a long campaign: segment files and maps live for the process, and
    the only safe idioms are scope-bound (context manager) or
    owner-bound (a registry someone provably closes).
    """
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError:
        return []                    # surfaced by check_file already
    lines = src.splitlines()
    managed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                managed.add(id(item.context_expr))
    problems: list[str] = []
    for node in ast.walk(tree):
        if not _is_handle_call(node) or id(node) in managed:
            continue
        if _HANDLE_OWNER_MARKER in lines[node.lineno - 1]:
            continue
        what = ("open()" if isinstance(node.func, ast.Name)
                else "mmap.mmap()")
        problems.append(
            f"{path}:{node.lineno}: {what} outside a context manager; "
            f"wrap it in 'with' or document the closing owner on the "
            f"line with '{_HANDLE_OWNER_MARKER} <owner>'"
        )
    return problems


def check_fd_lifetime_storage() -> list[str]:
    """Run :func:`check_fd_lifetime` over the handle-holding packages."""
    problems: list[str] = []
    for rel in _FD_LIFETIME_DIRS:
        root = REPO / rel
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                problems.extend(check_fd_lifetime(path))
    return problems


#: a full selfmon metric name (at least two dotted segments after the
#: prefix-qualifying first); prefixes like "selfmon." in startswith()
#: guards deliberately do not match
_SELFMON_NAME = re.compile(r"^selfmon\.[a-z0-9_]+(?:\.[a-z0-9_]+)+$")


def check_selfmon_registry() -> list[str]:
    """Every ``selfmon.*`` name appearing in source must be registered.

    The self-monitoring plane publishes metrics about the monitoring
    stack itself; a gauge emitted under a name the data dictionary does
    not know is exactly the undocumented-vendor-data failure the
    registry exists to prevent.  The gate scans string literals in
    ``src/repro`` for full selfmon metric names and requires each to be
    present in :func:`repro.core.registry.default_registry`.
    """
    src_root = REPO / "src"
    if not src_root.is_dir():
        return []
    sys.path.insert(0, str(src_root))
    try:
        from repro.core.registry import default_registry
    except Exception as exc:
        return [f"selfmon registry gate: cannot import registry: {exc}"]
    finally:
        sys.path.remove(str(src_root))
    registry = default_registry()
    problems: list[str] = []
    for path in sorted((src_root / "repro").rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            continue                 # surfaced by check_file already
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)):
                continue
            if not _SELFMON_NAME.match(node.value):
                continue
            if node.value not in registry:
                problems.append(
                    f"{path}:{node.lineno}: selfmon metric "
                    f"{node.value!r} is not in the default registry; "
                    f"add a MetricSpec to repro/core/registry.py"
                )
    return problems


#: assembly params that are instance plumbing, not declarative site
#: shape — they reach build_site() as explicit overrides, so SiteConfig
#: deliberately has no field for them
_CONFIG_DRIFT_EXEMPT = frozenset({
    "self", "machine", "collectors", "registry", "sec", "tracer",
    "tsdb", "stages", "freshness_slos", "kw",
})

#: assembly knob -> the SiteConfig field that represents it
_CONFIG_DRIFT_ALIASES = {
    "serve_quotas": "quotas",
    "site": "name",
    "executor": "workers",
}


def _function_params(fn: ast.FunctionDef) -> list[tuple[str, int]]:
    """(name, lineno) for every parameter of ``fn``, *args/**kw included."""
    a = fn.args
    params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
    out = [(p.arg, p.lineno) for p in params]
    if a.vararg is not None:
        out.append((a.vararg.arg, a.vararg.lineno))
    if a.kwarg is not None:
        out.append((a.kwarg.arg, a.kwarg.lineno))
    return out


def check_config_drift(
    pipeline_path: Path | None = None,
    config_path: Path | None = None,
) -> list[str]:
    """Every pipeline-assembly knob must be representable in SiteConfig.

    The declarative site layer only stays declarative if it keeps up
    with the assembly surface: a knob added to ``default_pipeline`` or
    ``MonitoringPipeline.__init__`` without a matching
    :class:`~repro.sites.config.SiteConfig` field is configuration that
    exists in code but cannot be written down, exactly the drift the
    paper's hand-maintained Table I suffered.  The gate AST-compares
    the parameter names of both assembly entry points against the
    dataclass's field names; instance-plumbing params (live objects,
    not shape) are exempt, and renamed knobs map through the alias
    table.
    """
    pipeline_path = pipeline_path or REPO / "src" / "repro" / "pipeline.py"
    config_path = config_path or (
        REPO / "src" / "repro" / "sites" / "config.py"
    )
    if not (pipeline_path.is_file() and config_path.is_file()):
        return []
    try:
        ptree = ast.parse(pipeline_path.read_text(),
                          filename=str(pipeline_path))
        ctree = ast.parse(config_path.read_text(),
                          filename=str(config_path))
    except SyntaxError:
        return []                    # surfaced by check_file already
    fields: set[str] = set()
    for node in ast.walk(ctree):
        if isinstance(node, ast.ClassDef) and node.name == "SiteConfig":
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    fields.add(stmt.target.id)
    if not fields:
        return [f"{config_path}: config-drift gate found no SiteConfig "
                f"fields to compare against"]
    knobs: list[tuple[str, str, int]] = []
    for node in ast.walk(ptree):
        if (isinstance(node, ast.FunctionDef)
                and node.name == "default_pipeline"):
            knobs.extend(("default_pipeline", n, ln)
                         for n, ln in _function_params(node))
        elif (isinstance(node, ast.ClassDef)
                and node.name == "MonitoringPipeline"):
            for stmt in node.body:
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "__init__"):
                    knobs.extend(("MonitoringPipeline.__init__", n, ln)
                                 for n, ln in _function_params(stmt))
    problems: list[str] = []
    for owner, name, lineno in knobs:
        if name in _CONFIG_DRIFT_EXEMPT:
            continue
        target = _CONFIG_DRIFT_ALIASES.get(name, name)
        if target not in fields:
            problems.append(
                f"{pipeline_path}:{lineno}: {owner} knob {name!r} is not "
                f"representable in SiteConfig (no field {target!r}); add "
                f"the field to repro/sites/config.py, alias it in "
                f"_CONFIG_DRIFT_ALIASES, or exempt instance plumbing in "
                f"_CONFIG_DRIFT_EXEMPT"
            )
    return problems


#: packages held to the no-per-sample-loop rule: the streaming analysis
#: plane and the serving plane (both sit on the query hot path)
_COLUMNAR_DIRS = ("analysis", "serve")


def check_columnar_analysis() -> list[str]:
    """Run :func:`check_columnar` over every columnar-only package."""
    problems: list[str] = []
    for name in _COLUMNAR_DIRS:
        root = REPO / "src" / "repro" / name
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                problems.extend(check_columnar(path))
    return problems


def lint() -> int:
    gate_problems = (check_import_cycles() + check_columnar_analysis()
                     + check_swallows_repro() + check_selfmon_registry()
                     + check_shared_state() + check_fd_lifetime_storage()
                     + check_config_drift())
    for p in gate_problems:
        print(p)
    if gate_problems:
        return 1
    ruff = subprocess.run(
        [sys.executable, "-m", "ruff", "--version"],
        capture_output=True,
    )
    if ruff.returncode == 0:
        print("lint: ruff")
        return subprocess.run(
            [sys.executable, "-m", "ruff", "check", *CHECKED_DIRS],
            cwd=REPO,
        ).returncode
    print("lint: ruff not installed, using stdlib fallback "
          "(syntax + unused imports)")
    problems: list[str] = []
    for path in python_files():
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"lint: {len(problems)} finding(s) in {len(python_files())} files")
    return 1 if problems else 0


def tests() -> int:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO, env=env
    ).returncode


def bench_tooling_smoke() -> int:
    """Exercise the benchmark-diff tool's logic on synthetic runs, so a
    broken comparator is caught here rather than the first time a PR
    needs a perf verdict."""
    return subprocess.run(
        [sys.executable, "scripts/bench_compare.py", "--selftest"], cwd=REPO
    ).returncode


def main(argv: list[str]) -> int:
    rc = lint()
    if rc != 0:
        return rc
    if "--lint" in argv:
        return 0
    rc = bench_tooling_smoke()
    if rc != 0:
        return rc
    return tests()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
