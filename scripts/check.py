#!/usr/bin/env python
"""Repo gate: lint + the tier-1 test suite (a ``make lint`` equivalent).

Usage::

    python scripts/check.py           # lint + tier-1 tests
    python scripts/check.py --lint    # lint only

Lint runs ``ruff check`` when ruff is installed.  When it is not (the
hermetic CI container ships no linters), a conservative stdlib fallback
still gates on the defect classes that bite: syntax errors (via
``compile``) and unused module-level imports (via ``ast``).  The
fallback intentionally under-reports rather than false-positives: a
name is "used" if it appears anywhere in the file outside its own
import statement, including inside string annotations and ``__all__``.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "examples", "scripts")


def python_files() -> list[Path]:
    out: list[Path] = []
    for d in CHECKED_DIRS:
        root = REPO / d
        if root.is_dir():
            out.extend(sorted(root.rglob("*.py")))
    return out


def _imported_names(tree: ast.Module) -> list[tuple[str, int]]:
    """(bound-name, lineno) for every module-level import."""
    names: list[tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for a in node.names:
                bound = a.asname or a.name.split(".")[0]
                names.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue             # compiler directive, not a binding
            for a in node.names:
                if a.name == "*":
                    continue
                names.append((a.asname or a.name, node.lineno))
    return names


def check_file(path: Path) -> list[str]:
    src = path.read_text()
    problems: list[str] = []
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    if path.name == "__init__.py":
        return problems              # re-export surface: imports are the API
    lines = src.splitlines()
    for name, lineno in _imported_names(tree):
        # "used" = the word appears anywhere outside the import line itself
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        used = any(
            pattern.search(line)
            for i, line in enumerate(lines, start=1)
            if i != lineno and not line.lstrip().startswith(("import ",
                                                             "from "))
        )
        if not used:
            problems.append(f"{path}:{lineno}: unused import {name!r}")
    return problems


def lint() -> int:
    ruff = subprocess.run(
        [sys.executable, "-m", "ruff", "--version"],
        capture_output=True,
    )
    if ruff.returncode == 0:
        print("lint: ruff")
        return subprocess.run(
            [sys.executable, "-m", "ruff", "check", *CHECKED_DIRS],
            cwd=REPO,
        ).returncode
    print("lint: ruff not installed, using stdlib fallback "
          "(syntax + unused imports)")
    problems: list[str] = []
    for path in python_files():
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"lint: {len(problems)} finding(s) in {len(python_files())} files")
    return 1 if problems else 0


def tests() -> int:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO, env=env
    ).returncode


def main(argv: list[str]) -> int:
    rc = lint()
    if rc != 0:
        return rc
    if "--lint" in argv:
        return 0
    return tests()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
