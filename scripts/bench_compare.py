#!/usr/bin/env python
"""Diff two pytest-benchmark JSON runs and flag mean-time regressions.

Gives PRs a perf trajectory for the storage data plane (and any other
benchmark): save a baseline, make a change, save again, diff::

    PYTHONPATH=src pytest benchmarks --benchmark-json=base.json
    ...change...
    PYTHONPATH=src pytest benchmarks --benchmark-json=new.json
    python scripts/bench_compare.py base.json new.json

Benchmarks are matched by ``fullname`` and compared on ``stats.mean``.
Exit status is 1 when any shared benchmark slowed down by more than
``--threshold`` (default 0.25 = 25%), or when the candidate run holds a
benchmark the baseline does not know — an unbaselined benchmark has no
perf trajectory, so the gate demands the baseline be regenerated (pass
``--allow-new`` to waive this when intentionally introducing one).
Removed benchmarks are reported but never fatal.  ``--selftest``
exercises the comparison logic on synthetic runs (the
``scripts/check.py`` smoke hook).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["load_means", "compare", "render"]


def load_means(path: str | Path) -> dict[str, float]:
    """``fullname -> stats.mean`` for one ``--benchmark-json`` file."""
    data = json.loads(Path(path).read_text())
    return {
        b["fullname"]: float(b["stats"]["mean"])
        for b in data.get("benchmarks", [])
    }


def compare(
    base: dict[str, float],
    new: dict[str, float],
    threshold: float = 0.25,
) -> tuple[list[tuple[str, float | None, float | None, str]], list[str]]:
    """Rows of (name, base_mean, new_mean, verdict) plus regressed names."""
    rows: list[tuple[str, float | None, float | None, str]] = []
    regressions: list[str] = []
    for name in sorted(set(base) | set(new)):
        b, n = base.get(name), new.get(name)
        if b is None:
            rows.append((name, None, n, "new"))
        elif n is None:
            rows.append((name, b, None, "removed"))
        else:
            ratio = n / b
            if ratio > 1.0 + threshold:
                verdict = f"REGRESSION {ratio:.2f}x"
                regressions.append(name)
            elif ratio < 1.0 - threshold:
                verdict = f"improved {1.0 / ratio:.2f}x"
            else:
                verdict = "ok"
            rows.append((name, b, n, verdict))
    return rows, regressions


def render(rows) -> str:
    def ms(x: float | None) -> str:
        return f"{1e3 * x:10.3f}" if x is not None else "         -"

    width = max((len(r[0]) for r in rows), default=4)
    lines = [f"{'benchmark':<{width}}  {'base ms':>10}  {'new ms':>10}  verdict"]
    for name, b, n, verdict in rows:
        lines.append(f"{name:<{width}}  {ms(b)}  {ms(n)}  {verdict}")
    return "\n".join(lines)


def selftest() -> int:
    base = {"codec/seal": 0.010, "codec/decompress": 0.020,
            "query/warm": 0.001, "gone": 0.5}
    new = {"codec/seal": 0.0135, "codec/decompress": 0.019,
           "query/warm": 0.0004, "added": 0.1}
    rows, regressions = compare(base, new, threshold=0.25)
    assert regressions == ["codec/seal"], regressions        # 1.35x > 1.25x
    verdicts = {name: v for name, _, _, v in rows}
    assert verdicts["codec/decompress"] == "ok"              # within band
    assert verdicts["query/warm"].startswith("improved")
    assert verdicts["added"] == "new"
    assert verdicts["gone"] == "removed"
    _, none = compare(base, base, threshold=0.25)
    assert none == []                                        # self-diff clean
    unbaselined = [name for name, _, _, v in rows if v == "new"]
    assert unbaselined == ["added"]         # missing-baseline gate input
    print("bench_compare selftest: ok (5 comparisons, 1 planted regression "
          "caught, 1 unbaselined benchmark flagged)")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", nargs="?", help="baseline --benchmark-json file")
    ap.add_argument("new", nargs="?", help="candidate --benchmark-json file")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional slowdown that counts as a regression "
                         "(default 0.25)")
    ap.add_argument("--selftest", action="store_true",
                    help="verify the comparison logic on synthetic runs")
    ap.add_argument("--allow-new", action="store_true",
                    help="tolerate benchmarks absent from the baseline "
                         "(default: fatal, so baselines cannot silently "
                         "go stale)")
    args = ap.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.base or not args.new:
        ap.error("base and new JSON files are required (or --selftest)")
    rows, regressions = compare(
        load_means(args.base), load_means(args.new), args.threshold
    )
    print(render(rows))
    failed = False
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%: " + ", ".join(regressions))
        failed = True
    unbaselined = [name for name, _, _, v in rows if v == "new"]
    if unbaselined and not args.allow_new:
        print(f"\n{len(unbaselined)} benchmark(s) missing from the "
              f"baseline: " + ", ".join(unbaselined))
        print("regenerate the baseline JSON to cover them (or pass "
              "--allow-new when introducing a benchmark on purpose)")
        failed = True
    if failed:
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
