"""Shared scenario builders for the figure/table benches.

Each scenario simulates a monitored machine with the ground-truth
conditions a paper figure shows, returning the pipeline whose stores the
figure is regenerated from.  Scenarios are deterministic (seeded) and
sized to run in seconds so the whole bench suite stays interactive.
"""

from __future__ import annotations

from repro.cluster import (
    LoadImbalance,
    Machine,
    MdsDegradation,
    PackedPlacement,
    ScatteredPlacement,
    SlowOst,
    TopoAwarePlacement,
    build_dragonfly,
    build_torus,
)
from repro.cluster.workload import APP_LIBRARY, AppProfile, CommPattern, Job, Phase
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.sources.counters import InjectionCollector, NetLinkCollector


class OneShotSubmitter:
    """Job source that submits prepared jobs at their submit times."""

    def __init__(self, jobs):
        self._pending = sorted(jobs, key=lambda j: j.submit_time)

    def poll(self, now):
        out = []
        while self._pending and self._pending[0].submit_time <= now:
            out.append(self._pending.pop(0))
        return out


# a communication-heavy app used to load the fabric in the TAS scenario:
# per-node demand at the NIC line rate, so achieved injection is limited
# by path contention — the quantity TAS placement changes
COMM_APP = AppProfile(
    name="halo_heavy",
    phases=(Phase(1.0, cpu_util=0.9, comm_Bps=6e9),),
    comm_pattern=CommPattern.HALO3D,
    work_seconds=7200.0,
    comm_weight=0.6,
    runtime_noise=0.01,
    typical_nodes=(16,),
)


def tas_scenario(tas: bool, seed: int = 3, sim_s: float = 1800.0):
    """Figure 1: a 3D-torus machine saturated with halo-exchange jobs,
    placed either scattered (pre-TAS) or topology-aware (TAS)."""
    topo = build_torus(4, 4, 4, nodes_per_router=2)
    placement = TopoAwarePlacement() if tas else ScatteredPlacement()
    jobs = [
        Job(COMM_APP, 16, submit_time=0.0, seed=seed * 100 + i)
        for i in range(8)    # 8 x 16 = 128 nodes: the whole machine
    ]
    machine = Machine(topo, placement=placement,
                      job_generator=OneShotSubmitter(jobs), seed=seed)
    pipeline = MonitoringPipeline(
        machine,
        collectors=[InjectionCollector(interval_s=60.0),
                    NetLinkCollector(interval_s=60.0)],
    )
    pipeline.run(duration_s=sim_s, dt=10.0)
    return pipeline


def benchmark_tracking_scenario(seed: int = 5):
    """Figure 2: benchmark suite on a machine that develops filesystem
    problems partway through the tracked period."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    machine.faults.add(SlowOst(start=7200.0, duration=5400.0, ost=0,
                               bw_factor=0.08))
    machine.faults.add(MdsDegradation(start=18000.0, duration=3600.0,
                                      rate_factor=0.1))
    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(machine, metric_interval_s=300.0,
                                      bench_interval_s=600.0, seed=seed),
    )
    pipeline.run(hours=7.0, dt=60.0)
    return pipeline


def power_imbalance_scenario(seed: int = 31):
    """Figure 3: whole-machine job develops load imbalance mid-run."""
    topo = build_dragonfly(groups=4, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    job = Job(APP_LIBRARY["qmc"], len(topo.nodes), 0.0, seed=seed)
    machine.scheduler.submit(job, 0.0)
    machine.faults.add(
        LoadImbalance(start=1200.0, duration=1800.0, frac_busy=0.25,
                      wait_util=0.05)
    )
    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(machine, metric_interval_s=60.0,
                                      seed=seed),
    )
    pipeline.run(hours=1.5, dt=10.0)
    return pipeline, job


def io_spike_scenario(seed: int = 11):
    """Figures 4/5: quiet background + a read-heavy job owning a spike."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    quiet = Job(APP_LIBRARY["qmc"], 16, 0.0, seed=seed)
    io_heavy = Job(APP_LIBRARY["genomics"], 32, 600.0, seed=seed + 1)
    machine = Machine(topo, placement=PackedPlacement(),
                      job_generator=OneShotSubmitter([io_heavy]),
                      seed=seed)
    machine.scheduler.submit(quiet, 0.0)
    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(machine, metric_interval_s=60.0,
                                      seed=seed),
    )
    pipeline.run(hours=1.2, dt=10.0)
    return pipeline, io_heavy
