"""Supervision overhead: the lifecycle plane must be nearly free.

The supervised lifecycle (circuit breakers on every collector and
stage, per-tick health observation of transport and store, ledger
stamping on every tracked publish) runs inside the hot tick loop, so
its cost is a standing tax on the whole monitoring plane.  This bench
runs the identical workload twice — supervision + ledger on vs off —
and asserts the step-loop regression stays under 5%.
"""

import time

from repro.cluster import JobGenerator, Machine, PackedPlacement, build_dragonfly
from repro.obs.trace import Tracer
from repro.pipeline import MonitoringPipeline, default_collectors

N_STEPS = 120
TRIALS = 5
MAX_REGRESSION = 0.05


def build_machine(seed=3):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=240,
                                   max_nodes=16, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )


def build_pipeline(supervised: bool):
    # tracer + selfmon off in both arms, so the measurement isolates
    # supervision itself rather than re-measuring the observability tax
    return MonitoringPipeline(
        build_machine(),
        collectors=default_collectors(build_machine()),
        tracer=Tracer(enabled=False),
        selfmon_interval_s=None,
        supervision=supervised,
    )


def time_step_loop(supervised: bool) -> float:
    """Best-of-TRIALS wall time of an N_STEPS step loop."""
    best = float("inf")
    for _ in range(TRIALS):
        pipeline = build_pipeline(supervised)
        t0 = time.perf_counter()
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        best = min(best, time.perf_counter() - t0)
    return best


class TestSupervisionOverhead:
    def test_supervision_overhead_is_bounded(self):
        baseline = time_step_loop(supervised=False)
        supervised = time_step_loop(supervised=True)
        regression = supervised / baseline - 1.0
        print(f"\nstep loop ({N_STEPS} steps): unsupervised "
              f"{baseline:.4f}s, supervised {supervised:.4f}s "
              f"({100 * regression:+.2f}% overhead)")
        assert regression < MAX_REGRESSION, (
            f"supervision overhead {100 * regression:.1f}% exceeds "
            f"the {100 * MAX_REGRESSION:.0f}% budget"
        )

    def test_supervised_run_actually_supervised(self):
        pipeline = build_pipeline(supervised=True)
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        # every stage has a breaker record, and the fault-free run left
        # every one of them OK with zero transitions
        report = pipeline.health_report()
        assert any(name.startswith("stage:") for name in report)
        assert all(rec["state"] == "ok" for rec in report.values())
        assert pipeline.supervisor.transitions == []
        # the ledger accounted every tracked point with zero loss
        balance = pipeline.delivery_report()
        assert balance.balanced, balance.render()
        assert balance.lost == 0
        assert balance.published == balance.stored + balance.in_flight

    def test_unsupervised_run_pays_nothing(self):
        pipeline = build_pipeline(supervised=False)
        for _ in range(20):
            pipeline.step(10.0)
        assert pipeline.supervisor is None
        assert pipeline.ledger is None
        assert pipeline.delivery_report() is None
        assert pipeline.health_report() == {}
