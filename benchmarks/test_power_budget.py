"""Envisioned-response ablation: power-aware + congestion-aware scheduling.

Section III-C: "Power-aware scheduling seems likely to become important
with increasing scale" and sites "envision the redirection of power
between platforms ... based on both current and anticipated needs";
"Scheduling and allocation based on application and resource state is
an active area of interest."  Both are measured here:

* the power governor must hold the system under its budget at a
  throughput cost, and downclock-to-fit must buy back some of that cost
  (the power-redirection behaviour);
* congestion-aware placement must spare a communication-sensitive job
  from an existing hot region, measured as achieved injection bandwidth.
"""

import numpy as np

from repro.cluster import (
    Machine,
    PackedPlacement,
    PowerModel,
    build_dragonfly,
)
from repro.cluster.workload import APP_LIBRARY, AppProfile, CommPattern, Job, Phase
from repro.response.governor import CongestionAwarePlacement, PowerGovernor


def power_scenario(budget_frac: float | None, downclock: bool = False,
                   seed: int = 7):
    """A job stream under (optional) power budgeting; returns
    (peak_power, budget, completed_work_seconds)."""
    topo = build_dragonfly(groups=3, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    pm = PowerModel(topo, machine.nodes)
    idle = pm.system_power_w()
    dyn = machine.nodes.max_power_w - machine.nodes.idle_power_w
    full = idle + len(topo.nodes) * dyn
    budget = np.inf
    gov = None
    if budget_frac is not None:
        budget = idle + budget_frac * (full - idle)
        gov = PowerGovernor(machine, budget_w=budget,
                            downclock_to_fit=downclock)
        machine.scheduler.admission_control = gov.admit

    rng = np.random.default_rng(seed)
    next_submit = 0.0
    k = 0
    peak = 0.0
    while machine.now < 7200.0:
        if machine.now >= next_submit:
            j = Job(APP_LIBRARY["qmc"], 24, machine.now, seed=k)
            j.work_seconds = 1200.0
            machine.scheduler.submit(j, machine.now)
            k += 1
            next_submit = machine.now + 240.0
        machine.step(10.0)
        if gov is not None:
            gov.relax()
        peak = max(peak, pm.system_power_w())
    done_work = sum(
        j.work_seconds for j in machine.scheduler.completed
    )
    return peak, budget, done_work, gov


class TestPowerBudget:
    def test_budget_held_with_throughput_cost(self):
        peak_free, _, work_free, _ = power_scenario(None)
        peak_cap, budget, work_cap, gov = power_scenario(0.5)
        print(f"\npower-aware scheduling (budget = idle + 50% dynamic):")
        print(f"  unbounded : peak {peak_free / 1e3:6.1f} kW, "
              f"completed work {work_free / 3600:.1f} core-h-equiv")
        print(f"  budgeted  : peak {peak_cap / 1e3:6.1f} kW "
              f"(budget {budget / 1e3:.1f} kW), work "
              f"{work_cap / 3600:.1f}, deferrals {gov.deferred}")
        assert peak_cap <= budget * 1.02
        assert peak_free > budget          # the budget actually binds
        assert work_cap < work_free        # and costs throughput
        assert work_cap > 0.3 * work_free  # but work still flows

    def test_downclock_to_fit_buys_back_throughput(self):
        _, _, work_wait, _ = power_scenario(0.5, downclock=False)
        peak_dc, budget, work_dc, gov = power_scenario(0.5, downclock=True)
        print(f"\ndownclock-to-fit: work {work_dc / 3600:.1f} vs "
              f"{work_wait / 3600:.1f} (wait-only), "
              f"downclocks {gov.downclocks}, peak {peak_dc / 1e3:.1f} kW")
        assert peak_dc <= budget * 1.02
        assert work_dc >= work_wait * 0.95   # at worst comparable
        assert gov.downclocks >= 1

    def test_bench_admission_decision(self, benchmark):
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, seed=1)
        gov = PowerGovernor(machine, budget_w=1e9)
        job = Job(APP_LIBRARY["qmc"], 16, 0.0, seed=1)
        assert benchmark(gov.admit, job)


VICTIM = AppProfile(
    name="victim_a2a",
    phases=(Phase(1.0, cpu_util=0.9, comm_Bps=5e9),),
    comm_pattern=CommPattern.ALLTOALL,
    work_seconds=3600.0,
    comm_weight=0.6,
    typical_nodes=(16,),
)

AGGRESSOR = AppProfile(
    name="aggressor_a2a",
    phases=(Phase(1.0, cpu_util=0.8, comm_Bps=25e9),),
    comm_pattern=CommPattern.ALLTOALL,
    work_seconds=36000.0,
    comm_weight=0.05,
    typical_nodes=(24,),
)


class _PinnedPlacement:
    """Places the next job on an exact node list (scenario setup)."""

    name = "pinned"

    def __init__(self, nodes):
        self.nodes = list(nodes)

    def place(self, topo, free, n_nodes, rng):
        picks = [n for n in self.nodes if n in set(free)][:n_nodes]
        return picks if len(picks) == n_nodes else None


class TestCongestionAwareScheduling:
    def run_victim(self, placement_factory, seed=11):
        """Aggressor interleaved on half of every group-0 blade (so new
        arrivals in group 0 share routers and links with it); groups
        1/2 mostly filled by a quiet job so plain TAS (most-free-first)
        steers the victim INTO the hot group.  Congestion-aware
        placement must not."""
        topo = build_dragonfly(groups=3, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, seed=seed)
        g0 = [n for n in topo.nodes if topo.node_group[n] == 0]
        agg_nodes = [n for n in g0
                     if n.endswith("n0") or n.endswith("n1")]
        others = [n for n in topo.nodes if topo.node_group[n] != 0]

        aggressor = Job(AGGRESSOR, 24, 0.0, seed=seed)
        machine.scheduler.placement = _PinnedPlacement(agg_nodes)
        machine.scheduler.submit(aggressor, 0.0)
        machine.scheduler.tick(0.0)
        filler = Job(APP_LIBRARY["qmc"], 80, 0.0, seed=seed + 1)
        machine.scheduler.placement = _PinnedPlacement(others)
        machine.scheduler.submit(filler, 0.0)
        machine.scheduler.tick(0.0)
        machine.run(120.0, dt=10.0)   # let the hot region develop

        machine.scheduler.placement = placement_factory(machine)
        victim = Job(VICTIM, 16, machine.now, seed=seed + 2)
        machine.scheduler.submit(victim, machine.now)
        machine.run(300.0, dt=10.0)
        assert victim.nodes, "victim must have started"
        idxs = machine.nodes.idxs(victim.nodes)
        achieved = machine.network.inject_bw_frac()[idxs].mean()
        groups = {topo.node_group[n] for n in victim.nodes}
        return achieved, groups

    def test_congestion_aware_spares_the_victim(self):
        from repro.cluster.scheduler import TopoAwarePlacement

        # plain TAS is congestion-blind: most free nodes = hot group 0
        tas_bw, tas_groups = self.run_victim(
            lambda m: TopoAwarePlacement()
        )
        ca_bw, ca_groups = self.run_victim(
            lambda m: CongestionAwarePlacement(m.network)
        )
        print(f"\nvictim achieved injection: TAS={tas_bw:.3f} "
              f"(groups {sorted(tas_groups)}), congestion-aware="
              f"{ca_bw:.3f} (groups {sorted(ca_groups)})")
        assert 0 in tas_groups        # TAS walked into the hot region
        assert 0 not in ca_groups     # the aware policy did not
        assert ca_bw > tas_bw * 1.2
