"""Parallel-runtime scaling: the threaded executor must actually pay.

The tentpole claim of the multi-worker execution model is that a
monitored step loop dominated by remote round-trips — every collector
sweep one scrape RTT away, every store shard one write RTT away — runs
at least ``MIN_SPEEDUP``x faster on ``WORKERS`` workers than serially,
on the full 27,648-component synchronized sweep.  The speedup comes
from latency hiding (the RTTs release the GIL), so it holds on a
single-core host; a regression here means a barrier got serialized or
a plane stopped fanning out.

Methodology mirrors the other overhead benches: GC held quiescent,
paired trials with arm order alternated so host drift cancels, median
ratio per attempt, best of ``ATTEMPTS`` attempts (timing noise is
one-sided — interruptions only slow arms down).

A pytest-benchmark fixture records the 4-worker step loop for trend
tracking (baseline ``BENCH_parallel.json``, diffed by
``scripts/bench_compare.py``).
"""

import gc
import time

from repro.runtime.scaling import build_scaling_pipeline

N_STEPS = 8
TRIALS = 5
ATTEMPTS = 3
WORKERS = 4
MIN_SPEEDUP = 2.0


def one_step_loop(workers: int) -> float:
    """Wall time of one N_STEPS step loop on a fresh pipeline.

    Wall time — not process time — is the quantity under test: the
    speedup is latency hiding, which only wall clocks can see.  The
    first (untimed) step warms the routing memo and the worker pool so
    both arms measure steady state.
    """
    pipeline = build_scaling_pipeline(workers)
    gc.collect()
    gc.disable()
    try:
        pipeline.step()
        t0 = time.perf_counter()
        for _ in range(N_STEPS):
            pipeline.step()
        return time.perf_counter() - t0
    finally:
        gc.enable()
        pipeline.executor.shutdown()


def measure_speedup() -> tuple[float, float, float]:
    """Median of paired serial/parallel ratios, arm order alternated.

    Returns (speedup, best_serial, best_parallel)."""
    ratios = []
    serial_best = parallel_best = float("inf")
    for i in range(TRIALS):
        if i % 2 == 0:
            s = one_step_loop(1)
            p = one_step_loop(WORKERS)
        else:
            p = one_step_loop(WORKERS)
            s = one_step_loop(1)
        ratios.append(s / p)
        serial_best = min(serial_best, s)
        parallel_best = min(parallel_best, p)
    ratios.sort()
    return ratios[len(ratios) // 2], serial_best, parallel_best


class TestParallelScaling:
    def test_threaded_step_loop_beats_the_floor(self):
        best = 0.0
        for attempt in range(ATTEMPTS):
            speedup, serial_s, parallel_s = measure_speedup()
            best = max(best, speedup)
            print(f"\nstep loop ({N_STEPS} steps, 27,648 components): "
                  f"serial {serial_s:.3f}s, {WORKERS} workers "
                  f"{parallel_s:.3f}s ({speedup:.2f}x median paired "
                  f"speedup, attempt {attempt + 1})")
            if best >= MIN_SPEEDUP:
                break
        assert best >= MIN_SPEEDUP, (
            f"{WORKERS}-worker speedup {best:.2f}x under the "
            f"{MIN_SPEEDUP:.1f}x floor in {ATTEMPTS} attempts"
        )

    def test_parallel_arm_monitored_the_same_data(self):
        serial = build_scaling_pipeline(1)
        threaded = build_scaling_pipeline(WORKERS)
        try:
            for _ in range(4):
                serial.step()
                threaded.step()
        finally:
            threaded.executor.shutdown()
        assert serial.tsdb.stats().samples == 4 * 27_648
        assert serial.tsdb.stats() == threaded.tsdb.stats()
        a, b = serial.delivery_report(), threaded.delivery_report()
        assert a == b and a.balanced

    def test_bench_threaded_step_loop(self, benchmark):
        pipeline = build_scaling_pipeline(WORKERS)
        pipeline.step()                 # warm pool + routing memo

        def run_steps():
            for _ in range(4):
                pipeline.step()

        try:
            benchmark(run_steps)
        finally:
            pipeline.executor.shutdown()
        benchmark.extra_info["steps_per_s"] = (
            4 / benchmark.stats.stats.mean
        )
