"""Collection-interval ablation: detection latency vs overhead.

Table I: "We will always need higher fidelity data" but "where access
and transport of data might incur impact, that impact should be well-
documented."  We sweep the collection interval from 10 s to 10 min on
the same hung-node scenario and measure (a) how long the power-sweep
outlier detector takes to see the fault and (b) the samples moved and
collector wall time — the tradeoff a site actually tunes.
"""


from repro.analysis.anomaly import sweep_outliers
from repro.cluster import HungNode, Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.pipeline import MonitoringPipeline
from repro.sources.sedc import SedcCollector

FAULT_T = 1200.0


def run_with_interval(interval_s: float, seed: int = 7):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    job = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=seed, walltime_req=1500.0)
    machine.scheduler.submit(job, 0.0)
    machine.run(600.0, dt=10.0)
    victim = job.nodes[0]
    machine.faults.add(HungNode(start=FAULT_T, node=victim))

    collector = SedcCollector(interval_s=interval_s)
    pipeline = MonitoringPipeline(machine, collectors=[collector])
    pipeline.run(duration_s=3600.0, dt=10.0)

    # replay the stored sweeps: first sweep after the job died (walltime
    # 1500 s) in which the victim is a power outlier
    detect_t = None
    comps = pipeline.tsdb.components("node.power_w")
    series = {c: pipeline.tsdb.query("node.power_w", c) for c in comps}
    times = series[comps[0]].times
    for i, t in enumerate(times):
        if t < 1500.0 + 600.0:
            continue
        from repro.core.metric import SeriesBatch
        sweep = SeriesBatch.sweep(
            "node.power_w", float(t), comps,
            [series[c].values[i] for c in comps],
        )
        dets = sweep_outliers(sweep, z_threshold=4.0)
        if any(d.component == victim for d in dets):
            detect_t = float(t)
            break
    samples = pipeline.tsdb.stats().samples
    wall = collector.collect_wall_s
    return detect_t, samples, wall, victim


class TestFidelityTradeoff:
    def test_sweep_intervals(self):
        print("\ndetection latency vs collection interval "
              "(hung node, power sweeps):")
        rows = []
        for interval in (10.0, 60.0, 300.0, 600.0):
            detect_t, samples, wall, _ = run_with_interval(interval)
            assert detect_t is not None, \
                f"interval {interval}: fault never detected"
            # latency from the earliest possible detection moment (the
            # machine quiesced after walltime kill + power settling)
            latency = detect_t - 2100.0
            rows.append((interval, latency, samples, wall))
            print(f"  interval {interval:6.0f}s -> detected at "
                  f"t={detect_t:6.0f}s (latency {latency:5.0f}s), "
                  f"{samples:6d} samples stored, "
                  f"{1000 * wall:6.1f} ms collector time")
        # finer collection must not detect later than coarser
        latencies = [r[1] for r in rows]
        assert latencies[0] <= latencies[-1]
        # and must cost proportionally more samples
        assert rows[0][2] > 10 * rows[-1][2]

    def test_bench_collection_sweep_cost(self, benchmark):
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, seed=1)
        collector = SedcCollector(interval_s=60.0)
        out = benchmark(collector.collect, machine, 60.0)
        assert out.n_samples == 3 * len(topo.nodes)
