"""Clock-drift ablation: event-association accuracy vs timestamp discipline.

Section III-B: "Associating numerical or log events over components and
time is particularly tricky when a single global timestamp is
unavailable as local clock drift can result in erroneous associations."
We generate a causally ordered event trail across many nodes, stamp it
(a) with the global timebase and (b) with per-node drifting clocks of
increasing badness, and measure pairwise-order accuracy and incident-
clustering quality.
"""

import numpy as np

from repro.analysis.correlate import cluster_events, order_accuracy
from repro.core.clock import DriftModel
from repro.core.events import Event, EventKind, Severity

N_NODES = 32
N_EVENTS = 300
SPACING_S = 0.05   # cascade events land 50 ms apart across components


def make_trail(seed=0):
    """A causal cascade: events hop node to node every SPACING_S."""
    rng = np.random.default_rng(seed)
    events = []
    t = 1000.0
    for i in range(N_EVENTS):
        node = int(rng.integers(0, N_NODES))
        events.append(Event(
            t, f"n{node}", EventKind.CONSOLE, Severity.WARNING,
            f"cascade step {i}",
        ))
        t += SPACING_S
    return events


def stamp_with_drift(events, offset_s, seed=0):
    model = DriftModel(rate_sigma_ppm=20.0, initial_offset_s=offset_s,
                       seed=seed)
    clocks = {f"n{i}": model.make_clock() for i in range(N_NODES)}
    return [e.with_time(clocks[e.component].local_time(e.time))
            for e in events]


class TestDriftImpact:
    def test_accuracy_degrades_with_offset(self):
        truth = make_trail()
        print("\npairwise order accuracy vs clock discipline "
              f"(events {SPACING_S * 1000:.0f} ms apart):")
        rows = []
        for offset in (0.0, 0.01, 0.05, 0.2, 1.0):
            # offset 0.0 = the disciplined global timebase (no drift at
            # all); nonzero offsets also carry +-20 ppm rate error
            stamped = (list(truth) if offset == 0.0
                       else stamp_with_drift(truth, offset))
            # score only nearby pairs (<= 0.5 s apart): the causal
            # neighbours cross-component association actually stitches
            acc = order_accuracy(truth, stamped, max_separation_s=0.5)
            rows.append((offset, acc))
            label = ("global timestamp" if offset == 0.0
                     else f"+-{offset * 1000:.0f} ms offsets")
            print(f"  {label:>20}: {100 * acc:.1f}% of pairs ordered "
                  f"correctly")
        assert rows[0][1] > 0.999          # global timebase: perfect
        accs = [a for _, a in rows]
        assert all(b <= a + 1e-9 for a, b in zip(accs, accs[1:]))
        assert rows[-1][1] < 0.9           # 1 s offsets: badly corrupted

    def test_incident_clustering_fragments_under_drift(self):
        # three true incidents separated by quiet gaps
        truth = []
        t = 0.0
        for burst in range(3):
            t = burst * 3600.0
            for i in range(20):
                truth.append(Event(
                    t + i * 0.2, f"n{i % N_NODES}", EventKind.CONSOLE,
                    Severity.WARNING, f"incident {burst} step {i}",
                ))
        clean = cluster_events(truth, gap_s=30.0)
        assert len(clean) == 3
        stamped = stamp_with_drift(truth, offset_s=120.0, seed=4)
        drifted = cluster_events(stamped, gap_s=30.0)
        print(f"\nincidents found: global timestamps={len(clean)}, "
              f"2-minute clock offsets={len(drifted)} (truth: 3)")
        assert len(drifted) != 3, \
            "gross drift must corrupt incident grouping"

    def test_sync_discipline_restores_accuracy(self):
        truth = make_trail()
        model = DriftModel(rate_sigma_ppm=20.0, initial_offset_s=0.5,
                           seed=1)
        clocks = {f"n{i}": model.make_clock() for i in range(N_NODES)}
        for c in clocks.values():
            c.sync(999.0)   # NTP-style resync just before the trail
        stamped = [e.with_time(clocks[e.component].local_time(e.time))
                   for e in truth]
        acc = order_accuracy(truth, stamped, max_separation_s=0.5)
        print(f"\nafter resync: {100 * acc:.1f}% pairs correct")
        assert acc > 0.99

    def test_bench_order_accuracy(self, benchmark):
        truth = make_trail()
        stamped = stamp_with_drift(truth, 0.05)
        acc = benchmark(order_accuracy, truth, stamped)
        assert 0.0 <= acc <= 1.0
