"""Transport comparison: pub/sub bus vs LDMS pull tree vs syslog.

Section IV-B: sites juggle "a variety of transport mechanisms" with
different fidelity/overhead tradeoffs, and "multiple transports may in
some cases be necessary and even desirable".  We measure throughput of
each class and loss behaviour under an event storm — the scenario that
also blows up Splunk bills.
"""

import numpy as np
import pytest

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.transport.bus import MessageBus
from repro.transport.ldms import Sampler, build_tree
from repro.transport.syslogfwd import SyslogForwarder

N_NODES = 256


def make_events(n, t0=0.0, rate=1000.0):
    return [
        Event(t0 + i / rate, f"n{i % N_NODES}", EventKind.CONSOLE,
              Severity.INFO, f"event number {i}")
        for i in range(n)
    ]


class TestBusThroughput:
    def test_bench_bus_fanout(self, benchmark):
        bus = MessageBus()
        sink = bus.subscribe("metrics.*", maxlen=100_000)
        batch = SeriesBatch.sweep("m", 0.0, [f"n{i}" for i in range(64)],
                                  np.ones(64))

        def publish_sweep():
            for _ in range(100):
                bus.publish("metrics.m", batch)
            return sink.drain()

        out = benchmark(publish_sweep)
        assert len(out) == 100


class TestLdmsTree:
    def sampler(self, i):
        def fn(now):
            return [SeriesBatch.sweep("m", now, [f"n{i}"], [1.0])]
        return Sampler(f"n{i}", fn)

    @pytest.mark.parametrize("fan_in", [4, 16, 256])
    def test_bench_tree_pull(self, benchmark, fan_in):
        root = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=fan_in)
        out = benchmark(root.pull, 60.0)
        assert len(out) == N_NODES

    def test_deeper_trees_move_more_wire_bytes(self):
        flat = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=256)
        deep = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=4)
        flat.pull(0.0)
        deep.pull(0.0)

        def total_wire(agg):
            own = agg.wire_bytes
            for c in agg.children:
                if hasattr(c, "wire_bytes"):
                    own += total_wire(c)
            return own

        wf, wd = total_wire(flat), total_wire(deep)
        print(f"\nwire bytes per sweep: fan-in 256 (1 level) = {wf}, "
              f"fan-in 4 ({deep.depth()} levels) = {wd} "
              f"({wd / wf:.1f}x re-forwarding cost)")
        assert wd > wf


class TestSyslogUnderStorm:
    def test_bench_forwarding(self, benchmark):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=1e9, burst=10**6)
        events = make_events(1000)
        benchmark.pedantic(
            lambda: fwd.forward(0.0, events), rounds=5, iterations=1
        )
        assert sink

    def test_loss_vs_storm_intensity(self):
        print("\nsyslog loss under event storms (capacity 1000 ev/s):")
        rows = []
        for storm in (500, 1000, 5000, 20000):
            sink = []
            fwd = SyslogForwarder(sink.append, rate_per_s=1000.0,
                                  burst=200, retry_buffer=500)
            # one second of storm, then 2 quiet seconds to drain retries
            fwd.forward(0.0, make_events(storm))
            fwd.forward(1.0, [])
            fwd.forward(2.0, [])
            s = fwd.stats()
            rows.append((storm, s.loss_rate))
            print(f"  {storm:6d} events/s -> delivered {s.forwarded}, "
                  f"lost {s.dropped} ({100 * s.loss_rate:.0f}%)")
        # loss must be monotone in storm intensity, zero when under rate
        assert rows[0][1] == 0.0
        assert all(b[1] >= a[1] for a, b in zip(rows, rows[1:]))
        assert rows[-1][1] > 0.5

    def test_bus_drops_oldest_not_newest_under_storm(self):
        bus = MessageBus()
        sub = bus.subscribe("t", maxlen=100)
        for i in range(1000):
            bus.publish("t", i)
        got = [e.payload for e in sub.drain()]
        assert got == list(range(900, 1000))
        assert bus.stats().dropped == 900

    def test_bus_stats_expose_depth_and_errors_under_storm(self):
        """The self-monitoring surfaces: per-subscription backlog and
        isolated callback failures are visible in BusStats."""
        bus = MessageBus()
        bus.subscribe("t", maxlen=50, name="slow-consumer")
        fails = bus.subscribe(
            "t", name="flaky-consumer",
            callback=lambda env: (_ for _ in ()).throw(RuntimeError("die")),
        )
        keeper = bus.subscribe("t", maxlen=10_000, name="keeper")
        for i in range(500):
            bus.publish("t", i)
        s = bus.stats()
        assert s.errors == 500
        assert fails.errors == 500
        assert s.queue_depths["slow-consumer"] == 50
        assert s.queue_depths["keeper"] == 500
        assert bus.queue_depths() == s.queue_depths
        # the flaky consumer never blocked the keeper's feed
        assert [e.payload for e in keeper.drain()] == list(range(500))

    def test_depth_tracks_producer_consumer_imbalance(self):
        bus = MessageBus()
        sub = bus.subscribe("metrics.*", maxlen=100_000, name="analysis")
        batch = SeriesBatch.sweep("m", 0.0, [f"n{i}" for i in range(8)],
                                  np.ones(8))
        depths = []
        for round_ in range(5):
            for _ in range(100):
                bus.publish("metrics.m", batch)
            depths.append(bus.queue_depths()["analysis"])
            sub.drain(max_items=50)            # consumer at half speed
        assert depths == [100, 150, 200, 250, 300]
