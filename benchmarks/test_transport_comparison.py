"""Transport comparison: pub/sub bus vs LDMS pull tree vs syslog.

Section IV-B: sites juggle "a variety of transport mechanisms" with
different fidelity/overhead tradeoffs, and "multiple transports may in
some cases be necessary and even desirable".  We measure throughput of
each class and loss behaviour under an event storm — the scenario that
also blows up Splunk bills — plus the two transport-tier wins of the
refactor: the memoized match cache on the flat bus's hot path, and the
aggregator tree's upstream message reduction at Trinity scale (27,648
per-node publishers).
"""

import time

import numpy as np
import pytest

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.transport.aggtree import AggregatorTree
from repro.transport.bus import MessageBus
from repro.transport.ldms import Sampler, build_tree
from repro.transport.syslogfwd import SyslogForwarder

N_NODES = 256


def make_events(n, t0=0.0, rate=1000.0):
    return [
        Event(t0 + i / rate, f"n{i % N_NODES}", EventKind.CONSOLE,
              Severity.INFO, f"event number {i}")
        for i in range(n)
    ]


class TestBusThroughput:
    def test_bench_bus_fanout(self, benchmark):
        bus = MessageBus()
        sink = bus.subscribe("metrics.*", maxlen=100_000)
        batch = SeriesBatch.sweep("m", 0.0, [f"n{i}" for i in range(64)],
                                  np.ones(64))

        def publish_sweep():
            for _ in range(100):
                bus.publish("metrics.m", batch)
            return sink.drain()

        out = benchmark(publish_sweep)
        assert len(out) == 100


class TestMatchCache:
    """The flat bus's hottest line is topic/pattern fnmatch; the
    bounded memo cache turns it into a dict hit on recurring pairs."""

    TOPICS = [f"metrics.m{i}" for i in range(32)]
    PATTERNS = ["metrics.*", "events.*", "selfmon.*", "*.m0"]

    def _loaded_bus(self, cache_size):
        bus = MessageBus(match_cache_size=cache_size)
        for pat in self.PATTERNS:
            bus.subscribe(pat, callback=lambda env: None)
        return bus

    def _publish_storm(self, bus, rounds=200):
        for _ in range(rounds):
            for t in self.TOPICS:
                bus.publish(t, None)

    def test_bench_cached_publish(self, benchmark):
        bus = self._loaded_bus(4096)
        benchmark(self._publish_storm, bus)
        info = bus.match_cache_info()
        assert info.hits > 100 * info.misses     # steady state: all hits
        assert info.size == len(self.TOPICS) * len(self.PATTERNS)

    def test_bench_uncached_publish(self, benchmark):
        bus = self._loaded_bus(0)
        benchmark(self._publish_storm, bus)
        assert bus.match_cache_info().size == 0

    def test_cache_beats_fnmatch_on_recurring_topics(self):
        """Wall-clock proof of the win, independent of the benchmark
        plugin: identical storms, cached vs uncached."""
        def storm_time(cache_size):
            bus = self._loaded_bus(cache_size)
            self._publish_storm(bus, rounds=50)       # warm
            t0 = time.perf_counter()
            self._publish_storm(bus, rounds=500)
            return time.perf_counter() - t0

        uncached = min(storm_time(0) for _ in range(3))
        cached = min(storm_time(4096) for _ in range(3))
        print(f"\nmatch-cache: uncached {1000 * uncached:.1f} ms, "
              f"cached {1000 * cached:.1f} ms "
              f"({uncached / cached:.1f}x speedup)")
        assert cached < uncached


class TestAggregatorTreeAtScale:
    """Table I's scale row: a Trinity-class machine (27,648 nodes) each
    publishing per-node batches must not translate into 27,648 messages
    at the store — the tree coalesces them to one merged batch per
    metric per window, with zero data loss."""

    N_SCALE = 27_648

    def test_upstream_message_reduction_at_trinity_scale(self):
        tree = AggregatorTree(leaves=432, fan_in=8, window_s=0.0,
                              leaf_queue_len=10**6,
                              default_queue_len=10**6)
        delivered_points = 0
        delivered_msgs = 0

        def sink(env):
            nonlocal delivered_points, delivered_msgs
            delivered_msgs += 1
            delivered_points += len(env.payload)

        tree.subscribe("metrics.*", callback=sink)
        n_sweeps = 3
        for sweep in range(n_sweeps):
            now = 60.0 * sweep
            for node in range(self.N_SCALE):
                tree.publish(
                    "metrics.node.power_w",
                    SeriesBatch.sweep("node.power_w", now,
                                      [f"n{node}"], [100.0 + node]),
                    source=f"n{node}",
                )
            tree.pump(now=now)
        tree.flush()

        s = tree.stats()
        published = s.batches_in
        reduction = published / s.upstream_messages
        print(f"\naggregator tree at {self.N_SCALE} nodes x {n_sweeps} "
              f"sweeps: {published} published batches -> "
              f"{s.upstream_messages} upstream messages "
              f"({reduction:.0f}x reduction, {s.levels} levels)")
        assert published == self.N_SCALE * n_sweeps
        assert reduction >= 5.0                       # acceptance floor
        # zero data loss, zero duplication, point-for-point
        assert s.dropped_batches == 0
        assert delivered_points == s.points_in == published
        assert delivered_msgs == s.upstream_messages

    def test_reduction_scales_with_window(self):
        """A wider window coalesces more sweeps per upstream message."""
        def run(window_s):
            tree = AggregatorTree(leaves=16, fan_in=4, window_s=window_s,
                                  leaf_queue_len=10**5)
            tree.subscribe("metrics.*", callback=lambda env: None)
            for sweep in range(10):
                now = 60.0 * sweep
                for node in range(512):
                    tree.publish(
                        "metrics.node.power_w",
                        SeriesBatch.sweep("node.power_w", now,
                                          [f"n{node}"], [1.0]),
                        source=f"n{node}",
                    )
                tree.pump(now=now)
            tree.flush()
            return tree.stats().coalesce_ratio

        per_sweep = run(0.0)
        per_5min = run(300.0)
        print(f"\ncoalesce ratio: window 0s = {per_sweep:.0f}x, "
              f"window 300s = {per_5min:.0f}x")
        assert per_5min > per_sweep


class TestLdmsTree:
    def sampler(self, i):
        def fn(now):
            return [SeriesBatch.sweep("m", now, [f"n{i}"], [1.0])]
        return Sampler(f"n{i}", fn)

    @pytest.mark.parametrize("fan_in", [4, 16, 256])
    def test_bench_tree_pull(self, benchmark, fan_in):
        root = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=fan_in)
        out = benchmark(root.pull, 60.0)
        assert len(out) == N_NODES

    def test_deeper_trees_move_more_wire_bytes(self):
        flat = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=256)
        deep = build_tree([self.sampler(i) for i in range(N_NODES)],
                          fan_in=4)
        flat.pull(0.0)
        deep.pull(0.0)

        def total_wire(agg):
            own = agg.wire_bytes
            for c in agg.children:
                if hasattr(c, "wire_bytes"):
                    own += total_wire(c)
            return own

        wf, wd = total_wire(flat), total_wire(deep)
        print(f"\nwire bytes per sweep: fan-in 256 (1 level) = {wf}, "
              f"fan-in 4 ({deep.depth()} levels) = {wd} "
              f"({wd / wf:.1f}x re-forwarding cost)")
        assert wd > wf


class TestSyslogUnderStorm:
    def test_bench_forwarding(self, benchmark):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=1e9, burst=10**6)
        events = make_events(1000)
        benchmark.pedantic(
            lambda: fwd.forward(0.0, events), rounds=5, iterations=1
        )
        assert sink

    def test_loss_vs_storm_intensity(self):
        print("\nsyslog loss under event storms (capacity 1000 ev/s):")
        rows = []
        for storm in (500, 1000, 5000, 20000):
            sink = []
            fwd = SyslogForwarder(sink.append, rate_per_s=1000.0,
                                  burst=200, retry_buffer=500)
            # one second of storm, then 2 quiet seconds to drain retries
            fwd.forward(0.0, make_events(storm))
            fwd.forward(1.0, [])
            fwd.forward(2.0, [])
            s = fwd.stats()
            rows.append((storm, s.loss_rate))
            print(f"  {storm:6d} events/s -> delivered {s.forwarded}, "
                  f"lost {s.dropped} ({100 * s.loss_rate:.0f}%)")
        # loss must be monotone in storm intensity, zero when under rate
        assert rows[0][1] == 0.0
        assert all(b[1] >= a[1] for a, b in zip(rows, rows[1:]))
        assert rows[-1][1] > 0.5

    def test_bus_drops_oldest_not_newest_under_storm(self):
        bus = MessageBus()
        sub = bus.subscribe("t", maxlen=100)
        for i in range(1000):
            bus.publish("t", i)
        got = [e.payload for e in sub.drain()]
        assert got == list(range(900, 1000))
        assert bus.stats().dropped == 900

    def test_bus_stats_expose_depth_and_errors_under_storm(self):
        """The self-monitoring surfaces: per-subscription backlog and
        isolated callback failures are visible in BusStats."""
        bus = MessageBus()
        bus.subscribe("t", maxlen=50, name="slow-consumer")
        fails = bus.subscribe(
            "t", name="flaky-consumer",
            callback=lambda env: (_ for _ in ()).throw(RuntimeError("die")),
        )
        keeper = bus.subscribe("t", maxlen=10_000, name="keeper")
        for i in range(500):
            bus.publish("t", i)
        s = bus.stats()
        assert s.errors == 500
        assert fails.errors == 500
        assert s.queue_depths["slow-consumer"] == 50
        assert s.queue_depths["keeper"] == 500
        assert bus.queue_depths() == s.queue_depths
        # the flaky consumer never blocked the keeper's feed
        assert [e.payload for e in keeper.drain()] == list(range(500))

    def test_depth_tracks_producer_consumer_imbalance(self):
        bus = MessageBus()
        sub = bus.subscribe("metrics.*", maxlen=100_000, name="analysis")
        batch = SeriesBatch.sweep("m", 0.0, [f"n{i}" for i in range(8)],
                                  np.ones(8))
        depths = []
        for round_ in range(5):
            for _ in range(100):
                bus.publish("metrics.m", batch)
            depths.append(bus.queue_depths()["analysis"])
            sub.drain(max_items=50)            # consumer at half speed
        assert depths == [100, 150, 200, 250, 300]
