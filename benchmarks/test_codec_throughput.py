"""Throughput of the vectorized storage data plane vs its references.

Three surfaces, each with a pytest-benchmark fixture (so runs can be
saved with ``--benchmark-json`` and diffed by ``scripts/bench_compare.py``)
plus hard speedup floors measured against the retained scalar codec:

* seal (compress) MB/s and decompress MB/s on noisy-power chunks,
* the combined seal+decompress path, asserted >= 10x the ``_slow``
  scalar reference,
* a summary-served warm ``downsample`` vs the cold decompress path at
  chunk_size=512 over 100 sealed chunks, asserted >= 5x.
"""

import time

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.storage.chunkcache import ChunkCache
from repro.storage.tsdb import (
    TimeSeriesStore,
    _compress_chunk_slow,
    _decompress_chunk_slow,
    _xor_token_lens,
    compress_chunk,
    decompress_chunk,
)

N = 4096                       # production-sized chunk for codec floors
TIMES = np.arange(N) * 60.0
VALUES = np.random.default_rng(5).normal(250.0, 15.0, N)
BLOB = compress_chunk(TIMES, VALUES)
HINT = _xor_token_lens(VALUES)
RAW_MB = N * 16 / 1e6          # float64 time + float64 value per sample


def best_of(fn, repeats=7):
    """Minimum wall time over several runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestCodecThroughput:
    def test_bench_seal(self, benchmark):
        blob = benchmark(compress_chunk, TIMES, VALUES)
        assert blob == BLOB
        benchmark.extra_info["MB_per_s"] = RAW_MB / benchmark.stats.stats.mean

    def test_bench_decompress(self, benchmark):
        t, v = benchmark(decompress_chunk, BLOB, HINT)
        assert np.array_equal(v, VALUES)
        benchmark.extra_info["MB_per_s"] = RAW_MB / benchmark.stats.stats.mean

    def test_vectorized_beats_slow_by_10x(self):
        slow = (best_of(lambda: _compress_chunk_slow(TIMES, VALUES))
                + best_of(lambda: _decompress_chunk_slow(BLOB)))
        fast = (best_of(lambda: compress_chunk(TIMES, VALUES))
                + best_of(lambda: decompress_chunk(BLOB, HINT)))
        speedup = slow / fast
        print(f"\nseal+decompress {N}-sample chunk: scalar {slow * 1e3:.2f} ms"
              f" -> vectorized {fast * 1e3:.3f} ms ({speedup:.1f}x)")
        assert speedup >= 10.0


def make_store(chunk_size=512, chunks=100):
    """A store with ``chunks`` sealed chunks of noisy telemetry and the
    read cache disabled, so prune=False really decompresses every time."""
    store = TimeSeriesStore(chunk_size=chunk_size,
                            cache=ChunkCache(max_bytes=0))
    n = chunk_size * chunks
    t = np.arange(n) * 60.0
    v = np.random.default_rng(9).normal(250.0, 15.0, n)
    comps = np.full(n, "node0")
    store.append(SeriesBatch("node.power_w", comps, t, v))
    store.flush()
    return store, float(n * 60.0)


class TestDownsamplePruning:
    # bucket step = 2 chunk spans, so almost every chunk is answered
    # from its seal-time summary on the warm path
    STEP = 512 * 60.0 * 2

    def test_bench_downsample_cold(self, benchmark):
        store, span = make_store()
        out = benchmark(store.downsample, "node.power_w", "node0",
                        0.0, span, self.STEP, "mean", False)
        assert len(out)

    def test_bench_downsample_warm(self, benchmark):
        store, span = make_store()
        out = benchmark(store.downsample, "node.power_w", "node0",
                        0.0, span, self.STEP, "mean", True)
        assert len(out)

    def test_warm_beats_cold_by_5x(self):
        store, span = make_store()
        cold = best_of(lambda: store.downsample(
            "node.power_w", "node0", 0.0, span, self.STEP, "mean",
            prune=False))
        warm = best_of(lambda: store.downsample(
            "node.power_w", "node0", 0.0, span, self.STEP, "mean",
            prune=True))
        speedup = cold / warm
        print(f"\ndownsample 100x512-sample chunks: cold {cold * 1e3:.2f} ms"
              f" -> warm {warm * 1e3:.3f} ms ({speedup:.1f}x)")
        assert speedup >= 5.0
        # and both paths agree on the answer
        a = store.downsample("node.power_w", "node0", 0.0, span, self.STEP,
                             "mean", prune=False)
        b = store.downsample("node.power_w", "node0", 0.0, span, self.STEP,
                             "mean", prune=True)
        assert np.array_equal(a.times, b.times)
        assert np.allclose(a.values, b.values, rtol=1e-9)


class TestColumnarIngest:
    def test_bench_ingest_sweep(self, benchmark):
        """One 4096-component sweep per iteration (columnar append)."""
        t = [0.0]

        def ingest(store):
            t[0] += 60.0
            store.append(SeriesBatch.sweep(
                "node.power_w", t[0],
                [f"n{i}" for i in range(4096)],
                np.random.default_rng(1).normal(250.0, 15.0, 4096),
            ))

        store = TimeSeriesStore(chunk_size=512)
        benchmark(ingest, store)
        assert store.stats().samples > 0


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
