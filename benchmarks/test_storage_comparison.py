"""Storage-technology comparison (Section IV-C's qualitative claims, measured).

The paper: SQL stores are convenient but "lack scalability with respect
to ingest"; InfluxDB was chosen "for its superior data compression and
query performance for high-volume time series data"; Splunk-style
indexing costs storage proportional to the data indexed.  We ingest the
same synthetic telemetry into our three store classes and measure
ingest rate, range-query latency, and footprint.
"""

import numpy as np
import pytest

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.storage.logstore import LogStore
from repro.storage.sqlstore import SqlStore
from repro.storage.tsdb import TimeSeriesStore

N_COMPONENTS = 64
N_SWEEPS = 200


def make_batches(seed=0):
    rng = np.random.default_rng(seed)
    comps = [f"c0-0c0s{i // 4}n{i % 4}" for i in range(N_COMPONENTS)]
    return [
        SeriesBatch.sweep("node.power_w", t * 60.0, comps,
                          rng.normal(250, 20, N_COMPONENTS))
        for t in range(N_SWEEPS)
    ]


@pytest.fixture(scope="module")
def batches():
    return make_batches()


class TestIngest:
    def test_bench_tsdb_ingest(self, batches, benchmark):
        def ingest():
            store = TimeSeriesStore()
            for b in batches:
                store.append(b)
            return store

        store = benchmark.pedantic(ingest, rounds=3, iterations=1)
        assert store.stats().samples == N_COMPONENTS * N_SWEEPS

    def test_bench_sql_ingest(self, batches, benchmark):
        def ingest():
            store = SqlStore()
            for b in batches:
                store.append(b)
            store.commit()
            return store

        store = benchmark.pedantic(ingest, rounds=3, iterations=1)
        assert store.sample_count() == N_COMPONENTS * N_SWEEPS
        store.close()


class TestQuery:
    @pytest.fixture(scope="class")
    def loaded(self, batches):
        tsdb = TimeSeriesStore()
        sql = SqlStore()
        for b in batches:
            tsdb.append(b)
            sql.append(b)
        sql.commit()
        return tsdb, sql

    def test_bench_tsdb_range_query(self, loaded, benchmark):
        tsdb, _ = loaded
        comp = "c0-0c0s3n1"
        out = benchmark(tsdb.query, "node.power_w", comp, 3000.0, 9000.0)
        assert len(out) == 100

    def test_bench_sql_range_query(self, loaded, benchmark):
        _, sql = loaded
        comp = "c0-0c0s3n1"
        out = benchmark(sql.query, "node.power_w", comp, 3000.0, 9000.0)
        assert len(out) == 100

    def test_results_agree_across_backends(self, loaded):
        tsdb, sql = loaded
        a = tsdb.query("node.power_w", "c0-0c0s0n0", 0.0, 1e9)
        b = sql.query("node.power_w", "c0-0c0s0n0", 0.0, 1e9)
        assert np.allclose(a.values, b.values)
        assert np.allclose(a.times, b.times)


class TestFootprint:
    def test_report_footprints(self, batches):
        tsdb = TimeSeriesStore()
        sql = SqlStore()
        logs = LogStore()
        rng = np.random.default_rng(1)
        for b in batches:
            tsdb.append(b)
            sql.append(b)
        sql.commit()
        tsdb.flush()
        # equivalent event volume into the log store
        for i in range(N_SWEEPS * 4):
            logs.append(Event(
                i * 15.0, f"n{i % N_COMPONENTS}", EventKind.CONSOLE,
                Severity.INFO,
                f"service heartbeat seq {i} latency {rng.integers(1, 99)}ms",
            ))
        n = N_COMPONENTS * N_SWEEPS
        t = tsdb.stats()
        print(f"\nfootprint for {n} samples "
              f"(+{len(logs)} log events):")
        print(f"  tsdb      : {t.compressed_bytes:9d} B "
              f"({t.compressed_bytes / n:5.1f} B/sample, "
              f"{t.compression_ratio:.1f}x vs raw)")
        sql_b = sql.footprint_bytes()
        print(f"  sqlstore  : {sql_b:9d} B ({sql_b / n:5.1f} B/sample)")
        raw_b = logs.raw_bytes()
        idx_b = logs.index_bytes()
        print(f"  logstore  : raw {raw_b} B + index {idx_b} B "
              f"({100 * idx_b / raw_b:.0f}% indexing overhead — the "
              f"Splunk pricing axis)")
        assert t.compressed_bytes < sql_b, \
            "the TSDB must beat the relational store on footprint"
        sql.close()
