"""Figure 3 bench: KAUST power monitoring under load imbalance.

Paper (KAUST, Figure 3): during a load-imbalance episode, "power usage
variation of up to 3 times was observed between different cabinets and
full system power draw was almost 1.9 times lower during this period".
We inject the imbalance and regenerate both panels; the spread and the
draw drop must land near the paper's factors.
"""

import pytest

from repro.analysis.powersig import detect_load_imbalance
from repro.core.metric import SeriesBatch
from repro.viz.figures import figure3_power
from scenarios import power_imbalance_scenario


@pytest.fixture(scope="module")
def imbalanced():
    return power_imbalance_scenario()


class TestFigure3:
    def test_shape_cabinet_spread_and_system_drop(self, imbalanced):
        p, job = imbalanced
        fig = figure3_power(p.tsdb, 0.0, p.machine.now)
        print()
        print(fig.render(height=8))
        spread = fig.summary["max_cabinet_spread"]
        drop = fig.summary["system_max_over_min"]
        print(f"\npaper: cabinet variation up to ~3x; system draw ~1.9x "
              f"lower during the episode")
        print(f"measured: cabinet spread {spread:.2f}x, "
              f"system max/min {drop:.2f}x")
        assert 2.0 <= spread <= 4.0
        assert 1.5 <= drop <= 2.5

    def test_spread_occurs_during_fault_window(self, imbalanced):
        p, _ = imbalanced
        fig = figure3_power(p.tsdb, 0.0, p.machine.now)
        truth = p.machine.faults.ground_truth()[0]
        t = fig.summary["spread_time_s"]
        assert truth["start"] <= t <= truth["end"] + 120.0

    def test_detector_fires_on_worst_sweep(self, imbalanced):
        p, _ = imbalanced
        fig = figure3_power(p.tsdb, 0.0, p.machine.now)
        t = fig.summary["spread_time_s"]
        cabs = p.tsdb.components("cabinet.power_w")
        vals = []
        for c in cabs:
            b = p.tsdb.query("cabinet.power_w", c, t - 30, t + 90)
            if len(b):
                vals.append((c, float(b.values[0])))
        sweep = SeriesBatch.sweep("cabinet.power_w", t,
                                  [c for c, _ in vals],
                                  [v for _, v in vals])
        finding = detect_load_imbalance(sweep, spread_threshold=2.0)
        assert finding.detected
        assert finding.hot_cabinets  # names the overloaded cabinet

    def test_bench_figure_regeneration(self, imbalanced, benchmark):
        p, _ = imbalanced
        fig = benchmark(figure3_power, p.tsdb, 0.0, p.machine.now)
        assert fig.summary["max_cabinet_spread"] > 1.5
