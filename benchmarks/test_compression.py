"""TSDB compression characterization on realistic telemetry shapes.

ALCF "chose InfluxDB for its superior data compression ... for
high-volume time series data".  We measure the Gorilla-style codec's
ratio and speed on the telemetry shapes the stack actually produces:
constant gauges, slowly drifting temperatures, noisy power, step
functions, and cumulative counters.
"""

import numpy as np
import pytest

from repro.storage.tsdb import compress_chunk, decompress_chunk

N = 512
TIMES = np.arange(N) * 60.0    # synchronized one-minute sweeps

SHAPES = {
    "constant gauge": np.full(N, 230.0),
    "drifting temp": 35.0 + np.cumsum(
        np.random.default_rng(0).normal(0, 0.02, N)),
    "noisy power": np.random.default_rng(1).normal(250.0, 15.0, N),
    "step function": np.where(np.arange(N) < N // 2, 95.0, 330.0),
    "cumulative counter": np.cumsum(
        np.random.default_rng(2).integers(1000, 1100, N)).astype(float),
}


class TestCompressionRatios:
    def test_report_ratios_per_shape(self):
        print(f"\ncodec ratios on {N}-sample one-minute chunks "
              f"(raw = 16 B/sample):")
        ratios = {}
        for name, values in SHAPES.items():
            blob = compress_chunk(TIMES, values)
            ratio = (N * 16) / len(blob)
            ratios[name] = ratio
            print(f"  {name:20} {len(blob):6d} B  "
                  f"({len(blob) / N:5.2f} B/sample, {ratio:5.1f}x)")
        # regular timestamps + repeated values compress hardest
        assert ratios["constant gauge"] > 6.0
        # even the worst realistic shape must not expand
        assert min(ratios.values()) >= 1.0

    @pytest.mark.parametrize("name", list(SHAPES))
    def test_lossless_round_trip(self, name):
        values = SHAPES[name]
        t, v = decompress_chunk(compress_chunk(TIMES, values))
        assert np.array_equal(v, values)
        assert np.allclose(t, TIMES, atol=5e-4)


class TestCodecSpeed:
    def test_bench_compress(self, benchmark):
        values = SHAPES["noisy power"]
        blob = benchmark(compress_chunk, TIMES, values)
        assert blob

    def test_bench_decompress(self, benchmark):
        blob = compress_chunk(TIMES, SHAPES["noisy power"])
        t, v = benchmark(decompress_chunk, blob)
        assert len(v) == N
