"""Make scenarios.py importable when running from the repo root."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
