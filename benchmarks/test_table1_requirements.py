"""Table I bench: the needs/requirements matrix, machine-checked.

Table I of the paper enumerates needs and requirements for
comprehensive production monitoring across five areas (Architecture,
Data Sources, Data Storage and Formats, Analysis and Visualization,
Response).  This bench regenerates the table with a third column — the
module and symbol in this library that implements each requirement —
and *verifies* every claimed symbol actually exists, so the table can
never silently rot.
"""

import importlib


# (area, requirement (abridged from Table I), "module:symbol", notes)
REQUIREMENTS: list[tuple[str, str, str, str]] = [
    ("Architecture",
     "Well-documented interfaces for accessing raw data at maximum "
     "fidelity with the lowest possible overhead",
     "repro.sources.erd:EventRouter",
     "raw binary stream + DelugeTap decoder; overhead metered"),
    ("Architecture",
     "Owners determine data access/transport/storage tradeoffs; "
     "options for scaling up",
     "repro.transport.ldms:build_tree",
     "configurable fan-in aggregation tree; bus and syslog alternatives"),
    ("Architecture",
     "Where access and transport of data might incur impact, that "
     "impact should be well-documented",
     "repro.sources.base:CollectionScheduler.overhead_report",
     "per-collector wall-clock and sample accounting"),
    ("Architecture",
     "Multiple flexible data paths; direct data to multiple consumers",
     "repro.transport.bus:MessageBus",
     "wildcard topics, N consumers per topic, per-consumer queues"),
    ("Architecture",
     "All monitoring capabilities production, documented, supported",
     "repro.core.registry:MetricRegistry",
     "undocumented metrics are rejected at collector registration"),
    ("Architecture",
     "Tools to transport and store the data in native format",
     "repro.transport.message:encode_json",
     "lossless envelope codecs; events keep structured fields"),
    ("Architecture",
     "Extensibility and modularity are fundamental",
     "repro.pipeline:MonitoringPipeline",
     "every layer injectable; custom collectors/rules/actions register"),
    ("Data Sources",
     "Text (logs), numeric (counters), test results, application "
     "performance information",
     "repro.sources.base:Collector",
     "log, counter, probe, benchmark, health, queue, power collectors"),
    ("Data Sources",
     "Expose all possible data sources for all possible subsystems",
     "repro.pipeline:default_collectors",
     "node, GPU, network, filesystem, scheduler, facility sources"),
    ("Data Sources",
     "The meaning of all raw data should be provided; computations for "
     "derived quantities defined",
     "repro.core.registry:default_registry",
     "unit + meaning + derivation per metric; document() renders it"),
    ("Data Storage",
     "Easy access to historical data in conjunction with current data; "
     "hierarchical storage with locate and reload",
     "repro.storage.hierarchy:TieredStore",
     "archive_before/reload with a catalog; queries reload cold spans"),
    ("Data Storage",
     "Analysis results should be able to be stored with raw data",
     "repro.storage.tsdb:TimeSeriesStore",
     "derived series (aggregates, condensations) ingest like raw ones"),
    ("Analysis/Visualization",
     "Analysis at a variety of locations (sources, streaming, store, "
     "exposure points)",
     "repro.pipeline:MonitoringPipeline.add_analysis",
     "hooks at cadence over live stores; SEC on the event stream"),
    ("Analysis/Visualization",
     "Store supports arbitrary extractions and computations",
     "repro.storage.tsdb:TimeSeriesStore.aggregate_across",
     "range, downsample, cross-component aggregation, per-job extract"),
    ("Analysis/Visualization",
     "Concurrent conditions on disparate components identifiable",
     "repro.analysis.correlate:cluster_events",
     "time-window incident clustering + link-failure cascades"),
    ("Analysis/Visualization",
     "High-dimensional and long-term data handled in analyses and "
     "visualizations",
     "repro.viz.series:condense",
     "node->job/cabinet/group condensation; drill-down on demand"),
    ("Analysis/Visualization",
     "Visualization interfaces facilitate easy development of live "
     "data dashboards",
     "repro.viz.dashboard:Dashboard",
     "tiles from live stores; percent-in-state rollups; sparklines"),
    ("Response",
     "Reporting and alerting easily configurable; triggered from "
     "arbitrary locations in the data and analysis pathways",
     "repro.response.sec:SecEngine",
     "single/pair/threshold rules over machine + collector + analysis "
     "events"),
    ("Response",
     "Data and analysis results exposed to applications and system "
     "software",
     "repro.response.actions:ActionEngine",
     "drain/return/kill/downclock actions feed back into the scheduler"),
    ("Response",
     "Envisioned: power-aware scheduling and power redirection based "
     "on current and anticipated needs",
     "repro.response.governor:PowerGovernor",
     "budget admission control + downclock-to-fit (measured in "
     "test_power_budget.py)"),
    ("Response",
     "Envisioned: scheduling and allocation based on application and "
     "resource state",
     "repro.response.governor:CongestionAwarePlacement",
     "placement reads live stall counters and avoids hot regions"),
    ("Response",
     "Envisioned: notification to users of assessments of system "
     "conditions, with per-user access control",
     "repro.viz.userreport:job_report",
     "scoped run reports answer 'why was my run slow?'; "
     "AccessPolicy refuses other users' jobs"),
]


def verify_rows() -> list[tuple[str, str, str, str]]:
    """Resolve every claimed symbol; raises if any requirement rotted."""
    for area, req, target, note in REQUIREMENTS:
        mod_name, _, symbol = target.partition(":")
        mod = importlib.import_module(mod_name)
        obj = mod
        for part in symbol.split("."):
            obj = getattr(obj, part)
    return REQUIREMENTS


class TestTable1:
    def test_every_requirement_maps_to_real_symbol(self):
        rows = verify_rows()
        assert len(rows) == len(REQUIREMENTS)

    def test_all_five_areas_covered(self):
        areas = {r[0] for r in REQUIREMENTS}
        assert areas == {
            "Architecture", "Data Sources", "Data Storage",
            "Analysis/Visualization", "Response",
        }

    def test_render_table(self):
        print("\nTable I — needs & requirements, mapped to implementation")
        print("=" * 76)
        current = None
        for area, req, target, note in verify_rows():
            if area != current:
                print(f"\n[{area}]")
                current = area
            print(f"  - {req}")
            print(f"      -> {target}")
            print(f"         {note}")

    def test_bench_verification(self, benchmark):
        rows = benchmark(verify_rows)
        assert len(rows) >= 21
