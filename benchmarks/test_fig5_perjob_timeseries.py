"""Figure 5 bench: per-job multi-metric condensed timeseries + CSV.

Paper (NCSA, Figure 5): "Timeseries visualizations of multiple metrics
can provide insights into underperforming applications. Summing and
averaging over nodes enables condensation of high dimensional data ...
NCSA enables user access to plots, with the ability to download the
image and also the raw data."  We regenerate the multi-panel per-job
figure, check the condensation arithmetic against the raw per-node
series, and round-trip the CSV download.
"""

import numpy as np
import pytest

from repro.viz.figures import figure5_perjob
from repro.viz.render import from_csv
from scenarios import io_spike_scenario


@pytest.fixture(scope="module")
def spiked():
    return io_spike_scenario()


class TestFigure5:
    def test_condensation_matches_raw_pernode_data(self, spiked):
        p, job = spiked
        fig = figure5_perjob(p.tsdb, p.jobs, job.id,
                             metrics=(("node.power_w", "sum"),))
        condensed = fig.panels[0][1]["node.power_w"]
        # recompute by hand from per-node series at one bucket
        per_node = p.jobs.extract_job_series(p.tsdb, job.id,
                                             "node.power_w")
        t_ref = condensed.times[len(condensed) // 2]
        manual = 0.0
        for series in per_node.values():
            w = series.in_window(t_ref, t_ref + 60.0)
            if len(w):
                manual += float(w.values.mean())
        assert condensed.values[len(condensed) // 2] == pytest.approx(
            manual, rel=1e-6
        )

    def test_panels_cover_multiple_metrics(self, spiked):
        p, job = spiked
        fig = figure5_perjob(p.tsdb, p.jobs, job.id)
        print()
        print(fig.render(height=5))
        assert len(fig.panels) == 4
        assert f"job {job.id}" in fig.title

    def test_csv_download_matches_plot_data(self, spiked):
        p, job = spiked
        fig = figure5_perjob(p.tsdb, p.jobs, job.id,
                             metrics=(("node.cpu_util", "mean"),))
        csv = fig.csv()
        back = from_csv(csv)
        (key,) = [k for k in back if "cpu_util" in k]
        original = fig.panels[0][1]["node.cpu_util"]
        finite = np.isfinite(original.values)
        assert np.allclose(back[key].values[finite],
                           original.values[finite])

    def test_bench_perjob_extraction(self, spiked, benchmark):
        p, job = spiked
        fig = benchmark(figure5_perjob, p.tsdb, p.jobs, job.id)
        assert fig.panels
