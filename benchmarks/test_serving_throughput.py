"""Concurrent dashboard reads: the serving plane must actually pay.

The tentpole claim of the serving plane is that dashboard-shaped reads
— cross-component aggregates plus per-node drill-downs on a one-minute
grid, fanned out by concurrent readers — run at least ``MIN_SPEEDUP``x
faster through the query front end than against the store's raw
decompress path, *while ingest keeps invalidating the result cache*.
The warm arm's wins come from two layers: the result cache absorbs
repeats between ingest ticks, and rollup-pyramid rows absorb the
re-asks after each invalidation (no chunk decompression either way).
The raw arm answers the identical query set with ``prune=False``
downsampling and raw cross-component aggregation.

Methodology mirrors the other overhead benches: GC held quiescent,
paired trials with arm order alternated so host drift cancels, median
ratio per attempt, best of ``ATTEMPTS`` attempts (timing noise is
one-sided — interruptions only slow arms down).  Both arms fan their
wave through the same 4-worker :class:`ThreadedExecutor`; a small
append lands between warm waves so every wave re-validates against a
moved epoch — the honest steady state, not an infinitely-cacheable one.
Answers are asserted equal before any timing is trusted.

A pytest-benchmark fixture records the warm wave for trend tracking
(baseline ``BENCH_serving.json``, diffed by
``scripts/bench_compare.py``).
"""

import gc
import time

import numpy as np

from repro.core.metric import SeriesBatch
from repro.runtime.executor import ThreadedExecutor
from repro.serve.frontend import QueryFrontend
from repro.storage.rollup import DEFAULT_LEVELS
from repro.storage.tsdb import TimeSeriesStore

METRIC = "node.power_w"
COMPS = [f"node{i}" for i in range(16)]
N_SAMPLES = 20_000          # 1 Hz per node: ~5.5 h of history
WAVES = 4                   # dashboard refreshes per timed trial
TRIALS = 3
ATTEMPTS = 3
WORKERS = 4
MIN_SPEEDUP = 10.0


def build_store() -> tuple[TimeSeriesStore, float]:
    rng = np.random.default_rng(42)
    store = TimeSeriesStore(pyramid_levels=DEFAULT_LEVELS)
    t = np.arange(N_SAMPLES, dtype=np.float64)
    for c in COMPS:
        store.append(SeriesBatch.for_component(
            METRIC, c, t, rng.normal(300.0, 30.0, N_SAMPLES)))
    return store, float(t[-1]) + 1.0


def wave_fns(answer_agg, answer_ds, t1):
    """One dashboard refresh: 2 fleet aggregates + 4 drill-downs."""
    fns = [
        lambda: answer_agg(60.0, "mean", t1),
        lambda: answer_agg(600.0, "max", t1),
    ]
    for c in COMPS[:4]:
        fns.append(lambda c=c: answer_ds(c, 60.0, "mean", t1))
    return fns


def run_arm(store, fe, ex, t1, ingest_at) -> float:
    """Wall time of WAVES dashboard refreshes through one arm.

    ``fe`` is the front end for the warm arm or None for the raw arm;
    a one-sample append lands before each wave (at distinct times
    ``ingest_at``) so the warm arm's result cache is invalidated and
    must re-answer from pyramid rows — both arms see identical stores.
    """
    if fe is not None:
        def agg(step, a, t1):
            return fe.aggregate_across(METRIC, None, 0.0, t1, step, a)

        def ds(c, step, a, t1):
            return fe.downsample(METRIC, c, 0.0, t1, step, a)
    else:
        def agg(step, a, t1):
            return store.aggregate_across(METRIC, None, 0.0, t1, step, a)

        def ds(c, step, a, t1):
            return store.downsample(METRIC, c, 0.0, t1, step, a,
                                    prune=False)

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for w in range(WAVES):
            store.append(SeriesBatch.for_component(
                METRIC, COMPS[0], [ingest_at + w], [300.0]))
            for out in ex.map_ordered(wave_fns(agg, ds, t1)):
                assert len(out)
        return time.perf_counter() - t0
    finally:
        gc.enable()


def measure_speedup() -> tuple[float, float, float]:
    """Median of paired raw/warm ratios, arm order alternated.

    Returns (speedup, best_warm, best_raw)."""
    store, t1 = build_store()
    fe = QueryFrontend(store)
    ex = ThreadedExecutor(workers=WORKERS)
    try:
        # warm both arms once (chunk seal, pool spin-up, first answers)
        run_arm(store, fe, ex, t1, ingest_at=float(N_SAMPLES) + 1e6)
        run_arm(store, None, ex, t1, ingest_at=float(N_SAMPLES) + 2e6)
        ratios = []
        warm_best = raw_best = float("inf")
        for i in range(TRIALS):
            base = float(N_SAMPLES) + 3e6 + 100.0 * i
            if i % 2 == 0:
                w = run_arm(store, fe, ex, t1, base)
                r = run_arm(store, None, ex, t1, base + 50.0)
            else:
                r = run_arm(store, None, ex, t1, base + 50.0)
                w = run_arm(store, fe, ex, t1, base)
            ratios.append(r / w)
            warm_best = min(warm_best, w)
            raw_best = min(raw_best, r)
        ratios.sort()
        return ratios[len(ratios) // 2], warm_best, raw_best
    finally:
        ex.shutdown()


class TestServingThroughput:
    def test_served_answers_match_raw_before_timing(self):
        store, t1 = build_store()
        fe = QueryFrontend(store)
        for step, agg in ((60.0, "mean"), (600.0, "max")):
            got = fe.aggregate_across(METRIC, None, 0.0, t1, step, agg)
            want = store.aggregate_across(METRIC, None, 0.0, t1, step,
                                          agg)
            assert np.array_equal(got.times, want.times)
            if agg == "mean":
                assert np.allclose(got.values, want.values, rtol=1e-9)
            else:
                assert np.array_equal(got.values, want.values)
        for c in COMPS[:4]:
            got = fe.downsample(METRIC, c, 0.0, t1, 60.0, "mean")
            want = store.downsample(METRIC, c, 0.0, t1, 60.0, "mean",
                                    prune=False)
            assert np.array_equal(got.times, want.times)
            assert np.allclose(got.values, want.values, rtol=1e-9)
        assert fe.stats().pyramid_answers > 0

    def test_warm_dashboard_waves_beat_the_floor(self):
        best = 0.0
        for attempt in range(ATTEMPTS):
            speedup, warm_s, raw_s = measure_speedup()
            best = max(best, speedup)
            print(f"\ndashboard waves ({WAVES} refreshes x "
                  f"{2 + 4} queries, {len(COMPS)} nodes x "
                  f"{N_SAMPLES} samples, ingest between waves): "
                  f"raw {raw_s:.3f}s, served {warm_s:.4f}s "
                  f"({speedup:.1f}x median paired speedup, "
                  f"attempt {attempt + 1})")
            if best >= MIN_SPEEDUP:
                break
        assert best >= MIN_SPEEDUP, (
            f"serving-plane speedup {best:.1f}x under the "
            f"{MIN_SPEEDUP:.0f}x floor in {ATTEMPTS} attempts"
        )

    def test_bench_warm_dashboard_wave(self, benchmark):
        store, t1 = build_store()
        fe = QueryFrontend(store)
        ex = ThreadedExecutor(workers=WORKERS)
        tick = iter(range(10**9))

        def one_wave():
            # move the epoch first: every wave re-answers, none free-ride
            store.append(SeriesBatch.for_component(
                METRIC, COMPS[0],
                [float(N_SAMPLES + next(tick))], [300.0]))
            def agg(step, a, t1):
                return fe.aggregate_across(METRIC, None, 0.0, t1,
                                           step, a)
            def ds(c, step, a, t1):
                return fe.downsample(METRIC, c, 0.0, t1, step, a)
            ex.map_ordered(wave_fns(agg, ds, t1))

        try:
            one_wave()              # warm pool + pyramids
            benchmark(one_wave)
        finally:
            ex.shutdown()
        benchmark.extra_info["queries_per_s"] = (
            6 / benchmark.stats.stats.mean
        )
