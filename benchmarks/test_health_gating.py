"""Health-gating ablation: the CSCS invariant, quantified.

Section II-5's policy goal: "a problem should only be encountered by at
most one batch job."  We run the same GPU-failure workload with and
without the pre/post-job gate and measure per-broken-node job exposure.
"""

import numpy as np

from repro.cluster import Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.sources.health import HealthGate, NodeHealthSuite


def run_scenario(gated: bool, seed: int = 5):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(),
                      gpu_nodes="all", seed=seed,
                      gpu_failure_kills_job=True)
    gate = HealthGate(machine, NodeHealthSuite())
    if gated:
        machine.scheduler.health_gate = gate.gate

    rng = np.random.default_rng(seed)
    fail_times = sorted(rng.uniform(300.0, 5400.0, 6))
    fail_nodes = [str(n) for n in rng.choice(topo.nodes, size=6,
                                             replace=False)]
    gpu_failed_at: dict[str, float] = {}

    jobs: list[Job] = []
    next_submit = 0.0
    fail_i = 0
    finished: set[int] = set()
    while machine.now < 9000.0:
        if machine.now >= next_submit:
            j = Job(APP_LIBRARY["qmc"], 8, machine.now, seed=len(jobs))
            j.work_seconds = 600.0
            machine.scheduler.submit(j, machine.now)
            jobs.append(j)
            next_submit = machine.now + 120.0
        while fail_i < len(fail_times) and machine.now >= fail_times[fail_i]:
            node = fail_nodes[fail_i]
            machine.gpus.health[machine.gpus.index[node]] = 0.0
            gpu_failed_at[node] = machine.now
            fail_i += 1
        machine.step(10.0)
        for j in machine.scheduler.completed:
            if j.id not in finished:
                finished.add(j.id)
                if gated:
                    gate.post_job(j)

    exposure = {}
    for node, tf in gpu_failed_at.items():
        hit = 0
        for j in jobs:
            if j.start_time is None or node not in j.nodes:
                continue
            end = j.end_time if j.end_time is not None else machine.now
            if end > tf:
                hit += 1
        exposure[node] = hit
    return exposure


class TestGatingAblation:
    def test_gate_enforces_at_most_one_job(self):
        ungated = run_scenario(False)
        gated = run_scenario(True)
        worst_ungated = max(ungated.values())
        worst_gated = max(gated.values())
        total_ungated = sum(ungated.values())
        total_gated = sum(gated.values())
        print(f"\njobs exposed to broken GPUs "
              f"(6 failures over 2.5 h of 8-node jobs):")
        print(f"  no gate  : {total_ungated} exposures, worst node hit "
              f"{worst_ungated} jobs")
        print(f"  with gate: {total_gated} exposures, worst node hit "
              f"{worst_gated} jobs")
        assert worst_gated <= 1, "paper invariant: at most one job"
        assert worst_ungated > 1, \
            "without the gate, broken nodes keep taking jobs"
        assert total_gated < total_ungated / 3

    def test_bench_gate_cost_per_node(self, benchmark):
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, gpu_nodes="all", seed=1)
        gate = HealthGate(machine, NodeHealthSuite())
        node = topo.nodes[0]
        ok = benchmark(gate.gate, node)
        assert ok
