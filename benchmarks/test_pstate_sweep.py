"""SNL power-sweep ablation: p-state vs energy and performance.

Section II-9: SNL "investigates power profiling, sweeping configuration
parameters such as p-state, power cap, node type, solver algorithm
choice, and memory placement, with the goal of improving application
and system energy efficiency while maintaining performance targets."

We sweep the p-state cap on a compute-bound job and measure runtime and
energy-to-solution.  The classic tradeoff must emerge: full frequency
minimizes runtime; a reduced frequency minimizes energy (static/idle
power amortizes over a longer run, dynamic power falls with f^2); the
"maintain performance targets" policy then picks the lowest-energy
p-state inside a runtime budget.
"""

import numpy as np
import pytest

from repro.cluster import Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobState

PSTATES = (0.6, 0.7, 0.8, 0.9, 1.0)


def run_at_pstate(pstate: float, seed: int = 9):
    """Run one compute-bound job to completion at a frequency cap;
    returns (runtime_s, energy_J)."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    machine.nodes.pstate_frac[:] = pstate
    job = Job(APP_LIBRARY["qmc"], 16, 0.0, seed=seed)
    job.work_seconds = 1800.0
    machine.scheduler.submit(job, 0.0)
    machine.step(10.0)
    idxs = machine.nodes.idxs(job.nodes)
    e0 = float(machine.nodes.energy_j[idxs].sum())
    while job.state is JobState.RUNNING and machine.now < 6 * 3600:
        machine.step(10.0)
    assert job.state is JobState.COMPLETED
    e1 = float(machine.nodes.energy_j[idxs].sum())
    return job.runtime, e1 - e0


@pytest.fixture(scope="module")
def sweep():
    return {p: run_at_pstate(p) for p in PSTATES}


class TestPstateSweep:
    def test_tradeoff_shape(self, sweep):
        print("\np-state sweep on a compute-bound 16-node job:")
        for p in PSTATES:
            rt, e = sweep[p]
            print(f"  f={p:.1f}: runtime {rt:7.0f}s  "
                  f"energy {e / 1e6:7.2f} MJ  "
                  f"EDP {rt * e / 1e9:7.2f} GJ*s")
        runtimes = [sweep[p][0] for p in PSTATES]
        energies = [sweep[p][1] for p in PSTATES]
        # performance: runtime strictly improves with frequency
        assert all(b < a for a, b in zip(runtimes, runtimes[1:]))
        # energy: full frequency is NOT the energy-optimal point
        assert min(energies) < energies[-1]

    def test_policy_lowest_energy_within_budget(self, sweep):
        """The 'maintain performance targets' selection."""
        budget_s = sweep[1.0][0] * 1.25   # allow 25% slowdown
        feasible = {p: (rt, e) for p, (rt, e) in sweep.items()
                    if rt <= budget_s}
        assert feasible
        best = min(feasible, key=lambda p: feasible[p][1])
        rt_full, e_full = sweep[1.0]
        rt_best, e_best = sweep[best]
        saving = 1.0 - e_best / e_full
        print(f"\nwithin a 25% runtime budget: run at f={best:.1f} -> "
              f"{100 * saving:.1f}% energy saving for "
              f"{100 * (rt_best / rt_full - 1):.0f}% more runtime")
        assert e_best <= e_full

    def test_bench_single_run(self, benchmark):
        rt, e = benchmark.pedantic(
            lambda: run_at_pstate(0.8), rounds=1, iterations=1
        )
        assert rt > 0 and e > 0
