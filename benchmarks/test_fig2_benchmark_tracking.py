"""Figure 2 bench: benchmark performance tracking over time.

Paper (NERSC, Figure 2): custom benchmarks run regularly; "occurrences
and onset of performance problems are apparent in visualizations
tracking performance over time".  We track the suite across a period
with an injected slow OST and a later MDS degradation; the regenerated
figure must show the I/O benchmark dropping during the OST window and
the metadata benchmark during the MDS window, while compute benchmarks
stay flat.
"""

import pytest

from repro.analysis.variability import attribute_window, detect_degradations
from repro.viz.figures import figure2_benchmarks
from scenarios import benchmark_tracking_scenario


@pytest.fixture(scope="module")
def tracked():
    return benchmark_tracking_scenario()


class TestFigure2:
    def test_shape_io_benchmark_degrades_in_fault_window(self, tracked):
        p = tracked
        fig = figure2_benchmarks(p.tsdb, 0.0, p.machine.now)
        print()
        print(fig.render(height=6))
        # the IOR benchmark collapses during the slow-OST window
        assert fig.summary["ior_read_worst_frac"] < 0.5
        # metadata benchmark collapses during MDS degradation
        assert fig.summary["mdtest_worst_frac"] < 0.5
        # compute stays healthy throughout
        assert fig.summary["dgemm_worst_frac"] > 0.9

    def test_degradation_windows_match_ground_truth(self, tracked):
        p = tracked
        truth = p.machine.faults.ground_truth()
        ior = p.tsdb.query("bench.fom", "ior_read")
        windows = detect_degradations(ior, drop_fraction=0.2)
        assert windows, "the slow-OST window must be detected"
        win = windows[0]
        slow_ost = next(g for g in truth if g["name"] == "slow_ost")
        print(f"\nslow_ost truth window: [{slow_ost['start']:.0f}, "
              f"{slow_ost['end']:.0f}); detected onset {win.t_onset:.0f}")
        assert slow_ost["start"] <= win.t_onset <= slow_ost["start"] + 1800
        # attribution pulls the right fault into the investigation
        report = attribute_window(win, [], truth, slack_s=600.0)
        assert any(f["name"] == "slow_ost" for f in report["faults"])

    def test_bench_figure_regeneration(self, tracked, benchmark):
        p = tracked
        fig = benchmark(figure2_benchmarks, p.tsdb, 0.0, p.machine.now)
        assert fig.panels
