"""Throughput of the columnar analysis plane vs its scalar references.

The streaming detectors consume whole sweeps through numpy kernels over
struct-of-arrays state (PR 4); the original per-sample implementations
are retained as ``Scalar*`` classes / ``_slow`` functions.  This module
measures both at the machine scale the paper's Table 1 implies —
27,648-component sweeps (Titan: 18,688 nodes + GPUs in the monitored
set) — with pytest-benchmark fixtures for trend tracking plus a hard
>= 10x combined speedup floor for the vectorized plane.
"""

import time

import numpy as np
import pytest

from repro.analysis.anomaly import _sweep_outliers_slow, sweep_outliers
from repro.analysis.streaming import (
    ScalarStreamingRateWatch,
    ScalarStreamingStats,
    StreamingRateWatch,
    StreamingStats,
)
from repro.core.metric import SeriesBatch

N = 27_648                      # Titan-scale component sweep
COMPS = np.array([f"c{i:05d}" for i in range(N)], dtype=object)
RNG = np.random.default_rng(7)

# power sweep with a handful of genuine z>=6 outliers planted
POWER = RNG.normal(250.0, 15.0, N)
POWER[RNG.choice(N, 5, replace=False)] += 400.0
POWER_SWEEP = SeriesBatch.sweep("node.power_w", 0.0, COMPS, POWER)

# error-counter baseline: creep of 0.05 counts / 60 s sweep stays far
# under the 0.01/s watch rate, so steady state emits no detections
# (detection *construction* cost is measured by the planted outliers
# above, not smeared across every ratewatch sample)
CTR_BASE = np.floor(RNG.uniform(0.0, 4.0, N))


def best_of(fn, repeats=5):
    """Minimum wall time over several runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def warm_stats(cls):
    s = cls()
    s.observe(POWER_SWEEP)         # rows registered; steady state after
    return s


def ratewatch_runner(cls):
    """A () -> None that feeds the watch one *fresh* monotonic sweep per
    call — rate watches are time-stateful, so replaying one sweep would
    measure the dt<=0 path instead of steady-state ingest."""
    watch = cls("gpu.ecc_dbe", 0.01)
    clock = {"t": 0.0, "k": 0}

    def observe_next():
        clock["t"] += 60.0
        clock["k"] += 1
        watch.observe(SeriesBatch("gpu.ecc_dbe", COMPS,
                                  np.full(N, clock["t"]),
                                  CTR_BASE + 0.05 * clock["k"]))
        watch.drain()

    observe_next()                 # seed: first sweep has no prev sample
    return observe_next


class TestAnalysisThroughput:
    def test_bench_streaming_stats(self, benchmark):
        stats = warm_stats(StreamingStats)
        benchmark(stats.observe, POWER_SWEEP)
        benchmark.extra_info["samples_per_s"] = N / benchmark.stats.stats.mean

    def test_bench_sweep_outliers(self, benchmark):
        out = benchmark(sweep_outliers, POWER_SWEEP, 6.0)
        assert len(out) == 5       # exactly the planted outliers
        benchmark.extra_info["samples_per_s"] = N / benchmark.stats.stats.mean

    def test_bench_ratewatch(self, benchmark):
        benchmark(ratewatch_runner(StreamingRateWatch))
        benchmark.extra_info["samples_per_s"] = N / benchmark.stats.stats.mean

    def test_columnar_beats_scalar_by_10x(self):
        pairs = [
            ("stats",
             best_of(lambda: warm_stats(ScalarStreamingStats)
                     .observe(POWER_SWEEP)),
             best_of(lambda: warm_stats(StreamingStats)
                     .observe(POWER_SWEEP))),
            ("sweep_outliers",
             best_of(lambda: _sweep_outliers_slow(POWER_SWEEP, 6.0)),
             best_of(lambda: sweep_outliers(POWER_SWEEP, 6.0))),
            ("ratewatch",
             best_of(ratewatch_runner(ScalarStreamingRateWatch)),
             best_of(ratewatch_runner(StreamingRateWatch))),
        ]
        print()
        for name, slow, fast in pairs:
            print(f"{name:<16} {N:,}-comp sweep: scalar "
                  f"{N / slow / 1e6:6.2f} Msamples/s -> columnar "
                  f"{N / fast / 1e6:6.2f} Msamples/s ({slow / fast:.1f}x)")
        slow_total = sum(s for _, s, _ in pairs)
        fast_total = sum(f for _, _, f in pairs)
        speedup = slow_total / fast_total
        print(f"combined detector speedup: {speedup:.1f}x")
        assert speedup >= 10.0

    def test_columnar_and_scalar_agree_at_scale(self):
        """The floor is meaningless if the fast path computes something
        else; spot-check full-scale agreement here (the property suite
        covers the adversarial shapes)."""
        fast, slow = StreamingStats(), ScalarStreamingStats()
        fast.observe(POWER_SWEEP)
        slow.observe(POWER_SWEEP)
        got = fast.get("node.power_w", "c00000")
        ref = slow.get("node.power_w", "c00000")
        assert got.n == ref.n and got.mean == ref.mean
        assert sweep_outliers(POWER_SWEEP, 6.0) == \
            _sweep_outliers_slow(POWER_SWEEP, 6.0)


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
