"""Machine-scale characterization: the stack at paper-scale node counts.

The sites run 1,688 to 27,648 nodes (Sisu to Blue Waters; Trinity is
~20,000).  This bench builds a Trinity-class dragonfly, steps it with a
live workload, runs full synchronized collection sweeps, and measures
the per-operation costs that determine whether one-minute whole-system
collection (the NCSA discipline) is feasible — which on this stack it
comfortably is.
"""

import pytest

from repro.cluster import Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.pipeline import MonitoringPipeline
from repro.sources.counters import NodeCounterCollector
from repro.sources.sedc import SedcCollector
from repro.storage.tsdb import TimeSeriesStore


@pytest.fixture(scope="module")
def trinity():
    """A Trinity-class machine: 52 groups -> 19,968 nodes."""
    topo = build_dragonfly(groups=52, chassis_per_group=6,
                           blades_per_chassis=16, nodes_per_router=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=1)
    for i in range(4):
        j = Job(APP_LIBRARY["qmc"], 4096, 0.0, seed=i)
        machine.scheduler.submit(j, 0.0)
    machine.step(10.0)
    return machine


class TestTrinityScale:
    def test_inventory(self, trinity):
        n = len(trinity.topo.nodes)
        print(f"\nTrinity-class machine: {n} nodes, "
              f"{len(trinity.topo.links)} links, "
              f"{len(trinity.topo.cabinets)} cabinets")
        assert n >= 19_000
        assert len(trinity.scheduler.running) == 4

    def test_bench_machine_step(self, trinity, benchmark):
        benchmark.pedantic(trinity.step, args=(10.0,), rounds=5,
                           iterations=1)

    def test_bench_full_node_sweep(self, trinity, benchmark):
        collector = SedcCollector(interval_s=60.0)
        out = benchmark(collector.collect, trinity, trinity.now)
        assert out.n_samples == 3 * len(trinity.topo.nodes)

    def test_bench_sweep_ingest(self, trinity, benchmark):
        collector = NodeCounterCollector(interval_s=60.0)
        out = collector.collect(trinity, trinity.now)

        def ingest():
            store = TimeSeriesStore()
            for b in out.batches:
                store.append(b)
            return store

        store = benchmark.pedantic(ingest, rounds=3, iterations=1)
        assert store.stats().samples == out.n_samples

    def test_one_minute_collection_is_feasible(self, trinity):
        """The NCSA discipline: a whole-system sweep + ingest must cost
        far less than the one-minute interval it runs on."""
        import time

        pipeline = MonitoringPipeline(
            trinity,
            collectors=[NodeCounterCollector(60.0), SedcCollector(60.0)],
        )
        t0 = time.perf_counter()
        pipeline.scheduler.poll(trinity, trinity.now + 60.0)
        wall = time.perf_counter() - t0
        samples = pipeline.tsdb.stats().samples
        print(f"\nfull-system sweep of {len(trinity.topo.nodes)} nodes: "
              f"{samples} samples collected+ingested in {wall * 1e3:.0f} ms "
              f"({100 * wall / 60.0:.2f}% of the collection interval)")
        assert samples >= 7 * len(trinity.topo.nodes)
        assert wall < 30.0   # vastly under the 60 s budget
