"""Congestion-analysis scaling: cost vs system size, on both fabrics.

SNL collects counters "synchronously across a whole system" at 1-60 s
intervals — so the analysis must keep up with the sweep rate at full
machine scale.  We measure congestion-region detection cost as the
dragonfly/torus grows, and verify detection quality is size-independent.
"""

import numpy as np
import pytest

from repro.analysis.congestion import congestion_regions
from repro.cluster.network import Flow, NetworkState
from repro.cluster.topology import build_dragonfly, build_torus


def hot_network(topo, seed=0):
    """Drive one corner of the fabric into congestion."""
    net = NetworkState(topo, seed=seed)
    dst = topo.nodes[-1]
    n_senders = min(48, len(topo.nodes) - 1)
    flows = [Flow(topo.nodes[i], dst, 30e9) for i in range(n_senders)]
    net.step(1.0, flows)
    return net


SIZES = {
    "dragonfly-s": lambda: build_dragonfly(2, 3, 4),     # 96 nodes
    "dragonfly-m": lambda: build_dragonfly(4, 6, 8),     # 768 nodes
    "dragonfly-l": lambda: build_dragonfly(8, 6, 16),    # 3072 nodes
    "torus-m": lambda: build_torus(6, 6, 6),             # 432 nodes
    "torus-l": lambda: build_torus(10, 10, 10),          # 2000 nodes
}


class TestScaling:
    def test_detection_quality_scale_independent(self):
        print("\ncongestion regions across machine sizes:")
        for name, builder in SIZES.items():
            topo = builder()
            net = hot_network(topo)
            regions = congestion_regions(topo, net.link_stall_ratio,
                                         min_level=2)
            assert regions, f"{name}: the hotspot must be found"
            dst_router = topo.node_router[topo.nodes[-1]]
            assert any(dst_router in r.routers for r in regions), \
                f"{name}: region must contain the victim router"
            top = regions[0]
            print(f"  {name:12} {len(topo.nodes):5d} nodes "
                  f"{len(topo.links):6d} links -> {len(regions)} regions, "
                  f"top: {top.size} links, max stall {top.max_stall:.2f}")

    @pytest.mark.parametrize("name", ["dragonfly-m", "dragonfly-l",
                                      "torus-l"])
    def test_bench_region_detection(self, benchmark, name):
        topo = SIZES[name]()
        net = hot_network(topo)
        regions = benchmark(congestion_regions, topo,
                            net.link_stall_ratio, 2)
        assert regions

    def test_adaptive_routing_shrinks_victim_impact(self):
        """UGAL-style adaptive routing (the Aries mechanism SNL's
        counters observe) routes bystander traffic around the hotspot."""
        results = {}
        for adaptive in (False, True):
            topo = build_dragonfly(4, 6, 8)
            net = NetworkState(topo, seed=2, adaptive=adaptive)
            hot = [Flow(topo.nodes[i], topo.nodes[-1], 30e9)
                   for i in range(48)]
            # a bystander whose minimal path crosses the hot region
            bystander = Flow(topo.nodes[60], topo.nodes[-2], 5e9)
            for _ in range(4):
                net.step(1.0, hot + [bystander])
            si = net.node_index[bystander.src]
            results[adaptive] = (
                float(net.inject_achieved_Bps[si]),
                net.detours,
            )
        bw_min, _ = results[False]
        bw_ada, detours = results[True]
        print(f"\nbystander through the hotspot: minimal routing "
              f"{bw_min / 1e9:.2f} GB/s, adaptive {bw_ada / 1e9:.2f} GB/s "
              f"({detours} detours)")
        assert detours > 0
        assert bw_ada >= bw_min

    def test_bench_traffic_step_large_dragonfly(self, benchmark):
        topo = SIZES["dragonfly-l"]()
        net = NetworkState(topo, seed=1)
        rng = np.random.default_rng(2)
        nodes = topo.nodes
        flows = [
            Flow(nodes[i], nodes[j], 1e8)
            for i, j in rng.integers(0, len(nodes), size=(2000, 2))
            if i != j
        ]
        net.step(1.0, flows)     # warm the route cache
        benchmark(net.step, 1.0, flows)
        assert net.cum_traffic_flits.sum() > 0
