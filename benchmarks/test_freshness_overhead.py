"""Freshness-trace propagation overhead: measured, documented, bounded.

The end-to-end freshness plane stamps every tracked batch at each
transport hop and folds the hop vector into histograms at ingest.  That
work rides the hot step loop, so its cost must be documented the same
way the self-monitoring plane's is (Table I: monitoring with documented
impact).  This bench runs the identical workload twice — once with
trace propagation + the freshness tracker, once with ``freshness=False``
— and asserts the step-loop regression stays under 5%.  Both arms run
with the tracer disabled and selfmon off, so the *only* difference
between them is the freshness plane.

A pytest-benchmark fixture records the traced step loop for trend
tracking (baseline ``BENCH_freshness.json``, diffed by
``scripts/bench_compare.py``).
"""

import gc
import time

from repro.cluster import JobGenerator, Machine, PackedPlacement, build_dragonfly
from repro.obs.trace import Tracer
from repro.pipeline import MonitoringPipeline, default_collectors

N_STEPS = 240
TRIALS = 15
ATTEMPTS = 3
MAX_REGRESSION = 0.05


def build_machine(seed=3):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=240,
                                   max_nodes=16, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )


def build_pipeline(traced: bool):
    """Identical stacks except for the freshness plane: tracer spans and
    selfmon are off in both arms so the diff isolates trace propagation."""
    machine = build_machine()
    return MonitoringPipeline(
        machine,
        collectors=default_collectors(machine),
        tracer=Tracer(enabled=False),
        selfmon_interval_s=None,
        freshness=traced,
    )


def one_step_loop(traced: bool) -> float:
    """CPU time of one N_STEPS step loop on a fresh pipeline.

    ``process_time`` (not wall time) so scheduler preemptions on a busy
    host don't land in one arm's window, and GC is held quiescent so a
    collection triggered by the allocation-heavier arm doesn't bill its
    pause to that arm.
    """
    pipeline = build_pipeline(traced)
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        return time.process_time() - t0
    finally:
        gc.enable()


def measure_regression() -> tuple[float, float, float]:
    """Median of paired per-trial ratios, trials interleaved.

    Arm-serialized timing confounds the diff with whatever the host was
    doing during one arm's window, so each trial times both arms
    back-to-back and contributes one traced/untraced ratio; the median
    ratio shrugs off the occasional trial where the scheduler parked us.
    Returns (regression, best_baseline, best_traced).
    """
    one_step_loop(traced=False)   # warmup pair, discarded
    one_step_loop(traced=True)
    ratios = []
    baseline = traced = float("inf")
    for i in range(TRIALS):
        # alternate which arm runs first so within-pair drift cancels
        if i % 2 == 0:
            b = one_step_loop(traced=False)
            t = one_step_loop(traced=True)
        else:
            t = one_step_loop(traced=True)
            b = one_step_loop(traced=False)
        ratios.append(t / b)
        baseline = min(baseline, b)
        traced = min(traced, t)
    ratios.sort()
    return ratios[len(ratios) // 2] - 1.0, baseline, traced


class TestFreshnessOverhead:
    def test_trace_propagation_overhead_is_bounded(self):
        # timing noise on a shared host is one-sided (interruptions only
        # inflate), so one sub-budget measurement proves the code fits
        # the budget; a real regression stays elevated across attempts
        best = float("inf")
        for attempt in range(ATTEMPTS):
            regression, baseline, traced = measure_regression()
            best = min(best, regression)
            print(f"\nstep loop ({N_STEPS} steps): untraced "
                  f"{baseline:.4f}s, freshness-traced {traced:.4f}s "
                  f"({100 * regression:+.2f}% median paired overhead, "
                  f"attempt {attempt + 1})")
            if best < MAX_REGRESSION:
                break
        assert best < MAX_REGRESSION, (
            f"freshness-trace overhead {100 * best:.1f}% exceeds the "
            f"{100 * MAX_REGRESSION:.0f}% budget in {ATTEMPTS} attempts"
        )

    def test_traced_run_actually_traced(self):
        pipeline = build_pipeline(traced=True)
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        fr = pipeline.freshness
        assert fr is not None and fr.batches > 0
        # hop attribution telescopes to end-to-end with no epsilon
        assert fr.waterfall_exact()
        assert fr.hop_total() == fr.e2e_total()

    def test_untraced_run_left_no_trace(self):
        pipeline = build_pipeline(traced=False)
        for _ in range(20):
            pipeline.step(10.0)
        assert pipeline.freshness is None
        assert not pipeline.scheduler.trace_batches

    def test_bench_traced_step_loop(self, benchmark):
        pipeline = build_pipeline(traced=True)

        def run_steps():
            for _ in range(10):
                pipeline.step(10.0)

        benchmark(run_steps)
        benchmark.extra_info["steps_per_s"] = (
            10 / benchmark.stats.stats.mean
        )
