"""Detection-coverage matrix: every fault class vs the detection paths.

The paper's premise is that sites monitor "according to perceived or
previously-experienced sources of sub-optimal operation" — coverage is
ad hoc.  This bench makes coverage explicit for this stack: for every
fault class the substrate can inject, run the default pipeline and
record which detection path catches it — attributed strictly, i.e. an
alert only counts if it names the faulted component (or, for benchmark
alerts, the benchmark that exercises the faulted subsystem).  The
printed matrix is the artifact a site review would ask for; the
assertions guarantee no fault class is silently uncovered.
"""

import pytest

from repro.analysis.streaming import StreamingOutlierDetector
from repro.cluster import (
    BerDegradation,
    ConfigDrift,
    CorrosionExcursion,
    HungNode,
    LinkFailure,
    LoadImbalance,
    Machine,
    MdsDegradation,
    MemoryLeak,
    MountLoss,
    PackedPlacement,
    QueueBlockage,
    ServiceDeath,
    SlowOst,
    build_dragonfly,
)
from repro.cluster.workload import JobGenerator
from repro.pipeline import default_pipeline

# which benchmark exercises the subsystem each fault class degrades
BENCH_FOR = {
    "slow_ost": {"ior_read"},
    "mds_degradation": {"mdtest"},
    "memory_leak": {"stream"},
    "link_failure": {"allreduce"},
}


def run_with_fault(fault_factory, *, gpu=False, seed=7, hours=1.0):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=240,
                                   max_nodes=24, seed=seed),
        gpu_nodes="all" if gpu else None,
        seed=seed,
    )
    fault = fault_factory(machine)
    machine.faults.add(fault)
    pipeline = default_pipeline(machine, seed=seed,
                                with_health_gate=False)
    # streaming outliers on metrics where an outlier is unambiguous
    # (raw power sweeps are bimodal busy/idle on a working machine; the
    # KAUST power detector cross-references allocations instead)
    pipeline.add_streaming(
        StreamingOutlierDetector(
            ("probe.io_latency_s", "node.mem_free_gb"),
            z_threshold=6.0,
        )
    )
    pipeline.run(hours=hours, dt=10.0)
    return pipeline, fault


def _related(component: str, target: str) -> bool:
    if not component or not target:
        return False
    return component in target or target in component


def caught_by(pipeline, fault, fault_name: str) -> set[str]:
    """Detection paths that named the faulted component specifically."""
    paths = set()
    relevant_benches = BENCH_FOR.get(fault_name, set())
    for a in pipeline.alerts.alerts:
        if a.rule.startswith("stream."):
            if _related(a.component, fault.target):
                paths.add("streaming")
        elif a.rule == "bench_degraded":
            if a.component in relevant_benches:
                paths.add("benchmark")
        elif _related(a.component, fault.target):
            paths.add("sec-log")
    for ev in pipeline.logs.search(["health", "check", "failed"]):
        if _related(ev.component, fault.target):
            paths.add("health")
    return paths


FAULT_MATRIX = [
    ("hung_node",
     lambda m: HungNode(start=600.0, node=m.topo.nodes[3]),
     False, {"sec-log", "health"}),
    ("load_imbalance",
     lambda m: LoadImbalance(start=900.0, frac_busy=0.3, wait_util=0.05),
     False, {"analysis"}),
    ("link_failure",
     lambda m: LinkFailure(start=600.0, link_index=1),
     False, {"sec-log"}),    # recovery watch times out -> alert
    ("ber_degradation",
     lambda m: BerDegradation(start=0.0, link_index=5,
                              decades_per_day=40.0),
     False, {"analysis"}),
    ("slow_ost",
     lambda m: SlowOst(start=600.0, ost=0, bw_factor=0.08),
     False, {"benchmark", "streaming"}),
    ("mds_degradation",
     lambda m: MdsDegradation(start=600.0, rate_factor=0.08),
     False, {"benchmark"}),
    ("service_death",
     lambda m: ServiceDeath(start=600.0, node=m.topo.nodes[5],
                            service="slurmd"),
     False, {"sec-log", "health"}),
    ("mount_loss",
     lambda m: MountLoss(start=600.0, node=m.topo.nodes[6]),
     False, {"sec-log", "health"}),
    ("memory_leak",
     lambda m: MemoryLeak(start=300.0, node=m.topo.nodes[7],
                          gb_per_s=0.2),
     False, {"health", "streaming"}),
    ("config_drift",
     lambda m: ConfigDrift(start=300.0, node=m.topo.nodes[8]),
     False, {"health"}),
    ("queue_blockage",
     lambda m: QueueBlockage(start=600.0, duration=1800.0),
     False, {"sec-log"}),
    ("corrosion_excursion",
     lambda m: CorrosionExcursion(start=300.0, rate=1600.0),
     True, {"sec-log"}),     # the ASHRAE rule alerts on the env event
]


@pytest.mark.parametrize(
    "name,factory,gpu,expected", FAULT_MATRIX,
    ids=[row[0] for row in FAULT_MATRIX],
)
def test_fault_detected(name, factory, gpu, expected):
    pipeline, fault = run_with_fault(factory, gpu=gpu)
    paths = caught_by(pipeline, fault, name)

    # two fault classes are covered by store-side analyses rather than
    # live alerts; run those analyses as the operator would
    if name == "load_imbalance":
        from repro.analysis.powersig import detect_load_imbalance
        from repro.core.metric import SeriesBatch
        cabs = pipeline.tsdb.components("cabinet.power_w")
        detected = False
        sys_series = pipeline.tsdb.query("system.power_w", "system")
        for t in sys_series.times:
            vals = []
            for c in cabs:
                b = pipeline.tsdb.query("cabinet.power_w", c, t - 1,
                                        t + 1)
                if len(b):
                    vals.append((c, float(b.values[0])))
            if len(vals) < 2:
                continue
            sweep = SeriesBatch.sweep("cabinet.power_w", t,
                                      [c for c, _ in vals],
                                      [v for _, v in vals])
            if detect_load_imbalance(sweep, spread_threshold=1.5).detected:
                detected = True
                break
        assert detected, "powersig analysis must catch the imbalance"
        paths.add("analysis")
    if name == "ber_degradation":
        from repro.analysis.trend import fit_trend
        link = pipeline.machine.topo.links[5].name
        series = pipeline.tsdb.query("link.ber", link)
        fit = fit_trend(series, log_space=True)
        assert fit.slope > 0, "trend analysis must see the BER growth"
        paths.add("analysis")

    missing = expected - paths
    assert not missing, (
        f"{name}: expected detection via {sorted(expected)}, "
        f"got {sorted(paths)}"
    )
    assert paths, f"{name}: no detection path caught the fault at all"
    print(f"\n  {name:22} -> caught by {sorted(paths)}")


def test_bench_coverage_run(benchmark):
    """Timing reference: one full fault-scenario pipeline run."""
    pipeline, _ = benchmark.pedantic(
        lambda: run_with_fault(
            lambda m: HungNode(start=600.0, node=m.topo.nodes[3]),
            hours=0.5,
        ),
        rounds=1, iterations=1,
    )
    assert pipeline.alerts.alerts
