"""Figure 1 bench: topologically-aware scheduling vs scattered placement.

Paper (NCSA, Figure 1): mean HSN injection bandwidth as a percent of
maximum is "significantly lower over the pre-TAS time period than when
TAS was being utilized".  We run the same halo-exchange workload on a
Gemini-style 3D torus under both placements and regenerate the figure;
the post-TAS epoch must show clearly higher achieved injection.
"""

import pytest

from repro.viz.figures import figure1_tas
from scenarios import tas_scenario

SIM_S = 1800.0


@pytest.fixture(scope="module")
def epochs():
    pre = tas_scenario(tas=False, sim_s=SIM_S)
    post = tas_scenario(tas=True, sim_s=SIM_S)
    # merge both epochs into one store on a shared timeline: pre at
    # [0, SIM_S), post shifted to [SIM_S, 2*SIM_S) — the "two periods of
    # time" layout of the original figure
    tsdb = pre.tsdb
    for key in post.tsdb.keys("node.inject_bw_frac"):
        series = post.tsdb.query(key.metric, key.component)
        from repro.core.metric import SeriesBatch
        tsdb.append(
            SeriesBatch.for_component(
                key.metric, key.component,
                series.times + SIM_S, series.values,
            )
        )
    return tsdb, pre, post


class TestFigure1:
    def test_shape_post_tas_utilization_higher(self, epochs):
        tsdb, pre, post = epochs
        fig = figure1_tas(tsdb, (0.0, SIM_S), (SIM_S, 2 * SIM_S))
        print()
        print(fig.render(height=8))
        pre_pct = fig.summary["pre_mean_pct"]
        post_pct = fig.summary["post_mean_pct"]
        ratio = fig.summary["post_over_pre"]
        print(f"\npaper: post-TAS mean utilization 'significantly' higher")
        print(f"measured: pre={pre_pct:.2f}% post={post_pct:.2f}% "
              f"ratio={ratio:.2f}x")
        assert ratio > 1.2, "TAS must raise achieved injection bandwidth"

    def test_mechanism_tas_lowers_contention(self, epochs):
        # fewer links run hot under TAS even when the hottest link in
        # both cases sits at saturation (the stall model's ceiling)
        _, pre, post = epochs
        pre_stall = pre.machine.network.link_stall_ratio
        post_stall = post.machine.network.link_stall_ratio
        pre_hot = int((pre_stall > 0.25).sum())
        post_hot = int((post_stall > 0.25).sum())
        print(f"\nlinks above 25% stall: scattered={pre_hot} "
              f"TAS={post_hot}; mean stall scattered="
              f"{pre_stall.mean():.3f} TAS={post_stall.mean():.3f}")
        assert post_stall.mean() < pre_stall.mean()
        assert post_hot < pre_hot

    def test_bench_figure_regeneration(self, epochs, benchmark):
        tsdb, _, _ = epochs
        fig = benchmark(
            figure1_tas, tsdb, (0.0, SIM_S), (SIM_S, 2 * SIM_S)
        )
        assert fig.summary["post_over_pre"] > 1.2
