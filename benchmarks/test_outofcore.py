"""Out-of-core storage: the disk tier must be close to free.

Three gates, one per claim the tier makes:

* **ingest** — appending through the WAL + segment write path costs at
  most ``MAX_INGEST_OVERHEAD`` over the identical in-memory ingest.
  The WAL is fsync-batched (``sync_every_bytes``), so the steady-state
  cost is an encode + buffered write, not a disk round-trip per batch;
* **residency** — across a campaign that seals at least
  ``SPILL_FACTOR``x the hot budget, resident sealed bytes never exceed
  ``hot_bytes`` (checked after *every* append, not just at the end);
* **reads** — a full-range forced-decompress downsample over spilled
  chunks, decoding straight from the established mmap, costs at most
  ``MAX_READ_RATIO``x the all-in-memory store answering the same
  queries (chunk cache cleared before each pass on both arms, so both
  decode every chunk — the ratio isolates the mmap read itself).

Methodology mirrors the other overhead benches: GC held quiescent,
paired trials with arm order alternated so host drift cancels, and the
per-attempt ratio is min-over-trials of each arm (timing noise is
one-sided — interruptions only ever slow an arm down, so the minimum
is the best estimate of the true cost); best of ``ATTEMPTS`` attempts.
Answers are asserted equal before any timing is trusted.

A pytest-benchmark fixture records the warm mmap downsample pass for
trend tracking (baseline ``BENCH_outofcore.json``, diffed by
``scripts/bench_compare.py``).
"""

import gc
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.metric import SeriesBatch
from repro.storage.diskier import DiskTier
from repro.storage.tsdb import TimeSeriesStore

CHUNK = 512                       # the store's default chunk size
N_SERIES = 48
N_CHUNKS = 8                      # sealed chunks per series
HOT_BYTES = 128 << 10
SPILL_FACTOR = 10
TRIALS = 7
ATTEMPTS = 3
MAX_INGEST_OVERHEAD = 0.15        # disk ingest <= 1.15x in-memory
MAX_READ_RATIO = 2.0              # warm mmap downsample <= 2x memory
METRIC = "node.power_w"
COMPS = [f"node{i}" for i in range(N_SERIES)]


def workload():
    """Per-series (times, values) arrays; random values compress to
    roughly 9 B/sample, so the campaign seals well past the budget."""
    rng = np.random.default_rng(42)
    n = CHUNK * N_CHUNKS
    times = np.arange(n, dtype=np.float64) * 10.0
    return [(times, rng.normal(loc=100.0, scale=10.0, size=n))
            for _ in COMPS]


def ingest(store, data, check_budget=False):
    """Append the whole campaign chunk-sized; optionally assert the
    hot-tier bound after every single append."""
    for comp, (times, values) in zip(COMPS, data):
        for i in range(0, len(times), CHUNK):
            store.append(SeriesBatch.for_component(
                METRIC, comp, times[i:i + CHUNK], values[i:i + CHUNK]))
            if check_budget:
                d = store.disk_stats()
                assert d.hot_bytes <= HOT_BYTES, (
                    f"hot tier {d.hot_bytes} B over the "
                    f"{HOT_BYTES} B budget mid-campaign"
                )


def timed_ingest(data, root=None) -> tuple[float, "TimeSeriesStore"]:
    disk = (DiskTier(root, hot_bytes=HOT_BYTES) if root is not None
            else None)
    store = TimeSeriesStore(chunk_size=CHUNK, disk=disk)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        ingest(store, data)
        store.flush()
        return time.perf_counter() - t0, store
    finally:
        gc.enable()


def timed_downsample_pass(store) -> float:
    """One forced-decompress full-range downsample over every series,
    chunk cache cleared first so every chunk is decoded this pass."""
    store.cache.clear()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for comp in COMPS:
            store.downsample(METRIC, comp, 0.0, CHUNK * N_CHUNKS * 10.0,
                             600.0, prune=False)
        return time.perf_counter() - t0
    finally:
        gc.enable()


def best_ratio(arm_a, arm_b) -> float:
    """min-over-trials(a) / min-over-trials(b), arm order alternated;
    one warm-up pair runs first so allocator/page-cache state is
    steady.  Minima estimate the true cost under one-sided noise."""
    arm_a(), arm_b()
    a_times, b_times = [], []
    for i in range(TRIALS):
        if i % 2 == 0:
            a, b = arm_a(), arm_b()
        else:
            b, a = arm_b(), arm_a()
        a_times.append(a)
        b_times.append(b)
    return min(a_times) / min(b_times)


class TestOutOfCoreOverhead:
    def test_ingest_overhead_under_cap(self):
        data = workload()
        best = float("inf")
        for attempt in range(ATTEMPTS):
            with tempfile.TemporaryDirectory() as d:
                droot = Path(d)
                runs = [0]

                def disk_arm():
                    # fresh dir per run; close immediately (outside the
                    # timed window) so tiers never accumulate and the
                    # two arms see the same heap pressure
                    sub = droot / f"t{runs[0]}"
                    runs[0] += 1
                    dt, store = timed_ingest(data, root=sub)
                    store.disk.close()
                    return dt

                def mem_arm():
                    dt, _ = timed_ingest(data)
                    return dt

                ratio = best_ratio(disk_arm, mem_arm)
            best = min(best, ratio)
            print(f"\ningest {N_SERIES * CHUNK * N_CHUNKS} samples: "
                  f"disk/memory ratio {ratio:.3f} "
                  f"(attempt {attempt + 1})")
            if best <= 1.0 + MAX_INGEST_OVERHEAD:
                break
        assert best <= 1.0 + MAX_INGEST_OVERHEAD, (
            f"WAL+segment ingest {best:.2f}x in-memory, over the "
            f"{1.0 + MAX_INGEST_OVERHEAD:.2f}x cap in {ATTEMPTS} "
            f"attempts"
        )

    def test_hot_tier_holds_budget_at_10x_sealed(self):
        data = workload()
        with tempfile.TemporaryDirectory() as d:
            store = TimeSeriesStore(
                chunk_size=CHUNK, disk=DiskTier(Path(d),
                                                hot_bytes=HOT_BYTES))
            ingest(store, data, check_budget=True)
            store.flush()
            d_ = store.disk_stats()
            sealed_on_disk = d_.disk_bytes - d_.wal_bytes
            # the campaign was genuinely out-of-core: sealed segment
            # bytes dwarf the budget, and the bound held per-append
            assert sealed_on_disk >= SPILL_FACTOR * HOT_BYTES, (
                f"campaign sealed only {sealed_on_disk} B, under "
                f"{SPILL_FACTOR}x the {HOT_BYTES} B budget — resize "
                f"the workload"
            )
            assert d_.hot_bytes <= HOT_BYTES
            assert d_.spills > 0
            store.disk.close()

    def test_warm_mmap_read_within_ratio(self):
        data = workload()
        best = float("inf")
        for attempt in range(ATTEMPTS):
            with tempfile.TemporaryDirectory() as d:
                _, spilled = timed_ingest(data, root=Path(d))
                _, memory = timed_ingest(data)
                # answers must match bit-exactly before timing counts
                for comp in (COMPS[0], COMPS[-1]):
                    g = spilled.query(METRIC, comp)
                    w = memory.query(METRIC, comp)
                    assert np.array_equal(g.times, w.times)
                    assert np.array_equal(
                        g.values.view(np.uint64),
                        w.values.view(np.uint64))
                timed_downsample_pass(spilled)   # establish the maps
                ratio = best_ratio(
                    lambda: timed_downsample_pass(spilled),
                    lambda: timed_downsample_pass(memory),
                )
                spilled.disk.close()
            best = min(best, ratio)
            print(f"\nwarm mmap downsample: spilled/memory ratio "
                  f"{ratio:.3f} (attempt {attempt + 1})")
            if best <= MAX_READ_RATIO:
                break
        assert best <= MAX_READ_RATIO, (
            f"mmap-backed downsample {best:.2f}x the in-memory store, "
            f"over the {MAX_READ_RATIO:.1f}x cap in {ATTEMPTS} attempts"
        )

    def test_bench_warm_mmap_downsample(self, benchmark):
        data = workload()
        with tempfile.TemporaryDirectory() as d:
            _, spilled = timed_ingest(data, root=Path(d))
            timed_downsample_pass(spilled)       # establish the maps
            benchmark(timed_downsample_pass, spilled)
            samples = N_SERIES * CHUNK * N_CHUNKS
            benchmark.extra_info["samples_per_s"] = (
                samples / benchmark.stats.stats.mean
            )
            spilled.disk.close()
