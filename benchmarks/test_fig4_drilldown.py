"""Figure 4 bench: aggregate I/O -> drill-down -> job attribution.

Paper (NCSA, Figure 4): "high values of system aggregate I/O metrics
(top) drives further investigation into the nodes, and hence, the job
responsible for the I/O", with "drill down capabilities enable
investigation while limiting screen real-estate requirements".  We
regenerate the two-panel figure and require the workflow to attribute
the spike to the ground-truth job.
"""

import numpy as np
import pytest

from repro.viz.figures import figure4_drilldown
from scenarios import io_spike_scenario


@pytest.fixture(scope="module")
def spiked():
    return io_spike_scenario()


class TestFigure4:
    def test_shape_spike_visible_and_attributed(self, spiked):
        p, io_job = spiked
        fig, result = figure4_drilldown(p.tsdb, p.jobs, 0.0,
                                        p.machine.now)
        print()
        print(fig.render(height=7))
        print(f"\npeak {result.peak_value / 1e9:.2f} GB/s at "
              f"t={result.peak_time:.0f}s; "
              f"attributed to job {result.job_id} ({result.job_app})")
        # the aggregate peak must stand out over the background
        agg = p.tsdb.aggregate_across("fs.read_bps", None, 0.0,
                                      p.machine.now, step=60.0)
        background = float(np.median(agg.values))
        assert result.peak_value > 5 * max(background, 1e6)
        # attribution: the ground-truth job
        assert result.job_id == io_job.id
        assert result.job_app == io_job.app.name

    def test_drilldown_ranks_busy_osts_first(self, spiked):
        p, io_job = spiked
        _, result = figure4_drilldown(p.tsdb, p.jobs, 0.0, p.machine.now)
        top_comp, top_val = result.ranked_components[0]
        bottom = result.ranked_components[-1]
        assert top_val >= bottom[1]
        assert top_val > 0

    def test_csv_download_round_trips(self, spiked):
        from repro.viz.render import from_csv
        p, _ = spiked
        fig, _ = figure4_drilldown(p.tsdb, p.jobs, 0.0, p.machine.now)
        csv = fig.csv()
        assert len(csv.splitlines()) > 10
        back = from_csv(csv)
        assert back

    def test_bench_drilldown_workflow(self, spiked, benchmark):
        p, io_job = spiked
        fig, result = benchmark(
            figure4_drilldown, p.tsdb, p.jobs, 0.0, p.machine.now
        )
        assert result.job_id == io_job.id
