"""Self-monitoring overhead: measured, documented, bounded.

Table I demands monitoring with documented impact; the same discipline
must apply to the monitoring of the monitoring.  This bench runs the
identical workload twice — once with the full self-observability plane
(tracer spans + selfmon cadence) and once with it disabled — and
asserts the step-loop regression stays under 10%.
"""

import time

from repro.cluster import JobGenerator, Machine, PackedPlacement, build_dragonfly
from repro.obs.trace import Tracer
from repro.pipeline import MonitoringPipeline, default_collectors

N_STEPS = 120
TRIALS = 5
MAX_REGRESSION = 0.10


def build_machine(seed=3):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=240,
                                   max_nodes=16, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )


def build_pipeline(observed: bool):
    machine = build_machine()
    if observed:
        return MonitoringPipeline(
            machine, collectors=default_collectors(machine)
        )
    return MonitoringPipeline(
        machine,
        collectors=default_collectors(machine),
        tracer=Tracer(enabled=False),
        selfmon_interval_s=None,
    )


def time_step_loop(observed: bool) -> float:
    """Best-of-TRIALS wall time of an N_STEPS step loop."""
    best = float("inf")
    for _ in range(TRIALS):
        pipeline = build_pipeline(observed)
        t0 = time.perf_counter()
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        best = min(best, time.perf_counter() - t0)
    return best


class TestSelfMonOverhead:
    def test_tracing_overhead_is_bounded(self):
        baseline = time_step_loop(observed=False)
        observed = time_step_loop(observed=True)
        regression = observed / baseline - 1.0
        print(f"\nstep loop ({N_STEPS} steps): disabled {baseline:.4f}s, "
              f"self-monitored {observed:.4f}s "
              f"({100 * regression:+.2f}% overhead)")
        assert regression < MAX_REGRESSION, (
            f"self-monitoring overhead {100 * regression:.1f}% exceeds "
            f"the {100 * MAX_REGRESSION:.0f}% budget"
        )

    def test_observed_run_actually_observed_itself(self):
        pipeline = build_pipeline(observed=True)
        for _ in range(N_STEPS):
            pipeline.step(10.0)
        agg = pipeline.tracer.aggregate()
        assert agg["tick"]["count"] == N_STEPS
        metrics = {k.metric for k in pipeline.tsdb.keys()}
        assert "selfmon.pipeline.tick_ms" in metrics
        # the documented cost of observing: spans per tick stay tiny
        assert agg["tick"]["mean_ms"] < 1000.0

    def test_disabled_run_left_no_trace(self):
        pipeline = build_pipeline(observed=False)
        for _ in range(20):
            pipeline.step(10.0)
        assert pipeline.tracer.aggregate() == {}
        metrics = {k.metric for k in pipeline.tsdb.keys()}
        assert not any(m.startswith("selfmon.") for m in metrics)
