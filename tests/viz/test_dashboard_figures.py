"""Tests for the dashboard, drill-down, topology views, and figures."""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.storage.jobstore import JobIndex
from repro.storage.tsdb import TimeSeriesStore
from repro.viz.dashboard import Dashboard, drill_down, percent_in_state
from repro.viz.figures import (
    figure2_benchmarks,
    figure3_power,
    figure5_perjob,
)
from repro.viz.topoview import (
    by_link_class,
    cabinet_rollup,
    group_pair_matrix,
    render_group_matrix,
)
from repro.cluster.topology import build_dragonfly


class TestPercentInState:
    def test_basic(self):
        sweep = SeriesBatch.sweep("m", 0.0, ["a", "b", "c", "d"],
                                  [1.0, 1.0, 0.5, 1.0])
        assert percent_in_state(sweep, lambda v: v >= 1.0) == 75.0

    def test_empty_nan(self):
        assert np.isnan(
            percent_in_state(SeriesBatch.empty("m"), lambda v: True)
        )


def tsdb_with_story():
    """A store with a quiet baseline and one I/O spike owned by job 7."""
    tsdb = TimeSeriesStore()
    idx = JobIndex()
    idx.record_start(7, "climate", ["n0", "n1"], 500.0)
    idx.record_end(7, 900.0)
    idx.record_start(8, "qmc", ["n2"], 0.0)
    idx.record_end(8, 2000.0)
    for t in np.arange(0.0, 1200.0, 60.0):
        spike = 600.0 <= t < 780.0
        per_ost = [5e8 if spike else 1e7, 1e7, 1e7]
        tsdb.append(SeriesBatch.sweep(
            "ost.read_bps", t, ["ost0", "ost1", "ost2"], per_ost))
        tsdb.append(SeriesBatch.sweep(
            "fs.read_bps", t, ["scratch"], [sum(per_ost)]))
        tsdb.append(SeriesBatch.sweep(
            "node.power_w", t, ["n0", "n1", "n2"],
            [300.0 if 500 <= t < 900 else 95.0] * 2 + [250.0]))
    return tsdb, idx


class TestDrillDown:
    def test_figure4_flow_finds_job(self):
        tsdb, idx = tsdb_with_story()
        result = drill_down(
            tsdb, "fs.read_bps", "ost.read_bps", 0.0, 1200.0,
            index=idx,
            component_to_nodes=lambda ost: ["n0", "n1", "n2"],
        )
        assert 600.0 <= result.peak_time < 780.0
        assert result.ranked_components[0][0] == "ost0"
        assert result.job_id == 7
        assert result.job_app == "climate"

    def test_empty_store(self):
        result = drill_down(TimeSeriesStore(), "fs.read_bps",
                            "ost.read_bps", 0.0, 100.0)
        assert np.isnan(result.peak_value)
        assert result.job_id is None


class TestDashboard:
    def test_tiles_and_render(self):
        tsdb, _ = tsdb_with_story()
        tsdb.append(SeriesBatch.sweep("health.pass_frac", 1140.0,
                                      ["n0", "n1"], [1.0, 0.5]))
        tsdb.append(SeriesBatch.sweep("queue.depth", 1140.0,
                                      ["scheduler"], [3.0]))
        dash = Dashboard(tsdb)
        tiles = dash.tiles(now=1140.0)
        names = {t.name for t in tiles}
        assert "nodes fully healthy" in names
        assert "queue depth" in names
        text = dash.render(now=1140.0)
        assert "system status" in text
        assert "queue depth" in text


class TestTopoView:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_dragonfly(groups=3, chassis_per_group=3,
                               blades_per_chassis=4)

    def test_by_link_class(self, topo):
        vals = np.zeros(len(topo.links))
        # make every blue link hot
        for l in topo.links:
            if l.klass == "blue":
                vals[l.index] = 0.5
        agg = by_link_class(topo, vals)
        assert agg["blue"]["mean"] == 0.5
        assert agg["green"]["max"] == 0.0

    def test_group_pair_matrix_symmetry(self, topo):
        vals = np.random.default_rng(0).uniform(0, 1, len(topo.links))
        mat = group_pair_matrix(topo, vals)
        assert mat.shape == (3, 3)
        assert np.allclose(mat, mat.T)
        assert (np.diag(mat) > 0).all()   # intra-group links exist

    def test_cabinet_rollup(self, topo):
        node_vals = {n: float(i) for i, n in enumerate(topo.nodes)}
        roll = cabinet_rollup(topo, node_vals)
        assert set(roll) == set(topo.cabinets)

    def test_render_group_matrix(self):
        mat = np.array([[0.0, 1.0], [1.0, 0.5]])
        text = render_group_matrix(mat)
        assert "heatmap" in text
        assert "@" in text    # the max cell renders hottest


class TestFigures:
    def test_figure3_structure(self):
        tsdb = TimeSeriesStore()
        for t in np.arange(0, 600, 60.0):
            imb = 200 <= t < 400
            cabs = [60e3, 20e3 if imb else 58e3]
            tsdb.append(SeriesBatch.sweep("cabinet.power_w", t,
                                          ["c0-0", "c1-0"], cabs))
            tsdb.append(SeriesBatch.sweep("system.power_w", t,
                                          ["system"], [sum(cabs)]))
        fig = figure3_power(tsdb, 0.0, 600.0)
        assert fig.summary["max_cabinet_spread"] == pytest.approx(3.0)
        assert 200 <= fig.summary["spread_time_s"] < 400
        text = fig.render()
        assert "per cabinet" in text
        csv = fig.csv()
        assert "cabinet.power_w" in csv

    def test_figure2_reports_worst_fraction(self):
        tsdb = TimeSeriesStore()
        for i, t in enumerate(np.arange(0, 6000, 600.0)):
            fom = 100.0 if i < 5 else 50.0
            tsdb.append(SeriesBatch.sweep("bench.fom", t, ["dgemm"],
                                          [fom]))
        fig = figure2_benchmarks(tsdb, 0.0, 6000.0,
                                 benchmarks=("dgemm",))
        assert fig.summary["dgemm_worst_frac"] == pytest.approx(0.5)

    def test_figure5_condenses_over_nodes(self):
        tsdb, idx = tsdb_with_story()
        fig = figure5_perjob(tsdb, idx, 7,
                             metrics=(("node.power_w", "sum"),))
        (panel_name, series) = fig.panels[0]
        batch = series["node.power_w"]
        # two nodes at 300 W during tenancy -> 600 W summed
        assert np.nanmax(batch.values) == pytest.approx(600.0)
        assert "job 7" in fig.title
