"""Unit tests for figure builders on small synthetic stores.

The benches exercise these against full simulations; these tests pin
the arithmetic on hand-built stores where the right answer is obvious.
"""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.storage.jobstore import JobIndex
from repro.storage.tsdb import TimeSeriesStore
from repro.viz.figures import figure1_tas, figure4_drilldown


class TestFigure1Unit:
    def store(self):
        tsdb = TimeSeriesStore()
        # pre epoch [0, 600): nodes achieve 40%; post [600, 1200): 80%
        for t in np.arange(0, 1200, 60.0):
            frac = 0.4 if t < 600 else 0.8
            tsdb.append(SeriesBatch.sweep(
                "node.inject_bw_frac", t, ["n0", "n1"], [frac, frac]))
        return tsdb

    def test_epoch_means_and_ratio(self):
        fig = figure1_tas(self.store(), (0.0, 600.0), (600.0, 1200.0))
        assert fig.summary["pre_mean_pct"] == pytest.approx(40.0)
        assert fig.summary["post_mean_pct"] == pytest.approx(80.0)
        assert fig.summary["post_over_pre"] == pytest.approx(2.0)

    def test_panels_cover_both_epochs(self):
        fig = figure1_tas(self.store(), (0.0, 600.0), (600.0, 1200.0))
        assert [p[0] for p in fig.panels] == ["pre-TAS epoch",
                                              "post-TAS epoch"]
        text = fig.render()
        assert "pre-TAS" in text and "post-TAS" in text

    def test_empty_pre_epoch_inf_ratio(self):
        tsdb = TimeSeriesStore()
        tsdb.append(SeriesBatch.sweep("node.inject_bw_frac", 700.0,
                                      ["n0"], [0.5]))
        fig = figure1_tas(tsdb, (0.0, 600.0), (600.0, 1200.0))
        assert fig.summary["post_over_pre"] == float("inf")


class TestFigure4Unit:
    def test_attribution_prefers_biggest_io_job(self):
        tsdb = TimeSeriesStore()
        idx = JobIndex()
        idx.record_start(1, "small_io", ["n0"], 0.0)
        idx.record_start(2, "big_io", ["n1"], 0.0)
        for t in np.arange(0, 600, 60.0):
            spike = 240 <= t < 360
            tsdb.append(SeriesBatch.sweep(
                "fs.read_bps", t, ["fs"], [4e9 if spike else 1e8]))
            tsdb.append(SeriesBatch.sweep(
                "ost.read_bps", t, ["ost0", "ost1"],
                [3e9 if spike else 5e7, 1e9 if spike else 5e7]))
            tsdb.append(SeriesBatch.sweep(
                "job.io_bps", t, ["job.1", "job.2"],
                [1e8, 3.9e9 if spike else 1e7]))
        fig, result = figure4_drilldown(tsdb, idx, 0.0, 600.0)
        assert 240 <= result.peak_time < 360
        assert result.job_id == 2
        assert result.job_app == "big_io"
        assert result.ranked_components[0][0] == "ost0"
