"""Unit tests for series shaping and rendering."""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.viz.render import (
    ascii_chart,
    bar_row,
    from_csv,
    sparkline,
    to_csv,
)
from repro.viz.series import condense, percent_of, resample, series_matrix


def batch(comp, times, values, metric="m"):
    return SeriesBatch.for_component(metric, comp, times, values)


class TestResample:
    def test_regular_grid(self):
        b = batch("a", np.arange(0, 100, 10.0), np.arange(10.0))
        r = resample(b, 0.0, 100.0, 20.0)
        assert len(r) == 5
        assert r.values[0] == pytest.approx(0.5)  # mean of samples 0,1

    def test_empty_buckets_are_nan(self):
        b = batch("a", [0.0, 90.0], [1.0, 2.0])
        r = resample(b, 0.0, 100.0, 10.0)
        assert np.isnan(r.values[5])
        assert r.values[0] == 1.0 and r.values[9] == 2.0

    def test_sum_agg(self):
        b = batch("a", [0.0, 5.0], [1.0, 2.0])
        r = resample(b, 0.0, 10.0, 10.0, agg="sum")
        assert r.values[0] == 3.0

    def test_max_agg(self):
        b = batch("a", [0.0, 5.0], [1.0, 7.0])
        r = resample(b, 0.0, 10.0, 10.0, agg="max")
        assert r.values[0] == 7.0

    def test_bad_agg_and_step(self):
        b = batch("a", [0.0], [1.0])
        with pytest.raises(ValueError):
            resample(b, 0, 10, 10, agg="mode")
        with pytest.raises(ValueError):
            resample(b, 0, 10, 0)


class TestCondense:
    def test_sum_across_components(self):
        per = {
            "a": batch("a", [0.0, 60.0], [1.0, 2.0]),
            "b": batch("b", [0.0, 60.0], [10.0, 20.0]),
        }
        c = condense(per, 0.0, 120.0, 60.0, agg="sum")
        assert list(c.values) == [11.0, 22.0]

    def test_mean_ignores_missing_component_buckets(self):
        per = {
            "a": batch("a", [0.0, 60.0], [1.0, 3.0]),
            "b": batch("b", [0.0], [5.0]),     # absent in bucket 1
        }
        c = condense(per, 0.0, 120.0, 60.0, agg="mean")
        assert c.values[0] == 3.0   # (1+5)/2
        assert c.values[1] == 3.0   # only a present

    def test_empty_input(self):
        assert len(condense({}, 0, 10, 1)) == 0

    def test_all_missing_bucket_is_nan(self):
        per = {"a": batch("a", [0.0], [1.0])}
        c = condense(per, 0.0, 120.0, 60.0, agg="sum")
        assert np.isnan(c.values[1])


class TestPercentOf:
    def test_scaling(self):
        b = batch("a", [0.0], [0.25])
        p = percent_of(b, 0.5)
        assert p.values[0] == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percent_of(batch("a", [0.0], [1.0]), 0.0)


class TestSeriesMatrix:
    def test_shape_and_order(self):
        per = {
            "b": batch("b", [0.0], [2.0]),
            "a": batch("a", [0.0], [1.0]),
        }
        comps, grid, mat = series_matrix(per, 0.0, 60.0, 60.0)
        assert comps == ["a", "b"]
        assert mat.shape == (2, 1)
        assert mat[0, 0] == 1.0


class TestSparkline:
    def test_range_mapping(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_nan_is_space(self):
        assert sparkline([np.nan, 1.0])[0] == " "

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "


class TestAsciiChart:
    def series(self):
        t = np.arange(0, 600, 60.0)
        return {
            "up": batch("m", t, np.linspace(0, 10, len(t))),
            "down": batch("m", t, np.linspace(10, 0, len(t))),
        }

    def test_contains_markers_and_legend(self):
        chart = ascii_chart(self.series(), title="test chart")
        assert "test chart" in chart
        assert "*=up" in chart and "o=down" in chart
        assert "*" in chart and "o" in chart

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_axis_labels(self):
        chart = ascii_chart(self.series())
        assert "10" in chart and "t=0s" in chart

    def test_bar_row(self):
        row = bar_row("power", 50.0, 100.0, width=10, unit="kW")
        assert row.count("#") == 5
        assert "50" in row


class TestCsvRoundTrip:
    def test_round_trip(self):
        series = {
            "a": batch("a", [0.0, 60.0], [1.0, np.nan], metric="m1"),
            "b": batch("b", [0.0], [5.0], metric="m2"),
        }
        text = to_csv(series)
        assert text.startswith("metric,component,time,value")
        back = from_csv(text)
        a = back["m1@a"]
        assert list(a.times) == [0.0, 60.0]
        assert a.values[0] == 1.0 and np.isnan(a.values[1])
        assert back["m2@b"].values[0] == 5.0
