"""Tests for user-scoped job reports and access control."""

import pytest

from repro.cluster import Machine, PackedPlacement, SlowOst, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.events import Event, EventKind, Severity
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.storage.jobstore import JobIndex
from repro.viz.userreport import AccessPolicy, job_report


class TestAccessPolicy:
    def make_index(self):
        idx = JobIndex()
        idx.record_start(1, "lammps", ["n0"], 0.0, user="alice")
        idx.record_start(2, "qmc", ["n1"], 0.0, user="bob")
        return idx

    def test_owner_authorized(self):
        policy = AccessPolicy(self.make_index())
        assert policy.authorize("alice", 1).job_id == 1

    def test_other_user_denied(self):
        policy = AccessPolicy(self.make_index())
        with pytest.raises(PermissionError, match="does not own"):
            policy.authorize("alice", 2)

    def test_visible_jobs_scoped(self):
        policy = AccessPolicy(self.make_index())
        assert [a.job_id for a in policy.visible_jobs("bob")] == [2]


def run_scenario(with_fault: bool, seed: int = 21):
    """One user job under monitoring, optionally with an FS fault."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=seed)
    job = Job(APP_LIBRARY["genomics"], 16, 0.0, seed=seed, user="alice")
    job.work_seconds = 1800.0
    machine.scheduler.submit(job, 0.0)
    if with_fault:
        machine.faults.add(SlowOst(start=300.0, duration=2400.0, ost=0,
                                   bw_factor=0.08))
    pipeline = MonitoringPipeline(
        machine, collectors=default_collectors(machine, seed=seed)
    )
    pipeline.run(hours=1.2, dt=10.0)
    return pipeline, job


class TestJobReport:
    def test_clean_run_reports_healthy(self):
        pipeline, job = run_scenario(with_fault=False)
        report = job_report(
            "alice", job.id,
            index=pipeline.jobs, tsdb=pipeline.tsdb,
            logs=pipeline.logs, topo=pipeline.machine.topo,
        )
        assert "healthy" in report.verdict
        text = report.render()
        assert f"job {job.id}" in text

    def test_fs_degradation_surfaces(self):
        pipeline, job = run_scenario(with_fault=True)
        report = job_report(
            "alice", job.id,
            index=pipeline.jobs, tsdb=pipeline.tsdb,
            logs=pipeline.logs, topo=pipeline.machine.topo,
        )
        assert any("filesystem" in f for f in report.findings)
        assert "plausibly affected" in report.verdict

    def test_report_denied_to_non_owner(self):
        pipeline, job = run_scenario(with_fault=False)
        with pytest.raises(PermissionError):
            job_report(
                "mallory", job.id,
                index=pipeline.jobs, tsdb=pipeline.tsdb,
                logs=pipeline.logs, topo=pipeline.machine.topo,
            )

    def test_node_events_scoped_to_own_nodes(self):
        pipeline, job = run_scenario(with_fault=False)
        # an error on someone else's node must not leak into the report
        other_node = next(
            n for n in pipeline.machine.topo.nodes if n not in job.nodes
        )
        pipeline.logs.append(Event(
            100.0, other_node, EventKind.HWERR, Severity.CRITICAL,
            "machine check on a stranger's node",
        ))
        own_node = job.nodes[0]
        pipeline.logs.append(Event(
            100.0, own_node, EventKind.CONSOLE, Severity.ERROR,
            "soft lockup on your node",
        ))
        report = job_report(
            "alice", job.id,
            index=pipeline.jobs, tsdb=pipeline.tsdb,
            logs=pipeline.logs, topo=pipeline.machine.topo,
        )
        joined = " ".join(report.findings)
        assert "soft lockup" in joined
        assert "stranger" not in joined
