"""Tests for shareable dashboard specifications."""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.storage.tsdb import TimeSeriesStore
from repro.viz.dashspec import DashboardSpec, PanelSpec, operations_dashboard


def loaded_store():
    tsdb = TimeSeriesStore()
    for t in np.arange(0, 1200, 60.0):
        tsdb.append(SeriesBatch.sweep("system.power_w", t, ["system"],
                                      [30e3 + 100 * t]))
        tsdb.append(SeriesBatch.sweep("health.pass_frac", t,
                                      ["n0", "n1", "n2", "n3"],
                                      [1.0, 1.0, 0.8, 1.0]))
        tsdb.append(SeriesBatch.sweep("fs.read_bps", t, ["scratch"],
                                      [1e8]))
        tsdb.append(SeriesBatch.sweep("queue.backlog_nodeh", t,
                                      ["scheduler"], [50.0]))
        tsdb.append(SeriesBatch.sweep("link.stall_ratio", t,
                                      ["l0", "l1"], [0.01, 0.3]))
    return tsdb


class TestPanelSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="panel kind"):
            PanelSpec("x", "m", kind="gauge3d")

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError, match="agg"):
            PanelSpec("x", "m", agg="median?")

    def test_percent_panel_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            PanelSpec("x", "m", kind="percent_in_state")


class TestSharing:
    def test_json_round_trip(self):
        spec = operations_dashboard()
        back = DashboardSpec.from_json(spec.to_json())
        assert back.name == spec.name
        assert back.panels == spec.panels

    def test_imported_spec_renders_on_foreign_store(self):
        """The share story: a spec exported by one site renders against
        another site's store untouched."""
        text = operations_dashboard().to_json()
        imported = DashboardSpec.from_json(text)
        out = imported.render(loaded_store(), now=1140.0)
        assert "operations" in out
        assert "system power" in out
        assert "links congested" in out


class TestRendering:
    def test_stat_panel_shows_current_value(self):
        spec = DashboardSpec("t", [
            PanelSpec("power", "system.power_w", kind="stat",
                      agg="last", unit=" W"),
        ])
        out = spec.render(loaded_store(), now=1140.0)
        # last value = 30e3 + 100*1140
        assert "1.44e+05" in out or "144" in out

    def test_percent_in_state_counts_breaches(self):
        spec = DashboardSpec("t", [
            PanelSpec("unhealthy", "health.pass_frac",
                      kind="percent_in_state", threshold=1.0,
                      above=False),
        ])
        out = spec.render(loaded_store(), now=1140.0)
        assert "25" in out    # 1 of 4 nodes below 1.0

    def test_empty_store_graceful(self):
        spec = operations_dashboard()
        out = spec.render(TimeSeriesStore(), now=0.0)
        assert "no data" in out or "(no data)" in out
