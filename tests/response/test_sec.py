"""Unit tests for the SEC rule engine."""

import pytest

from repro.core.events import Event, EventKind, Severity
from repro.response.sec import (
    PairRule,
    SecEngine,
    SingleRule,
    ThresholdRule,
)


def ev(t, msg, comp="n0"):
    return Event(t, comp, EventKind.CONSOLE, Severity.INFO, msg)


class TestSingleRule:
    def test_match_emits_action(self):
        eng = SecEngine([SingleRule("lockup", r"soft lockup", "alert")])
        reqs = eng.feed([ev(1.0, "watchdog: soft lockup on CPU#2")])
        assert len(reqs) == 1
        assert reqs[0].action == "alert"
        assert reqs[0].component == "n0"

    def test_no_match_no_action(self):
        eng = SecEngine([SingleRule("lockup", r"soft lockup", "alert")])
        assert eng.feed([ev(1.0, "all fine")]) == []

    def test_context_gating(self):
        eng = SecEngine(
            [
                SingleRule("arm", r"maintenance started", "alert",
                           sets_context="maint"),
                SingleRule("gated", r"node down", "alert",
                           requires_context="maint"),
                SingleRule("disarm", r"maintenance ended", "alert",
                           clears_context="maint"),
            ]
        )
        assert eng.feed([ev(0.0, "node down")]) == []      # not in maint
        eng.feed([ev(1.0, "maintenance started")])
        assert len(eng.feed([ev(2.0, "node down")])) == 1  # gated rule live
        eng.feed([ev(3.0, "maintenance ended")])
        assert eng.feed([ev(4.0, "node down")]) == []

    def test_unknown_rule_type_rejected(self):
        with pytest.raises(TypeError):
            SecEngine(["not a rule"])


class TestPairRule:
    def rule(self, window=60.0):
        return PairRule(
            name="recovery_watch",
            pattern_a=r"link .* failed",
            pattern_b=r"link .* restored",
            window_s=window,
            timeout_action="alert",
            completion_action="log_ok",
        )

    def test_completion_within_window(self):
        eng = SecEngine([self.rule()])
        eng.feed([ev(0.0, "link x failed", comp="r0")])
        reqs = eng.feed([ev(30.0, "link x restored", comp="r0")])
        assert [r.action for r in reqs] == ["log_ok"]
        # no timeout later
        assert eng.tick(1000.0) == []

    def test_timeout_fires_without_completion(self):
        eng = SecEngine([self.rule()])
        eng.feed([ev(0.0, "link x failed", comp="r0")])
        reqs = eng.tick(100.0)
        assert len(reqs) == 1
        assert reqs[0].action == "alert"
        assert reqs[0].time == 60.0  # stamped at window expiry

    def test_per_component_tracking(self):
        eng = SecEngine([self.rule()])
        eng.feed([ev(0.0, "link a failed", comp="r0"),
                  ev(1.0, "link b failed", comp="r1")])
        eng.feed([ev(30.0, "link a restored", comp="r0")])
        reqs = eng.tick(100.0)
        # only r1's watch times out
        assert [r.component for r in reqs] == ["r1"]

    def test_completion_on_other_component_ignored(self):
        eng = SecEngine([self.rule()])
        eng.feed([ev(0.0, "link a failed", comp="r0")])
        eng.feed([ev(30.0, "link a restored", comp="r9")])
        assert len(eng.tick(100.0)) == 1


class TestThresholdRule:
    def test_storm_detected(self):
        eng = SecEngine(
            [ThresholdRule("storm", r"machine check", 3, 60.0, "alert")]
        )
        reqs = eng.feed([ev(float(i), "machine check") for i in range(3)])
        assert len(reqs) == 1
        assert reqs[0].fields["count"] == 3

    def test_slow_drip_does_not_fire(self):
        eng = SecEngine(
            [ThresholdRule("storm", r"machine check", 3, 60.0, "alert")]
        )
        reqs = eng.feed(
            [ev(i * 100.0, "machine check") for i in range(10)]
        )
        assert reqs == []

    def test_rearm_after_fire(self):
        eng = SecEngine(
            [ThresholdRule("storm", r"err", 2, 60.0, "alert")]
        )
        r1 = eng.feed([ev(0.0, "err"), ev(1.0, "err")])
        r2 = eng.feed([ev(2.0, "err")])
        r3 = eng.feed([ev(3.0, "err")])
        assert len(r1) == 1 and r2 == [] and len(r3) == 1

    def test_per_component_windows(self):
        eng = SecEngine(
            [ThresholdRule("flap", r"FAILED", 2, 60.0, "drain_node",
                           per_component=True)]
        )
        reqs = eng.feed(
            [ev(0.0, "FAILED", comp="n0"), ev(1.0, "FAILED", comp="n1"),
             ev(2.0, "FAILED", comp="n0")]
        )
        assert len(reqs) == 1
        assert reqs[0].component == "n0"
