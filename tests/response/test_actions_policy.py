"""Unit tests for action execution, alerts, and the default policy."""

import pytest

from repro.analysis.anomaly import Detection
from repro.cluster import Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobState
from repro.core.events import EventKind, Severity
from repro.response.actions import ActionEngine, AlertManager
from repro.response.policy import (
    default_sec_engine,
    detections_to_requests,
)
from repro.response.sec import ActionRequest


@pytest.fixture()
def machine():
    return Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                   blades_per_chassis=4), seed=1)


def req(action, comp, rule="test_rule", t=0.0, fields=None):
    return ActionRequest(t, rule, action, comp, Severity.WARNING,
                         "msg", fields or {})


class TestAlertManager:
    def test_dedup_within_renotify(self):
        am = AlertManager(renotify_s=600.0)
        assert am.raise_alert(0.0, Severity.ERROR, "n0", "r", "m")
        assert am.raise_alert(100.0, Severity.ERROR, "n0", "r", "m") is None
        assert am.suppressed == 1

    def test_renotify_after_interval(self):
        am = AlertManager(renotify_s=600.0)
        am.raise_alert(0.0, Severity.ERROR, "n0", "r", "m")
        assert am.raise_alert(700.0, Severity.ERROR, "n0", "r", "m")

    def test_different_components_independent(self):
        am = AlertManager()
        assert am.raise_alert(0.0, Severity.ERROR, "n0", "r", "m")
        assert am.raise_alert(0.0, Severity.ERROR, "n1", "r", "m")

    def test_active_severity_floor(self):
        am = AlertManager()
        am.raise_alert(0.0, Severity.INFO, "n0", "r1", "m")
        am.raise_alert(0.0, Severity.CRITICAL, "n1", "r2", "m")
        assert len(am.active(Severity.ERROR)) == 1


class TestActionEngine:
    def test_drain_and_return(self, machine):
        eng = ActionEngine(machine)
        node = machine.topo.nodes[0]
        eng.execute([req("drain_node", node)])
        assert node in machine.scheduler.unavailable
        eng.execute([req("return_node", node)])
        assert node not in machine.scheduler.unavailable

    def test_kill_jobs(self, machine):
        j = Job(APP_LIBRARY["qmc"], 4, 0.0, seed=1)
        machine.scheduler.submit(j, 0.0)
        machine.step(5.0)
        eng = ActionEngine(machine)
        eng.execute([req("kill_jobs", j.nodes[0])])
        assert j.state is JobState.FAILED

    def test_downclock(self, machine):
        eng = ActionEngine(machine)
        node = machine.topo.nodes[3]
        eng.execute([req("downclock", node,
                         fields={"pstate_frac": 0.5})])
        assert machine.nodes.pstate_frac[3] == 0.5

    def test_unknown_action_audited_not_crash(self, machine):
        eng = ActionEngine(machine)
        (rec,) = eng.execute([req("launch_rockets", "n0")])
        assert "unknown action" in rec.outcome

    def test_non_node_component_safe(self, machine):
        eng = ActionEngine(machine)
        (rec,) = eng.execute([req("drain_node", "scheduler")])
        assert "not a node" in rec.outcome

    def test_dry_run_skips_mutation(self, machine):
        eng = ActionEngine(machine, dry_run=True)
        node = machine.topo.nodes[0]
        eng.execute([req("drain_node", node)])
        assert node not in machine.scheduler.unavailable
        # but alerts still flow in dry-run
        eng.execute([req("alert", node)])
        assert eng.alerts.alerts

    def test_actions_become_events(self, machine):
        eng = ActionEngine(machine)
        eng.execute([req("drain_node", machine.topo.nodes[0])])
        evs = machine.drain_events()
        assert any(e.kind is EventKind.ACTION for e in evs)

    def test_custom_handler_registration(self, machine):
        eng = ActionEngine(machine)
        calls = []
        eng.register("redirect_power", lambda r: calls.append(r) or "ok")
        eng.execute([req("redirect_power", "system")])
        assert len(calls) == 1

    def test_audit_grows(self, machine):
        eng = ActionEngine(machine)
        eng.execute([req("alert", "n0"), req("alert", "n1")])
        assert len(eng.audit) == 2


class TestDefaultPolicy:
    def test_rules_compile_and_cover_faults(self):
        eng = default_sec_engine()
        names = (
            [r.name for r in eng.singles]
            + [r.name for r in eng.pairs]
            + [r.name for r in eng.thresholds]
        )
        for expected in ("soft_lockup", "gpu_falloff_drain",
                         "link_recovery_watch", "hwerr_storm",
                         "queue_blocked", "bench_degraded"):
            assert expected in names

    def test_detections_adapter(self):
        d = Detection(10.0, "node.power_w", "n3", 8.5, "outlier",
                      "value=330")
        (r,) = detections_to_requests([d])
        assert r.action == "alert"
        assert r.component == "n3"
        assert "node.power_w" in r.rule
        assert r.fields["score"] == 8.5
