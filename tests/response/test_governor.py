"""Tests for the envisioned responses: power governor + congestion-aware
placement (Section III-C's forward-looking capabilities)."""


from repro.cluster import Machine, PackedPlacement, PowerModel, build_dragonfly
from repro.cluster.network import Flow
from repro.cluster.workload import APP_LIBRARY, Job, JobState
from repro.response.governor import CongestionAwarePlacement, PowerGovernor


def make_machine(**kw):
    topo = build_dragonfly(groups=3, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(topo, seed=3, **kw)


def submit(machine, n, seed=0, work=3600.0):
    j = Job(APP_LIBRARY["qmc"], n, machine.now, seed=seed)
    j.work_seconds = work
    machine.scheduler.submit(j, machine.now)
    return j


class TestPowerGovernorAdmission:
    def test_job_within_budget_admitted(self):
        m = make_machine(placement=PackedPlacement())
        gov = PowerGovernor(m, budget_w=1e9)
        m.scheduler.admission_control = gov.admit
        j = submit(m, 16)
        m.step(10.0)
        assert j.state is JobState.RUNNING
        assert gov.deferred == 0

    def test_job_over_budget_deferred(self):
        m = make_machine(placement=PackedPlacement())
        # budget barely above idle: no room for a 16-node job's dynamics
        pm = PowerModel(m.topo, m.nodes)
        gov = PowerGovernor(m, budget_w=pm.system_power_w() + 1000.0)
        m.scheduler.admission_control = gov.admit
        j = submit(m, 16)
        m.step(10.0)
        assert j.state is JobState.PENDING
        assert gov.deferred >= 1

    def test_budget_respected_under_stream(self):
        m = make_machine(placement=PackedPlacement())
        pm = PowerModel(m.topo, m.nodes)
        idle = pm.system_power_w()
        # budget allows roughly half the machine at full tilt
        budget = idle + 0.5 * len(m.topo.nodes) * (
            m.nodes.max_power_w - m.nodes.idle_power_w
        )
        gov = PowerGovernor(m, budget_w=budget)
        m.scheduler.admission_control = gov.admit
        for i in range(8):
            submit(m, 24, seed=i)
        peak = 0.0
        for _ in range(120):
            m.step(10.0)
            peak = max(peak, pm.system_power_w())
        assert peak <= budget * 1.02   # small settle tolerance
        assert gov.deferred > 0        # some jobs had to wait
        assert m.scheduler.running     # but work is flowing

    def test_deferred_job_starts_when_room_frees(self):
        m = make_machine(placement=PackedPlacement())
        pm = PowerModel(m.topo, m.nodes)
        dyn = m.nodes.max_power_w - m.nodes.idle_power_w
        budget = pm.system_power_w() + 30 * dyn   # room for ~30 nodes
        gov = PowerGovernor(m, budget_w=budget)
        m.scheduler.admission_control = gov.admit
        first = submit(m, 24, seed=1, work=300.0)
        second = submit(m, 24, seed=2)
        m.run(100.0, dt=10.0)
        assert first.state is JobState.RUNNING
        assert second.state is JobState.PENDING
        m.run(1200.0, dt=10.0)        # first finishes, power falls
        assert second.state in (JobState.RUNNING, JobState.COMPLETED)


class TestPowerGovernorDownclock:
    def test_downclock_makes_room(self):
        m = make_machine(placement=PackedPlacement())
        pm = PowerModel(m.topo, m.nodes)
        dyn = m.nodes.max_power_w - m.nodes.idle_power_w
        # run half the machine hot first
        base = submit(m, 72, seed=1)
        m.run(120.0, dt=10.0)
        busy_power = pm.system_power_w()
        budget = busy_power + 10 * dyn   # not enough for 48 more nodes
        gov = PowerGovernor(m, budget_w=budget, downclock_to_fit=True)
        m.scheduler.admission_control = gov.admit
        j = submit(m, 48, seed=2)
        m.run(60.0, dt=10.0)
        assert j.state is JobState.RUNNING
        assert gov.downclocks >= 1
        assert float(m.nodes.pstate_frac.mean()) < 1.0

    def test_relax_restores_frequency(self):
        m = make_machine(placement=PackedPlacement())
        gov = PowerGovernor(m, budget_w=1e9, downclock_to_fit=True)
        m.nodes.pstate_frac[:] = 0.8
        gov.relax()
        assert (m.nodes.pstate_frac == 1.0).all()


class TestCongestionAwarePlacement:
    def congest_group(self, machine, group):
        """Saturate links inside one group with raw flows."""
        nodes = [n for n in machine.topo.nodes
                 if machine.topo.node_group[n] == group]
        flows = [Flow(nodes[i], nodes[-1 - i], 50e9) for i in range(12)]
        machine.network.step(1.0, flows)

    def test_avoids_hot_group(self):
        m = make_machine()
        placement = CongestionAwarePlacement(m.network)
        m.scheduler.placement = placement
        self.congest_group(m, 0)
        j = submit(m, 16)
        m.scheduler.tick(m.now)
        groups = {m.topo.node_group[n] for n in j.nodes}
        assert 0 not in groups

    def test_quiet_network_behaves_like_tas(self):
        m = make_machine()
        m.scheduler.placement = CongestionAwarePlacement(m.network)
        j = submit(m, 16)
        m.scheduler.tick(m.now)
        assert len({m.topo.node_group[n] for n in j.nodes}) == 1

    def test_spills_into_hot_group_only_when_forced(self):
        m = make_machine()
        m.scheduler.placement = CongestionAwarePlacement(m.network)
        self.congest_group(m, 0)
        per_group = len(m.topo.nodes) // 3
        j = submit(m, 2 * per_group + 8)   # must touch all three groups
        m.scheduler.tick(m.now)
        groups = {m.topo.node_group[n] for n in j.nodes}
        assert groups == {0, 1, 2}
        # the hot group contributes the fewest nodes
        from collections import Counter
        counts = Counter(m.topo.node_group[n] for n in j.nodes)
        assert counts[0] == min(counts.values())
