"""Property-based tests: series->shard routing and sharded-query oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import stable_bucket
from repro.core.metric import SeriesBatch
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                           whitelist_characters=".-_"),
    min_size=1, max_size=24,
)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


class TestRoutingStability:
    @given(names, st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_same_name_same_bucket_every_time(self, name, k):
        assert stable_bucket(name, k) == stable_bucket(name, k)
        assert 0 <= stable_bucket(name, k) < k

    @given(st.lists(st.tuples(names, names), min_size=1, max_size=20),
           st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_independent_instances_agree(self, series, k):
        a = ShardedTimeSeriesStore(shards=k)
        b = ShardedTimeSeriesStore(shards=k)
        for metric, comp in series:
            assert a.shard_of(metric, comp) == b.shard_of(metric, comp)

    @given(names, names)
    @settings(max_examples=200, deadline=None)
    def test_repartition_only_on_explicit_k_change(self, metric, comp):
        """For fixed K the placement is a pure function of the series
        name; a different K is the only thing that can move it."""
        placements = [
            ShardedTimeSeriesStore(shards=4).shard_of(metric, comp)
            for _ in range(3)
        ]
        assert len(set(placements)) == 1
        # changing K remaps via the same stable hash, deterministically
        assert (ShardedTimeSeriesStore(shards=7).shard_of(metric, comp)
                == ShardedTimeSeriesStore(shards=7).shard_of(metric, comp))


# one random workload: a list of sweeps over (metric, components, time)
workloads = st.lists(
    st.tuples(
        st.sampled_from(["node.power_w", "link.stall", "fs.read"]),
        st.integers(1, 8),     # components in the sweep
        st.integers(0, 50),    # sweep time slot
        st.lists(finite, min_size=8, max_size=8),
    ),
    min_size=1, max_size=30,
)


class TestShardedQueryOracle:
    @given(workloads, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_sharded_equals_single_store(self, workload, k):
        sharded = ShardedTimeSeriesStore(shards=k)
        single = TimeSeriesStore()
        for metric, n_comp, slot, values in workload:
            batch = SeriesBatch.sweep(
                metric, float(10 * slot),
                [f"c{j}" for j in range(n_comp)], values[:n_comp],
            )
            sharded.append(batch)
            single.append(batch)
        assert sharded.keys() == single.keys()
        for key in single.keys():
            a = sharded.query(key.metric, key.component)
            b = single.query(key.metric, key.component)
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.values, b.values)
        assert sharded.stats().samples == single.stats().samples
