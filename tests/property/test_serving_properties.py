"""Property-based tests: serving-plane answers == the raw-store oracle.

The query front end may answer from rollup-pyramid rows, from its
result cache, or from the store's own (summary-pruned) path — the
invariant is that every route produces *exactly* the answer the store's
forced-decompress raw path would.  Values are drawn integer-valued (so
float summation is associativity-independent and ``sum``/``mean`` are
held bit-exact, not approximately) mixed with NaN/±inf specials (whose
propagation is order-independent by IEEE semantics); times sit on a
millisecond grid.  Windows are deliberately non-step-aligned and the
store keeps an unsealed in-memory tail, so edge buckets exercise the
raw/pyramid stitching.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metric import SeriesBatch
from repro.serve.frontend import QueryFrontend
from repro.storage.rollup import DEFAULT_LEVELS
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore

AGGS = ("mean", "sum", "min", "max", "last", "count")

#: integer-valued floats sum exactly in any association order; the
#: specials propagate to NaN/±inf independent of order too
exact_values = st.one_of(
    st.integers(min_value=-(1 << 30), max_value=1 << 30).map(float),
    st.sampled_from([float("nan"), float("inf"), float("-inf"),
                     0.0, -0.0]),
)

#: millisecond-grid times in a few-hour range (duplicates allowed —
#: the stable time sort + sequence tiebreak must agree across paths)
times_ms = st.lists(
    st.integers(min_value=0, max_value=7_200_000),
    min_size=1, max_size=80,
).map(lambda ms: np.asarray(sorted(ms), dtype=np.float64) / 1000.0)

#: steps both planner-eligible (multiples of a rollup level with an
#: aligned anchor) and not (7 s, 77 s force the raw fallback)
steps = st.sampled_from([10.0, 30.0, 60.0, 120.0, 600.0, 3600.0,
                         7.0, 77.0])

windows = st.tuples(
    st.floats(min_value=-100.0, max_value=7200.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=7300.0, allow_nan=False),
).map(lambda w: (min(w), max(w) + 1.0))


def _ingest(store, batches):
    for metric, comp, t, v in batches:
        store.append(SeriesBatch.for_component(metric, comp, t, v))


def _values(data, n):
    return np.asarray(
        data.draw(st.lists(exact_values, min_size=n, max_size=n)),
        dtype=np.float64,
    )


def assert_batches_equal(got, want, ctx):
    assert np.array_equal(got.times, want.times), ctx
    assert np.array_equal(got.values, want.values, equal_nan=True), ctx


class TestServingEqualsRaw:
    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_downsample_matches_forced_decompress(self, times, step,
                                                  window, agg, data):
        # small chunks => sealed pyramid pieces plus an unsealed tail
        store = TimeSeriesStore(chunk_size=16,
                                pyramid_levels=DEFAULT_LEVELS)
        half = len(times) // 2
        _ingest(store, [
            ("m.x", "c0", times[:half], _values(data, half)),
            ("m.x", "c0", times[half:], _values(data, len(times) - half)),
        ])
        fe = QueryFrontend(store)
        t0, t1 = window
        got = fe.downsample("m.x", "c0", t0, t1, step, agg)
        want = store.downsample("m.x", "c0", t0, t1, step, agg,
                                prune=False)
        assert_batches_equal(got, want, (step, agg, window))
        # a second ask must come from the result cache, unchanged
        again = fe.downsample("m.x", "c0", t0, t1, step, agg)
        assert again is got
        assert fe.stats().cache.hits >= 1

    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS),
           unbounded=st.booleans(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_aggregate_across_matches_forced_decompress(
            self, times, step, window, agg, unbounded, data):
        store = TimeSeriesStore(chunk_size=16,
                                pyramid_levels=DEFAULT_LEVELS)
        third = max(1, len(times) // 3)
        _ingest(store, [
            ("m.x", "c0", times[:third], _values(data, third)),
            ("m.x", "c1", times[third:], _values(data,
                                                 len(times) - third)),
            ("m.x", "c2", times, _values(data, len(times))),
        ])
        fe = QueryFrontend(store)
        t0, t1 = (-np.inf, np.inf) if unbounded else window
        got = fe.aggregate_across("m.x", None, t0, t1, step, agg)
        want = store.aggregate_across("m.x", None, t0, t1, step, agg)
        assert_batches_equal(got, want, (step, agg, t0, t1))

    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sharded_store_matches(self, times, step, window, agg, data):
        store = ShardedTimeSeriesStore(shards=3, chunk_size=16,
                                       pyramid_levels=DEFAULT_LEVELS)
        for i in range(4):
            _ingest(store, [("m.x", f"c{i}", times,
                             _values(data, len(times)))])
        fe = QueryFrontend(store)
        t0, t1 = window
        got = fe.aggregate_across("m.x", None, t0, t1, step, agg)
        want = store.aggregate_across("m.x", None, t0, t1, step, agg)
        assert_batches_equal(got, want, (step, agg, window))
        for comp in ("c0", "c2"):
            g = fe.downsample("m.x", comp, t0, t1, step, agg)
            w = store.downsample("m.x", comp, t0, t1, step, agg,
                                 prune=False)
            assert_batches_equal(g, w, (comp, step, agg, window))

    @given(times=times_ms, agg=st.sampled_from(AGGS), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_planner_actually_answers_from_pyramids(self, times, agg,
                                                    data):
        """Eligible grids must take the pyramid route, not silently
        fall back (the perf claim depends on it)."""
        store = TimeSeriesStore(chunk_size=16,
                                pyramid_levels=DEFAULT_LEVELS)
        _ingest(store, [("m.x", "c0", times,
                         _values(data, len(times)))])
        fe = QueryFrontend(store)
        span = float(times[-1] - times[0])
        got = fe.downsample("m.x", "c0", 0.0, times[-1] + 1.0, 60.0, agg)
        want = store.downsample("m.x", "c0", 0.0, times[-1] + 1.0, 60.0,
                                agg, prune=False)
        assert_batches_equal(got, want, agg)
        if span >= 60.0:
            # at least one full bucket => planner eligibility
            assert fe.stats().pyramid_answers == 1
