"""Property-based tests: the delivery ledger's balance identity.

The invariant the whole accounting plane rests on: at *every* point in
a run — mid-storm, mid-window, before or after a pump — every published
point is stored, accounted lost, or visibly in flight:

    published == stored + lost + pending + in_flight

No transport tier, queue size, overflow regime, or chaos fault may
create silence (unaccounted != 0).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ledger import DeliveryLedger
from repro.core.metric import SeriesBatch
from repro.obs.chaos import ChaosTransport
from repro.transport.aggtree import AggregatorTree
from repro.transport.bus import MessageBus
from repro.transport.partitioned import PartitionedBus


def batch(metric: str, n: int, t: float) -> SeriesBatch:
    return SeriesBatch(
        metric,
        [f"n{i:03d}" for i in range(n)],
        [t] * n,
        [float(i) for i in range(n)],
    )


def attach(bus):
    """Wire a ledger + a storing consumer onto ``bus``; returns ledger."""
    ledger = DeliveryLedger()
    bus.ledger = ledger

    def store(env):
        if isinstance(env.payload, SeriesBatch) and ledger.tracks(env.topic):
            ledger.stored_batch(env.payload, len(env.payload))

    bus.subscribe("metrics.*", callback=store, name="store")
    return ledger


def assert_balanced(bus, ledger):
    report = ledger.balance(pending=0, in_flight=bus.in_flight_points())
    assert report.balanced, report.render()
    return report


#: (source id, points per batch) publish script
script = st.lists(
    st.tuples(st.integers(0, 7), st.integers(1, 40)),
    min_size=0,
    max_size=60,
)


class TestLedgerBalancesEveryTransport:
    @given(script=script)
    @settings(max_examples=100, deadline=None)
    def test_flat_bus(self, script):
        bus = MessageBus()
        ledger = attach(bus)
        for k, (src, n) in enumerate(script):
            bus.publish("metrics.test", batch("m.x", n, float(k)),
                        source=f"s{src}")
            assert_balanced(bus, ledger)    # holds mid-stream, every step
        bus.flush()
        report = assert_balanced(bus, ledger)
        # the flat bus delivers synchronously and never drops batches
        assert report.in_flight == 0 and report.lost == 0
        assert report.stored == sum(n for _, n in script)

    @given(script=script,
           partitions=st.integers(1, 6),
           queue_len=st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_partitioned_bus_with_overflow(self, script, partitions,
                                           queue_len):
        bus = PartitionedBus(partitions=partitions,
                             partition_queue_len=queue_len)
        ledger = attach(bus)
        for k, (src, n) in enumerate(script):
            bus.publish("metrics.test", batch("m.x", n, float(k)),
                        source=f"s{src}")
            assert_balanced(bus, ledger)    # overflow counted as it evicts
        bus.flush()
        report = assert_balanced(bus, ledger)
        assert report.in_flight == 0       # flushed: queues are empty
        assert report.published == report.stored + report.lost
        if report.lost:
            assert report.lost_by_cause.get("partition-overflow") == \
                report.lost

    @given(script=script,
           leaves=st.integers(1, 6),
           fan_in=st.integers(2, 4),
           queue_len=st.integers(1, 12),
           pump_every=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_aggregator_tree_with_windows_and_overflow(
        self, script, leaves, fan_in, queue_len, pump_every
    ):
        bus = AggregatorTree(leaves=leaves, fan_in=fan_in,
                             leaf_queue_len=queue_len)
        ledger = attach(bus)
        for k, (src, n) in enumerate(script):
            bus.publish("metrics.test", batch("m.x", n, float(k)),
                        source=f"s{src}")
            # identity must hold while points sit in leaf windows
            assert_balanced(bus, ledger)
            if (k + 1) % pump_every == 0:
                bus.pump(float(k))
                assert_balanced(bus, ledger)
        bus.flush()
        report = assert_balanced(bus, ledger)
        assert report.in_flight == 0
        assert report.published == report.stored + report.lost
        if report.lost:
            assert report.lost_by_cause.get("leaf-overflow") == report.lost


class TestLedgerBalancesUnderChaos:
    @given(script=script,
           drop_every=st.integers(0, 5),
           duplicate_every=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_chaos_drops_and_duplicates_stay_accounted(
        self, script, drop_every, duplicate_every
    ):
        bus = ChaosTransport(MessageBus())
        ledger = attach(bus)
        bus.drop_every = drop_every
        bus.duplicate_every = duplicate_every
        for k, (src, n) in enumerate(script):
            bus.publish("metrics.test", batch("m.x", n, float(k)),
                        source=f"s{src}")
            assert_balanced(bus, ledger)
        bus.flush()
        report = assert_balanced(bus, ledger)
        if drop_every:
            assert report.lost == \
                report.lost_by_cause.get("chaos-drop", 0)
        else:
            assert report.lost == 0
        if not duplicate_every:
            assert report.duplicated == 0

    @given(script=script, queue_len=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_chaos_over_partitioned_composes(self, script, queue_len):
        bus = ChaosTransport(
            PartitionedBus(partitions=2, partition_queue_len=queue_len)
        )
        ledger = attach(bus)
        bus.drop_every = 3
        for k, (src, n) in enumerate(script):
            bus.publish("metrics.test", batch("m.x", n, float(k)),
                        source=f"s{src}")
            assert_balanced(bus, ledger)
        bus.flush()
        report = assert_balanced(bus, ledger)
        assert report.in_flight == 0
        # two independent loss mechanisms, one exact ledger
        assert report.lost == (
            report.lost_by_cause.get("chaos-drop", 0)
            + report.lost_by_cause.get("partition-overflow", 0)
        )
