"""Property-based tests: storage-layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.storage.logstore import LogStore, tokenize
from repro.storage.tsdb import (
    TimeSeriesStore,
    compress_chunk,
    decompress_chunk,
)

# -- chunk codec -------------------------------------------------------------

# times at millisecond resolution, strictly representable
times_strategy = st.lists(
    st.integers(min_value=0, max_value=10**10),   # milliseconds
    min_size=0,
    max_size=200,
).map(lambda ms: np.asarray(sorted(set(ms)), dtype=np.float64) / 1000.0)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e30, max_value=1e30,
)


class TestChunkCodecProperties:
    @given(times=times_strategy, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_lossless(self, times, data):
        values = np.asarray(
            data.draw(
                st.lists(finite_floats, min_size=len(times),
                         max_size=len(times))
            ),
            dtype=np.float64,
        )
        t, v = decompress_chunk(compress_chunk(times, values))
        assert len(t) == len(times)
        assert np.array_equal(v, values)        # values bit-exact
        assert np.allclose(t, times, atol=5e-4)  # times to ms resolution

    @given(times=times_strategy)
    @settings(max_examples=100, deadline=None)
    def test_compressed_never_catastrophically_larger(self, times):
        values = np.arange(len(times), dtype=np.float64)
        blob = compress_chunk(times, values)
        # worst case per sample: varint ts (<=10 B) + header+8 B value
        assert len(blob) <= 20 + len(times) * 19


# -- store query semantics ------------------------------------------------------

samples_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**7),       # time ms
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e12, max_value=1e12),
    ),
    min_size=1,
    max_size=300,
)


class TestStoreProperties:
    @given(samples=samples_strategy,
           chunk_size=st.integers(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_store_returns_everything_time_sorted(self, samples,
                                                  chunk_size):
        store = TimeSeriesStore(chunk_size=chunk_size)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        out = store.query("m", "c")
        assert len(out) == len(samples)
        assert (np.diff(out.times) >= 0).all()
        # multiset of values preserved
        assert sorted(out.values) == sorted(v for _, v in samples)

    @given(samples=samples_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_window_query_equals_filtered_full_query(self, samples, data):
        store = TimeSeriesStore(chunk_size=8)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        t0 = data.draw(st.integers(0, 10**7)) / 1000.0
        t1 = data.draw(st.integers(0, 10**7)) / 1000.0
        windowed = store.query("m", "c", t0, t1)
        full = store.query("m", "c")
        mask = (full.times >= t0) & (full.times < t1)
        assert len(windowed) == mask.sum()
        assert sorted(windowed.values) == sorted(full.values[mask])

    @given(samples=samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_downsample_conserves_sum(self, samples):
        store = TimeSeriesStore(chunk_size=16)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        out = store.downsample("m", "c", 0.0, 10**4 + 1.0, step=100.0,
                               agg="sum")
        total_in = sum(v for _, v in samples)
        assert np.isclose(out.values.sum(), total_in, rtol=1e-9, atol=1e-6)


# -- log store: index agrees with the naive scan oracle --------------------------

words = st.sampled_from(
    "lustre mount failed error recovery slurmd gpu link "
    "node warning started stopped retry timeout".split()
)
messages = st.lists(words, min_size=1, max_size=6).map(" ".join)
events_strategy = st.lists(
    st.tuples(st.integers(0, 10**6), messages),
    min_size=0,
    max_size=100,
)


class TestLogStoreProperties:
    @given(events=events_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_index_search_equals_scan(self, events, data):
        store = LogStore()
        for t, msg in events:
            store.append(Event(float(t), "n0", EventKind.CONSOLE,
                               Severity.INFO, msg))
        term = data.draw(words)
        via_index = store.search([term])
        # oracle: regex word-boundary scan
        via_scan = store.scan(rf"\b{term}\b")
        assert via_index == via_scan

    @given(events=events_strategy)
    @settings(max_examples=50, deadline=None)
    def test_occurrence_series_total_matches_search(self, events):
        store = LogStore()
        for t, msg in events:
            store.append(Event(float(t), "n0", EventKind.CONSOLE,
                               Severity.INFO, msg))
        starts, counts = store.occurrence_series(
            ["error"], t0=0.0, t1=10**6 + 1.0, bucket_s=1000.0
        )
        assert counts.sum() == len(store.search(["error"]))

    @given(msg=messages)
    @settings(max_examples=50, deadline=None)
    def test_tokenize_stable(self, msg):
        toks = tokenize(msg)
        assert toks == tokenize(" ".join(toks))
