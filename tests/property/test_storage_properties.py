"""Property-based tests: storage-layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.storage.logstore import LogStore, tokenize
from repro.storage.tsdb import (
    TimeSeriesStore,
    _compress_chunk_slow,
    _decompress_chunk_slow,
    _xor_token_lens,
    compress_chunk,
    decompress_chunk,
)

# -- chunk codec -------------------------------------------------------------

# times at millisecond resolution, strictly representable
times_strategy = st.lists(
    st.integers(min_value=0, max_value=10**10),   # milliseconds
    min_size=0,
    max_size=200,
).map(lambda ms: np.asarray(sorted(set(ms)), dtype=np.float64) / 1000.0)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e30, max_value=1e30,
)


class TestChunkCodecProperties:
    @given(times=times_strategy, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_lossless(self, times, data):
        values = np.asarray(
            data.draw(
                st.lists(finite_floats, min_size=len(times),
                         max_size=len(times))
            ),
            dtype=np.float64,
        )
        t, v = decompress_chunk(compress_chunk(times, values))
        assert len(t) == len(times)
        assert np.array_equal(v, values)        # values bit-exact
        assert np.allclose(t, times, atol=5e-4)  # times to ms resolution

    @given(times=times_strategy)
    @settings(max_examples=100, deadline=None)
    def test_compressed_never_catastrophically_larger(self, times):
        values = np.arange(len(times), dtype=np.float64)
        blob = compress_chunk(times, values)
        # worst case per sample: varint ts (<=10 B) + header+8 B value
        assert len(blob) <= 20 + len(times) * 19


# adversarial values for the vectorized-vs-scalar equivalence: specials
# (NaN, ±inf, −0.0, denormals) and identical-value runs, in any mix
special_floats = st.sampled_from(
    [0.0, -0.0, float("nan"), float("inf"), float("-inf"),
     5e-324, 2.2250738585072014e-308, 1.0, 230.0]
)
adversarial_values = st.lists(
    st.tuples(
        st.one_of(special_floats,
                  st.floats(width=64, allow_nan=True, allow_infinity=True)),
        st.integers(min_value=1, max_value=8),    # run length
    ),
    min_size=0,
    max_size=60,
).map(lambda runs: np.repeat([v for v, _ in runs],
                             [n for _, n in runs]).astype(np.float64))

# irregular, duplicate, and out-of-order timestamps — seal() sorts its
# input, but the codec itself must round-trip any order byte-exactly
unsorted_times_ms = st.lists(
    st.integers(min_value=0, max_value=10**10),
    min_size=0,
    max_size=120,
)


class TestVectorizedCodecEquivalence:
    """The numpy codec against the `_slow` scalar reference oracle."""

    @given(times_ms=unsorted_times_ms, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_byte_identical_and_bit_exact(self, times_ms, data):
        values = data.draw(adversarial_values)
        n = min(len(times_ms), len(values))
        times = np.asarray(times_ms[:n], dtype=np.float64) / 1000.0
        values = values[:n]
        blob = compress_chunk(times, values)
        assert blob == _compress_chunk_slow(times, values)
        st_, sv = _decompress_chunk_slow(blob)
        for hint in (None, _xor_token_lens(values)):
            vt, vv = decompress_chunk(blob, lens_hint=hint)
            assert np.array_equal(vt, st_)
            # bit-level equality survives NaN payloads and -0.0
            assert np.array_equal(vv.view(np.uint64), sv.view(np.uint64))
            assert np.array_equal(vv.view(np.uint64),
                                  values.view(np.uint64))


# -- store query semantics ------------------------------------------------------

samples_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**7),       # time ms
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e12, max_value=1e12),
    ),
    min_size=1,
    max_size=300,
)


class TestStoreProperties:
    @given(samples=samples_strategy,
           chunk_size=st.integers(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_store_returns_everything_time_sorted(self, samples,
                                                  chunk_size):
        store = TimeSeriesStore(chunk_size=chunk_size)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        out = store.query("m", "c")
        assert len(out) == len(samples)
        assert (np.diff(out.times) >= 0).all()
        # multiset of values preserved
        assert sorted(out.values) == sorted(v for _, v in samples)

    @given(samples=samples_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_window_query_equals_filtered_full_query(self, samples, data):
        store = TimeSeriesStore(chunk_size=8)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        t0 = data.draw(st.integers(0, 10**7)) / 1000.0
        t1 = data.draw(st.integers(0, 10**7)) / 1000.0
        windowed = store.query("m", "c", t0, t1)
        full = store.query("m", "c")
        mask = (full.times >= t0) & (full.times < t1)
        assert len(windowed) == mask.sum()
        assert sorted(windowed.values) == sorted(full.values[mask])

    @given(samples=samples_strategy)
    @settings(max_examples=50, deadline=None)
    def test_downsample_conserves_sum(self, samples):
        store = TimeSeriesStore(chunk_size=16)
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        out = store.downsample("m", "c", 0.0, 10**4 + 1.0, step=100.0,
                               agg="sum")
        total_in = sum(v for _, v in samples)
        assert np.isclose(out.values.sum(), total_in, rtol=1e-9, atol=1e-6)

    @given(samples=samples_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_pruned_downsample_equals_cold_path(self, samples, data):
        """Summary-served buckets are indistinguishable from decompression."""
        store = TimeSeriesStore(chunk_size=data.draw(
            st.integers(min_value=2, max_value=32)))
        for t_ms, v in samples:
            store.append(SeriesBatch.sweep("m", t_ms / 1000.0, ["c"], [v]))
        if data.draw(st.booleans()):
            store.flush()
        step = data.draw(st.integers(1, 2000))
        agg = data.draw(st.sampled_from(
            ["mean", "sum", "min", "max", "last", "count"]))
        warm = store.downsample("m", "c", 0.0, 10**4 + 1.0, float(step),
                                agg=agg)
        cold = store.downsample("m", "c", 0.0, 10**4 + 1.0, float(step),
                                agg=agg, prune=False)
        assert np.array_equal(warm.times, cold.times)
        if agg in ("min", "max", "last", "count"):
            assert np.array_equal(warm.values, cold.values)
        else:   # sums reassociate across chunk summaries: ulp-level drift
            assert np.allclose(warm.values, cold.values,
                               rtol=1e-9, atol=1e-9)


# -- log store: index agrees with the naive scan oracle --------------------------

words = st.sampled_from(
    "lustre mount failed error recovery slurmd gpu link "
    "node warning started stopped retry timeout".split()
)
messages = st.lists(words, min_size=1, max_size=6).map(" ".join)
events_strategy = st.lists(
    st.tuples(st.integers(0, 10**6), messages),
    min_size=0,
    max_size=100,
)


class TestLogStoreProperties:
    @given(events=events_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_index_search_equals_scan(self, events, data):
        store = LogStore()
        for t, msg in events:
            store.append(Event(float(t), "n0", EventKind.CONSOLE,
                               Severity.INFO, msg))
        term = data.draw(words)
        via_index = store.search([term])
        # oracle: regex word-boundary scan
        via_scan = store.scan(rf"\b{term}\b")
        assert via_index == via_scan

    @given(events=events_strategy)
    @settings(max_examples=50, deadline=None)
    def test_occurrence_series_total_matches_search(self, events):
        store = LogStore()
        for t, msg in events:
            store.append(Event(float(t), "n0", EventKind.CONSOLE,
                               Severity.INFO, msg))
        starts, counts = store.occurrence_series(
            ["error"], t0=0.0, t1=10**6 + 1.0, bucket_s=1000.0
        )
        assert counts.sum() == len(store.search(["error"]))

    @given(msg=messages)
    @settings(max_examples=50, deadline=None)
    def test_tokenize_stable(self, msg):
        toks = tokenize(msg)
        assert toks == tokenize(" ".join(toks))
