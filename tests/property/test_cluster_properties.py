"""Property-based tests: substrate invariants (routing, scheduling)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scheduler import (
    BatchScheduler,
    PackedPlacement,
    ScatteredPlacement,
    TopoAwarePlacement,
)
from repro.cluster.topology import build_dragonfly, build_torus
from repro.cluster.workload import APP_LIBRARY, Job

# shared topologies (expensive to build; safe to share read-mostly)
DFLY = build_dragonfly(groups=3, chassis_per_group=3, blades_per_chassis=4)
TORUS = build_torus(4, 4, 4)


def manhattan_torus_distance(torus, ra, rb):
    ax, ay, az = torus._coords(ra)
    bx, by, bz = torus._coords(rb)
    d = 0
    for a, b, size in zip((ax, ay, az), (bx, by, bz), torus.dims):
        fwd = (b - a) % size
        d += min(fwd, size - fwd)
    return d


class TestRoutingProperties:
    @given(
        i=st.integers(0, len(TORUS.nodes) - 1),
        j=st.integers(0, len(TORUS.nodes) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_torus_routes_are_minimal(self, i, j):
        src, dst = TORUS.nodes[i], TORUS.nodes[j]
        route = TORUS.route(src, dst)
        ra = TORUS.node_router[src]
        rb = TORUS.node_router[dst]
        assert len(route) == manhattan_torus_distance(TORUS, ra, rb)

    @given(
        i=st.integers(0, len(DFLY.nodes) - 1),
        j=st.integers(0, len(DFLY.nodes) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_dragonfly_routes_connect_endpoints(self, i, j):
        src, dst = DFLY.nodes[i], DFLY.nodes[j]
        route = DFLY.route(src, dst)
        ra = DFLY.node_router[src]
        rb = DFLY.node_router[dst]
        if ra == rb:
            assert route == ()
            return
        # the link sequence must form a path from ra to rb
        here = ra
        for idx in route:
            link = DFLY.link_by_index(idx)
            assert here in (link.a, link.b)
            here = link.b if here == link.a else link.a
        assert here == rb

    @given(
        i=st.integers(0, len(DFLY.nodes) - 1),
        j=st.integers(0, len(DFLY.nodes) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_dragonfly_routes_short(self, i, j):
        # minimal dragonfly routing: at most local-global-local-ish hops
        route = DFLY.route(DFLY.nodes[i], DFLY.nodes[j])
        assert len(route) <= 5


job_sizes = st.lists(st.integers(1, 64), min_size=1, max_size=12)
placements = st.sampled_from(
    [ScatteredPlacement, PackedPlacement, TopoAwarePlacement]
)


class TestSchedulerProperties:
    @given(sizes=job_sizes, placement_cls=placements,
           seed=st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_no_node_double_allocated(self, sizes, placement_cls, seed):
        sched = BatchScheduler(DFLY, placement=placement_cls(), seed=seed)
        for k, n in enumerate(sizes):
            sched.submit(Job(APP_LIBRARY["qmc"], n, 0.0, seed=k), 0.0)
        sched.tick(0.0)
        allocated = [n for j in sched.running for n in j.nodes]
        assert len(allocated) == len(set(allocated))
        # accounting table agrees with job node lists
        assert set(allocated) == set(sched.allocated)

    @given(sizes=job_sizes, placement_cls=placements,
           seed=st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_started_jobs_get_exactly_requested_nodes(
        self, sizes, placement_cls, seed
    ):
        sched = BatchScheduler(DFLY, placement=placement_cls(), seed=seed)
        jobs = [Job(APP_LIBRARY["qmc"], n, 0.0, seed=k)
                for k, n in enumerate(sizes)]
        for j in jobs:
            sched.submit(j, 0.0)
        sched.tick(0.0)
        for j in sched.running:
            assert len(j.nodes) == j.n_nodes

    @given(sizes=job_sizes, seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_capacity_conserved_through_completion(self, sizes, seed):
        sched = BatchScheduler(DFLY, seed=seed)
        jobs = [Job(APP_LIBRARY["qmc"], n, 0.0, seed=k)
                for k, n in enumerate(sizes)]
        for j in jobs:
            sched.submit(j, 0.0)
        sched.tick(0.0)
        for j in list(sched.running):
            sched.complete(j, 100.0)
        assert sched.allocated == {}
        assert len(sched.free_nodes()) == len(DFLY.nodes)

    @given(sizes=job_sizes, seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_queue_conservation(self, sizes, seed):
        """Every submitted job is exactly one of queued/running."""
        sched = BatchScheduler(DFLY, seed=seed)
        jobs = [Job(APP_LIBRARY["qmc"], n, 0.0, seed=k)
                for k, n in enumerate(sizes)]
        for j in jobs:
            sched.submit(j, 0.0)
        sched.tick(0.0)
        assert len(sched.queue) + len(sched.running) == len(jobs)
        assert set(sched.queue).isdisjoint(set(sched.running))
