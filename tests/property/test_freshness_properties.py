"""Property-based tests: hop vectors stay monotone and exact under a
simulated clock, across all three transport tiers, and survive both
wire codecs — including tree-merged batches under leaf overflow."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metric import SeriesBatch
from repro.core.tracectx import HOP_INGEST, TraceContext
from repro.transport.aggtree import AggregatorTree
from repro.transport.bus import MessageBus
from repro.transport.message import (
    Envelope,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
)
from repro.transport.partitioned import PartitionedBus

TICK = 10.0

# a publish schedule: per round, how many batches go out before the
# clock advances one tick and the transport pumps
schedules = st.lists(st.integers(min_value=0, max_value=4),
                     min_size=1, max_size=8)

metrics = st.sampled_from(
    ["node.power_w", "node.cpu_pct", "fabric.bw_gbps", "selfmon.x.y"]
)


def drive(transport, schedule, metric_names):
    """Publish per ``schedule`` against a simulated clock, pumping each
    round; returns every batch delivered to the subscriber."""
    delivered = []
    transport.subscribe(
        "metrics.*", callback=lambda env: delivered.append(env.payload)
    )
    clk = {"t": 0.0}
    transport.clock = lambda: clk["t"]
    tick = 0
    seq = 0
    for n in schedule:
        for _ in range(n):
            metric = metric_names[seq % len(metric_names)]
            b = SeriesBatch(metric, [f"n{seq}"], [clk["t"]], [1.0])
            b.trace = TraceContext.start(clk["t"], tick=tick)
            transport.publish(f"metrics.{metric}", b, source=f"s{seq % 3}")
            seq += 1
        clk["t"] += TICK
        tick += 1
        transport.pump(now=clk["t"])
    # flush: advance past any coalescing window, pump until quiet
    for _ in range(8):
        clk["t"] += TICK
        transport.pump(now=clk["t"])
    for b in delivered:
        if b.trace is not None:
            b.trace.stamp(HOP_INGEST, clk["t"])
    return delivered


def assert_trace_invariants(batch):
    ctx = batch.trace
    assert ctx is not None
    assert ctx.is_monotone()
    # consecutive hop deltas telescope to end-to-end exactly (==)
    deltas = ctx.hop_latencies()
    assert sum(d for _, d in deltas) == ctx.end_to_end()
    assert all(d >= 0 for _, d in deltas)
    # stamps are integral multiples of the tick on the simulated clock
    assert all(t % TICK == 0 for _, t in
               [(h[0], h[1]) for h in ctx.hops])


def assert_codec_round_trip(batch):
    env = Envelope("metrics." + batch.metric, batch, source="t", seq=9)
    via_json = decode_json(encode_json(env)).payload.trace
    via_binary = decode_binary(encode_binary(env))[0].payload.trace
    assert via_json == batch.trace
    assert via_binary == batch.trace


class TestFlatTier:
    @given(schedule=schedules, names=st.lists(metrics, min_size=1,
                                              max_size=3, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_monotone_exact_and_codec_safe(self, schedule, names):
        delivered = drive(MessageBus(), schedule, names)
        assert len(delivered) == sum(schedule)
        for b in delivered:
            assert b.trace.path() == "collect->publish->ingest"
            assert_trace_invariants(b)
            assert_codec_round_trip(b)


class TestPartitionedTier:
    @given(schedule=schedules, names=st.lists(metrics, min_size=1,
                                              max_size=3, unique=True),
           partitions=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_exact_and_codec_safe(self, schedule, names,
                                           partitions):
        bus = PartitionedBus(partitions=partitions)
        delivered = drive(bus, schedule, names)
        assert len(delivered) == sum(schedule)
        for b in delivered:
            assert b.trace.path() == "collect->enqueue->pump->ingest"
            assert_trace_invariants(b)
            assert_codec_round_trip(b)


class TestTreeTier:
    @given(schedule=schedules, names=st.lists(metrics, min_size=1,
                                              max_size=3, unique=True),
           window=st.sampled_from([0.0, TICK, 3 * TICK]),
           leaf_queue_len=st.integers(min_value=2, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_merged_batches_stay_monotone_and_codec_safe(
            self, schedule, names, window, leaf_queue_len):
        """Coalesced (merged) contexts under tight leaf buffers — the
        overflow-eviction path — still bracket every surviving parent:
        monotone stamps, exact telescoping, codec round-trips."""
        tree = AggregatorTree(leaves=2, fan_in=2, window_s=window,
                               leaf_queue_len=leaf_queue_len)
        delivered = drive(tree, schedule, names)
        for b in delivered:
            ctx = b.trace
            assert ctx.path() == "collect->leaf->merge->root->ingest"
            assert_trace_invariants(b)
            assert_codec_round_trip(b)
            # merged hop counts never exceed the points that survived
            assert ctx.hops[0][3] >= 1
