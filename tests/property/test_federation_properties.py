"""Property-based tests: federated answers == the merged-store oracle.

The federated front end answers cross-site queries by folding each
site's series into partial columns and reducing them
(:func:`repro.storage.rollup.reduce_partials`); the invariant is that
the merged answer is *bit-exact* against the oracle of one store
holding every site's series under ``site/component`` names, answered
through the ordinary raw ``aggregate_across`` path.  Values are drawn
integer-valued (so float summation is associativity-independent) mixed
with NaN/±inf specials; equal timestamps across sites exercise the
``last``-agg tiebreak, which must reproduce the raw path's stable
concat order.  A downed site must degrade to an *accounted* partial
answer — the oracle then simply excludes that site's series.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metric import SeriesBatch
from repro.serve.federated import FederatedFrontend
from repro.serve.frontend import QueryFrontend
from repro.storage.rollup import DEFAULT_LEVELS
from repro.storage.tsdb import TimeSeriesStore

AGGS = ("mean", "sum", "min", "max", "last", "count")

#: sites in alphabetical order, so the federated site-major fan-out and
#: the merged store's sorted ``site/comp`` keys concatenate identically
SITES = ("alfa", "bravo", "charlie")

exact_values = st.one_of(
    st.integers(min_value=-(1 << 30), max_value=1 << 30).map(float),
    st.sampled_from([float("nan"), float("inf"), float("-inf"),
                     0.0, -0.0]),
)

times_ms = st.lists(
    st.integers(min_value=0, max_value=7_200_000),
    min_size=1, max_size=60,
).map(lambda ms: np.asarray(sorted(ms), dtype=np.float64) / 1000.0)

steps = st.sampled_from([10.0, 30.0, 60.0, 120.0, 600.0, 7.0, 77.0])

windows = st.tuples(
    st.floats(min_value=-100.0, max_value=7200.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=7300.0, allow_nan=False),
).map(lambda w: (min(w), max(w) + 1.0))


def _values(data, n):
    return np.asarray(
        data.draw(st.lists(exact_values, min_size=n, max_size=n)),
        dtype=np.float64,
    )


def _build(times, data, n_comps=2):
    """Per-site stores + frontends, and the merged single-store oracle.

    Every site gets the same timestamp grid (cross-site bucket overlap
    and equal-t ``last`` ties are the hard case) with independently
    drawn values; the merged store holds the same series under
    ``site/comp`` names.
    """
    frontends, merged = {}, TimeSeriesStore(chunk_size=16,
                                            pyramid_levels=DEFAULT_LEVELS)
    for site in SITES:
        store = TimeSeriesStore(chunk_size=16,
                                pyramid_levels=DEFAULT_LEVELS)
        for c in range(n_comps):
            v = _values(data, len(times))
            store.append(
                SeriesBatch.for_component("m.x", f"c{c}", times, v))
            merged.append(
                SeriesBatch.for_component("m.x", f"{site}/c{c}",
                                          times, v))
        frontends[site] = QueryFrontend(store)
    return FederatedFrontend(frontends), merged


def assert_batches_equal(got, want, ctx):
    assert np.array_equal(got.times, want.times), ctx
    assert np.array_equal(got.values, want.values, equal_nan=True), ctx


class TestFederatedEqualsMerged:
    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS),
           unbounded=st.booleans(), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_aggregate_across_matches_merged_store(
            self, times, step, window, agg, unbounded, data):
        fed, merged = _build(times, data)
        t0, t1 = (-np.inf, np.inf) if unbounded else window
        got = fed.aggregate_across("m.x", None, t0, t1, step, agg)
        want = merged.aggregate_across("m.x", None, t0, t1, step, agg)
        assert_batches_equal(got, want, (step, agg, t0, t1))
        assert fed.stats().partial_answers == 0

    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_downed_site_degrades_to_accounted_partial(
            self, times, step, window, agg, data):
        fed, _ = _build(times, data)
        # oracle for a degraded federation: the survivors' series only
        survivors = TimeSeriesStore(chunk_size=16,
                                    pyramid_levels=DEFAULT_LEVELS)
        for site in SITES:
            if site == "bravo":
                continue
            store = fed.frontends[site].store
            for key in store.keys("m.x"):
                b = store.query(key.metric, key.component)
                survivors.append(SeriesBatch.for_component(
                    "m.x", f"{site}/{key.component}", b.times, b.values))
        fed.mark_down("bravo")
        t0, t1 = window
        got = fed.aggregate_across("m.x", None, t0, t1, step, agg)
        want = survivors.aggregate_across("m.x", None, t0, t1, step, agg)
        assert_batches_equal(got, want, (step, agg, window))
        s = fed.stats()
        assert s.partial_answers == 1 and s.down == ("bravo",)
        # recovery: marked back up, the answer is complete again
        fed.mark_up("bravo")
        full = fed.aggregate_across("m.x", None, t0, t1, step, agg)
        assert fed.stats().partial_answers == 1
        assert len(full) >= len(got) or not len(want)

    @given(times=times_ms, step=steps, window=windows,
           agg=st.sampled_from(AGGS), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_downsample_routes_to_the_owning_site(
            self, times, step, window, agg, data):
        fed, _ = _build(times, data)
        t0, t1 = window
        got = fed.downsample("m.x", "bravo/c1", t0, t1, step, agg)
        want = fed.frontends["bravo"].store.downsample(
            "m.x", "c1", t0, t1, step, agg, prune=False)
        assert_batches_equal(got, want, (step, agg, window))

    @given(times=times_ms, data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_qualified_components_enumerate_every_site(self, times, data):
        fed, merged = _build(times, data)
        assert fed.components("m.x") == \
            [str(k.component) for k in merged.keys("m.x")]

    def test_unknown_agg_matches_raw_error(self):
        fed, _ = _build(np.array([1.0]), _FixedData())
        with pytest.raises(ValueError, match="unknown agg 'p99'"):
            fed.aggregate_across("m.x", None, agg="p99")
        with pytest.raises(ValueError, match="step must be positive"):
            fed.aggregate_across("m.x", None, step=0.0)


class _FixedData:
    """Stand-in for hypothesis ``data`` in the non-property error test."""

    def draw(self, strategy):
        return [1.0]
