"""Property-based tests: the disk tier never changes an answer.

Three invariants, each against an oracle that never touches disk:

* **segment round-trip is byte-identical** — a sealed blob written to a
  segment file and read back through the mmap decodes to the exact
  same arrays (values compared on their uint64 bit patterns, so NaN
  payloads and signed zeros count);
* **spilling is invisible** — demoting sealed chunks to disk-only refs
  at arbitrary points, then querying, produces bit-exact answers versus
  a never-spilled store fed the same appends (sharded included).
  Downsample comparisons hold the prune mode fixed on both sides:
  the pruned and raw paths differ by float summation order by design,
  so the oracle must take the same route;
* **a synced crash is invisible** — snapshot + fsync, hard-crash
  (files truncated to the synced extents), recover: every query
  answers exactly as before.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metric import SeriesBatch
from repro.storage.diskier import DiskTier, recover_store
from repro.storage.rollup import DEFAULT_LEVELS
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore, compress_chunk, decompress_chunk

#: full-float values including specials — round-trip compares bit
#: patterns, so arbitrary NaN payloads and -0.0 are in scope
any_values = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.sampled_from([0.0, -0.0, 1.0, 1.0, 1.0]),   # runs compress away
)

#: integer-valued floats + specials: aggregation-order independent, so
#: downsample oracles hold bit-exactly (same trick as the serving suite)
exact_values = st.one_of(
    st.integers(min_value=-(1 << 30), max_value=1 << 30).map(float),
    st.sampled_from([float("nan"), float("inf"), float("-inf"),
                     0.0, -0.0]),
)

#: millisecond-grid times; sometimes shuffled (out-of-order arrival)
times_ms = st.lists(
    st.integers(min_value=0, max_value=3_600_000),
    min_size=1, max_size=100,
).map(lambda ms: np.asarray(sorted(ms), dtype=np.float64) / 1000.0)


def _values(data, n, pool=exact_values):
    return np.asarray(data.draw(st.lists(pool, min_size=n, max_size=n)),
                      dtype=np.float64)


def bits_equal(a, b):
    return np.array_equal(np.asarray(a, dtype=np.float64).view(np.uint64),
                          np.asarray(b, dtype=np.float64).view(np.uint64))


class TestSegmentRoundTrip:
    @given(times=times_ms, shuffle=st.booleans(), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_blob_via_mmap_decodes_byte_identical(self, times, shuffle,
                                                  data):
        values = _values(data, len(times), pool=any_values)
        if shuffle and len(times) > 1:
            perm = data.draw(st.permutations(range(len(times))))
            times, values = times[list(perm)], values[list(perm)]
        blob = compress_chunk(times, values)
        mem_t, mem_v = decompress_chunk(blob)
        with tempfile.TemporaryDirectory() as d:
            tier = DiskTier(Path(d), hot_bytes=0)
            try:
                ref = tier.append_blob("m", "c", blob)
                tier.sync()
                view = tier.load(ref)
                assert bytes(view) == blob      # byte-identical storage
                disk_t, disk_v = decompress_chunk(view)
            finally:
                tier.close()
        assert np.array_equal(mem_t, disk_t)
        assert bits_equal(mem_v, disk_v)


class TestSpillIsInvisible:
    @given(times=times_ms, spill_after=st.integers(0, 3),
           cut=st.floats(min_value=0.0, max_value=3700.0,
                         allow_nan=False),
           step=st.sampled_from([10.0, 60.0, 77.0, 600.0]),
           agg=st.sampled_from(["mean", "sum", "min", "max", "last",
                                "count"]),
           data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_spilled_store_answers_like_memory(self, times, spill_after,
                                               cut, step, agg, data):
        n = len(times)
        chunks = [("m.x", "c0", times, _values(data, n)),
                  ("m.x", "c1", times[: n // 2 + 1],
                   _values(data, n // 2 + 1)),
                  ("m.y", "c0", times[n // 2:],
                   _values(data, n - n // 2)),
                  ("m.x", "c0", times, _values(data, n))]
        oracle = TimeSeriesStore(chunk_size=8,
                                 pyramid_levels=DEFAULT_LEVELS)
        with tempfile.TemporaryDirectory() as d:
            store = TimeSeriesStore(
                chunk_size=8, pyramid_levels=DEFAULT_LEVELS,
                disk=DiskTier(Path(d), hot_bytes=1 << 9),
            )
            for i, (m, c, t, v) in enumerate(chunks):
                b = SeriesBatch.for_component(m, c, t, v)
                ob = SeriesBatch.for_component(m, c, t, v)
                store.append(b)
                oracle.append(ob)
                if i == spill_after:
                    # demotion at an arbitrary mid-ingest point
                    for key in store.keys("m.x"):
                        store.evict_chunks_before(key, cut)
            for m, c in (("m.x", "c0"), ("m.x", "c1"), ("m.y", "c0")):
                got, want = store.query(m, c), oracle.query(m, c)
                assert np.array_equal(got.times, want.times)
                assert bits_equal(got.values, want.values)
                for prune in (False, True):
                    g = store.downsample(m, c, 0.0, 3700.0, step, agg,
                                         prune=prune)
                    w = oracle.downsample(m, c, 0.0, 3700.0, step, agg,
                                          prune=prune)
                    assert np.array_equal(g.times, w.times), (agg, prune)
                    assert np.array_equal(g.values, w.values,
                                          equal_nan=True), (agg, prune)

    @given(times=times_ms,
           step=st.sampled_from([10.0, 60.0, 77.0]),
           agg=st.sampled_from(["mean", "sum", "min", "max", "count"]),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_sharded_spilled_matches_sharded_memory(self, times, step,
                                                    agg, data):
        with tempfile.TemporaryDirectory() as d:
            spilled = ShardedTimeSeriesStore(
                shards=3, chunk_size=8, pyramid_levels=DEFAULT_LEVELS,
                disk_dir=d, hot_bytes=1 << 9,
            )
            oracle = ShardedTimeSeriesStore(
                shards=3, chunk_size=8, pyramid_levels=DEFAULT_LEVELS,
            )
            for i in range(4):
                v = _values(data, len(times))
                for s in (spilled, oracle):
                    s.append(SeriesBatch.for_component(
                        "m.x", f"c{i}", times, v))
            for i in range(4):
                got = spilled.query("m.x", f"c{i}")
                want = oracle.query("m.x", f"c{i}")
                assert np.array_equal(got.times, want.times)
                assert bits_equal(got.values, want.values)
                g = spilled.downsample("m.x", f"c{i}", 0.0, 3700.0,
                                       step, agg, prune=True)
                w = oracle.downsample("m.x", f"c{i}", 0.0, 3700.0,
                                      step, agg, prune=True)
                assert np.array_equal(g.times, w.times)
                assert np.array_equal(g.values, w.values, equal_nan=True)


class TestCrashRecovery:
    @given(times=times_ms,
           step=st.sampled_from([10.0, 60.0, 77.0]),
           agg=st.sampled_from(["mean", "sum", "min", "max", "count"]),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_synced_crash_preserves_every_answer(self, times, step, agg,
                                                 data):
        with tempfile.TemporaryDirectory() as d:
            store = TimeSeriesStore(
                chunk_size=8, pyramid_levels=DEFAULT_LEVELS,
                disk=DiskTier(Path(d), hot_bytes=1 << 9),
            )
            half = len(times) // 2
            store.append(SeriesBatch.for_component(
                "m.x", "c0", times[:half], _values(data, half)))
            store.snapshot()
            store.append(SeriesBatch.for_component(
                "m.x", "c0", times[half:],
                _values(data, len(times) - half)))
            store.flush()                       # fsync past the snapshot
            want_q = store.query("m.x", "c0")
            want_ds = {prune: store.downsample("m.x", "c0", 0.0, 3700.0,
                                               step, agg, prune=prune)
                       for prune in (False, True)}
            store.disk.simulate_crash()
            recovered, _ = recover_store(Path(d), hot_bytes=1 << 9)
            got = recovered.query("m.x", "c0")
            assert np.array_equal(got.times, want_q.times)
            assert bits_equal(got.values, want_q.values)
            for prune in (False, True):
                g = recovered.downsample("m.x", "c0", 0.0, 3700.0, step,
                                         agg, prune=prune)
                w = want_ds[prune]
                assert np.array_equal(g.times, w.times), prune
                assert np.array_equal(g.values, w.values,
                                      equal_nan=True), prune
