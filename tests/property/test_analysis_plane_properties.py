"""Property-based tests: columnar detector kernels == scalar references.

The streaming analysis plane consumes whole sweeps through numpy
kernels over struct-of-arrays state; the original per-sample
implementations are retained (``Scalar*`` classes, ``*_slow``
functions) precisely so hypothesis can hold the two equivalent over
adversarial inputs — NaN/±inf values, duplicate components,
out-of-order times, single-sample batches — the same discipline PR 3
applied to the storage codec.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.anomaly import (
    CusumDetector,
    EwmaDetector,
    ThresholdDetector,
    _sweep_outliers_slow,
    sweep_outliers,
)
from repro.analysis.stats import (
    _ewma_slow,
    _rolling_mean_slow,
    ewma,
    rolling_mean,
)
from repro.analysis.streaming import (
    ScalarStreamingRateWatch,
    ScalarStreamingStats,
    StreamingRateWatch,
    StreamingStats,
)
from repro.core.metric import SeriesBatch

# small component pool => plenty of duplicate components within a batch
comp_pool = [f"n{i}" for i in range(12)]


def _float_eq(a: float, b: float) -> bool:
    return a == b or (np.isnan(a) and np.isnan(b))


def same_detections(xs, ys) -> bool:
    """Detection-list equality with NaN-aware float fields.

    Dataclass ``==`` uses raw float equality, so two *identical*
    detections carrying a NaN time compare unequal; this is the
    equality the equivalence properties actually mean."""
    if len(xs) != len(ys):
        return False
    return all(
        (x.metric, x.component, x.kind, x.detail)
        == (y.metric, y.component, y.kind, y.detail)
        and _float_eq(x.time, y.time)
        and _float_eq(x.score, y.score)
        for x, y in zip(xs, ys)
    )

finite_vals = st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-1e6, max_value=1e6)
# adversarial values: finite bulk laced with NaN and both infinities
adversarial_vals = st.one_of(
    finite_vals,
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
)
# times may be out of order, repeated, or NaN
adversarial_times = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=0.0, max_value=1e6),
    st.just(float("nan")),
)


@st.composite
def batches(draw, metric="m", min_size=1, max_size=24,
            values=adversarial_vals, times=adversarial_times,
            unique_comps=False):
    n = draw(st.integers(min_size, max_size))
    if unique_comps:
        comps = draw(st.lists(st.sampled_from(comp_pool), min_size=n,
                              max_size=n, unique=True))
    else:
        comps = draw(st.lists(st.sampled_from(comp_pool),
                              min_size=n, max_size=n))
    t = draw(st.lists(times, min_size=n, max_size=n))
    v = draw(st.lists(values, min_size=n, max_size=n))
    return SeriesBatch(metric, np.array(comps, dtype=object),
                       np.array(t), np.array(v))


def _m2_tol(values: list[float]) -> float:
    """Absolute tolerance for comparing m2 accumulated two ways.

    Welford-sequential vs grouped two-pass agree to a few ulps of the
    *magnitude flowing through the sum*, not of the final m2 (which
    cancellation can make arbitrarily small)."""
    finite = [abs(x) for x in values if np.isfinite(x)]
    scale = max(finite, default=1.0) or 1.0
    # floor: near the subnormal range the scaled tolerance underflows
    # below one ulp, so a last-bit difference would spuriously fail
    return max(1e-9 * max(1.0, len(finite)) * scale * scale, 1e-300)


class TestStreamingStatsEquivalence:
    @given(bs=st.lists(batches(), min_size=1, max_size=5))
    @settings(max_examples=150, deadline=None)
    def test_moments_match_scalar(self, bs):
        fast, slow = StreamingStats(), ScalarStreamingStats()
        seen_values: dict[tuple[str, str], list[float]] = {}
        for b in bs:
            fast.observe(b)
            slow.observe(b)
            for c, v in zip(b.components.tolist(), b.values.tolist()):
                seen_values.setdefault((b.metric, str(c)), []).append(v)
        assert fast.batches_seen == slow.batches_seen
        assert fast.series_count() == slow.series_count()
        for key, ref in slow._moments.items():
            got = fast.get(key.metric, key.component)
            assert got is not None
            vals = seen_values[(key.metric, key.component)]
            assert got.n == ref.n
            assert np.isclose(got.mean, ref.mean, rtol=1e-9,
                              atol=1e-9 * max(1.0, abs(ref.mean)))
            assert np.isclose(got.m2, ref.m2, rtol=1e-7,
                              atol=_m2_tol(vals))
            assert got.minimum == ref.minimum
            assert got.maximum == ref.maximum

    @given(b=batches(values=st.sampled_from(
        [float("nan"), float("inf"), float("-inf")])))
    @settings(max_examples=50, deadline=None)
    def test_nonfinite_only_batches_register_but_never_poison(self, b):
        fast = StreamingStats()
        fast.observe(b)
        # every component exists; none accumulated a sample
        for c in set(b.components.tolist()):
            m = fast.get(b.metric, str(c))
            assert m is not None and m.n == 0 and m.m2 == 0.0
        # a later finite batch lands on clean state
        comps = np.array(sorted(set(b.components.tolist())), dtype=object)
        fast.observe(SeriesBatch(b.metric, comps,
                                 np.zeros(len(comps)),
                                 np.full(len(comps), 5.0)))
        for c in comps.tolist():
            m = fast.get(b.metric, str(c))
            assert m.n == 1 and m.mean == 5.0 and m.m2 == 0.0


class TestSweepOutliersEquivalence:
    @given(b=batches(min_size=1, max_size=40),
           z=st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=200, deadline=None)
    def test_exact_detection_equality(self, b, z):
        assert same_detections(sweep_outliers(b, z_threshold=z),
                               _sweep_outliers_slow(b, z_threshold=z))


class TestRateWatchEquivalence:
    @given(bs=st.lists(batches(metric="ctr", max_size=16),
                       min_size=1, max_size=5),
           max_rate=st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=150, deadline=None)
    def test_exact_detection_equality(self, bs, max_rate):
        fast = StreamingRateWatch("ctr", max_rate)
        slow = ScalarStreamingRateWatch("ctr", max_rate)
        for b in bs:
            fast.observe(b)
            slow.observe(b)
        assert same_detections(fast.drain(), slow.drain())
        assert fast.detections_total == slow.detections_total


class TestThresholdDetectorEquivalence:
    @given(bs=st.lists(batches(max_size=16), min_size=1, max_size=4),
           threshold=st.floats(min_value=-100.0, max_value=100.0),
           above=st.booleans(),
           clear_fraction=st.floats(min_value=0.5, max_value=1.2))
    @settings(max_examples=150, deadline=None)
    def test_exact_detection_equality(self, bs, threshold, above,
                                      clear_fraction):
        fast = ThresholdDetector("m", threshold, above=above,
                                 clear_fraction=clear_fraction)
        slow = ThresholdDetector("m", threshold, above=above,
                                 clear_fraction=clear_fraction)
        for b in bs:
            assert same_detections(fast.check(b), slow._check_slow(b))
            assert fast._firing == slow._firing


# series detectors look at one component's history: unique times not
# required, but a single repeated component name is the realistic shape
@st.composite
def series_batches(draw, values, min_size=1, max_size=64):
    n = draw(st.integers(min_size, max_size))
    v = draw(st.lists(values, min_size=n, max_size=n))
    return SeriesBatch("m", np.array(["c"] * n, dtype=object),
                       np.arange(float(n)), np.array(v))


class TestEwmaDetectorEquivalence:
    @given(b=series_batches(values=adversarial_vals),
           alpha=st.floats(min_value=0.05, max_value=1.0),
           warmup=st.integers(0, 12))
    @settings(max_examples=150, deadline=None)
    def test_exact_detection_equality(self, b, alpha, warmup):
        det = EwmaDetector(alpha=alpha, warmup=warmup)
        assert same_detections(det.detect(b), det._detect_slow(b))


class TestCusumEquivalence:
    # coarse value grid: the reflected-walk cumsum and the sequential
    # clamped recurrence agree to ~ulps, so values are kept on a lattice
    # where threshold crossings cannot flip on the last bit
    coarse = st.one_of(
        st.integers(-512, 512).map(lambda i: i / 16.0),
        st.just(float("nan")),
    )

    @given(b=series_batches(values=coarse, max_size=96),
           k=st.floats(min_value=0.1, max_value=1.0),
           h=st.floats(min_value=1.0, max_value=8.0),
           warmup=st.integers(2, 12))
    @settings(max_examples=200, deadline=None)
    def test_detections_match_scalar(self, b, k, h, warmup):
        det = CusumDetector(k=k, h=h, warmup=warmup)
        fast, slow = det.detect(b), det._detect_slow(b)
        assert len(fast) == len(slow)
        for f, s in zip(fast, slow):
            assert f.time == s.time
            assert f.kind == s.kind
            assert f.detail == s.detail
            assert np.isclose(f.score, s.score, rtol=1e-9, atol=1e-9)


class TestStatsKernels:
    @given(v=st.lists(finite_vals, min_size=0, max_size=300),
           alpha=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_ewma_matches_scalar(self, v, alpha):
        x = np.array(v)
        assert np.allclose(ewma(x, alpha), _ewma_slow(x, alpha),
                           rtol=1e-9, atol=1e-9, equal_nan=True)

    @given(v=st.lists(st.one_of(finite_vals, st.just(float("nan"))),
                      min_size=1, max_size=200),
           alpha=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_ewma_nan_propagation_matches_scalar(self, v, alpha):
        x = np.array(v)
        a, b = ewma(x, alpha), _ewma_slow(x, alpha)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        m = ~np.isnan(a)
        assert np.allclose(a[m], b[m], rtol=1e-9, atol=1e-9)

    @given(v=st.lists(finite_vals, min_size=0, max_size=300),
           window=st.integers(1, 50))
    @settings(max_examples=150, deadline=None)
    def test_rolling_mean_matches_scalar(self, v, window):
        x = np.array(v)
        assert np.allclose(rolling_mean(x, window),
                           _rolling_mean_slow(x, window),
                           rtol=1e-12, atol=1e-12, equal_nan=True)
