"""Property-based tests: wire codecs round-trip arbitrary payloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.transport.message import (
    Envelope,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
)

# printable-ish text including unicode, excluding surrogates
texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=0,
    max_size=80,
)

events = st.builds(
    Event,
    time=st.floats(allow_nan=False, allow_infinity=False,
                   min_value=0, max_value=1e9),
    component=texts.filter(lambda s: "\n" not in s),
    kind=st.sampled_from(list(EventKind)),
    severity=st.sampled_from(list(Severity)),
    message=texts,
    fields=st.dictionaries(
        st.text(min_size=1, max_size=20), st.integers(-10**9, 10**9),
        max_size=4,
    ),
)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e15, max_value=1e15)
batches = st.builds(
    lambda comps, times, values: SeriesBatch(
        "m.x", comps[: min(len(comps), len(times), len(values))],
        times[: min(len(comps), len(times), len(values))],
        values[: min(len(comps), len(times), len(values))],
    ),
    comps=st.lists(texts.filter(lambda s: "," not in s and "\n" not in s),
                   min_size=0, max_size=20),
    times=st.lists(finite, min_size=0, max_size=20),
    values=st.lists(finite, min_size=0, max_size=20),
)


class TestEventCodecs:
    @given(ev=events, topic=texts.filter(bool), seq=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_json_round_trip(self, ev, topic, seq):
        env = Envelope(topic, ev, source="t", seq=seq)
        out = decode_json(encode_json(env))
        assert out.topic == topic
        assert out.seq == seq
        assert out.payload == ev

    @given(ev=events, topic=texts.filter(bool), seq=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_binary_round_trip(self, ev, topic, seq):
        env = Envelope(topic, ev, source="erd", seq=seq)
        out, rest = decode_binary(encode_binary(env))
        assert rest == b""
        assert out.topic == topic
        assert out.payload == ev

    @given(evs=st.lists(events, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_binary_stream_framing(self, evs):
        stream = b"".join(
            encode_binary(Envelope(f"t{i}", e, seq=i))
            for i, e in enumerate(evs)
        )
        decoded = []
        rest = stream
        while rest:
            env, rest = decode_binary(rest)
            decoded.append(env.payload)
        assert decoded == evs


class TestBatchCodecs:
    @given(batch=batches)
    @settings(max_examples=200, deadline=None)
    def test_json_round_trip(self, batch):
        env = Envelope("metrics", batch)
        out = decode_json(encode_json(env))
        got = out.payload
        assert isinstance(got, SeriesBatch)
        assert got.metric == batch.metric
        assert [str(c) for c in got.components] == [
            str(c) for c in batch.components
        ]
        assert np.allclose(got.times, batch.times)
        assert np.allclose(got.values, batch.values)
