"""Property-based tests: response and transport conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind, Severity
from repro.response.sec import PairRule, SecEngine
from repro.storage.jobstore import JobIndex
from repro.transport.bus import MessageBus
from repro.transport.syslogfwd import SyslogForwarder


def ev(t, msg, comp="n0"):
    return Event(float(t), comp, EventKind.CONSOLE, Severity.INFO, msg)


# -- pair rule: every armed watch resolves exactly once --------------------------

pair_script = st.lists(
    st.tuples(
        st.integers(0, 1000),                   # time
        st.sampled_from(["fail", "restore", "noise"]),
        st.sampled_from(["r0", "r1", "r2"]),    # component
    ),
    min_size=0,
    max_size=60,
).map(lambda evs: sorted(evs, key=lambda e: e[0]))


class TestPairRuleProperties:
    @given(script=pair_script, window=st.integers(1, 200))
    @settings(max_examples=200, deadline=None)
    def test_each_failure_resolves_at_most_once(self, script, window):
        """Per component, consecutive fail..restore/timeout episodes
        produce exactly one completion or one timeout, never both."""
        eng = SecEngine([
            PairRule("watch", r"fail", r"restore", float(window),
                     timeout_action="timeout",
                     completion_action="completed"),
        ])
        for t, kind, comp in script:
            eng.feed([ev(t, kind, comp)])
        eng.tick(2000.0 + window)   # flush any armed watches

        # count episodes per component from the script semantics
        for comp in ("r0", "r1", "r2"):
            armed = False
            episodes = 0
            for t, kind, c in script:
                if c != comp:
                    continue
                # timeouts that SEC applies lazily: emulate arming rules
                if kind == "fail" and not armed:
                    armed = True
                    episodes += 1
                elif kind == "restore" and armed:
                    armed = False
                # NOTE: SEC also re-arms after its own timeout expiry,
                # which this simple emulation does not track; so we only
                # check the weaker invariant below.
            outcomes = [
                r for r in eng.requests if r.component == comp
            ]
            completions = sum(1 for r in outcomes
                              if r.action == "completed")
            timeouts = sum(1 for r in outcomes if r.action == "timeout")
            fails = sum(1 for t, k, c in script
                        if c == comp and k == "fail")
            # resolutions never exceed failures seen
            assert completions + timeouts <= fails

    @given(window=st.integers(1, 100), gap=st.integers(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_single_episode_exact_outcome(self, window, gap):
        eng = SecEngine([
            PairRule("watch", r"fail", r"restore", float(window),
                     timeout_action="timeout",
                     completion_action="completed"),
        ])
        eng.feed([ev(0, "fail")])
        eng.feed([ev(gap, "restore")])
        eng.tick(1000.0 + window)
        actions = [r.action for r in eng.requests]
        if gap <= window:
            assert actions == ["completed"]
        else:
            assert actions == ["timeout"]


# -- syslog forwarder: message conservation ------------------------------------------

burst_script = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 50)),  # (time, n msgs)
    min_size=1,
    max_size=20,
).map(lambda b: sorted(b, key=lambda x: x[0]))


class TestForwarderConservation:
    @given(script=burst_script,
           rate=st.floats(min_value=1.0, max_value=100.0),
           burst=st.integers(1, 50),
           retry=st.integers(1, 50))
    @settings(max_examples=200, deadline=None)
    def test_offered_equals_forwarded_plus_dropped_plus_pending(
        self, script, rate, burst, retry
    ):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=rate, burst=burst,
                              retry_buffer=retry)
        offered = 0
        for t, n in script:
            events = [ev(t, f"m{i}") for i in range(n)]
            offered += n
            fwd.forward(float(t), events)
        s = fwd.stats()
        assert s.offered == offered
        # conservation: nothing vanishes, nothing is duplicated
        assert s.offered == (
            (s.forwarded - s.retried) + s.dropped + fwd.pending()
        ) + s.retried
        assert len(sink) == s.forwarded


# -- bus: per-subscription accounting ---------------------------------------------------

class TestBusConservation:
    @given(n=st.integers(0, 500), maxlen=st.integers(1, 100))
    @settings(max_examples=100, deadline=None)
    def test_received_equals_drained_plus_dropped(self, n, maxlen):
        bus = MessageBus()
        sub = bus.subscribe("t", maxlen=maxlen)
        for i in range(n):
            bus.publish("t", i)
        drained = sub.drain()
        assert sub.received == n
        assert len(drained) + sub.dropped == n
        # drop-oldest: whatever survived is the newest suffix
        assert [e.payload for e in drained] == list(range(n))[-maxlen:][
            : len(drained)
        ]


# -- job index: tenancy is consistent ------------------------------------------------------

tenures = st.lists(
    st.tuples(st.integers(0, 100), st.integers(1, 100)),  # (start, dur)
    min_size=1,
    max_size=30,
)


class TestJobIndexProperties:
    @given(tenures=tenures)
    @settings(max_examples=100, deadline=None)
    def test_active_at_matches_interval_semantics(self, tenures):
        idx = JobIndex()
        for k, (start, dur) in enumerate(tenures):
            idx.record_start(k + 1, "app", [f"n{k}"], float(start))
            idx.record_end(k + 1, float(start + dur))
        for probe in (0.0, 25.0, 50.0, 99.0, 150.0):
            active = {a.job_id for a in idx.jobs_active_at(probe)}
            expected = {
                k + 1
                for k, (s, d) in enumerate(tenures)
                if s <= probe < s + d
            }
            assert active == expected

    @given(tenures=tenures)
    @settings(max_examples=100, deadline=None)
    def test_node_lookup_agrees_with_active(self, tenures):
        idx = JobIndex()
        for k, (start, dur) in enumerate(tenures):
            idx.record_start(k + 1, "app", [f"n{k}"], float(start))
            idx.record_end(k + 1, float(start + dur))
        for k, (s, d) in enumerate(tenures):
            mid = s + d / 2
            alloc = idx.job_on_node_at(f"n{k}", mid)
            assert alloc is not None and alloc.job_id == k + 1
            after = idx.job_on_node_at(f"n{k}", s + d + 0.5)
            assert after is None
