"""Property-based tests: analysis and viz invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlate import cluster_events, order_accuracy
from repro.analysis.stats import mad, robust_zscores
from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.response.sec import SecEngine, ThresholdRule
from repro.viz.render import from_csv, to_csv
from repro.viz.series import condense, resample

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


class TestStatsProperties:
    # quantized values: exactly representable before and after the shift,
    # so the invariance is about the algorithm, not float rounding
    quantized = st.integers(-10**9, 10**9).map(lambda n: n * 1e-3)

    @given(st.lists(quantized, min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_robust_z_shift_invariant(self, values):
        x = np.asarray(values)
        z1 = robust_zscores(x)
        z2 = robust_zscores(x + 1024.0)
        assert np.allclose(z1, z2, rtol=1e-6, atol=1e-6)

    # power-of-two scales: float multiplication is exact, so the
    # invariance is about the algorithm, not rounding of x * scale
    # (arbitrary scales perturb near-cancelling spreads, e.g. two
    # values at 1e12 differing by ~1 ulp-of-spread)
    pow2 = st.integers(-8, 8).map(lambda k: 2.0 ** k)

    @given(st.lists(finite, min_size=2, max_size=200), pow2)
    @settings(max_examples=200, deadline=None)
    def test_robust_z_scale_invariant(self, values, scale):
        x = np.asarray(values)
        z1 = robust_zscores(x)
        z2 = robust_zscores(x * scale)
        assert np.allclose(z1, z2, atol=1e-6)

    @given(st.lists(finite, min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_mad_nonnegative(self, values):
        assert mad(np.asarray(values)) >= 0.0


event_times = st.lists(st.integers(0, 10**6), min_size=1, max_size=80)


def make_events(times_ms):
    return [
        Event(t / 1000.0, "n0", EventKind.CONSOLE, Severity.INFO, "x")
        for t in sorted(times_ms)
    ]


class TestClusteringProperties:
    @given(event_times, st.floats(min_value=0.001, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_partition_property(self, times_ms, gap):
        events = make_events(times_ms)
        incidents = cluster_events(events, gap_s=gap)
        # every event in exactly one incident
        total = sum(i.size for i in incidents)
        assert total == len(events)
        # incidents time-ordered and separated by more than gap
        for a, b in zip(incidents, incidents[1:]):
            assert b.t_start - a.t_end > gap

    @given(event_times)
    @settings(max_examples=100, deadline=None)
    def test_zero_drift_order_accuracy_is_one(self, times_ms):
        events = make_events(times_ms)
        assert order_accuracy(events, events) == 1.0


class TestResampleCondenseProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 999), finite),
                 min_size=1, max_size=100),
        st.integers(1, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_resample_sum_conserves_total(self, pts, step):
        b = SeriesBatch.for_component(
            "m", "c", [t for t, _ in pts], [v for _, v in pts]
        )
        r = resample(b, 0.0, 1000.0, float(step), agg="sum")
        total = np.nansum(r.values)
        assert np.isclose(total, sum(v for _, v in pts),
                          rtol=1e-9, atol=1e-6)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.lists(st.tuples(st.integers(0, 999), finite),
                     min_size=1, max_size=30),
            min_size=1,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_condense_sum_matches_manual_recomputation(self, data):
        per = {
            k: SeriesBatch.for_component("m", k, [t for t, _ in pts],
                                         [v for _, v in pts])
            for k, pts in data.items()
        }
        c = condense(per, 0.0, 1000.0, 100.0, agg="sum")
        # oracle: per bucket, sum over components of the mean of that
        # component's samples falling in the bucket (absent -> skipped)
        for bi in range(10):
            lo, hi = bi * 100.0, (bi + 1) * 100.0
            expected = 0.0
            any_present = False
            for pts in data.values():
                in_bucket = [v for t, v in pts if lo <= t < hi]
                if in_bucket:
                    any_present = True
                    expected += float(np.mean(in_bucket))
            if any_present:
                assert np.isclose(c.values[bi], expected,
                                  rtol=1e-9, atol=1e-6)
            else:
                assert np.isnan(c.values[bi])


class TestCsvProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10**6), finite),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, pts):
        b = SeriesBatch.for_component(
            "metric.x", "comp-1",
            [t / 1000.0 for t, _ in pts], [v for _, v in pts],
        )
        back = from_csv(to_csv({"s": b}))
        out = back["metric.x@comp-1"]
        assert np.allclose(out.times, b.times)
        assert np.allclose(out.values, b.values)


class TestSecProperties:
    @given(
        n_events=st.integers(0, 60),
        count=st.integers(1, 10),
        window_ds=st.integers(1, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_rule_fire_count(self, n_events, count, window_ds):
        """Events arrive 1 s apart; a (count, window) rule fires exactly
        floor-wise per re-armed group when the window covers them."""
        window = float(window_ds)
        eng = SecEngine(
            [ThresholdRule("r", r"x", count, window, "alert")]
        )
        events = [
            Event(float(i), "n0", EventKind.CONSOLE, Severity.INFO, "x")
            for i in range(n_events)
        ]
        fired = eng.feed(events)
        if window >= count - 1:
            # every `count` consecutive events fire once, then re-arm
            assert len(fired) == n_events // count
        else:
            # window too small to ever hold `count` events 1 s apart
            assert fired == []
