"""Unit tests for application profiles and jobs."""

import pytest

from repro.cluster.workload import (
    APP_LIBRARY,
    AppProfile,
    CommPattern,
    Job,
    JobGenerator,
    JobState,
    Phase,
)


class TestAppProfile:
    def test_phase_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            AppProfile("bad", phases=(Phase(0.5), Phase(0.3)))

    def test_weights_must_fit(self):
        with pytest.raises(ValueError, match="<= 1"):
            AppProfile(
                "bad",
                phases=(Phase(1.0),),
                comm_weight=0.6,
                io_weight=0.6,
            )

    def test_phase_at_boundaries(self):
        app = AppProfile(
            "p", phases=(Phase(0.5, cpu_util=0.1), Phase(0.5, cpu_util=0.9))
        )
        assert app.phase_at(0.0).cpu_util == 0.1
        assert app.phase_at(0.49).cpu_util == 0.1
        assert app.phase_at(0.51).cpu_util == 0.9
        assert app.phase_at(1.0).cpu_util == 0.9  # clamped past the end

    def test_library_profiles_valid(self):
        assert {"lammps", "qmc", "cfd_fft", "climate", "genomics"} <= set(
            APP_LIBRARY
        )


def make_job(app_name="qmc", n=4, seed=0, **kw):
    return Job(APP_LIBRARY[app_name], n, submit_time=0.0, seed=seed, **kw)


class TestJobLifecycle:
    def test_start_assigns_nodes(self):
        j = make_job()
        j.start(10.0, ["a", "b", "c", "d"])
        assert j.state is JobState.RUNNING
        assert j.start_time == 10.0
        assert len(j.node_util_scale) == 4

    def test_cannot_start_twice(self):
        j = make_job()
        j.start(0.0, ["a"] * 4)
        with pytest.raises(RuntimeError):
            j.start(1.0, ["a"] * 4)

    def test_runtime_computed(self):
        j = make_job()
        j.start(100.0, ["a"] * 4)
        j.finish(400.0)
        assert j.runtime == 300.0
        assert j.state is JobState.COMPLETED

    def test_progress_to_done(self):
        j = make_job()
        j.start(0.0, ["a"] * 4)
        steps = 0
        while not j.done and steps < 100000:
            j.advance(60.0)
            steps += 1
        assert j.done
        # uncontended runtime should be near the app's nominal work
        assert steps * 60.0 == pytest.approx(j.work_seconds, rel=0.05)

    def test_contention_slows_progress(self):
        app = APP_LIBRARY["cfd_fft"]  # comm_weight 0.55
        j1 = Job(app, 4, 0.0, seed=1)
        j2 = Job(app, 4, 0.0, seed=1)
        j1.start(0.0, ["a"] * 4)
        j2.start(0.0, ["a"] * 4)
        j1.advance(100.0, comm_eff=1.0)
        j2.advance(100.0, comm_eff=0.2)
        assert j2.progress < j1.progress
        # slowdown bounded by comm_weight
        assert j2.progress >= j1.progress * (1 - app.comm_weight)

    def test_runtime_noise_repeatable_per_seed(self):
        a = Job(APP_LIBRARY["qmc"], 4, 0.0, seed=5, job_id=77)
        b = Job(APP_LIBRARY["qmc"], 4, 0.0, seed=5, job_id=77)
        assert a.work_seconds == b.work_seconds


class TestImbalance:
    def test_imbalance_requires_running(self):
        j = make_job()
        with pytest.raises(RuntimeError):
            j.inject_imbalance(0.3)

    def test_imbalance_shape(self):
        j = make_job(n=10)
        j.start(0.0, [f"n{i}" for i in range(10)])
        j.inject_imbalance(frac_busy=0.3, wait_util=0.2)
        assert (j.node_util_scale[:3] == 1.0).all()
        assert (j.node_util_scale[3:] == 0.2).all()

    def test_imbalance_slows_progress(self):
        j = make_job(n=10)
        j.start(0.0, [f"n{i}" for i in range(10)])
        j.advance(100.0)
        p_before = j.progress
        j.inject_imbalance(frac_busy=0.3, wait_util=0.1)
        j.advance(100.0)
        assert (j.progress - p_before) < p_before * 0.6

    def test_clear_imbalance(self):
        j = make_job(n=10)
        j.start(0.0, [f"n{i}" for i in range(10)])
        j.inject_imbalance(0.3)
        j.clear_imbalance()
        assert (j.node_util_scale == 1.0).all()

    def test_demanded_util_reflects_imbalance(self):
        j = make_job(n=10)
        j.start(0.0, [f"n{i}" for i in range(10)])
        j.inject_imbalance(0.3, wait_util=0.1)
        util = j.demanded_util()
        assert util[:3].mean() > 5 * util[3:].mean()


class TestTrafficPatterns:
    def nodes(self, n):
        return [f"n{i}" for i in range(n)]

    def start(self, app_name, n):
        j = make_job(app_name, n)
        j.start(0.0, self.nodes(n))
        # push into the comm-heavy phase
        j.progress = j.work_seconds * 0.5
        return j

    def test_ring_flow_count(self):
        j = self.start("qmc", 8)
        flows = j.flows(1.0)
        assert len(flows) == 8
        # each node sends to its ring successor
        assert flows[0].src == "n0" and flows[0].dst == "n1"

    def test_halo3d_six_exchanges_per_node(self):
        j = self.start("lammps", 8)
        flows = j.flows(1.0)
        assert len(flows) == 8 * 6

    def test_alltoall_bounded_pairs(self):
        j = self.start("cfd_fft", 64)
        flows = j.flows(1.0, max_pairs=32)
        assert len(flows) <= 32
        # volume conserved: total bytes equals per-node rate * n * dt
        phase = j.app.phase_at(0.5)
        assert sum(f.bytes for f in flows) == pytest.approx(
            phase.comm_Bps * 64, rel=1e-6
        )

    def test_no_comm_phase_no_flows(self):
        j = make_job("genomics", 4)
        j.start(0.0, self.nodes(4))
        assert j.flows(1.0) == []

    def test_single_node_no_flows(self):
        j = self.start("qmc", 1)
        assert j.flows(1.0) == []


class TestIODemand:
    def test_checkpoint_phase_writes(self):
        j = make_job("climate", 8)
        j.start(0.0, [f"n{i}" for i in range(8)])
        j.progress = j.work_seconds * 0.23  # inside first checkpoint phase
        d = j.io_demand(1.0, n_ost=16)
        assert d is not None
        assert d.write_bytes > 0
        assert d.job_id == j.id

    def test_compute_phase_no_io(self):
        j = make_job("qmc", 4)
        j.start(0.0, ["a"] * 4)
        j.progress = j.work_seconds * 0.5
        assert j.io_demand(1.0, n_ost=16) is None

    def test_stripe_within_bounds(self):
        j = make_job("genomics", 32)
        j.start(0.0, [f"n{i}" for i in range(32)])
        d = j.io_demand(1.0, n_ost=8)
        assert d is not None
        assert all(0 <= o < 8 for o in d.stripe)


class TestJobGenerator:
    def test_poisson_arrivals_deterministic(self):
        g1 = JobGenerator(mean_interarrival_s=60, seed=9)
        g2 = JobGenerator(mean_interarrival_s=60, seed=9)
        j1 = g1.poll(3600)
        j2 = g2.poll(3600)
        assert len(j1) == len(j2)
        assert [j.app.name for j in j1] == [j.app.name for j in j2]

    def test_arrival_rate_roughly_matches(self):
        g = JobGenerator(mean_interarrival_s=60, seed=1)
        jobs = g.poll(36000)
        assert 400 < len(jobs) < 800  # ~600 expected

    def test_poll_is_incremental(self):
        g = JobGenerator(mean_interarrival_s=60, seed=2)
        first = g.poll(1800)
        second = g.poll(3600)
        assert all(j.submit_time > 1800 for j in second)
        assert all(j.submit_time <= 1800 for j in first)

    def test_max_nodes_clamp(self):
        g = JobGenerator(mean_interarrival_s=10, max_nodes=16, seed=3)
        jobs = g.poll(3600)
        assert jobs and all(j.n_nodes <= 16 for j in jobs)
