"""Unit tests for the GPU population model (ORNL corrosion scenario)."""

import numpy as np
import pytest

from repro.cluster.components import GpuStore


@pytest.fixture()
def gpus():
    return GpuStore([f"n{i}" for i in range(50)], seed=3)


DAY = 86400.0


class TestAgeing:
    def test_clean_room_is_nearly_harmless(self, gpus):
        h0 = gpus.health.copy()
        for _ in range(30):
            gpus.step(DAY, corrosion_rate=150.0)
        assert not gpus.failed.any()
        # only background wear
        assert (h0 - gpus.health).max() < 0.01

    def test_corrosive_room_degrades(self, gpus):
        h0 = gpus.health.copy()
        for _ in range(30):
            gpus.step(DAY, corrosion_rate=1400.0)
        assert (h0 - gpus.health).min() > 0.05

    def test_sustained_corrosion_fails_gpus(self, gpus):
        failures = []
        for day in range(400):
            newly = gpus.step(DAY, corrosion_rate=1400.0)
            failures.extend(newly)
            if gpus.failed.all():
                break
        assert len(failures) > 10

    def test_failed_gpu_stops_ageing(self, gpus):
        gpus.health[:] = 0.001
        gpus.step(DAY, corrosion_rate=1400.0)
        assert gpus.failed.all()
        h = gpus.health.copy()
        gpus.step(DAY, corrosion_rate=1400.0)
        assert np.array_equal(h, gpus.health)

    def test_ecc_errors_precede_failure(self, gpus):
        gpus.health[:] = 0.15   # stressed but alive
        total = 0
        for _ in range(30):
            gpus.step(DAY, corrosion_rate=150.0)
            total = gpus.ecc_dbe.sum()
            if total > 0:
                break
        assert total > 0

    def test_healthy_gpus_emit_no_ecc(self, gpus):
        for _ in range(30):
            gpus.step(DAY, corrosion_rate=150.0)
        assert gpus.ecc_dbe.sum() == 0


class TestReplacement:
    def test_replacement_restores_health(self, gpus):
        gpus.health[0] = -0.1
        gpus.step(1.0, 150.0)
        assert gpus.failed[0]
        gpus.replace("n0", sulfur_resistant=True)
        assert not gpus.failed[0]
        assert gpus.health[0] > 0.85

    def test_sulfur_resistant_part_immune(self, gpus):
        gpus.replace("n0", sulfur_resistant=True)
        h0 = gpus.health[0]
        for _ in range(200):
            gpus.step(DAY, corrosion_rate=2000.0)
        # only background wear on the replaced part
        assert h0 - gpus.health[0] < 0.05
        # vulnerable neighbors rotted
        assert gpus.failed[1:].sum() > 0

    def test_vulnerable_replacement_still_ages(self, gpus):
        gpus.replace("n1", sulfur_resistant=False)
        h0 = gpus.health[1]
        for _ in range(50):
            gpus.step(DAY, corrosion_rate=1400.0)
        assert h0 - gpus.health[1] > 0.05


class TestViews:
    def test_names(self, gpus):
        assert gpus.names[0] == "n0g0"

    def test_failed_hosts(self, gpus):
        gpus.health[3] = -1
        gpus.step(1.0, 150.0)
        assert gpus.failed_hosts() == ["n3"]

    def test_ok_mask_complements_failed(self, gpus):
        gpus.health[5] = -1
        gpus.step(1.0, 150.0)
        assert not gpus.ok_mask()[5]
        assert gpus.ok_mask().sum() == gpus.n - 1

    def test_temperature_tracks_utilization(self, gpus):
        util = np.zeros(gpus.n)
        util[0] = 1.0
        for _ in range(100):
            gpus.step(10.0, 150.0, util)
        assert gpus.temp_c[0] > gpus.temp_c[1] + 20
