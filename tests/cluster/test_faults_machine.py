"""Integration tests: faults applied to a stepping machine."""

import numpy as np
import pytest

from repro.cluster import (
    CorrosionExcursion,
    HungNode,
    LinkFailure,
    LoadImbalance,
    Machine,
    MemoryLeak,
    MountLoss,
    PackedPlacement,
    PowerModel,
    QueueBlockage,
    ServiceDeath,
    SlowOst,
    ThermalExcursion,
)
from repro.cluster.topology import build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobGenerator, JobState
from repro.core.events import EventKind


def small_machine(**kw):
    topo = build_dragonfly(groups=2, chassis_per_group=3, blades_per_chassis=4)
    return Machine(topo, seed=11, **kw)


def submit(machine, app="qmc", n=8, seed=0):
    j = Job(APP_LIBRARY[app], n, submit_time=0.0, seed=seed)
    machine.scheduler.submit(j, machine.now)
    return j


class TestMachineBasics:
    def test_time_advances(self):
        m = small_machine()
        m.run(60.0, dt=5.0)
        assert m.now == pytest.approx(60.0)
        assert m.steps_taken == 12

    def test_jobs_flow_through(self):
        m = small_machine(
            job_generator=JobGenerator(
                mean_interarrival_s=60, max_nodes=16, seed=4
            )
        )
        m.run(3600.0, dt=10.0)
        assert m.scheduler.completed or m.scheduler.running

    def test_job_completion_emits_event(self):
        m = small_machine()
        app = APP_LIBRARY["qmc"]
        quick = Job(app, 4, 0.0, seed=1)
        quick.work_seconds = 50.0
        m.scheduler.submit(quick, 0.0)
        m.run(120.0, dt=5.0)
        evs = m.drain_events()
        msgs = [e.message for e in evs if e.kind is EventKind.SCHEDULER]
        assert any("completed" in s for s in msgs)

    def test_walltime_enforcement(self):
        m = small_machine()
        j = Job(APP_LIBRARY["qmc"], 4, 0.0, seed=1, walltime_req=30.0)
        m.scheduler.submit(j, 0.0)
        m.run(120.0, dt=5.0)
        assert j.state is JobState.FAILED

    def test_deterministic_given_seed(self):
        def build():
            m = small_machine(
                job_generator=JobGenerator(
                    mean_interarrival_s=120, max_nodes=16, seed=9
                )
            )
            m.run(600.0, dt=5.0)
            return m.nodes.power_w.copy()

        assert np.array_equal(build(), build())


class TestHungNodeFault:
    def test_hung_node_stalls_job_but_burns_power(self):
        m = small_machine()
        j = submit(m, "qmc", n=8)
        m.run(60.0, dt=5.0)
        assert j.state is JobState.RUNNING
        victim = j.nodes[0]
        m.faults.add(HungNode(start=m.now, node=victim))
        p0 = j.progress
        m.run(120.0, dt=5.0)
        assert j.progress == p0  # no forward progress
        # but the hung node still draws busy power
        assert m.nodes.power_w[m.nodes.idx(victim)] > 200


class TestLoadImbalanceFault:
    def test_imbalance_drops_system_power(self):
        m = small_machine(placement=PackedPlacement())
        submit(m, "qmc", n=48)
        m.run(300.0, dt=5.0)   # reach steady busy power
        pm = PowerModel(m.topo, m.nodes)
        p_before = pm.system_power_w()
        m.faults.add(LoadImbalance(start=m.now, frac_busy=0.25))
        m.run(300.0, dt=5.0)
        p_during = pm.system_power_w()
        assert p_during < p_before * 0.85

    def test_imbalance_raises_cabinet_variation(self):
        m = small_machine(placement=PackedPlacement())
        submit(m, "qmc", n=96)  # whole machine
        m.run(300.0, dt=5.0)
        pm = PowerModel(m.topo, m.nodes)
        cab_before = pm.cabinet_power_w()
        spread_before = cab_before.max() / cab_before.min()
        m.faults.add(LoadImbalance(start=m.now, frac_busy=0.4))
        m.run(300.0, dt=5.0)
        cab_during = pm.cabinet_power_w()
        spread_during = cab_during.max() / cab_during.min()
        assert spread_during > spread_before * 1.3

    def test_imbalance_reverts(self):
        m = small_machine(placement=PackedPlacement())
        j = submit(m, "qmc", n=48)
        m.run(60.0, dt=5.0)
        m.faults.add(LoadImbalance(start=m.now, duration=60.0))
        m.run(180.0, dt=5.0)
        assert (j.node_util_scale == 1.0).all()


class TestLinkFailureFault:
    def test_link_failure_emits_event_trail(self):
        m = small_machine()
        m.faults.add(LinkFailure(start=10.0, duration=60.0, link_index=0))
        m.run(120.0, dt=5.0)
        net_events = [
            e for e in m.drain_events() if e.kind is EventKind.NETWORK
        ]
        msgs = " ".join(e.message for e in net_events)
        assert "failed" in msgs and "restored" in msgs

    def test_traffic_avoids_failed_link(self):
        m = small_machine()
        submit(m, "cfd_fft", n=32)
        m.run(60.0, dt=5.0)
        m.faults.add(LinkFailure(start=m.now, link_index=0))
        m.run(60.0, dt=5.0)
        assert m.network.link_failed[0]


class TestFilesystemFaults:
    def test_slow_ost_inflates_probe_latency(self):
        m = small_machine()
        base = np.mean([m.fs.probe_io_latency(0) for _ in range(30)])
        m.faults.add(SlowOst(start=10.0, ost=0, bw_factor=0.1))
        m.run(30.0, dt=5.0)
        degraded = np.mean([m.fs.probe_io_latency(0) for _ in range(30)])
        assert degraded > 5 * base


class TestNodeFaults:
    def test_service_death_and_recovery(self):
        m = small_machine()
        node = m.topo.nodes[0]
        m.faults.add(
            ServiceDeath(start=10.0, duration=60.0, node=node,
                         service="slurmd")
        )
        m.run(30.0, dt=5.0)
        assert not m.nodes.node(node).service_ok("slurmd")
        m.run(60.0, dt=5.0)
        assert m.nodes.node(node).service_ok("slurmd")

    def test_mount_loss_fails_health(self):
        m = small_machine()
        node = m.topo.nodes[1]
        m.faults.add(MountLoss(start=0.0, node=node))
        m.run(10.0, dt=5.0)
        assert not m.nodes.healthy_mask()[1]

    def test_memory_leak_drains_node(self):
        m = small_machine()
        node = m.topo.nodes[2]
        m.faults.add(MemoryLeak(start=0.0, node=node, gb_per_s=1.0))
        m.run(300.0, dt=5.0)
        assert m.nodes.mem_free_gb[2] < 4.0


class TestSchedulerAndEnvFaults:
    def test_queue_blockage_fills_queue(self):
        m = small_machine(
            job_generator=JobGenerator(
                mean_interarrival_s=30, max_nodes=8, seed=5
            )
        )
        m.faults.add(QueueBlockage(start=0.0, duration=600.0))
        m.run(600.0, dt=10.0)
        assert m.scheduler.queue_depth > 5
        assert not m.scheduler.running

    def test_thermal_excursion_raises_ambient(self):
        m = small_machine()
        m.faults.add(ThermalExcursion(start=0.0, duration=300.0, delta_c=8.0))
        m.run(60.0, dt=5.0)
        assert m.room.ambient_c > 27.0
        m.run(600.0, dt=5.0)
        assert m.room.ambient_c < 26.0  # reverted and relaxing back


class TestGpuIntegration:
    def test_corrosion_wave_fails_gpus_and_jobs(self):
        m = small_machine(gpu_nodes="all")
        m.faults.add(CorrosionExcursion(start=0.0, rate=2500.0))
        j = submit(m, "qmc", n=96)
        # force-age some GPUs so failures happen within the test window
        m.gpus.health[:5] = 0.0005
        m.run(7200.0, dt=60.0)
        assert m.gpus.failed.sum() >= 1
        hw = [e for e in m.drain_events() if e.kind is EventKind.HWERR]
        assert hw
        assert j.state is JobState.FAILED  # gpu failure killed the job


class TestGroundTruth:
    def test_injector_records_windows(self):
        m = small_machine()
        m.faults.add(HungNode(start=10.0, duration=20.0,
                              node=m.topo.nodes[0]))
        m.run(60.0, dt=5.0)
        (record,) = m.faults.ground_truth()
        assert record["name"] == "hung_node"
        assert record["start"] == 10.0
        assert record["end"] == 30.0
        assert record["applied"]
