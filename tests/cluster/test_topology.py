"""Unit tests for dragonfly and torus topologies."""

import itertools

import networkx as nx
import pytest

from repro.cluster.topology import build_dragonfly, build_torus


@pytest.fixture(scope="module")
def dfly():
    return build_dragonfly(groups=3, chassis_per_group=3, blades_per_chassis=4)


@pytest.fixture(scope="module")
def torus():
    return build_torus(3, 3, 3)


class TestDragonflyStructure:
    def test_node_count(self, dfly):
        assert len(dfly.nodes) == 3 * 3 * 4 * 4  # g * c * blades * npr

    def test_router_count(self, dfly):
        assert len(dfly.routers) == 3 * 3 * 4

    def test_cname_scheme(self, dfly):
        n = dfly.nodes[0]
        # cabinet prefix of node cname matches node_cabinet map
        assert n.startswith(dfly.node_cabinet[n])

    def test_cabinets_hold_three_chassis_worth(self, dfly):
        cab = dfly.cabinets[0]
        members = dfly.nodes_in_cabinet(cab)
        assert len(members) == 3 * 4 * 4  # 3 chassis * 4 blades * 4 nodes

    def test_connected(self, dfly):
        assert nx.is_connected(dfly.graph)

    def test_link_classes_present(self, dfly):
        classes = {l.klass for l in dfly.links}
        assert classes == {"green", "black", "blue"}

    def test_intra_chassis_all_to_all(self, dfly):
        # every pair of routers in chassis 0 of group 0 shares a green link
        routers = [r for r in dfly.routers if r.startswith("c0-0c0")]
        assert len(routers) == 4
        for a, b in itertools.combinations(routers, 2):
            assert dfly.graph.has_edge(a, b)

    def test_groups_partition_nodes(self, dfly):
        groups = {dfly.node_group[n] for n in dfly.nodes}
        assert groups == {0, 1, 2}


class TestDragonflyRouting:
    def test_same_router_route_is_empty(self, dfly):
        n0, n1 = dfly.nodes[0], dfly.nodes[1]
        assert dfly.node_router[n0] == dfly.node_router[n1]
        assert dfly.route(n0, n1) == ()

    def test_intra_group_route_short(self, dfly):
        src = dfly.nodes[0]
        dst = next(
            n for n in dfly.nodes
            if dfly.node_group[n] == 0
            and dfly.node_router[n] != dfly.node_router[src]
        )
        route = dfly.route(src, dst)
        assert 1 <= len(route) <= 2

    def test_inter_group_route_crosses_blue(self, dfly):
        src = dfly.nodes[0]
        dst = next(n for n in dfly.nodes if dfly.node_group[n] == 2)
        route = dfly.route(src, dst)
        classes = [dfly.link_by_index(i).klass for i in route]
        assert "blue" in classes

    def test_route_cache_consistency(self, dfly):
        src, dst = dfly.nodes[0], dfly.nodes[-1]
        assert dfly.route(src, dst) == dfly.route(src, dst)

    def test_route_survives_link_failure(self, dfly):
        src = dfly.nodes[0]
        dst = next(n for n in dfly.nodes if dfly.node_group[n] == 1)
        route = dfly.route(src, dst)
        victim = route[-1]
        dfly.remove_link(victim)
        try:
            new_route = dfly.route(src, dst)
            assert victim not in new_route
        finally:
            dfly.restore_link(victim)


class TestTorusStructure:
    def test_node_count(self, torus):
        assert len(torus.nodes) == 27 * 2

    def test_degree_is_six(self, torus):
        # 3x3x3 torus: every router has exactly 6 neighbors (2 per dim)
        for r in torus.routers:
            assert torus.graph.degree(r) == 6

    def test_link_count(self, torus):
        # 3 links per router, each shared by 2 -> 27 * 3
        assert len(torus.links) == 27 * 3

    def test_connected(self, torus):
        assert nx.is_connected(torus.graph)


class TestTorusRouting:
    def test_dimension_order_minimal(self, torus):
        # hop count must equal the sum of per-dimension shortest wraps
        src = torus.nodes[0]   # router (0,0,0)
        dst = next(
            n for n in torus.nodes if torus.node_router[n].startswith("c1-2")
        )
        route = torus.route(src, dst)
        # (0,0,0) -> (1,2,z): dx=1, dy=1 (wrap), dz depends on dst
        assert len(route) >= 2

    def test_wraparound_shorter_path_used(self, torus):
        # from x=0 to x=2 in a size-3 ring: 1 hop via wrap, not 2
        src = torus.nodes[0]
        dst = next(
            n
            for n in torus.nodes
            if torus.node_router[n].startswith("c2-0c0s0")
        )
        route = torus.route(src, dst)
        assert len(route) == 1

    def test_route_around_failed_link(self, torus):
        src = torus.nodes[0]
        dst = next(
            n
            for n in torus.nodes
            if torus.node_router[n].startswith("c1-0c0s0")
        )
        route = torus.route(src, dst)
        assert len(route) == 1
        torus.remove_link(route[0])
        try:
            detour = torus.route(src, dst)
            assert len(detour) >= 2
            assert route[0] not in detour
        finally:
            torus.restore_link(route[0])

    def test_degenerate_dimension(self):
        flat = build_torus(4, 4, 1)
        assert nx.is_connected(flat.graph)
        for r in flat.routers:
            assert flat.graph.degree(r) == 4  # no z links
