"""Unit tests for the vectorized node store."""

import numpy as np
import pytest

from repro.cluster.node import NodeStore


@pytest.fixture()
def store():
    names = [f"c0-0c0s{s}n{i}" for s in range(4) for i in range(4)]
    return NodeStore(names, seed=1)


def run_steps(store, util, steps=50, dt=1.0, ambient=22.0):
    u = np.full(store.n, util)
    for _ in range(steps):
        store.step(dt, u, ambient)


class TestPhysics:
    def test_idle_power_near_idle_level(self, store):
        run_steps(store, 0.0)
        assert np.allclose(store.power_w, store.idle_power_w, atol=2.0)

    def test_busy_power_approaches_max(self, store):
        run_steps(store, 1.0, steps=120)
        assert (store.power_w > 0.95 * store.max_power_w).all()

    def test_energy_integrates_power(self, store):
        run_steps(store, 0.0, steps=10)
        assert store.energy_j[0] == pytest.approx(
            store.idle_power_w * 10, rel=0.05
        )

    def test_temperature_tracks_load(self, store):
        run_steps(store, 1.0, steps=300)
        hot = store.temp_c.copy()
        run_steps(store, 0.0, steps=600)
        assert (hot > store.temp_c + 5).all()

    def test_down_node_draws_nothing(self, store):
        store.set_down(store.names[0])
        run_steps(store, 1.0, steps=100)
        assert store.power_w[0] == pytest.approx(0.0, abs=1.0)
        assert store.power_w[1] > 100

    def test_hung_node_keeps_burning(self, store):
        run_steps(store, 1.0, steps=100)
        store.set_hung(store.names[0])
        # demand drops to zero but the hung node keeps its old utilization
        run_steps(store, 0.0, steps=100)
        assert store.power_w[0] > 0.9 * store.max_power_w
        assert store.power_w[1] < store.idle_power_w + 10

    def test_pstate_cap_reduces_power(self, store):
        store.pstate_frac[:8] = 0.7
        run_steps(store, 1.0, steps=200)
        assert store.power_w[:8].mean() < store.power_w[8:].mean() - 30

    def test_util_shape_validated(self, store):
        with pytest.raises(ValueError):
            store.step(1.0, np.zeros(3), 22.0)


class TestMemoryLeak:
    def test_leak_drains_and_clamps(self, store):
        store.start_leak(store.names[0], gb_per_s=10.0)
        run_steps(store, 0.0, steps=100)
        assert store.mem_free_gb[0] == 0.0
        assert store.mem_free_gb[1] > 100

    def test_stop_leak_restores(self, store):
        store.start_leak(store.names[0], gb_per_s=10.0)
        run_steps(store, 0.0, steps=10)
        store.stop_leak(store.names[0])
        assert store.mem_free_gb[0] > 100


class TestHealthMask:
    def test_all_healthy_initially(self, store):
        assert store.healthy_mask().all()

    def test_service_death_flags_node(self, store):
        store.kill_service(store.names[3], "slurmd")
        mask = store.healthy_mask()
        assert not mask[3]
        assert mask.sum() == store.n - 1

    def test_mount_loss_flags_node(self, store):
        store.drop_mount(store.names[2], "/scratch")
        assert not store.healthy_mask()[2]

    def test_low_memory_flags_node(self, store):
        store.mem_free_gb[5] = 1.0
        assert not store.healthy_mask(min_free_gb=4.0)[5]

    def test_restore_service(self, store):
        store.kill_service(store.names[0], "ntpd")
        store.restore_service(store.names[0], "ntpd")
        assert store.healthy_mask()[0]


class TestNodeProxy:
    def test_proxy_reflects_store(self, store):
        node = store.node(store.names[4])
        assert node.name == store.names[4]
        assert node.up and not node.hung
        store.set_hung(store.names[4])
        assert node.hung

    def test_service_ok(self, store):
        node = store.node(store.names[0])
        assert node.service_ok("munge")
        store.kill_service(store.names[0], "munge")
        assert not node.service_ok("munge")

    def test_mount_ok(self, store):
        node = store.node(store.names[0])
        assert node.mount_ok("/home")
