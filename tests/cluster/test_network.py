"""Unit tests for the HSN traffic engine."""

import pytest

from repro.cluster.network import FLIT_BYTES, Flow, NetworkState
from repro.cluster.topology import build_dragonfly, build_torus


@pytest.fixture()
def net():
    topo = build_dragonfly(groups=2, chassis_per_group=3, blades_per_chassis=4)
    return NetworkState(topo, seed=0)


class TestTrafficAccounting:
    def test_no_flows_no_counters(self, net):
        net.step(1.0, [])
        assert net.cum_traffic_flits.sum() == 0.0
        assert net.inject_achieved_Bps.sum() == 0.0

    def test_flits_accumulate_along_route(self, net):
        topo = net.topo
        src, dst = topo.nodes[0], topo.nodes[-1]
        route = topo.route(src, dst)
        net.step(1.0, [Flow(src, dst, 16000.0)])
        for idx in route:
            assert net.cum_traffic_flits[idx] == pytest.approx(
                16000.0 / FLIT_BYTES
            )

    def test_counters_monotonic(self, net):
        topo = net.topo
        f = Flow(topo.nodes[0], topo.nodes[-1], 1e6)
        net.step(1.0, [f])
        first = net.cum_traffic_flits.copy()
        net.step(1.0, [f])
        assert (net.cum_traffic_flits >= first).all()

    def test_same_router_flow_touches_no_links(self, net):
        topo = net.topo
        # nodes 0..3 share a blade/router
        net.step(1.0, [Flow(topo.nodes[0], topo.nodes[1], 1e9)])
        assert net.cum_traffic_flits.sum() == 0.0
        # but injection is still accounted
        assert net.inject_achieved_Bps.max() > 0

    def test_zero_byte_flow_ignored(self, net):
        net.step(1.0, [Flow(net.topo.nodes[0], net.topo.nodes[-1], 0.0)])
        assert net.cum_traffic_flits.sum() == 0.0


class TestContention:
    def _saturate(self, net, n_senders=24, bytes_each=20e9):
        """Many senders hammer one destination's links."""
        topo = net.topo
        dst = topo.nodes[-1]
        flows = [
            Flow(topo.nodes[i], dst, bytes_each) for i in range(n_senders)
        ]
        net.step(1.0, flows)
        return flows

    def test_saturation_caps_throughput(self, net):
        self._saturate(net)
        # achieved injection must respect per-link and NIC caps
        assert (net.inject_achieved_Bps <= net.topo.nic_bw_Bps + 1e-6).all()
        assert net.link_util.max() == pytest.approx(1.0)

    def test_stalls_grow_with_load(self, net):
        topo = net.topo
        light = Flow(topo.nodes[0], topo.nodes[-1], 1e8)
        net.step(1.0, [light])
        light_stalls = net.cum_stall_flits.sum()
        self._saturate(net)
        assert net.cum_stall_flits.sum() > light_stalls * 10

    def test_stall_ratio_bounded(self, net):
        self._saturate(net)
        assert (net.link_stall_ratio >= 0).all()
        assert (net.link_stall_ratio <= 1).all()

    def test_oversubscribed_flow_slowed(self, net):
        self._saturate(net)
        total_offered = net.inject_offered_Bps.sum()
        total_achieved = net.inject_achieved_Bps.sum()
        assert total_achieved < total_offered


class TestFaults:
    def test_failed_link_reroutes_traffic(self, net):
        topo = net.topo
        src, dst = topo.nodes[0], topo.nodes[-1]
        route = topo.route(src, dst)
        victim = route[0]
        net.fail_link(victim)
        net.step(1.0, [Flow(src, dst, 1e6)])
        assert net.cum_traffic_flits[victim] == 0.0
        assert net.cum_traffic_flits.sum() > 0  # went somewhere else

    def test_restore_link(self, net):
        victim = 0
        net.fail_link(victim)
        net.restore_link(victim)
        assert not net.link_failed[victim]

    def test_ber_degradation_grows_exponentially(self, net):
        base = net.ber[5]
        other = net.ber[6]
        net.start_ber_degradation(5, decades_per_day=2.0)
        net.step(43200.0, [])  # half a day -> one decade
        assert net.ber[5] == pytest.approx(base * 10, rel=0.01)
        # other links untouched
        assert net.ber[6] == other

    def test_partitioned_flow_dropped_not_crash(self):
        # tiny torus where removing enough links can isolate a router pair
        topo = build_torus(2, 1, 1)
        net = NetworkState(topo)
        for i in range(len(topo.links)):
            net.fail_link(i)
        net.step(1.0, [Flow(topo.nodes[0], topo.nodes[-1], 1e6)])
        assert net.cum_traffic_flits.sum() == 0.0


class TestInjectionFraction:
    def test_fraction_in_unit_range(self, net):
        topo = net.topo
        flows = [Flow(topo.nodes[0], topo.nodes[-1], 5e9)]
        net.step(1.0, flows)
        frac = net.inject_bw_frac()
        assert (frac >= 0).all() and (frac <= 1.0 + 1e-9).all()

    def test_uncontended_fraction_matches_demand(self, net):
        topo = net.topo
        net.step(1.0, [Flow(topo.nodes[0], topo.nodes[-1], 1e9)])
        si = net.node_index[topo.nodes[0]]
        assert net.inject_bw_frac()[si] == pytest.approx(
            1e9 / topo.nic_bw_Bps, rel=0.01
        )
