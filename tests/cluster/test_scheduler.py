"""Unit tests for the batch scheduler."""

import pytest

from repro.cluster.scheduler import (
    BatchScheduler,
    PackedPlacement,
    ScatteredPlacement,
    TopoAwarePlacement,
)
from repro.cluster.topology import build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobState


@pytest.fixture()
def topo():
    return build_dragonfly(groups=3, chassis_per_group=3, blades_per_chassis=4)


def make_job(n, seed=0, walltime=None):
    return Job(APP_LIBRARY["qmc"], n, submit_time=0.0, seed=seed,
               walltime_req=walltime)


class TestBasicScheduling:
    def test_job_starts_when_space(self, topo):
        s = BatchScheduler(topo, seed=0)
        j = make_job(8)
        s.submit(j, 0.0)
        started = s.tick(0.0)
        assert started == [j]
        assert j.state is JobState.RUNNING
        assert len(j.nodes) == 8

    def test_no_double_allocation(self, topo):
        s = BatchScheduler(topo, seed=0)
        jobs = [make_job(16, seed=i) for i in range(6)]
        for j in jobs:
            s.submit(j, 0.0)
        s.tick(0.0)
        allocated = [n for j in s.running for n in j.nodes]
        assert len(allocated) == len(set(allocated))

    def test_oversized_job_waits(self, topo):
        s = BatchScheduler(topo, seed=0)
        j = make_job(len(topo.nodes) + 1)
        s.submit(j, 0.0)
        assert s.tick(0.0) == []
        assert s.queue_depth == 1

    def test_complete_releases_nodes(self, topo):
        s = BatchScheduler(topo, seed=0)
        j = make_job(8)
        s.submit(j, 0.0)
        s.tick(0.0)
        s.complete(j, 100.0)
        assert j.state is JobState.COMPLETED
        assert not s.allocated
        assert len(s.free_nodes()) == len(topo.nodes)

    def test_fcfs_order_respected(self, topo):
        s = BatchScheduler(topo, backfill=False, seed=0)
        big = make_job(len(topo.nodes))      # fills the machine
        small = make_job(4, seed=1)
        s.submit(big, 0.0)
        s.submit(small, 0.0)
        first = s.tick(0.0)
        assert first == [big]
        # small must wait behind nothing? big is running; small fits nothing
        assert s.queue_depth == 1


class TestBackfill:
    def test_smaller_job_backfills_around_blocked_head(self, topo):
        s = BatchScheduler(topo, seed=0)
        filler = make_job(len(topo.nodes) - 8)
        s.submit(filler, 0.0)
        s.tick(0.0)
        head = make_job(32, seed=1)    # cannot fit: only 8 free
        little = make_job(4, seed=2)   # fits in the hole
        s.submit(head, 1.0)
        s.submit(little, 1.0)
        started = s.tick(1.0)
        assert little in started and head not in started

    def test_equal_size_does_not_jump_queue(self, topo):
        s = BatchScheduler(topo, seed=0)
        filler = make_job(len(topo.nodes) - 8)
        s.submit(filler, 0.0)
        s.tick(0.0)
        head = make_job(32, seed=1)
        same = make_job(32, seed=2)
        s.submit(head, 1.0)
        s.submit(same, 1.0)
        assert s.tick(1.0) == []

    def test_backfill_disabled(self, topo):
        s = BatchScheduler(topo, backfill=False, seed=0)
        filler = make_job(len(topo.nodes) - 8)
        s.submit(filler, 0.0)
        s.tick(0.0)
        s.submit(make_job(32, seed=1), 1.0)
        s.submit(make_job(4, seed=2), 1.0)
        assert s.tick(1.0) == []


class TestPlacementPolicies:
    def groups_used(self, topo, nodes):
        return {topo.node_group[n] for n in nodes}

    def test_tas_minimizes_groups(self, topo):
        s = BatchScheduler(topo, placement=TopoAwarePlacement(), seed=0)
        per_group = len(topo.nodes) // 3
        j = make_job(per_group)  # fits exactly one group
        s.submit(j, 0.0)
        s.tick(0.0)
        assert len(self.groups_used(topo, j.nodes)) == 1

    def test_scattered_spreads_groups(self, topo):
        s = BatchScheduler(topo, placement=ScatteredPlacement(), seed=0)
        j = make_job(len(topo.nodes) // 3)
        s.submit(j, 0.0)
        s.tick(0.0)
        assert len(self.groups_used(topo, j.nodes)) == 3

    def test_packed_is_deterministic(self, topo):
        s = BatchScheduler(topo, placement=PackedPlacement(), seed=0)
        j = make_job(8)
        s.submit(j, 0.0)
        s.tick(0.0)
        assert j.nodes == sorted(topo.nodes)[:8]

    def test_tas_spills_to_next_group(self, topo):
        s = BatchScheduler(topo, placement=TopoAwarePlacement(), seed=0)
        per_group = len(topo.nodes) // 3
        j = make_job(per_group + 4)
        s.submit(j, 0.0)
        s.tick(0.0)
        assert len(self.groups_used(topo, j.nodes)) == 2


class TestHealthGate:
    def test_gated_nodes_excluded(self, topo):
        bad = set(list(topo.nodes)[:4])
        s = BatchScheduler(
            topo, health_gate=lambda n: n not in bad, seed=0
        )
        j = make_job(len(topo.nodes) - 4)
        s.submit(j, 0.0)
        s.tick(0.0)
        assert j.state is JobState.RUNNING
        assert not (set(j.nodes) & bad)

    def test_gate_can_starve_job(self, topo):
        s = BatchScheduler(topo, health_gate=lambda n: False, seed=0)
        j = make_job(1)
        s.submit(j, 0.0)
        assert s.tick(0.0) == []


class TestOperations:
    def test_drain_node(self, topo):
        s = BatchScheduler(topo, seed=0)
        victim = topo.nodes[0]
        s.drain_node(victim)
        j = make_job(len(topo.nodes))
        s.submit(j, 0.0)
        assert s.tick(0.0) == []  # one node short
        s.return_node(victim)
        assert s.tick(1.0) == [j]

    def test_blocked_queue_launches_nothing(self, topo):
        s = BatchScheduler(topo, seed=0)
        s.set_blocked(True)
        s.submit(make_job(2), 0.0)
        assert s.tick(0.0) == []
        s.set_blocked(False)
        assert len(s.tick(1.0)) == 1

    def test_backlog_node_hours(self, topo):
        s = BatchScheduler(topo, seed=0)
        s.submit(make_job(10, walltime=3600), 0.0)
        s.submit(make_job(20, walltime=7200), 0.0)
        assert s.backlog_node_hours() == pytest.approx(10 + 40)

    def test_kill_jobs_on_node(self, topo):
        s = BatchScheduler(topo, seed=0)
        j = make_job(8)
        s.submit(j, 0.0)
        s.tick(0.0)
        victims = s.kill_jobs_on_node(j.nodes[0], 50.0)
        assert victims == [j]
        assert j.state is JobState.FAILED

    def test_events_recorded_and_drained(self, topo):
        s = BatchScheduler(topo, seed=0)
        j = make_job(4)
        s.submit(j, 0.0)
        s.tick(0.0)
        evs = s.drain_events()
        assert [e.action for e in evs] == ["submit", "start"]
        assert s.drain_events() == []
