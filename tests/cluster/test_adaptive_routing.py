"""Tests for adaptive (Valiant) routing under congestion."""

import numpy as np
import pytest

from repro.cluster.network import Flow, NetworkState
from repro.cluster.topology import build_dragonfly


def hotspot_flows(topo, n_senders=24, bytes_each=20e9):
    dst = topo.nodes[-1]
    return [Flow(topo.nodes[i], dst, bytes_each) for i in range(n_senders)]


@pytest.fixture()
def topo():
    return build_dragonfly(groups=3, chassis_per_group=3,
                           blades_per_chassis=4)


class TestAdaptiveRouting:
    def test_no_detours_on_quiet_network(self, topo):
        net = NetworkState(topo, adaptive=True, seed=1)
        net.step(1.0, [Flow(topo.nodes[0], topo.nodes[-1], 1e6)])
        net.step(1.0, [Flow(topo.nodes[0], topo.nodes[-1], 1e6)])
        assert net.detours == 0

    def test_detours_engage_under_congestion(self, topo):
        net = NetworkState(topo, adaptive=True, seed=1)
        flows = hotspot_flows(topo)
        net.step(1.0, flows)       # first sweep measures the hotspot
        net.step(1.0, flows)       # second sweep routes around it
        assert net.detours > 0

    def test_adaptive_spreads_load_wider(self, topo):
        """Valiant detours put traffic on links the minimal routes never
        touch — the hotspot's neighborhood stops being the whole story."""
        minimal = NetworkState(topo, adaptive=False, seed=1)
        adaptive = NetworkState(topo, adaptive=True, seed=1)
        flows = hotspot_flows(topo)
        for _ in range(5):
            minimal.step(1.0, flows)
            adaptive.step(1.0, flows)
        used_min = int((minimal.cum_traffic_flits > 0).sum())
        used_ada = int((adaptive.cum_traffic_flits > 0).sum())
        assert used_ada > used_min

    def test_adaptive_improves_aggregate_throughput(self, topo):
        """Spreading a hotspot must not make things worse overall."""
        minimal = NetworkState(topo, adaptive=False, seed=1)
        adaptive = NetworkState(topo, adaptive=True, seed=1)
        # many-to-many congestion (not a single-destination funnel, whose
        # terminal links no detour can widen)
        rng = np.random.default_rng(3)
        nodes = topo.nodes
        flows = [
            Flow(nodes[i], nodes[j], 8e9)
            for i, j in rng.integers(0, len(nodes), size=(80, 2))
            if topo.node_router[nodes[i]] != topo.node_router[nodes[j]]
        ]
        tot_min = tot_ada = 0.0
        for _ in range(5):
            minimal.step(1.0, flows)
            adaptive.step(1.0, flows)
            tot_min += minimal.inject_achieved_Bps.sum()
            tot_ada += adaptive.inject_achieved_Bps.sum()
        assert tot_ada >= 0.9 * tot_min

    def test_detoured_flows_still_delivered(self, topo):
        net = NetworkState(topo, adaptive=True, seed=1)
        flows = hotspot_flows(topo)
        net.step(1.0, flows)
        before = net.cum_traffic_flits.sum()
        net.step(1.0, flows)
        assert net.cum_traffic_flits.sum() > before
        assert net.inject_achieved_Bps.sum() > 0
