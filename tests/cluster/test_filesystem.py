"""Unit tests for the Lustre-like filesystem model."""

import numpy as np
import pytest

from repro.cluster.filesystem import IODemand, LustreFS


@pytest.fixture()
def fs():
    return LustreFS(n_ost=8, ost_bw_Bps=1e9, mds_ops_per_s=1000, seed=0)


class TestService:
    def test_idle_fs_serves_nothing(self, fs):
        fs.step(1.0, [])
        assert fs.read_Bps_total() == 0.0
        assert fs.mds_util == 0.0

    def test_demand_below_capacity_fully_served(self, fs):
        d = IODemand(1, read_bytes=4e8, write_bytes=0, md_ops=0)
        fs.step(1.0, [d])
        assert fs.read_Bps_total() == pytest.approx(4e8)
        assert fs.job_io_fraction[1] == pytest.approx(1.0)

    def test_oversubscribed_ost_throttles_proportionally(self, fs):
        # two jobs hammer one OST at 2x capacity combined
        d1 = IODemand(1, read_bytes=1e9, write_bytes=0, md_ops=0, stripe=(0,))
        d2 = IODemand(2, read_bytes=1e9, write_bytes=0, md_ops=0, stripe=(0,))
        fs.step(1.0, [d1, d2])
        assert fs.ost_read_Bps[0] == pytest.approx(1e9)
        assert fs.job_io_fraction[1] == pytest.approx(0.5, rel=0.01)
        assert fs.job_io_fraction[2] == pytest.approx(0.5, rel=0.01)

    def test_wide_striping_spreads_load(self, fs):
        d = IODemand(1, read_bytes=8e8, write_bytes=0, md_ops=0)  # all OSTs
        fs.step(1.0, [d])
        assert np.allclose(fs.ost_read_Bps, 1e8)

    def test_writes_fill_capacity(self, fs):
        used0 = fs.ost_used_bytes.copy()
        d = IODemand(1, read_bytes=0, write_bytes=8e8, md_ops=0)
        fs.step(1.0, [d])
        assert (fs.ost_used_bytes > used0).all()

    def test_fill_never_exceeds_capacity(self, fs):
        d = IODemand(1, 0, fs.ost_capacity_bytes * 100, 0, stripe=(0,))
        for _ in range(5):
            fs.step(1.0, [d])
        assert fs.fill_fractions()[0] <= 1.0

    def test_mds_utilization(self, fs):
        fs.step(1.0, [IODemand(1, 0, 0, md_ops=500)])
        assert fs.mds_util == pytest.approx(0.5)
        fs.step(1.0, [IODemand(1, 0, 0, md_ops=5000)])
        assert fs.mds_util == 1.0


class TestProbes:
    def test_idle_latency_near_base(self, fs):
        fs.step(1.0, [])
        lat = np.mean([fs.probe_io_latency(0) for _ in range(50)])
        assert lat == pytest.approx(fs.base_io_latency_s, rel=0.1)

    def test_loaded_ost_probe_latency_rises(self, fs):
        d = IODemand(1, read_bytes=9.5e8, write_bytes=0, md_ops=0, stripe=(0,))
        fs.step(1.0, [d])
        loaded = np.mean([fs.probe_io_latency(0) for _ in range(50)])
        quiet = np.mean([fs.probe_io_latency(1) for _ in range(50)])
        assert loaded > 5 * quiet

    def test_slow_ost_probe_latency_rises_even_idle(self, fs):
        fs.set_slow_ost(3, 0.1)
        fs.step(1.0, [])
        slow = np.mean([fs.probe_io_latency(3) for _ in range(50)])
        ok = np.mean([fs.probe_io_latency(0) for _ in range(50)])
        assert slow > 5 * ok

    def test_md_latency_rises_under_mds_degradation(self, fs):
        fs.step(1.0, [])
        before = np.mean([fs.probe_md_latency() for _ in range(50)])
        fs.set_mds_degraded(0.1)
        fs.step(1.0, [])
        after = np.mean([fs.probe_md_latency() for _ in range(50)])
        assert after > 5 * before


class TestFaults:
    def test_slow_ost_reduces_throughput(self, fs):
        d = IODemand(1, read_bytes=1e9, write_bytes=0, md_ops=0, stripe=(0,))
        fs.step(1.0, [d])
        healthy = fs.ost_read_Bps[0]
        fs.set_slow_ost(0, 0.2)
        fs.step(1.0, [d])
        assert fs.ost_read_Bps[0] == pytest.approx(healthy * 0.2, rel=0.01)

    def test_heal_ost(self, fs):
        fs.set_slow_ost(0, 0.2)
        fs.heal_ost(0)
        assert fs.ost_bw_factor[0] == 1.0

    def test_invalid_bw_factor_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.set_slow_ost(0, 0.0)
        with pytest.raises(ValueError):
            fs.set_slow_ost(0, 1.5)


class TestAttribution:
    def test_per_job_io_attributed(self, fs):
        d1 = IODemand(7, read_bytes=2e8, write_bytes=1e8, md_ops=0)
        d2 = IODemand(8, read_bytes=4e8, write_bytes=0, md_ops=0)
        fs.step(1.0, [d1, d2])
        r1, w1 = fs.job_io_Bps[7]
        r2, w2 = fs.job_io_Bps[8]
        assert r1 == pytest.approx(2e8) and w1 == pytest.approx(1e8)
        assert r2 == pytest.approx(4e8) and w2 == 0.0

    def test_ost_names(self, fs):
        names = fs.ost_names()
        assert names[0] == "scratch-ost0"
        assert len(names) == 8
