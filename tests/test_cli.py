"""Tests for the ``python -m repro`` command-line driver."""

import subprocess
import sys



def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_registry_prints_data_dictionary(self):
        proc = run_cli("registry")
        assert proc.returncode == 0
        assert "node.power_w" in proc.stdout
        assert "meaning" in proc.stdout

    def test_demo_runs_and_alerts(self):
        proc = run_cli("demo", "--hours", "0.4")
        assert proc.returncode == 0
        assert "alerts:" in proc.stdout
        assert "soft_lockup" in proc.stdout   # the injected hung node
        assert "system status" in proc.stdout

    def test_dashboard_scenario(self):
        proc = run_cli("dashboard", "--hours", "0.2")
        assert proc.returncode == 0
        assert "shareable spec" in proc.stdout
        assert "operations" in proc.stdout

    def test_obs_scenario_reports_monitoring_plane(self):
        proc = run_cli("obs", "--hours", "0.2")
        assert proc.returncode == 0
        assert "monitoring-plane health" in proc.stdout
        assert "data-path completeness" in proc.stdout
        assert "stage timings" in proc.stdout
        assert "selfmon.bus.completeness" in proc.stdout
        assert "selfmon.collector.sweep_p95_ms" in proc.stdout
        assert "chunk cache:" in proc.stdout
        assert "selfmon.store.cache_hits" in proc.stdout
        assert "streaming detectors:" in proc.stdout
        assert "selfmon.analysis.batches" in proc.stdout

    def test_obs_json_mode_emits_machine_readable_report(self):
        import json

        proc = run_cli("obs", "--hours", "0.2", "--json")
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert set(doc) == {"report", "selfmon"}
        assert "freshness" in doc["report"]
        assert doc["report"]["freshness"]["exact"] is True
        assert "selfmon.freshness.e2e_p99_s" in doc["selfmon"]
        assert "selfmon.trace.dropped" in doc["selfmon"]
        # the execution-model section rides inside the health report
        execu = doc["report"]["executor"]
        assert execu["name"] == "serial"
        assert execu["workers"] == 1
        assert "selfmon.exec.busy_fraction" in doc["selfmon"]

    def test_slo_prints_exact_waterfall_for_all_tiers(self):
        proc = run_cli("slo", "--hours", "0.3")
        assert proc.returncode == 0
        for tier in ("flat", "partitioned", "tree"):
            assert f"freshness waterfall [{tier}]" in proc.stdout
        # hop attribution telescopes with no epsilon on every tier
        assert proc.stdout.count("exact: sum(hops)") == 3
        assert "!=" not in proc.stdout
        assert ("sum(per-hop latency) == end-to-end latency exactly"
                in proc.stdout)

    def test_scale_compares_transport_tiers(self):
        proc = run_cli("scale", "--hours", "0.1")
        assert proc.returncode == 0
        for tier in ("flat", "partitioned", "tree"):
            assert tier in proc.stdout
        for column in ("published", "upstream", "delivered", "dropped",
                       "complete", "samples", "wall s"):
            assert column in proc.stdout
        assert "upstream reduction" in proc.stdout
        assert "storage plane" in proc.stdout
        for row in ("ingest rate", "cold query", "warm query",
                    "compression ratio"):
            assert row in proc.stdout
        assert "analysis plane" in proc.stdout
        for row in ("streaming stats", "sweep outliers", "rate watch",
                    "combined detector speedup"):
            assert row in proc.stdout

    def test_scale_workers_sweeps_parallel_runtime(self):
        proc = run_cli("scale", "--hours", "0.05", "--workers", "4")
        assert proc.returncode == 0
        assert "parallel runtime" in proc.stdout
        for column in ("workers", "steps/s", "speedup", "busy"):
            assert column in proc.stdout
        assert "hide" in proc.stdout      # the RTT-hiding summary line

    def test_chaos_scenario_recovers_and_reconciles(self):
        proc = run_cli("chaos", "--hours", "1.2")
        assert proc.returncode == 0
        assert "fault schedule" in proc.stdout
        assert "health-transition timeline:" in proc.stdout
        assert "monitor component" in proc.stdout
        # the supervised lifecycle healed everything...
        assert "supervised components OK" in proc.stdout
        # ...the SEC escalated on the monitor's own degradation...
        assert "monitor_self_degraded" in proc.stdout
        # ...and the ledger reconciled exactly
        assert "delivery ledger" in proc.stdout
        assert "unaccounted" in proc.stdout
        assert "balanced: published == stored + lost" in proc.stdout
        assert "chaos campaign PASSED" in proc.stdout

    def test_serve_scenario_is_exact_and_sheds_guest(self):
        proc = run_cli("serve", "--hours", "0.3")
        assert proc.returncode == 0
        assert "pyramid answers" in proc.stdout
        assert "result cache:" in proc.stdout
        assert "guest" in proc.stdout and "ops" in proc.stdout
        # the burst-limited guest tenant was shed, the ops tenant not
        assert "match the raw decompress path exactly" in proc.stdout
        assert "EXACTNESS VIOLATION" not in proc.stdout

    def test_obs_reports_serving_plane(self):
        proc = run_cli("obs", "--hours", "0.2")
        assert proc.returncode == 0
        assert "serve:" in proc.stdout
        assert "selfmon.serve.cache_hit_ratio" in proc.stdout

    def test_sites_stands_up_the_federation(self):
        proc = run_cli("sites", "--hours", "0.1")
        assert proc.returncode == 0
        assert "per-site capability matrix" in proc.stdout
        # all ten paper sites appear as matrix rows
        for site in ("lanl", "ncsa", "nersc", "csc", "cscs", "ornl",
                     "kaust", "alcf", "snl", "hlrs"):
            assert f"\n{site}" in proc.stdout
        assert "federated query: sum(cabinet.power_w)" in proc.stdout
        assert "delivery identity holds exactly" in proc.stdout
        assert "IMBALANCED" not in proc.stdout
        assert "drift" not in proc.stdout.split("matrix")[0]

    def test_unknown_scenario_rejected(self):
        proc = run_cli("nonsense")
        assert proc.returncode != 0
        assert "invalid choice" in proc.stderr
