"""The parallel runtime: execution models, staged scheduling, and the
serial-vs-threaded determinism contract.

The tentpole guarantee: running the *same seeded scenario* on the
threaded executor produces the *same monitoring data* as the serial
executor — exactly equal delivery-ledger totals, health-transition
timelines, store contents, and query results.  Only wall-clock timing
gauges (``*_ms`` histograms, ``selfmon.exec.*`` vitals) may differ,
because they measure the real machine, not the simulated one.
"""

import numpy as np
import pytest

from repro.cluster import (
    HungNode,
    LinkFailure,
    Machine,
    PackedPlacement,
    build_dragonfly,
)
from repro.cluster.workload import JobGenerator
from repro.runtime.executor import (
    ExecutionModel,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from repro.stages import default_stages, schedule_stages


# -- make_executor ----------------------------------------------------------


class TestMakeExecutor:
    def test_default_is_serial(self):
        ex = make_executor(None)
        assert isinstance(ex, SerialExecutor)
        assert ex.name == "serial"
        assert ex.workers == 1
        assert not ex.parallel

    def test_instance_passes_through(self):
        ex = ThreadedExecutor(workers=2)
        assert make_executor(ex) is ex
        ex.shutdown()

    def test_int_picks_model(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        ex = make_executor(3)
        assert isinstance(ex, ThreadedExecutor)
        assert ex.workers == 3
        assert ex.parallel
        ex.shutdown()

    def test_string_specs(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        ex = make_executor("threaded")
        assert isinstance(ex, ThreadedExecutor)
        ex.shutdown()
        ex = make_executor("threaded:6")
        assert ex.workers == 6
        ex.shutdown()

    def test_bool_is_rejected(self):
        # bool would silently collapse to 0/1 workers; demand intent
        with pytest.raises(TypeError):
            make_executor(True)

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ValueError):
            make_executor("warp-drive")
        with pytest.raises(TypeError):
            make_executor(3.5)


class TestMapOrdered:
    def test_serial_preserves_order(self):
        ex = SerialExecutor()
        out = ex.map_ordered([lambda i=i: i * i for i in range(8)])
        assert out == [i * i for i in range(8)]

    def test_threaded_preserves_submission_order(self):
        import time

        ex = ThreadedExecutor(workers=4)
        try:
            # later tasks finish first; results must still come back in
            # submission order
            def task(i):
                time.sleep(0.002 * (8 - i))
                return i

            out = ex.map_ordered([lambda i=i: task(i) for i in range(8)])
            assert out == list(range(8))
        finally:
            ex.shutdown()

    def test_snapshot_shape(self):
        ex = ThreadedExecutor(workers=2)
        try:
            ex.map_ordered([lambda i=i: i for i in range(5)])
            snap = ex.snapshot()
            assert set(snap) == {
                "name", "workers", "barriers", "tasks", "busy_fraction",
                "barrier_wait_ms", "handoff_depth",
            }
            assert snap["name"] == "threaded"
            assert snap["workers"] == 2
            assert snap["barriers"] == 1
            assert snap["tasks"] == 5
            # handoff depth = backlog handed past the worker count
            assert snap["handoff_depth"] == 3
        finally:
            ex.shutdown()

    def test_single_task_runs_inline(self):
        ex = ThreadedExecutor(workers=2)
        try:
            assert ex.map_ordered([lambda: 41]) == [41]
            # the inline short-circuit never spins the pool up
            assert ex._pool is None
            assert ex.snapshot()["tasks"] == 1
        finally:
            ex.shutdown()


# -- dependency-declared stage scheduling -----------------------------------


class _FakeStage:
    def __init__(self, name, plane=None, after=None):
        self.name = name
        if plane is not None:
            self.plane = plane
        if after is not None:
            self.after = after

    def run(self, pipeline, now):  # pragma: no cover - never ticked
        return None


class TestScheduleStages:
    def test_default_stages_keep_historic_order(self):
        ordered = [s.name for s in schedule_stages(default_stages())]
        assert ordered == [
            "event-plane", "metric-plane", "job-tracking", "streaming",
            "analysis-hooks", "supervision", "freshness", "response",
            "selfmon",
        ]

    def test_attrless_stages_keep_declaration_order(self):
        stages = [_FakeStage("a"), _FakeStage("b"), _FakeStage("c")]
        assert [s.name for s in schedule_stages(stages)] == ["a", "b", "c"]

    def test_dependencies_reorder(self):
        stages = [
            _FakeStage("late", after=("early",)),
            _FakeStage("early"),
        ]
        assert [s.name for s in schedule_stages(stages)] == [
            "early", "late",
        ]

    def test_missing_dependencies_are_tolerated(self):
        # a stage set without the freshness plane still schedules
        stages = [_FakeStage("only", after=("absent-plane",))]
        assert [s.name for s in schedule_stages(stages)] == ["only"]

    def test_cycle_is_rejected(self):
        stages = [
            _FakeStage("a", after=("b",)),
            _FakeStage("b", after=("a",)),
        ]
        with pytest.raises(ValueError, match="cycle"):
            schedule_stages(stages)

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            schedule_stages([_FakeStage("x"), _FakeStage("x")])


# -- concurrent shard ingest ------------------------------------------------


def _batches(seed, n_batches=6, n=96):
    from repro.core.metric import SeriesBatch

    rng = np.random.default_rng(seed)
    comps = np.array([f"n{i:04d}" for i in range(n)], dtype=object)
    return [
        SeriesBatch("node.power_w", comps, np.full(n, 60.0 * k),
                    rng.normal(250.0, 15.0, n))
        for k in range(n_batches)
    ]


class TestAppendParallel:
    def test_matches_serial_append(self):
        from repro.storage.sharded import ShardedTimeSeriesStore

        serial = ShardedTimeSeriesStore(shards=4)
        concurrent = ShardedTimeSeriesStore(shards=4)
        ex = ThreadedExecutor(workers=4)
        try:
            for b in _batches(11):
                serial.append(b)
            results = concurrent.append_parallel(_batches(11), ex)
        finally:
            ex.shutdown()
        assert all(isinstance(r, int) for r in results)
        assert sum(results) == serial.stats().samples
        assert serial.stats() == concurrent.stats()
        for key in serial.keys():
            a = serial.query(key.metric, key.component)
            b = concurrent.query(key.metric, key.component)
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.values, b.values)

    def test_failed_shard_defers_identically(self):
        from repro.storage.sharded import ShardedTimeSeriesStore

        serial = ShardedTimeSeriesStore(shards=4)
        concurrent = ShardedTimeSeriesStore(shards=4)
        serial.fail_shard(2)
        concurrent.fail_shard(2)
        ex = ThreadedExecutor(workers=4)
        try:
            for b in _batches(13):
                serial.append(b)
            concurrent.append_parallel(_batches(13), ex)
        finally:
            ex.shutdown()
        assert serial.redo_deferred == concurrent.redo_deferred
        assert serial.redo_pending_points() == \
            concurrent.redo_pending_points()
        serial.recover_shard(2)
        concurrent.recover_shard(2)
        assert serial.stats() == concurrent.stats()


# -- the determinism contract ----------------------------------------------


def _fresh_machine(seed):
    # Job ids are per-generator, so two seeded machines already see
    # identical job names — no global state to reset between runs
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=200, max_nodes=24,
                                   seed=seed),
        gpu_nodes="all",
        seed=seed,
    )
    machine.faults.add(HungNode(start=600.0, duration=900.0,
                                node=topo.nodes[3]))
    machine.faults.add(LinkFailure(start=1200.0, duration=600.0,
                                   link_index=0))
    return machine


def _run(seed, executor):
    from repro.pipeline import default_pipeline

    machine = _fresh_machine(seed)
    pipeline = default_pipeline(machine, seed=seed,
                                transport="partitioned", shards=4,
                                executor=executor)
    pipeline.run(hours=0.5, dt=10.0)
    pipeline.bus.flush()
    return pipeline


def _timing_metric(name):
    """Gauges allowed to differ serial vs parallel: wall-clock timings
    (``*_ms`` histograms, executor vitals), compressed-size gauges
    (their values fold in the stored bytes *of* those timing series),
    and per-shard distribution gauges (the ``selfmon.exec.*`` series
    carry the executor name as component, so they hash onto different
    shards under each model)."""
    return ("_ms" in name or name.startswith("selfmon.exec.")
            or "bytes" in name
            or name.startswith("selfmon.store.shard_"))


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        serial = _run(29, executor=None)
        threaded = _run(29, executor=4)
        yield serial, threaded
        threaded.executor.shutdown()

    def test_ledger_reports_identical_and_balanced(self, runs):
        serial, threaded = runs
        a, b = serial.delivery_report(), threaded.delivery_report()
        assert a == b
        assert a.balanced and a.unaccounted == 0

    def test_health_timelines_identical(self, runs):
        serial, threaded = runs
        assert serial.supervisor.transitions == \
            threaded.supervisor.transitions
        assert serial.health_report() == threaded.health_report()

    def test_store_stats_identical(self, runs):
        serial, threaded = runs
        sa, sb = serial.tsdb.stats(), threaded.tsdb.stats()
        assert sa.samples == sb.samples
        assert sa.series == sb.series

    def test_every_simulated_series_identical(self, runs):
        serial, threaded = runs
        keys_a = {k for k in serial.tsdb.keys()
                  if not _timing_metric(k.metric)}
        keys_b = {k for k in threaded.tsdb.keys()
                  if not _timing_metric(k.metric)}
        assert keys_a == keys_b
        assert len(keys_a) > 500     # the harness actually monitored
        for key in sorted(keys_a, key=lambda k: (k.metric, k.component)):
            a = serial.tsdb.query(key.metric, key.component)
            b = threaded.tsdb.query(key.metric, key.component)
            assert np.array_equal(a.times, b.times), key
            assert np.array_equal(a.values, b.values), key

    def test_alerts_identical(self, runs):
        serial, threaded = runs
        assert [(a.time, a.rule, a.component) for a in
                serial.alerts.alerts] == \
            [(a.time, a.rule, a.component) for a in
             threaded.alerts.alerts]

    def test_threaded_run_actually_fanned_out(self, runs):
        _, threaded = runs
        snap = threaded.executor.snapshot()
        assert snap["workers"] == 4
        assert snap["barriers"] > 0
        assert snap["tasks"] > snap["barriers"]
