"""Chaos campaign: random fault schedules must never break the stack.

The paper's operational reality is overlapping, unanticipated failures.
We throw randomized fault schedules (types, targets, timings, overlaps)
at the full pipeline and assert the structural invariants that must
survive *any* weather: no exceptions, consistent stores, conserved
scheduler accounting, monotone counters.
"""

import numpy as np
import pytest

from repro.cluster import (
    BerDegradation,
    ConfigDrift,
    HungNode,
    LinkFailure,
    LoadImbalance,
    Machine,
    MdsDegradation,
    MemoryLeak,
    MountLoss,
    PackedPlacement,
    QueueBlockage,
    ServiceDeath,
    SlowOst,
    ThermalExcursion,
    build_dragonfly,
)
from repro.cluster.workload import JobGenerator, JobState
from repro.pipeline import default_pipeline


def random_fault(rng, machine, t):
    """One randomly parameterized fault at time ``t``."""
    topo = machine.topo
    node = str(rng.choice(topo.nodes))
    duration = float(rng.uniform(120.0, 1200.0))
    choices = [
        lambda: HungNode(start=t, duration=duration, node=node),
        lambda: ServiceDeath(start=t, duration=duration, node=node,
                             service=str(rng.choice(
                                 ["slurmd", "munge", "ntpd", "lnet"]))),
        lambda: MountLoss(start=t, duration=duration, node=node),
        lambda: MemoryLeak(start=t, duration=duration, node=node,
                           gb_per_s=float(rng.uniform(0.01, 0.5))),
        lambda: ConfigDrift(start=t, duration=duration, node=node),
        lambda: SlowOst(start=t, duration=duration,
                        ost=int(rng.integers(0, machine.fs.n_ost)),
                        bw_factor=float(rng.uniform(0.05, 0.5))),
        lambda: MdsDegradation(start=t, duration=duration,
                               rate_factor=float(rng.uniform(0.05, 0.5))),
        lambda: LinkFailure(start=t, duration=duration,
                            link_index=int(rng.integers(
                                0, len(topo.links)))),
        lambda: BerDegradation(start=t, duration=duration,
                               link_index=int(rng.integers(
                                   0, len(topo.links))),
                               decades_per_day=float(
                                   rng.uniform(0.5, 5.0))),
        lambda: QueueBlockage(start=t, duration=duration),
        lambda: ThermalExcursion(start=t, duration=duration,
                                 delta_c=float(rng.uniform(2.0, 10.0))),
        lambda: LoadImbalance(start=t, duration=duration,
                              frac_busy=float(rng.uniform(0.2, 0.8))),
    ]
    return choices[int(rng.integers(0, len(choices)))]()


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_random_fault_campaign_survives(seed):
    rng = np.random.default_rng(seed)
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=200,
                                   max_nodes=24, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )
    n_faults = int(rng.integers(5, 12))
    for _ in range(n_faults):
        machine.faults.add(
            random_fault(rng, machine, float(rng.uniform(60.0, 3000.0)))
        )
    pipeline = default_pipeline(machine, seed=seed)
    pipeline.run(hours=1.2, dt=10.0)   # must not raise

    # -- structural invariants under arbitrary weather --------------------

    # scheduler accounting conserved
    sched = machine.scheduler
    allocated = [n for j in sched.running for n in j.nodes]
    assert len(allocated) == len(set(allocated))
    assert set(allocated) == set(sched.allocated)
    for j in sched.completed:
        assert j.state in (JobState.COMPLETED, JobState.FAILED)
        assert j.end_time is not None

    # cumulative counters are monotone by construction; spot-check totals
    assert (machine.network.cum_traffic_flits >= 0).all()
    assert (machine.network.cum_stall_flits >= 0).all()
    assert (machine.nodes.energy_j >= 0).all()

    # every stored series is time-sorted and self-consistent
    for key in pipeline.tsdb.keys("node.power_w")[:5]:
        series = pipeline.tsdb.query(key.metric, key.component)
        assert (np.diff(series.times) > 0).all()
        assert np.isfinite(series.values).all()

    # job index agrees with the scheduler's view of completed jobs
    done = {j.id for j in sched.completed if j.start_time is not None}
    indexed_done = {
        a.job_id
        for a in pipeline.jobs.jobs_overlapping(-np.inf, np.inf)
        if a.end is not None
    }
    assert indexed_done <= {j.id for j in sched.completed} | {
        j.id for j in sched.running
    }
    assert done <= set(
        a.job_id for a in pipeline.jobs.jobs_overlapping(-np.inf, np.inf)
    )

    # the event plane kept flowing
    assert pipeline.router.events_routed >= n_faults  # faults emit events


# -- monitor-side chaos: breaking the monitoring plane itself -----------------

def random_monitor_fault(rng, t):
    """One randomly parameterized *monitor* fault at time ``t``."""
    from repro.obs.chaos import (
        CollectorHang,
        CollectorRaise,
        ShardOutage,
        TransportDropStorm,
        TransportDuplication,
    )

    duration = float(rng.uniform(300.0, 1500.0))
    target = str(rng.choice(["sedc", "net_links", "fs_probes",
                             "environment", "node_counters"]))
    choices = [
        lambda: CollectorRaise(start=t, duration=duration, target=target),
        lambda: CollectorHang(start=t, duration=duration, target=target,
                              stall_s=0.02),
        lambda: TransportDropStorm(start=t, duration=duration,
                                   drop_every=int(rng.integers(2, 6))),
        lambda: TransportDuplication(start=t, duration=duration,
                                     duplicate_every=int(
                                         rng.integers(2, 6))),
        lambda: ShardOutage(start=t, duration=duration,
                            shard=int(rng.integers(0, 4))),
    ]
    return choices[int(rng.integers(0, len(choices)))]()


@pytest.mark.parametrize("seed", [5, 29])
def test_monitor_fault_campaign_survives(seed):
    """Faults in the monitoring plane itself: the pipeline never raises,
    every supervised component returns to OK after the fault clears, and
    the delivery ledger reconciles exactly."""
    from repro.core.lifecycle import Health
    from repro.obs.chaos import ChaosTransport, MonitorFaultInjector
    from repro.transport.partitioned import PartitionedBus

    rng = np.random.default_rng(seed)
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=200,
                                   max_nodes=24, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )
    # machine weather AND monitor faults, overlapping
    machine.faults.add(HungNode(start=600.0, duration=900.0,
                                node=topo.nodes[3]))
    pipeline = default_pipeline(
        machine,
        seed=seed,
        transport=ChaosTransport(PartitionedBus()),
        shards=4,
        collector_budget_s=0.01,
    )
    total_s = 4000.0
    inj = MonitorFaultInjector([
        random_monitor_fault(rng, float(rng.uniform(60.0, 2000.0)))
        for _ in range(int(rng.integers(3, 6)))
    ])
    # shard outages must clear early enough for the supervised-store
    # hysteresis (two clean selfmon observations) to heal before the end
    for f in inj.faults:
        f.duration = min(f.duration, total_s - f.start - 600.0)

    dt = 10.0
    end = machine.now + total_s
    while machine.now < end - 1e-9:       # must not raise, ever
        inj.step(pipeline, machine.now)
        pipeline.step(dt)
    inj.step(pipeline, machine.now)
    pipeline.bus.flush()

    # every fault was applied and reverted on schedule
    assert inj.all_reverted()

    # every supervised component recovered once its fault cleared
    sup = pipeline.supervisor
    impaired = {name: rec.health for name, rec in sup.components.items()
                if rec.health is not Health.OK}
    assert impaired == {}, sup.timeline()

    # the ledger reconciles exactly: zero silent loss
    report = pipeline.delivery_report()
    assert report.balanced, report.render()
    assert report.pending == 0 and report.in_flight == 0
    assert report.published == report.stored + report.lost
    # any loss is attributed to a known cause
    assert set(report.lost_by_cause) <= {
        "chaos-drop", "partition-overflow", "shard-redo-overflow",
        "store-error",
    }

    # the faults actually bit (the campaign exercised something) and
    # the timeline recorded the impairment episodes
    assert len(sup.transitions) > 0


@pytest.mark.parametrize("seed", [11])
def test_kill_and_recover_campaign_accounts_every_point(seed, tmp_path):
    """Hard-crash the disk-backed store mid-campaign, under transport
    chaos: the pipeline never raises, every component heals, and the
    ledger identity ``published == stored + lost + pending + in_flight``
    holds exactly across the crash — unsynced loss is a named cause,
    never a silence."""
    from repro.core.lifecycle import Health
    from repro.obs.chaos import (
        ChaosTransport,
        CollectorRaise,
        MonitorFaultInjector,
        StoreCrash,
        TransportDropStorm,
    )
    from repro.storage.rollup import DEFAULT_LEVELS
    from repro.storage.sharded import ShardedTimeSeriesStore
    from repro.transport.partitioned import PartitionedBus

    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=200,
                                   max_nodes=24, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )
    # small chunks and a tiny hot budget so the campaign actually
    # seals, spills, and WAL-syncs before the crash lands
    tsdb = ShardedTimeSeriesStore(
        shards=4, chunk_size=24, pyramid_levels=DEFAULT_LEVELS,
        disk_dir=str(tmp_path), hot_bytes=16 << 10,
        sync_every_bytes=64 << 10,
    )
    pipeline = default_pipeline(
        machine,
        seed=seed,
        transport=ChaosTransport(PartitionedBus()),
        tsdb=tsdb,
        collector_budget_s=0.01,
    )
    total_s = 4000.0
    crash = StoreCrash(start=2400.0)
    # NO ShardOutage here: redo-parked points are not WAL-logged, so a
    # crash while a shard holds redo state would turn visible pending
    # into silent loss — that interaction is excluded by design
    inj = MonitorFaultInjector([
        CollectorRaise(start=600.0, duration=900.0, target="sedc"),
        TransportDropStorm(start=1200.0, duration=800.0, drop_every=3),
        crash,
    ])

    dt = 10.0
    end = machine.now + total_s
    snapped = False
    while machine.now < end - 1e-9:       # must not raise, ever
        if not snapped and machine.now >= 1500.0:
            tsdb.snapshot()               # manifest + WAL rotation
            snapped = True
        inj.step(pipeline, machine.now)
        pipeline.step(dt)
    inj.step(pipeline, machine.now)
    pipeline.bus.flush()

    # the crash fired, recovered, and was reverted within its own step
    assert crash.applied and crash.reverted
    assert inj.all_reverted()
    assert crash.recovery is not None
    assert crash.recovery.points > 0

    # every supervised component healed after its fault cleared
    sup = pipeline.supervisor
    impaired = {name: rec.health for name, rec in sup.components.items()
                if rec.health is not Health.OK}
    assert impaired == {}, sup.timeline()

    # the ledger reconciles exactly across the crash: zero silent loss
    report = pipeline.delivery_report()
    assert report.balanced, report.render()
    assert report.unaccounted == 0
    assert report.pending == 0 and report.in_flight == 0
    assert set(report.lost_by_cause) <= {
        "chaos-drop", "partition-overflow", "store-error",
        "crash-unsynced",
    }
    # crash loss (if any) is a number under its named cause, matching
    # exactly what the fault reported moving
    assert report.lost_by_cause.get("crash-unsynced", 0) \
        == crash.points_accounted

    # the recovered store still answers queries through the front end
    metric = sorted(pipeline.tsdb.points_by_metric())[0]
    comp = pipeline.tsdb.components(metric)[0]
    res = pipeline.frontend.query(metric, comp, 0.0, machine.now)
    assert len(res.times) > 0
