"""Unit tests for message envelopes and wire codecs."""

import numpy as np
import pytest

from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.transport.message import (
    Envelope,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
)


def batch():
    return SeriesBatch.sweep("node.power_w", 60.0, ["n0", "n1"],
                             [250.0, np.nan])


def event():
    return Event(
        time=5.5,
        component="c0-0c0s1n2",
        kind=EventKind.HWERR,
        severity=Severity.CRITICAL,
        message="machine check",
        fields={"bank": 4},
    )


class TestJsonCodec:
    def test_batch_round_trip(self):
        env = Envelope("metrics.power", batch(), source="sedc", seq=7)
        out = decode_json(encode_json(env))
        assert out.topic == "metrics.power"
        assert out.seq == 7
        assert isinstance(out.payload, SeriesBatch)
        assert list(out.payload.components) == ["n0", "n1"]
        assert out.payload.values[0] == 250.0
        assert np.isnan(out.payload.values[1])

    def test_event_round_trip(self):
        env = Envelope("events.hwerr", event())
        out = decode_json(encode_json(env))
        assert out.payload == event()

    def test_dict_round_trip(self):
        env = Envelope("cfg", {"a": [1, 2]})
        assert decode_json(encode_json(env)).payload == {"a": [1, 2]}

    def test_json_is_single_line(self):
        assert "\n" not in encode_json(Envelope("t", event()))


class TestBinaryCodec:
    def test_round_trip(self):
        env = Envelope("events.hwerr", event(), source="erd", seq=3)
        out, rest = decode_binary(encode_binary(env))
        assert rest == b""
        assert out.topic == "events.hwerr"
        assert out.source == "erd"
        assert out.payload == event()

    def test_stream_of_frames(self):
        stream = encode_binary(Envelope("a", event(), seq=1)) + encode_binary(
            Envelope("b", event(), seq=2)
        )
        first, rest = decode_binary(stream)
        second, rest = decode_binary(rest)
        assert (first.topic, second.topic) == ("a", "b")
        assert rest == b""

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decode_binary(b"NOPE" + b"\x00" * 16)

    def test_batch_round_trip(self):
        env = Envelope("metrics", batch())
        out, _ = decode_binary(encode_binary(env))
        assert isinstance(out.payload, SeriesBatch)
        assert len(out.payload) == 2
