"""Unit tests for the partitioned (Kafka-class) transport tier."""

import pytest

from repro.transport.partitioned import PartitionedBus


@pytest.fixture()
def bus():
    return PartitionedBus(partitions=4, partition_queue_len=100)


class TestRouting:
    def test_partition_assignment_is_stable(self, bus):
        """Same topic -> same partition, across calls and instances."""
        topics = [f"metrics.m{i}" for i in range(50)]
        first = [bus.partition_of(t) for t in topics]
        assert first == [bus.partition_of(t) for t in topics]
        other = PartitionedBus(partitions=4)
        assert first == [other.partition_of(t) for t in topics]

    def test_topics_spread_across_partitions(self, bus):
        parts = {bus.partition_of(f"metrics.m{i}") for i in range(100)}
        assert len(parts) == 4

    def test_repartition_only_on_count_change(self, bus):
        other = PartitionedBus(partitions=8)
        moved = [
            t for t in (f"metrics.m{i}" for i in range(100))
            if bus.partition_of(t) != other.partition_of(t)
        ]
        assert moved            # different K really does repartition

    def test_partition_count_validation(self):
        with pytest.raises(ValueError):
            PartitionedBus(partitions=0)


class TestDeferredDelivery:
    def test_publish_defers_until_pump(self, bus):
        sub = bus.subscribe("metrics.*")
        assert bus.publish("metrics.power", 1) == 0
        assert sub.drain() == []                 # nothing delivered yet
        assert bus.pump() == 1
        assert [e.payload for e in sub.drain()] == [1]

    def test_wildcard_sees_all_partitions(self, bus):
        sub = bus.subscribe("metrics.*")
        topics = [f"metrics.m{i}" for i in range(20)]
        for t in topics:
            bus.publish(t, t)
        bus.pump()
        assert sorted(e.payload for e in sub.drain()) == sorted(topics)

    def test_per_topic_fifo_preserved(self, bus):
        sub = bus.subscribe("metrics.power")
        for i in range(10):
            bus.publish("metrics.power", i)
        bus.pump()
        assert [e.payload for e in sub.drain()] == list(range(10))

    def test_callbacks_fire_on_pump(self, bus):
        seen = []
        bus.subscribe("t", callback=seen.append)
        bus.publish("t", 42)
        assert seen == []
        bus.pump()
        assert seen[0].payload == 42

    def test_flush_equals_pump_all(self, bus):
        sub = bus.subscribe("*")
        bus.publish("a", 1)
        bus.publish("b", 2)
        assert bus.flush() == 2
        assert len(sub.drain()) == 2


class TestBoundedPartitions:
    def test_drop_oldest_counted_per_partition(self):
        bus = PartitionedBus(partitions=2, partition_queue_len=5)
        sub = bus.subscribe("metrics.storm")
        p = bus.partition_of("metrics.storm")
        for i in range(12):
            bus.publish("metrics.storm", i)
        drops = bus.partition_drops()
        assert drops[f"partition-{p}"] == 7
        assert sum(drops.values()) == 7
        bus.pump()
        # the newest window survived
        assert [e.payload for e in sub.drain()] == list(range(7, 12))

    def test_storm_isolated_to_its_partition(self):
        bus = PartitionedBus(partitions=8, partition_queue_len=4)
        quiet_topic = next(
            f"metrics.q{i}" for i in range(100)
            if bus.partition_of(f"metrics.q{i}")
            != bus.partition_of("metrics.storm")
        )
        sub = bus.subscribe(quiet_topic)
        bus.publish(quiet_topic, "safe")
        for i in range(1000):
            bus.publish("metrics.storm", i)
        bus.pump()
        assert [e.payload for e in sub.drain()] == ["safe"]

    def test_depths_reflect_backlog_then_drain(self, bus):
        bus.subscribe("metrics.*", callback=lambda env: None)
        for i in range(10):
            bus.publish(f"metrics.m{i}", i)
        assert sum(bus.partition_depths().values()) == 10
        bus.pump()
        assert sum(bus.partition_depths().values()) == 0


class TestStats:
    def test_stats_merge_partition_and_sub_accounting(self):
        bus = PartitionedBus(partitions=2, partition_queue_len=3)
        bus.subscribe("metrics.*", maxlen=2)
        p = bus.partition_of("metrics.storm")
        for i in range(5):
            bus.publish("metrics.storm", i)
        s = bus.stats()
        assert s.published == 5
        assert s.partitions == 2
        assert s.partition_dropped[p] == 2       # 5 into a 3-deep lane
        assert s.delivered == 0                  # not pumped yet
        bus.pump()
        s = bus.stats()
        assert s.delivered == 3
        # 2 dropped in the partition + 1 dropped by the maxlen=2 sub
        assert s.dropped == 3

    def test_queue_depths_include_partitions_and_subs(self, bus):
        bus.subscribe("metrics.*", name="ingest")
        bus.publish("metrics.a", 1)
        depths = bus.queue_depths()
        assert "ingest" in depths
        assert any(k.startswith("partition-") for k in depths)
