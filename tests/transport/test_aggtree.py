"""Unit tests for the LDMS-style aggregator-tree transport.

The load-bearing property (the acceptance oracle): coalescing merges
*messages*, never samples — every (series, t, value) point published
into the tree comes out of the root exactly once, compared against a
flat bus carrying the identical workload.
"""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.transport.aggtree import AggregatorTree
from repro.transport.bus import MessageBus


def point_set(envelopes):
    """Multiset of (topic, metric, component, t, value) delivered."""
    out = []
    for env in envelopes:
        b = env.payload
        for i in range(len(b)):
            out.append((env.topic, b.metric, str(b.components[i]),
                        float(b.times[i]), float(b.values[i])))
    return sorted(out)


def random_workload(rng, n_sources=40, n_publishes=300, n_metrics=5):
    """(topic, batch, source) triples: small per-source batches."""
    out = []
    for k in range(n_publishes):
        m = f"m{rng.integers(n_metrics)}"
        src = f"src{rng.integers(n_sources)}"
        n = int(rng.integers(1, 4))
        t0 = float(k)
        batch = SeriesBatch(
            f"metric.{m}",
            [f"{src}-c{j}" for j in range(n)],
            [t0 + 0.1 * j for j in range(n)],
            rng.normal(size=n),
        )
        out.append((f"metrics.{m}", batch, src))
    return out


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AggregatorTree(leaves=0)
        with pytest.raises(ValueError):
            AggregatorTree(fan_in=1)
        with pytest.raises(ValueError):
            AggregatorTree(window_s=-1.0)

    def test_levels_follow_fan_in(self):
        assert AggregatorTree(leaves=1).levels == 1
        assert AggregatorTree(leaves=4, fan_in=4).levels == 2
        assert AggregatorTree(leaves=16, fan_in=4).levels == 3
        assert AggregatorTree(leaves=27, fan_in=3).levels == 4

    def test_leaf_assignment_is_stable_by_source(self):
        tree = AggregatorTree(leaves=8)
        assert (tree.leaf_of("metrics.a", "node-3")
                == tree.leaf_of("metrics.b", "node-3"))
        other = AggregatorTree(leaves=8)
        assert tree.leaf_of("t", "node-3") == other.leaf_of("t", "node-3")


class TestCoalescing:
    def test_batches_merge_per_topic(self):
        tree = AggregatorTree(leaves=4, fan_in=2)
        sub = tree.subscribe("metrics.power")
        for i in range(10):
            tree.publish(
                "metrics.power",
                SeriesBatch.sweep("node.power_w", float(i),
                                  [f"n{i}"], [float(i)]),
                source=f"node-{i}",
            )
        tree.pump(now=100.0)
        got = sub.drain()
        assert len(got) == 1                    # one merged message
        assert len(got[0].payload) == 10        # all ten points inside
        s = tree.stats()
        assert s.batches_in == 10
        assert s.upstream_messages == 1
        assert s.coalesce_ratio == 10.0

    def test_events_bypass_coalescing(self):
        tree = AggregatorTree(leaves=4)
        sub = tree.subscribe("events.*")
        n = tree.publish("events.hwerr", {"node": "n3"}, source="erd")
        assert n == 1                           # delivered synchronously
        assert [e.payload for e in sub.drain()] == [{"node": "n3"}]

    def test_window_holds_young_batches(self):
        tree = AggregatorTree(leaves=2, window_s=30.0)
        sub = tree.subscribe("metrics.*")
        tree.publish("metrics.a",
                     SeriesBatch.sweep("a", 100.0, ["c"], [1.0]), "s1")
        assert tree.pump(now=110.0) == 0        # 10s old < 30s window
        assert sub.drain() == []
        assert tree.pump(now=130.0) == 1        # 30s old: due
        assert len(sub.drain()) == 1

    def test_flush_forces_windowed_batches_out(self):
        tree = AggregatorTree(leaves=2, window_s=1e9)
        sub = tree.subscribe("metrics.*")
        tree.publish("metrics.a",
                     SeriesBatch.sweep("a", 0.0, ["c"], [1.0]), "s1")
        assert tree.pump(now=100.0) == 0
        assert tree.flush() == 1
        assert len(sub.drain()) == 1


class TestPointPreservation:
    """The satellite oracle: tree delivery == flat delivery, point-wise."""

    def _deliver(self, transport, workload, pump_times=()):
        got = []
        transport.subscribe("metrics.*", callback=got.append)
        for i, (topic, batch, src) in enumerate(workload):
            transport.publish(topic, batch, source=src)
            if pump_times and i % pump_times == 0:
                transport.pump(now=float(i))
        transport.flush()
        return got

    def test_no_loss_no_duplication_vs_flat_bus(self):
        rng = np.random.default_rng(0)
        workload = random_workload(rng)
        flat = self._deliver(MessageBus(), workload)
        tree = self._deliver(AggregatorTree(leaves=8, fan_in=3), workload)
        assert point_set(tree) == point_set(flat)

    def test_preserved_under_incremental_pumping_with_window(self):
        rng = np.random.default_rng(1)
        workload = random_workload(rng)
        flat = self._deliver(MessageBus(), workload)
        tree_t = AggregatorTree(leaves=4, fan_in=2, window_s=20.0)
        tree = self._deliver(tree_t, workload, pump_times=7)
        assert point_set(tree) == point_set(flat)
        s = tree_t.stats()
        assert s.points_forwarded == s.points_in
        assert s.dropped_batches == 0

    def test_drop_oldest_pressure_loses_audited_points_only(self):
        """Under leaf overflow the tree loses exactly the points its
        drop counters admit to — and never duplicates a survivor."""
        rng = np.random.default_rng(2)
        workload = random_workload(rng, n_publishes=600)
        tree_t = AggregatorTree(leaves=2, fan_in=2, leaf_queue_len=16)
        tree = self._deliver(tree_t, workload)
        flat = self._deliver(MessageBus(), workload)
        s = tree_t.stats()
        assert s.dropped_batches > 0             # pressure actually hit
        delivered = point_set(tree)
        published = point_set(flat)
        assert len(delivered) == s.points_in - s.dropped_points
        assert s.points_forwarded == len(delivered)
        # no duplication, no invention: delivered is a sub-multiset
        remaining = list(published)
        for p in delivered:
            remaining.remove(p)                  # raises if duplicated

    def test_single_leaf_single_level_degenerate_tree(self):
        rng = np.random.default_rng(3)
        workload = random_workload(rng, n_publishes=50)
        flat = self._deliver(MessageBus(), workload)
        tree = self._deliver(AggregatorTree(leaves=1, fan_in=2), workload)
        assert point_set(tree) == point_set(flat)


class TestSelfMonSurfaces:
    def test_leaf_depths_and_queue_depths(self):
        tree = AggregatorTree(leaves=4)
        tree.subscribe("metrics.*", name="ingest")
        tree.publish("metrics.a",
                     SeriesBatch.sweep("a", 0.0, ["c"], [1.0]), "s1")
        depths = tree.queue_depths()
        assert sum(v for k, v in depths.items()
                   if k.startswith("leaf-")) == 1
        assert "ingest" in depths
        tree.flush()
        assert sum(tree.leaf_depths().values()) == 0
