"""Unit tests for the LDMS-style pull aggregation tree."""

import pytest

from repro.core.metric import SeriesBatch
from repro.transport.ldms import Aggregator, Sampler, build_tree


def sampler(name, value=1.0):
    def fn(now):
        return [SeriesBatch.sweep("m", now, [name], [value])]

    return Sampler(name, fn)


class TestSampler:
    def test_pull_invokes_fn(self):
        s = sampler("n0", 5.0)
        out = s.pull(60.0)
        assert out[0].values[0] == 5.0
        assert s.pulls == 1


class TestAggregator:
    def test_requires_children(self):
        with pytest.raises(ValueError):
            Aggregator("a", [])

    def test_fan_in_collects_all(self):
        agg = Aggregator("a", [sampler(f"n{i}") for i in range(5)])
        out = agg.pull(0.0)
        assert len(out) == 5
        assert agg.samples_moved == 5

    def test_stats_accumulate(self):
        agg = Aggregator("a", [sampler("n0")])
        agg.pull(0.0)
        agg.pull(60.0)
        s = agg.stats()
        assert s.pulls == 2
        assert s.samples == 2
        assert s.wire_bytes > 0


class TestBuildTree:
    def test_single_level_when_fanin_large(self):
        root = build_tree([sampler(f"n{i}") for i in range(8)], fan_in=16)
        assert root.depth() == 1
        assert len(root.pull(0.0)) == 8

    def test_multi_level_tree(self):
        root = build_tree([sampler(f"n{i}") for i in range(64)], fan_in=4)
        # 64 -> 16 -> 4 -> 1: three levels
        assert root.depth() == 3
        out = root.pull(0.0)
        assert len(out) == 64

    def test_all_samples_survive_any_fanin(self):
        samplers = [sampler(f"n{i}", float(i)) for i in range(37)]
        for fan_in in (2, 3, 5, 40):
            root = build_tree(
                [sampler(f"n{i}", float(i)) for i in range(37)],
                fan_in=fan_in,
            )
            out = root.pull(0.0)
            values = sorted(b.values[0] for b in out)
            assert values == [float(i) for i in range(37)]

    def test_fan_in_validated(self):
        with pytest.raises(ValueError):
            build_tree([sampler("n0")], fan_in=1)

    def test_synchronized_timestamps(self):
        root = build_tree([sampler(f"n{i}") for i in range(10)], fan_in=3)
        out = root.pull(120.0)
        assert all(b.times[0] == 120.0 for b in out)
