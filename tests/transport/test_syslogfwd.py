"""Unit tests for the syslog forwarder."""


from repro.core.events import Event, EventKind, Severity
from repro.transport.syslogfwd import SyslogForwarder


def ev(t, msg="x"):
    return Event(t, "n0", EventKind.CONSOLE, Severity.INFO, msg)


class TestForwarding:
    def test_all_through_under_rate(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=100, burst=50)
        n = fwd.forward(0.0, [ev(0.0) for _ in range(10)])
        assert n == 10
        assert len(sink) == 10
        assert fwd.stats().loss_rate == 0.0

    def test_burst_exceeding_tokens_buffers(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=10, burst=5,
                              retry_buffer=100)
        fwd.forward(0.0, [ev(0.0) for _ in range(20)])
        assert len(sink) == 5
        assert fwd.pending() == 15
        assert fwd.stats().dropped == 0

    def test_retries_drain_when_tokens_refill(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=10, burst=5,
                              retry_buffer=100)
        fwd.forward(0.0, [ev(0.0) for _ in range(20)])
        fwd.forward(10.0, [])   # 10 s x 10/s, capped at burst... tokens=5
        assert len(sink) == 10
        fwd.forward(20.0, [])
        assert len(sink) == 15

    def test_storm_overflows_buffer_and_drops(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=10, burst=5,
                              retry_buffer=10)
        fwd.forward(0.0, [ev(0.0) for _ in range(100)])
        s = fwd.stats()
        assert s.dropped == 100 - 5 - 10
        assert s.loss_rate > 0.5

    def test_ordering_oldest_retries_first(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=1, burst=1,
                              retry_buffer=10)
        fwd.forward(0.0, [ev(0.0, "first"), ev(0.0, "second")])
        fwd.forward(1.0, [ev(1.0, "third")])
        assert [e.message for e in sink][:2] == ["first", "second"]

    def test_stats_retried_counted(self):
        sink = []
        fwd = SyslogForwarder(sink.append, rate_per_s=10, burst=1,
                              retry_buffer=10)
        fwd.forward(0.0, [ev(0.0), ev(0.0)])
        fwd.forward(1.0, [])
        assert fwd.stats().retried == 1
