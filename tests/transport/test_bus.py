"""Unit tests for the pub/sub message bus."""

import pytest

from repro.transport.bus import MessageBus


@pytest.fixture()
def bus():
    return MessageBus(default_queue_len=100)


class TestRouting:
    def test_exact_topic_delivery(self, bus):
        sub = bus.subscribe("metrics.power")
        bus.publish("metrics.power", {"v": 1})
        bus.publish("metrics.temp", {"v": 2})
        got = sub.drain()
        assert len(got) == 1
        assert got[0].payload == {"v": 1}

    def test_wildcard_delivery(self, bus):
        sub = bus.subscribe("metrics.*")
        bus.publish("metrics.power", 1)
        bus.publish("metrics.temp", 2)
        bus.publish("events.hwerr", 3)
        assert len(sub.drain()) == 2

    def test_multiple_consumers_fanout(self, bus):
        a = bus.subscribe("t")
        b = bus.subscribe("t")
        n = bus.publish("t", 1)
        assert n == 2
        assert len(a.drain()) == 1 and len(b.drain()) == 1

    def test_no_subscribers_is_fine(self, bus):
        assert bus.publish("nowhere", 1) == 0

    def test_unsubscribe_stops_delivery(self, bus):
        sub = bus.subscribe("t")
        bus.unsubscribe(sub)
        bus.publish("t", 1)
        assert sub.drain() == []

    def test_seq_increments(self, bus):
        sub = bus.subscribe("t")
        bus.publish("t", 1)
        bus.publish("t", 2)
        seqs = [e.seq for e in sub.drain()]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2


class TestCallbacks:
    def test_callback_delivery_is_synchronous(self, bus):
        seen = []
        bus.subscribe("t", callback=seen.append)
        bus.publish("t", 42)
        assert seen[0].payload == 42

    def test_raising_callback_does_not_abort_fanout(self, bus):
        """A misbehaving subscriber must not starve later consumers."""
        seen_before, seen_after = [], []

        def boom(env):
            raise RuntimeError("consumer bug")

        bus.subscribe("t", callback=seen_before.append, name="healthy-1")
        bad = bus.subscribe("t", callback=boom, name="broken")
        bus.subscribe("t", callback=seen_after.append, name="healthy-2")
        queued = bus.subscribe("t", name="queued")

        hits = bus.publish("t", 1)
        # both healthy callbacks and the queue got the envelope
        assert len(seen_before) == len(seen_after) == 1
        assert len(queued.drain()) == 1
        assert hits == 3                       # the raise is not a delivery
        assert bad.errors == 1
        assert isinstance(bad.last_error, RuntimeError)
        assert bad.received == 0

    def test_errors_accumulate_per_subscription(self, bus):
        def boom(env):
            raise ValueError("again")

        bad = bus.subscribe("t", callback=boom)
        for i in range(5):
            bus.publish("t", i)
        assert bad.errors == 5
        assert bus.stats().errors == 5

    def test_callback_recovers_after_transient_error(self, bus):
        calls = []

        def flaky(env):
            if env.payload == "bad":
                raise RuntimeError("transient")
            calls.append(env.payload)

        sub = bus.subscribe("t", callback=flaky)
        bus.publish("t", "ok-1")
        bus.publish("t", "bad")
        bus.publish("t", "ok-2")
        assert calls == ["ok-1", "ok-2"]
        assert sub.errors == 1
        assert sub.received == 2


class TestBackpressure:
    def test_queue_overflow_drops_oldest(self, bus):
        sub = bus.subscribe("t", maxlen=3)
        for i in range(5):
            bus.publish("t", i)
        got = [e.payload for e in sub.drain()]
        assert got == [2, 3, 4]
        assert sub.dropped == 2

    def test_overflow_keeps_exactly_the_newest_window(self, bus):
        """Drop-oldest under a storm: the retained window slides."""
        sub = bus.subscribe("t", maxlen=10)
        for i in range(1000):
            bus.publish("t", i)
        assert sub.dropped == 990
        assert sub.received == 1000
        got = [e.payload for e in sub.drain()]
        assert got == list(range(990, 1000))
        # queue empty again: new publishes are retained without drops
        bus.publish("t", "fresh")
        assert sub.dropped == 990
        assert [e.payload for e in sub.drain()] == ["fresh"]

    def test_overflow_isolated_per_subscription(self, bus):
        tiny = bus.subscribe("t", maxlen=2)
        roomy = bus.subscribe("t", maxlen=100)
        for i in range(10):
            bus.publish("t", i)
        assert tiny.dropped == 8
        assert roomy.dropped == 0
        assert len(roomy) == 10

    def test_drain_max_items(self, bus):
        sub = bus.subscribe("t")
        for i in range(10):
            bus.publish("t", i)
        assert len(sub.drain(max_items=4)) == 4
        assert len(sub) == 6

    def test_queue_depths_snapshot(self, bus):
        a = bus.subscribe("x", name="a")
        bus.subscribe("x", callback=lambda env: None, name="cb")
        for i in range(7):
            bus.publish("x", i)
        depths = bus.queue_depths()
        assert depths["a"] == 7
        assert depths["cb"] == 0               # callbacks never queue
        a.drain()
        assert bus.queue_depths()["a"] == 0

    def test_queue_depths_disambiguates_shared_names(self, bus):
        bus.subscribe("t")
        bus.subscribe("t")
        bus.publish("t", 1)
        depths = bus.queue_depths()
        assert len(depths) == 2
        assert all(d == 1 for d in depths.values())


class TestMatchCache:
    def test_cache_hits_on_repeat_topics(self, bus):
        bus.subscribe("metrics.*")
        for _ in range(10):
            bus.publish("metrics.power", 1)
        info = bus.match_cache_info()
        assert info.misses == 1          # first (topic, pattern) pair
        assert info.hits == 9
        assert info.size == 1

    def test_cache_is_bounded(self):
        bus = MessageBus(match_cache_size=8)
        bus.subscribe("metrics.*")
        for i in range(100):
            bus.publish(f"metrics.m{i}", i)
        assert bus.match_cache_info().size <= 8

    def test_cache_disabled_with_zero(self):
        bus = MessageBus(match_cache_size=0)
        sub = bus.subscribe("metrics.*")
        for _ in range(5):
            bus.publish("metrics.power", 1)
        info = bus.match_cache_info()
        assert info.size == 0 and info.hits == 0
        assert len(sub.drain()) == 5     # matching still correct

    def test_cached_and_uncached_agree(self):
        cached = MessageBus()
        uncached = MessageBus(match_cache_size=0)
        topics = ["metrics.power", "events.hwerr", "metrics.temp",
                  "selfmon.bus.dropped", "metrics.power"]
        for b in (cached, uncached):
            b.subscribe("metrics.*", name="m")
            b.subscribe("events.hwerr", name="e")
            b.subscribe("*.power", name="p")
        counts = []
        for b in (cached, uncached):
            counts.append([b.publish(t, 0) for t in topics])
        assert counts[0] == counts[1]


class TestStats:
    def test_stats_account_everything(self, bus):
        sub = bus.subscribe("t", maxlen=2)
        bus.subscribe("t")
        for i in range(4):
            bus.publish("t", i)
        s = bus.stats()
        assert s.published == 4
        assert s.delivered == 8
        assert s.dropped == 2
        assert s.subscriptions == 2
        assert s.errors == 0
        assert s.queue_depths == {"t": 2, "t#1": 4}

    def test_publish_many(self, bus):
        sub = bus.subscribe("t")
        bus.publish_many("t", [1, 2, 3])
        assert len(sub.drain()) == 3
