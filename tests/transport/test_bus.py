"""Unit tests for the pub/sub message bus."""

import pytest

from repro.transport.bus import MessageBus


@pytest.fixture()
def bus():
    return MessageBus(default_queue_len=100)


class TestRouting:
    def test_exact_topic_delivery(self, bus):
        sub = bus.subscribe("metrics.power")
        bus.publish("metrics.power", {"v": 1})
        bus.publish("metrics.temp", {"v": 2})
        got = sub.drain()
        assert len(got) == 1
        assert got[0].payload == {"v": 1}

    def test_wildcard_delivery(self, bus):
        sub = bus.subscribe("metrics.*")
        bus.publish("metrics.power", 1)
        bus.publish("metrics.temp", 2)
        bus.publish("events.hwerr", 3)
        assert len(sub.drain()) == 2

    def test_multiple_consumers_fanout(self, bus):
        a = bus.subscribe("t")
        b = bus.subscribe("t")
        n = bus.publish("t", 1)
        assert n == 2
        assert len(a.drain()) == 1 and len(b.drain()) == 1

    def test_no_subscribers_is_fine(self, bus):
        assert bus.publish("nowhere", 1) == 0

    def test_unsubscribe_stops_delivery(self, bus):
        sub = bus.subscribe("t")
        bus.unsubscribe(sub)
        bus.publish("t", 1)
        assert sub.drain() == []

    def test_seq_increments(self, bus):
        sub = bus.subscribe("t")
        bus.publish("t", 1)
        bus.publish("t", 2)
        seqs = [e.seq for e in sub.drain()]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2


class TestCallbacks:
    def test_callback_delivery_is_synchronous(self, bus):
        seen = []
        bus.subscribe("t", callback=seen.append)
        bus.publish("t", 42)
        assert seen[0].payload == 42


class TestBackpressure:
    def test_queue_overflow_drops_oldest(self, bus):
        sub = bus.subscribe("t", maxlen=3)
        for i in range(5):
            bus.publish("t", i)
        got = [e.payload for e in sub.drain()]
        assert got == [2, 3, 4]
        assert sub.dropped == 2

    def test_drain_max_items(self, bus):
        sub = bus.subscribe("t")
        for i in range(10):
            bus.publish("t", i)
        assert len(sub.drain(max_items=4)) == 4
        assert len(sub) == 6


class TestStats:
    def test_stats_account_everything(self, bus):
        sub = bus.subscribe("t", maxlen=2)
        bus.subscribe("t")
        for i in range(4):
            bus.publish("t", i)
        s = bus.stats()
        assert s.published == 4
        assert s.delivered == 8
        assert s.dropped == 2
        assert s.subscriptions == 2

    def test_publish_many(self, bus):
        sub = bus.subscribe("t")
        bus.publish_many("t", [1, 2, 3])
        assert len(sub.drain()) == 3
