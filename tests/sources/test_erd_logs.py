"""Unit tests for the event router, Deluge decoder, and log paths."""


from repro.cluster import HungNode, Machine, build_dragonfly
from repro.core.events import Event, EventKind, Severity
from repro.sources.erd import DelugeTap, EventRouter
from repro.sources.logsource import (
    CrayLogSplitter,
    UnifiedLogForwarder,
    parse_split_logs,
)


def machine_with_events():
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    m = Machine(topo, seed=5)
    m.faults.add(HungNode(start=10.0, duration=30.0, node=topo.nodes[0]))
    m.run(60.0, dt=5.0)
    return m


def sample_events():
    return [
        Event(10.0, "c0-0c0s0n0", EventKind.CONSOLE, Severity.ERROR,
              "soft lockup detected"),
        Event(20.0, "c0-0c0s1n0", EventKind.HWERR, Severity.CRITICAL,
              "machine check exception", fields={"bank": 4, "mcacod": 17}),
        Event(30.0, "room0", EventKind.ENV, Severity.WARNING,
              "corrosion high"),
        Event(40.0, "scheduler", EventKind.SCHEDULER, Severity.INFO,
              "start job=1 app=qmc nodes=8"),
        Event(90000.0, "c1-0c0s0n1", EventKind.NETWORK, Severity.ERROR,
              "link failed"),  # next day
    ]


class TestEventRouter:
    def test_pump_drains_machine(self):
        m = machine_with_events()
        router = EventRouter()
        n = router.pump(m)
        assert n >= 2                      # hung + recovered at least
        assert m.drain_events() == []      # machine buffer now empty

    def test_text_subset_is_lossy(self):
        m = machine_with_events()
        router = EventRouter()
        router.pump(m)
        lines = router.text_subset()
        assert lines                        # console events present
        assert all(isinstance(l, str) for l in lines)
        # structured fields are flattened away in the text path
        assert not any("{" in l for l in lines)

    def test_deluge_tap_gets_full_events(self):
        m = machine_with_events()
        router = EventRouter()
        tap = router.attach(DelugeTap())
        router.pump(m)
        events = tap.drain()
        assert events
        assert all(isinstance(e, Event) for e in events)

    def test_deluge_kind_filter(self):
        m = machine_with_events()
        router = EventRouter()
        tap = router.attach(DelugeTap(kinds=[EventKind.CONSOLE]))
        router.pump(m)
        assert all(e.kind is EventKind.CONSOLE for e in tap.drain())

    def test_decode_backlog(self):
        m = machine_with_events()
        router = EventRouter()
        router.pump(m)                     # frames buffered pre-attach
        tap = DelugeTap()
        tap.decode_backlog(router)
        assert tap.drain()

    def test_fields_survive_round_trip(self):
        m = Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                    blades_per_chassis=4), seed=1)
        m.emit_event(EventKind.HWERR, Severity.CRITICAL, "n0",
                     "mce", fields={"bank": 4})
        router = EventRouter()
        tap = router.attach(DelugeTap())
        router.pump(m)
        (ev,) = tap.drain()
        assert ev.fields == {"bank": 4}


class TestCrayLogSplitter:
    def test_events_scatter_into_many_files(self):
        splitter = CrayLogSplitter()
        splitter.write(sample_events())
        # 4 kinds on day 0 + 1 kind on day 1 = 5 files
        assert splitter.n_files() == 5

    def test_formats_differ_between_families(self):
        splitter = CrayLogSplitter()
        splitter.write(sample_events())
        all_lines = [l for lines in splitter.files.values() for l in lines]
        assert any(l.startswith("[") for l in all_lines)       # bracket
        assert any(l.startswith("T=") for l in all_lines)      # tagged
        assert any(l.startswith("*** HWERR") for l in all_lines)  # multiline

    def test_parser_recovers_all_records(self):
        splitter = CrayLogSplitter()
        events = sample_events()
        splitter.write(events)
        parsed = parse_split_logs(splitter.files)
        assert len(parsed) == len(events)
        assert [p.time for p in parsed] == sorted(e.time for e in events)

    def test_parser_reassembles_multiline(self):
        splitter = CrayLogSplitter()
        splitter.write(sample_events())
        parsed = parse_split_logs(splitter.files)
        hwerr = [p for p in parsed if p.kind == "hwerr"]
        assert len(hwerr) == 1
        assert hwerr[0].message == "machine check exception"


class TestUnifiedForwarder:
    def test_single_stream_single_format(self):
        fwd = UnifiedLogForwarder()
        fwd.write(sample_events())
        assert len(fwd.lines) == len(sample_events())

    def test_unified_and_split_agree_on_content(self):
        events = sample_events()
        splitter = CrayLogSplitter()
        splitter.write(events)
        fwd = UnifiedLogForwarder()
        fwd.write(events)
        split_parsed = parse_split_logs(splitter.files)
        uni_parsed = fwd.parse()
        assert [p.time for p in split_parsed] == [
            p.time for p in uni_parsed
        ]
        assert [p.component for p in split_parsed] == [
            p.component for p in uni_parsed
        ]
