"""The registry contract, enforced both ways.

Section III-B: "all data flowing through the system should be
registered" — a collector publishing a metric the registry has never
heard of is a schema drift bug, and a *declared* metric that never
shows up in a real sweep is dead documentation.  This test pins the
full default collector complement to the default registry:

* every name in ``Collector.metrics`` resolves in the registry,
* every batch a collector emits carries a name it declared,
* every declared name actually appears in a default-machine sweep
  (GPUs on every node, one IO-active job so ``job.io_bps`` exists).
"""

import pytest

from repro.cluster import Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.registry import default_registry
from repro.pipeline import default_collectors


@pytest.fixture(scope="module")
def machine():
    """A machine warmed past the first checkpoint-IO burst, so the
    conditionally-emitted ``job.io_bps`` surface is live."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    m = Machine(topo, gpu_nodes="all", seed=3)
    m.scheduler.submit(Job(APP_LIBRARY["climate"], 16, 0.0, seed=1), 0.0)
    while m.now < 3000.0 and not m.fs.job_io_Bps:
        m.step(10.0)
    assert m.fs.job_io_Bps, "climate job never performed IO"
    return m


@pytest.fixture(scope="module")
def sweep(machine):
    """metric -> emitting collector names, from one full sweep."""
    emitted: dict[str, set[str]] = {}
    for c in default_collectors(machine):
        out = c.collect(machine, machine.now)
        for b in out.batches:
            emitted.setdefault(b.metric, set()).add(c.name)
    return emitted


class TestRegistryContract:
    def test_every_declared_metric_is_registered(self, machine):
        registry = default_registry()
        for c in default_collectors(machine):
            assert c.metrics, f"collector {c.name} declares no metrics"
            for m in c.metrics:
                assert m in registry, (
                    f"collector {c.name} declares unregistered metric {m!r}"
                )

    def test_collectors_emit_only_declared_metrics(self, machine):
        for c in default_collectors(machine):
            out = c.collect(machine, machine.now)
            emitted = {b.metric for b in out.batches}
            undeclared = emitted - set(c.metrics)
            assert not undeclared, (
                f"collector {c.name} emitted undeclared metrics "
                f"{sorted(undeclared)}"
            )

    def test_every_declared_metric_appears_in_a_sweep(self, machine, sweep):
        declared = {
            m: c.name
            for c in default_collectors(machine)
            for m in c.metrics
        }
        missing = sorted(m for m in declared if m not in sweep)
        assert not missing, (
            "declared but never emitted in a default-machine sweep: "
            + ", ".join(f"{m} ({declared[m]})" for m in missing)
        )

    def test_verify_registered_accepts_default_complement(self, machine):
        registry = default_registry()
        for c in default_collectors(machine):
            c.verify_registered(registry)   # must not raise
