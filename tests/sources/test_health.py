"""Unit tests for health checks and the CSCS gate."""

import pytest

from repro.cluster import Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobState
from repro.core.events import EventKind
from repro.sources.health import (
    ClockSyncCheck,
    FreeMemoryCheck,
    GpuCheck,
    HealthGate,
    MountCheck,
    NodeHealthSuite,
    ResponsivenessCheck,
    ServiceCheck,
)


@pytest.fixture()
def machine():
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(topo, gpu_nodes="all", seed=13)


class TestIndividualChecks:
    def test_service_check(self, machine):
        node = machine.topo.nodes[0]
        assert ServiceCheck().check(machine, node).passed
        machine.nodes.kill_service(node, "slurmd")
        r = ServiceCheck().check(machine, node)
        assert not r.passed and "slurmd" in r.detail

    def test_mount_check(self, machine):
        node = machine.topo.nodes[1]
        machine.nodes.drop_mount(node, "/scratch")
        r = MountCheck().check(machine, node)
        assert not r.passed and "/scratch" in r.detail

    def test_memory_check(self, machine):
        node = machine.topo.nodes[2]
        machine.nodes.mem_free_gb[2] = 1.0
        assert not FreeMemoryCheck(min_free_gb=4.0).check(
            machine, node
        ).passed

    def test_responsiveness_check(self, machine):
        node = machine.topo.nodes[3]
        machine.nodes.set_hung(node)
        r = ResponsivenessCheck().check(machine, node)
        assert not r.passed and "hung" in r.detail
        machine.nodes.set_hung(node, False)
        machine.nodes.set_down(node)
        assert "down" in ResponsivenessCheck().check(machine, node).detail

    def test_gpu_check_failure_modes(self, machine):
        node = machine.topo.nodes[4]
        gi = machine.gpus.index[node]
        machine.gpus.ecc_dbe[gi] = 3
        r = GpuCheck().check(machine, node)
        assert not r.passed and "ECC" in r.detail
        machine.gpus.ecc_dbe[gi] = 0
        machine.gpus.failed[gi] = True
        assert "failed" in GpuCheck().check(machine, node).detail

    def test_gpu_check_passes_without_gpus(self):
        m = Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                    blades_per_chassis=4), seed=1)
        assert GpuCheck().check(m, m.topo.nodes[0]).passed

    def test_clock_sync_check(self, machine):
        node = machine.topo.nodes[5]
        machine.node_clocks[node].offset = 5.0
        assert not ClockSyncCheck(max_offset_s=1.0).check(
            machine, node
        ).passed


class TestSuite:
    def test_healthy_machine_full_pass(self, machine):
        suite = NodeHealthSuite()
        out = suite.collect(machine, 0.0)
        assert out.events == []
        (batch,) = out.batches
        assert (batch.values == 1.0).all()

    def test_failures_emit_health_events(self, machine):
        node = machine.topo.nodes[0]
        machine.nodes.kill_service(node, "munge")
        out = NodeHealthSuite().collect(machine, 0.0)
        assert len(out.events) == 1
        assert out.events[0].kind is EventKind.HEALTH
        assert out.events[0].component == node

    def test_pass_frac_reflects_failures(self, machine):
        node = machine.topo.nodes[0]
        machine.nodes.kill_service(node, "munge")
        machine.nodes.drop_mount(node, "/home")
        out = NodeHealthSuite().collect(machine, 0.0)
        (batch,) = out.batches
        vals = batch.component_values()
        n_checks = len(NodeHealthSuite().checks)
        assert vals[node] == pytest.approx((n_checks - 2) / n_checks)


class TestHealthGate:
    def test_gate_blocks_bad_nodes_at_start(self, machine):
        bad = machine.topo.nodes[0]
        machine.nodes.set_hung(bad)
        gate = HealthGate(machine)
        machine.scheduler.health_gate = gate.gate
        j = Job(APP_LIBRARY["qmc"], len(machine.topo.nodes) - 1, 0.0, seed=1)
        machine.scheduler.submit(j, 0.0)
        machine.step(5.0)
        assert j.state is JobState.RUNNING
        assert bad not in j.nodes
        assert gate.pre_rejections >= 1

    def test_post_job_drains_failed_nodes(self, machine):
        gate = HealthGate(machine)
        j = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=1)
        machine.scheduler.submit(j, 0.0)
        machine.step(5.0)
        victim = j.nodes[0]
        machine.nodes.kill_service(victim, "lnet")   # breaks during job
        machine.scheduler.complete(j, machine.now)
        bad = gate.post_job(j)
        assert bad == [victim]
        assert victim in machine.scheduler.unavailable

    def test_at_most_one_job_sees_the_problem(self, machine):
        """The CSCS invariant end-to-end: a fault during job A drains the
        node, so job B never lands on it."""
        gate = HealthGate(machine)
        machine.scheduler.health_gate = gate.gate
        a = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=1)
        machine.scheduler.submit(a, 0.0)
        machine.step(5.0)
        victim = a.nodes[0]
        machine.nodes.kill_service(victim, "lnet")
        machine.scheduler.complete(a, machine.now)
        gate.post_job(a)
        b = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=2)
        machine.scheduler.submit(b, machine.now)
        machine.step(5.0)
        assert b.state is JobState.RUNNING
        assert victim not in b.nodes

    def test_repair_and_return(self, machine):
        gate = HealthGate(machine)
        j = Job(APP_LIBRARY["qmc"], 4, 0.0, seed=1)
        machine.scheduler.submit(j, 0.0)
        machine.step(5.0)
        victim = j.nodes[0]
        machine.nodes.set_hung(victim)
        machine.scheduler.complete(j, machine.now)
        gate.post_job(j)
        machine.nodes.set_hung(victim, False)
        gate.repair_and_return(victim)
        assert victim not in machine.scheduler.unavailable
        assert victim not in gate.drained


class TestConfigCheck:
    def test_fleet_consistent_passes(self, machine):
        from repro.sources.health import ConfigCheck
        assert ConfigCheck().check(machine, machine.topo.nodes[0]).passed

    def test_lone_drifted_node_flagged(self, machine):
        from repro.sources.health import ConfigCheck
        node = machine.topo.nodes[7]
        machine.nodes.drift_config(node, 0xBAD)
        r = ConfigCheck().check(machine, node)
        assert not r.passed and "golden" in r.detail
        # the rest of the fleet is unaffected
        assert ConfigCheck().check(machine, machine.topo.nodes[0]).passed

    def test_fleetwide_change_is_quiet(self, machine):
        from repro.sources.health import ConfigCheck
        # an intentional image update rolls to every node: new majority
        machine.nodes.config_hash[:] = 0x2024
        assert ConfigCheck().check(machine, machine.topo.nodes[0]).passed

    def test_config_drift_fault_end_to_end(self, machine):
        from repro.cluster import ConfigDrift
        from repro.sources.health import NodeHealthSuite
        node = machine.topo.nodes[2]
        machine.faults.add(ConfigDrift(start=0.0, duration=30.0,
                                       node=node))
        machine.run(10.0, dt=5.0)
        suite = NodeHealthSuite()
        assert not suite.node_passes(machine, node)
        machine.run(60.0, dt=5.0)   # fault reverts
        assert suite.node_passes(machine, node)
