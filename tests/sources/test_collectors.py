"""Unit tests for the collector framework and basic collectors."""

import numpy as np
import pytest

from repro.cluster import Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.registry import default_registry
from repro.sources import (
    CollectionScheduler,
    Collector,
    CollectorOutput,
    EnvironmentCollector,
    FsProbeCollector,
    InjectionCollector,
    NetLinkCollector,
    NodeCounterCollector,
    OstCounterCollector,
    PowerCollector,
    QueueStatsCollector,
    SedcCollector,
)
from repro.transport import MessageBus


@pytest.fixture()
def machine():
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(topo, gpu_nodes="all", seed=3)


def run_with_job(machine, seconds=120.0, app="climate", n=16):
    j = Job(APP_LIBRARY[app], n, 0.0, seed=1)
    machine.scheduler.submit(j, 0.0)
    machine.run(seconds, dt=5.0)
    return j


class TestNodeCounterCollector:
    def test_sweep_covers_all_nodes(self, machine):
        out = NodeCounterCollector().collect(machine, 60.0)
        metrics = {b.metric for b in out.batches}
        assert "node.cpu_util" in metrics and "node.clock_offset_s" in metrics
        for b in out.batches:
            assert len(b) == len(machine.topo.nodes)
            assert (b.times == 60.0).all()

    def test_clock_offsets_nonzero(self, machine):
        machine.run(3600.0, dt=60.0)
        out = NodeCounterCollector().collect(machine, machine.now)
        offsets = next(
            b for b in out.batches if b.metric == "node.clock_offset_s"
        )
        assert np.abs(offsets.values).max() > 0


class TestSedcCollector:
    def test_gpu_metrics_present_when_gpus(self, machine):
        out = SedcCollector().collect(machine, 0.0)
        metrics = {b.metric for b in out.batches}
        assert "gpu.health" in metrics

    def test_gpu_metrics_absent_without_gpus(self):
        m = Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                    blades_per_chassis=4), seed=1)
        out = SedcCollector().collect(m, 0.0)
        metrics = {b.metric for b in out.batches}
        assert "gpu.health" not in metrics
        assert "node.power_w" in metrics


class TestPowerCollector:
    def test_system_power_equals_cabinet_sum(self, machine):
        run_with_job(machine)
        out = PowerCollector(machine).collect(machine, machine.now)
        by_metric = {b.metric: b for b in out.batches}
        cab = by_metric["cabinet.power_w"]
        sys = by_metric["system.power_w"]
        assert sys.values[0] == pytest.approx(cab.values.sum())


class TestFsCollectors:
    def test_probe_latencies_positive(self, machine):
        out = FsProbeCollector().collect(machine, 0.0)
        for b in out.batches:
            assert (b.values > 0).all()

    def test_ost_counters_and_aggregate_consistent(self, machine):
        run_with_job(machine, app="climate")
        out = OstCounterCollector().collect(machine, machine.now)
        by_metric = {b.metric: b for b in out.batches}
        assert by_metric["fs.write_bps"].values[0] == pytest.approx(
            by_metric["ost.write_bps"].values.sum()
        )


class TestQueueStatsCollector:
    def test_depth_and_backlog(self, machine):
        big = Job(APP_LIBRARY["qmc"], 10_000, 0.0, seed=1,
                  walltime_req=3600.0)
        machine.scheduler.submit(big, 0.0)
        machine.step(5.0)
        out = QueueStatsCollector().collect(machine, machine.now)
        by_metric = {b.metric: b for b in out.batches}
        assert by_metric["queue.depth"].values[0] == 1.0
        assert by_metric["queue.backlog_nodeh"].values[0] == pytest.approx(
            10_000.0
        )

    def test_scheduler_events_surfaced(self, machine):
        run_with_job(machine, seconds=30.0)
        out = QueueStatsCollector().collect(machine, machine.now)
        actions = [e.fields["action"] for e in out.events]
        assert "submit" in actions and "start" in actions


class TestEnvironmentCollector:
    def test_quiet_room_no_events(self, machine):
        out = EnvironmentCollector().collect(machine, 0.0)
        assert out.events == []
        assert len(out.batches) == 4

    def test_ashrae_excursion_emits_once(self, machine):
        machine.room.corrosion_rate = 900.0
        coll = EnvironmentCollector()
        first = coll.collect(machine, 0.0)
        second = coll.collect(machine, 300.0)
        assert len(first.events) == 1
        assert second.events == []          # still over: no re-alert
        machine.room.corrosion_rate = 100.0
        coll.collect(machine, 600.0)
        machine.room.corrosion_rate = 900.0
        again = coll.collect(machine, 900.0)
        assert len(again.events) == 1       # re-crossing re-alerts


class TestNetLinkCollector:
    def test_link_sweep_shapes(self, machine):
        run_with_job(machine, app="cfd_fft", n=32)
        out = NetLinkCollector().collect(machine, machine.now)
        n_links = len(machine.topo.links)
        for b in out.batches:
            assert len(b) == n_links

    def test_counters_cumulative_across_sweeps(self, machine):
        # run past the app's setup phase into its all-to-all phase
        run_with_job(machine, app="cfd_fft", n=32, seconds=400.0)
        c = NetLinkCollector()
        first = c.collect(machine, machine.now)
        machine.run(60.0, dt=5.0)
        second = c.collect(machine, machine.now)
        t1 = next(b for b in first.batches
                  if b.metric == "link.traffic_flits").values
        t2 = next(b for b in second.batches
                  if b.metric == "link.traffic_flits").values
        assert (t2 >= t1).all()
        assert t2.sum() > t1.sum()


class TestScheduler:
    def test_interval_respected(self, machine):
        bus = MessageBus()
        sched = CollectionScheduler(bus, registry=default_registry())
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        for t in range(0, 180, 10):
            machine_now = float(t)
            sched.poll(machine, machine_now)
        # due at 0, 60, 120 -> 3 sweeps
        assert c.sweeps == 3

    def test_missed_slots_skipped_not_replayed(self, machine):
        bus = MessageBus()
        sched = CollectionScheduler(bus)
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        sched.poll(machine, 600.0)   # long gap: one sweep, not ten
        assert c.sweeps == 2

    def test_catchup_resumes_on_the_original_grid(self, machine):
        """After a stall, the next due time lands on the interval grid
        strictly in the future — missed slots are never replayed and
        the schedule does not phase-shift to the stall's end."""
        bus = MessageBus()
        sched = CollectionScheduler(bus)
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)               # sweep 1 (t=0)
        sched.poll(machine, 250.0)             # stall: slots 60/120/180/240
        assert c.sweeps == 2                   # ... collapse to one sweep
        # grid-aligned resume: not due again until t=300, not t=310
        sched.poll(machine, 299.0)
        assert c.sweeps == 2
        sched.poll(machine, 300.0)
        assert c.sweeps == 3

    def test_catchup_when_poll_lands_exactly_on_a_slot(self, machine):
        bus = MessageBus()
        sched = CollectionScheduler(bus)
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        sched.poll(machine, 180.0)             # exactly on the 3rd slot
        assert c.sweeps == 2
        sched.poll(machine, 240.0)             # very next slot still fires
        assert c.sweeps == 3

    def test_sweep_latency_histograms_populated(self, machine):
        sched = CollectionScheduler(MessageBus())
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        for t in (0.0, 60.0, 120.0):
            sched.poll(machine, t)
        hist = sched.latency[c.name]
        assert len(hist) == 3
        s = hist.summary()
        assert 0.0 <= s["p50_s"] <= s["p95_s"] <= s["max_s"]

    def test_no_latency_recorded_when_overhead_measure_off(self, machine):
        sched = CollectionScheduler(MessageBus(), measure_overhead=False)
        c = sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        assert len(sched.latency[c.name]) == 0

    def test_tracer_spans_per_collector(self, machine):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        sched = CollectionScheduler(MessageBus(), tracer=tracer)
        sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        spans = tracer.spans("collect")
        assert len(spans) == 1
        assert spans[0].attrs == {"collector": "node_counters"}

    def test_publishes_to_bus_topics(self, machine):
        bus = MessageBus()
        sub = bus.subscribe("metrics.node.cpu_util")
        sched = CollectionScheduler(bus)
        sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        assert len(sub.drain()) == 1

    def test_unregistered_metric_rejected(self, machine):
        class Rogue(Collector):
            metrics = ("not.registered",)

            def __init__(self):
                super().__init__("rogue", 60.0)

            def collect(self, machine, now):
                return CollectorOutput()

        sched = CollectionScheduler(MessageBus(),
                                    registry=default_registry())
        with pytest.raises(KeyError, match="documented meaning"):
            sched.add(Rogue())

    def test_overhead_report(self, machine):
        sched = CollectionScheduler(MessageBus())
        sched.add(NodeCounterCollector(interval_s=60.0))
        sched.poll(machine, 0.0)
        rep = sched.overhead_report()
        assert rep["node_counters"]["sweeps"] == 1
        assert rep["node_counters"]["samples"] > 0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            NodeCounterCollector(interval_s=0.0)

    def test_injection_collector_unit_range(self, machine):
        run_with_job(machine, app="cfd_fft", n=32)
        out = InjectionCollector().collect(machine, machine.now)
        vals = out.batches[0].values
        assert (vals >= 0).all() and (vals <= 1.0 + 1e-9).all()


class Boom(Collector):
    """Collector that raises on every sweep."""

    metrics = ()

    def __init__(self, interval_s=60.0):
        super().__init__("boom", interval_s)

    def collect(self, machine, now):
        raise RuntimeError("kaboom")


class TestSchedulerFaultIsolation:
    def test_raising_collector_does_not_abort_the_sweep(self, machine):
        """The regression this PR fixes: one bad collector used to kill
        the whole poll, starving every collector after it in the list."""
        sched = CollectionScheduler(MessageBus())
        boom = sched.add(Boom())
        healthy = sched.add(NodeCounterCollector(interval_s=60.0))
        for t in (0.0, 60.0, 120.0):
            sched.poll(machine, t)       # must not raise
        assert healthy.sweeps == 3       # ran despite boom preceding it
        assert boom.sweeps == 0
        assert boom.errors == 3
        assert isinstance(boom.last_error, RuntimeError)

    def test_raising_collector_keeps_its_schedule(self, machine):
        """Failures advance the schedule: no catch-up burst on heal."""
        sched = CollectionScheduler(MessageBus())
        boom = sched.add(Boom())
        sched.poll(machine, 0.0)
        sched.poll(machine, 10.0)        # not due: no extra attempt
        assert boom.errors == 1
        sched.poll(machine, 60.0)
        assert boom.errors == 2

    def test_supervisor_quarantines_repeat_offender(self, machine):
        from repro.core.lifecycle import BackoffSchedule, Health, Supervisor

        # backoff longer than the interval, so the next due slot lands
        # inside the quarantine window (not on a half-open probe)
        sup = Supervisor(trip_after=3,
                         backoff=BackoffSchedule(base_s=600.0))
        sched = CollectionScheduler(MessageBus(), supervisor=sup)
        boom = sched.add(Boom())
        for t in (0.0, 60.0, 120.0):     # three strikes
            sched.poll(machine, t)
        assert sup.health("collector:boom") is Health.FAILED
        skips_before = sched.quarantine_skips
        sched.poll(machine, 180.0)       # quarantined: skipped, no error
        assert boom.errors == 3
        assert sched.quarantine_skips == skips_before + 1

    def test_half_open_probe_recovers_healed_collector(self, machine):
        from repro.core.lifecycle import BackoffSchedule, Health, Supervisor

        sup = Supervisor(trip_after=1,
                         backoff=BackoffSchedule(base_s=60.0))
        sched = CollectionScheduler(MessageBus(), supervisor=sup)
        boom = sched.add(Boom())
        sched.poll(machine, 0.0)         # trips immediately
        assert sup.health("collector:boom") is Health.FAILED
        boom.collect = lambda machine, now: CollectorOutput()  # heal it
        sched.poll(machine, 60.0)        # backoff elapsed: probe runs
        assert sup.health("collector:boom") is Health.OK
        assert boom.sweeps == 1

    def test_over_budget_sweep_is_a_supervised_failure(self, machine):
        import time

        from repro.core.lifecycle import Supervisor

        class Slow(Collector):
            metrics = ()

            def __init__(self):
                super().__init__("slow", 60.0)

            def collect(self, machine, now):
                time.sleep(0.005)
                return CollectorOutput()

        sup = Supervisor()
        sched = CollectionScheduler(MessageBus(), supervisor=sup,
                                    budget_s=0.001)
        slow = sched.add(Slow())
        sched.poll(machine, 0.0)
        assert slow.sweeps == 1          # the results still count...
        assert slow.errors == 1          # ...but the overrun is recorded
        rec = sup.report()["collector:slow"]
        assert rec["state"] == "degraded"
        assert "over budget" in rec["reason"]
