"""Unit tests for the benchmark suites."""

import numpy as np
import pytest

from repro.cluster import Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.events import EventKind
from repro.sources.benchmarks import (
    BenchmarkSuite,
    ComputeBenchmark,
    IoBenchmark,
    MemoryBenchmark,
    MetadataBenchmark,
    NetworkBenchmark,
    default_suite,
)


@pytest.fixture()
def machine():
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    return Machine(topo, seed=9)


def rng():
    return np.random.default_rng(0)


class TestHealthyBaseline:
    def test_all_benchmarks_near_nominal_on_idle_machine(self, machine):
        machine.run(30.0, dt=5.0)
        for bench in default_suite():
            r = bench.run(machine, rng())
            assert r.fraction_of_nominal > 0.9, bench.name


class TestDegradations:
    def test_pstate_cap_hits_dgemm(self, machine):
        machine.nodes.pstate_frac[:] = 0.6
        r = ComputeBenchmark().run(machine, rng())
        assert r.fraction_of_nominal < 0.7

    def test_memory_pressure_hits_stream(self, machine):
        machine.nodes.mem_free_gb[:] = 1.0
        r = MemoryBenchmark().run(machine, rng())
        assert r.fraction_of_nominal < 0.2

    def test_congestion_hits_allreduce(self, machine):
        j = Job(APP_LIBRARY["cfd_fft"], 64, 0.0, seed=2)
        machine.scheduler.submit(j, 0.0)
        machine.run(300.0, dt=5.0)
        r = NetworkBenchmark(sample_pairs=30).run(machine, rng())
        idle = Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                       blades_per_chassis=4), seed=9)
        r_idle = NetworkBenchmark(sample_pairs=30).run(idle, rng())
        assert r.fom < r_idle.fom

    def test_slow_ost_hits_ior(self, machine):
        before = IoBenchmark().run(machine, rng())
        machine.fs.set_slow_ost(0, 0.1)
        after = IoBenchmark().run(machine, rng())
        assert after.fom < before.fom * 0.3

    def test_mds_degradation_hits_mdtest(self, machine):
        before = MetadataBenchmark().run(machine, rng())
        machine.fs.set_mds_degraded(0.1)
        after = MetadataBenchmark().run(machine, rng())
        assert after.fom < before.fom * 0.3

    def test_runtime_inversely_tracks_fom(self, machine):
        machine.fs.set_slow_ost(0, 0.1)
        r = IoBenchmark().run(machine, rng())
        assert r.runtime_s > IoBenchmark().nominal_runtime_s * 2


class TestSuiteCollector:
    def test_publishes_fom_and_runtime(self, machine):
        suite = BenchmarkSuite(interval_s=600.0, seed=1)
        out = suite.collect(machine, 0.0)
        metrics = {b.metric for b in out.batches}
        assert metrics == {"bench.fom", "bench.runtime_s"}
        assert len(out.batches[0]) == 5

    def test_degraded_benchmark_emits_warning_event(self, machine):
        machine.fs.set_slow_ost(0, 0.05)
        suite = BenchmarkSuite(seed=1)
        out = suite.collect(machine, 0.0)
        warn = [
            e for e in out.events
            if e.kind is EventKind.TEST and "DEGRADED" in e.message
        ]
        assert any(e.component == "ior_read" for e in warn)

    def test_healthy_machine_all_pass(self, machine):
        machine.run(30.0, dt=5.0)
        out = BenchmarkSuite(seed=1).collect(machine, machine.now)
        assert all(e.fields["passed"] for e in out.events)

    def test_history_accumulates(self, machine):
        suite = BenchmarkSuite(seed=1)
        suite.collect(machine, 0.0)
        suite.collect(machine, 600.0)
        assert len(suite.history) == 10
