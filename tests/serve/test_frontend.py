"""Unit tests: the multi-tenant front end's caching, shedding, planning."""

import numpy as np

from repro.core.metric import SeriesBatch
from repro.serve.frontend import QueryFrontend
from repro.serve.quota import TenantQuota
from repro.storage.rollup import DEFAULT_LEVELS
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore


def make_store(comps=("c0", "c1"), n=500, **kw):
    kw.setdefault("chunk_size", 64)
    kw.setdefault("pyramid_levels", DEFAULT_LEVELS)
    store = TimeSeriesStore(**kw)
    rng = np.random.default_rng(5)
    t = np.sort(rng.uniform(0.0, 7200.0, n)).round(3)
    for c in comps:
        store.append(SeriesBatch.for_component(
            "m.x", c, t, rng.normal(size=n)))
    return store


class TestResultCaching:
    def test_repeat_query_is_the_same_object(self):
        fe = QueryFrontend(make_store())
        r1 = fe.downsample("m.x", "c0", 0.0, 7200.0, 60.0, "max")
        r2 = fe.downsample("m.x", "c0", 0.0, 7200.0, 60.0, "max")
        assert r2 is r1
        assert fe.stats().cache.hits == 1

    def test_append_invalidates_only_that_metric(self):
        store = make_store()
        store.append(SeriesBatch.for_component(
            "m.other", "c0", [1.0, 2.0], [0.0, 1.0]))
        fe = QueryFrontend(store)
        rx = fe.downsample("m.x", "c0", 0.0, 7200.0, 60.0, "max")
        ro = fe.query("m.other", "c0")
        store.append(SeriesBatch.for_component("m.x", "c0",
                                               [9000.0], [1.0]))
        assert fe.downsample("m.x", "c0", 0.0, 7200.0, 60.0,
                             "max") is not rx
        assert fe.query("m.other", "c0") is ro   # untouched metric: hit
        assert fe.stats().cache.stale == 1

    def test_drop_series_invalidates(self):
        store = make_store()
        fe = QueryFrontend(store)
        r1 = fe.query_components("m.x")
        store.drop_series("m.x", "c1")
        r2 = fe.query_components("m.x")
        assert r2 is not r1
        assert sorted(r2) == ["c0"]

    def test_all_answers_match_store_paths(self):
        store = make_store()
        fe = QueryFrontend(store)
        for agg in ("mean", "sum", "min", "max", "last", "count"):
            got = fe.downsample("m.x", "c0", 123.4, 7000.0, 60.0, agg)
            want = store.downsample("m.x", "c0", 123.4, 7000.0, 60.0,
                                    agg, prune=False)
            assert np.array_equal(got.times, want.times)
            if agg in ("mean", "sum"):
                assert np.allclose(got.values, want.values, rtol=1e-9)
            else:
                assert np.array_equal(got.values, want.values,
                                      equal_nan=True)

    def test_pyramid_counter_moves_on_eligible_grid(self):
        fe = QueryFrontend(make_store())
        fe.downsample("m.x", "c0", 0.0, 7200.0, 600.0, "min")
        fe.downsample("m.x", "c0", 0.0, 7200.0, 77.0, "min")  # ineligible
        s = fe.stats()
        assert s.pyramid_answers == 1 and s.raw_answers == 1
        assert 0.0 < s.pyramid_ratio < 1.0

    def test_pyramidless_store_still_serves(self):
        store = make_store(pyramid_levels=None)
        fe = QueryFrontend(store)
        got = fe.downsample("m.x", "c0", 0.0, 7200.0, 60.0, "max")
        want = store.downsample("m.x", "c0", 0.0, 7200.0, 60.0, "max")
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values, want.values)
        assert fe.stats().pyramid_answers == 0


class TestTenantShedding:
    def test_rejection_returns_empty_shapes(self):
        fe = QueryFrontend(make_store(),
                           quotas={"g": TenantQuota(qps=0.0, burst=0.0)})
        assert len(fe.query("m.x", "c0", tenant="g")) == 0
        assert fe.query_components("m.x", tenant="g") == {}
        assert fe.components("m.x", tenant="g") == []
        assert len(fe.downsample("m.x", "c0", 0.0, 1.0, 1.0,
                                 tenant="g")) == 0
        assert len(fe.aggregate_across("m.x", tenant="g")) == 0
        s = fe.stats()
        assert s.rejected == 5 and s.admitted == 0
        assert fe.tenant_stats("g").rejected_rate == 5

    def test_tenants_are_isolated(self):
        fe = QueryFrontend(make_store(),
                           quotas={"g": TenantQuota(qps=0.0, burst=0.0)})
        assert len(fe.query("m.x", "c0", tenant="ops")) > 0
        assert len(fe.query("m.x", "c0", tenant="g")) == 0
        assert fe.tenant_stats("ops").rejected == 0

    def test_concurrency_slot_released_after_answer(self):
        fe = QueryFrontend(make_store(),
                           quotas={"t": TenantQuota(max_concurrent=1)})
        for _ in range(5):      # sequential queries never collide
            assert len(fe.query("m.x", "c0", tenant="t")) > 0
        assert fe.tenant_stats("t").rejected_concurrency == 0


class TestShardedStore:
    def test_failed_shard_matches_store_and_invalidates(self):
        store = ShardedTimeSeriesStore(shards=3, chunk_size=64,
                                       pyramid_levels=DEFAULT_LEVELS)
        rng = np.random.default_rng(6)
        t = np.sort(rng.uniform(0.0, 7200.0, 400)).round(3)
        for c in ("c0", "c1", "c2", "c3"):
            store.append(SeriesBatch.for_component(
                "m.x", c, t, rng.normal(size=400)))
        fe = QueryFrontend(store)
        before = fe.aggregate_across("m.x", step=600.0, agg="max",
                                     t0=0.0, t1=7200.0)
        victim = store.shard_of("m.x", "c0")
        store.fail_shard(victim)
        after = fe.aggregate_across("m.x", step=600.0, agg="max",
                                    t0=0.0, t1=7200.0)
        want = store.aggregate_across("m.x", step=600.0, agg="max",
                                      t0=0.0, t1=7200.0)
        assert after is not before          # health epoch moved
        assert np.array_equal(after.times, want.times)
        assert np.array_equal(after.values, want.values, equal_nan=True)
        store.recover_shard(victim)
        healed = fe.aggregate_across("m.x", step=600.0, agg="max",
                                     t0=0.0, t1=7200.0)
        assert healed is not after
