"""Unit tests: per-tenant token-bucket + concurrency admission."""

from repro.serve.quota import TenantGovernor, TenantQuota


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTenantGovernor:
    def test_unconfigured_tenant_is_unlimited_but_accounted(self):
        g = TenantGovernor(clock=FakeClock())
        assert all(g.admit("anon") for _ in range(100))
        ts = g.tenant_stats("anon")
        assert ts.admitted == 100 and ts.rejected == 0
        assert g.tenants() == ["anon"]

    def test_burst_then_rate_rejections(self):
        clk = FakeClock()
        g = TenantGovernor({"t": TenantQuota(qps=1.0, burst=3.0)},
                           clock=clk)
        got = [g.admit("t") for _ in range(5)]
        assert got == [True, True, True, False, False]
        ts = g.tenant_stats("t")
        assert ts.admitted == 3 and ts.rejected_rate == 2

    def test_tokens_refill_with_clock(self):
        clk = FakeClock()
        g = TenantGovernor({"t": TenantQuota(qps=2.0, burst=2.0)},
                           clock=clk)
        assert g.admit("t") and g.admit("t") and not g.admit("t")
        clk.t = 1.0                      # 2 qps * 1 s = 2 tokens back
        assert g.admit("t") and g.admit("t") and not g.admit("t")
        clk.t = 100.0                    # refill caps at burst
        assert [g.admit("t") for _ in range(3)] == [True, True, False]

    def test_qps_without_burst_still_limits(self):
        # a finite rate with the default infinite burst must not mean an
        # infinite bucket: capacity falls back to max(1, qps)
        g = TenantGovernor({"t": TenantQuota(qps=4.0)}, clock=FakeClock())
        assert sum(g.admit("t") for _ in range(10)) == 4

    def test_concurrency_cap_and_release(self):
        g = TenantGovernor({"t": TenantQuota(max_concurrent=2)},
                           clock=FakeClock())
        assert g.admit("t") and g.admit("t")
        assert not g.admit("t")
        assert g.tenant_stats("t").rejected_concurrency == 1
        g.release("t")
        assert g.admit("t")

    def test_set_quota_clamps_existing_bucket(self):
        clk = FakeClock()
        g = TenantGovernor(clock=clk)
        g.admit("t")                     # materialize unlimited state
        g.set_quota("t", TenantQuota(qps=1.0, burst=1.0))
        assert g.admit("t")
        assert not g.admit("t")          # bucket clamped to new burst

    def test_totals_sum_over_tenants(self):
        g = TenantGovernor({"b": TenantQuota(qps=0.0, burst=0.0)},
                           clock=FakeClock())
        g.admit("a")
        g.admit("b")
        tot = g.totals()
        assert tot.admitted == 1 and tot.rejected_rate == 1
