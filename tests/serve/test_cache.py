"""Unit tests: the query-result cache's epoch invalidation and bounds."""

import numpy as np

from repro.core.metric import SeriesBatch
from repro.serve.cache import QueryResultCache
from repro.serve.plan import QueryPlan


def batch(n=8):
    return SeriesBatch.for_component(
        "m.x", "c0", np.arange(n, dtype=float), np.ones(n))


def plan(i=0):
    return QueryPlan.downsample("m.x", "c0", 0.0, 100.0, 10.0 + i, "mean")


class TestQueryResultCache:
    def test_hit_after_put(self):
        c = QueryResultCache()
        b = batch()
        c.put(plan(), 1, b)
        assert c.get(plan(), 1) is b
        s = c.stats()
        assert (s.hits, s.misses, s.entries) == (1, 0, 1)

    def test_epoch_move_invalidates(self):
        c = QueryResultCache()
        c.put(plan(), 1, batch())
        assert c.get(plan(), 2) is None     # metric mutated since
        s = c.stats()
        assert s.stale == 1 and s.misses == 1 and s.entries == 0
        assert s.bytes == 0                 # stale entry's bytes released

    def test_miss_on_absent_plan(self):
        c = QueryResultCache()
        assert c.get(plan(), 0) is None
        assert c.stats().misses == 1

    def test_lru_byte_bound_evicts_oldest(self):
        c = QueryResultCache(max_bytes=1000)
        for i in range(8):
            c.put(plan(i), 1, batch(16))    # ~384 B each incl. overhead
        s = c.stats()
        assert s.bytes <= 1000
        assert s.evictions >= 1
        assert c.get(plan(0), 1) is None    # oldest went first
        assert c.get(plan(7), 1) is not None

    def test_dict_payload_accounted(self):
        c = QueryResultCache()
        c.put(plan(), 1, {"c0": batch(), "c1": batch()})
        assert c.stats().bytes > 2 * 8 * 16

    def test_zero_bytes_disables(self):
        c = QueryResultCache(max_bytes=0)
        c.put(plan(), 1, batch())
        assert c.get(plan(), 1) is None
        assert c.stats().entries == 0

    def test_clear_keeps_lifetime_counters(self):
        c = QueryResultCache()
        c.put(plan(), 1, batch())
        c.get(plan(), 1)
        c.clear()
        s = c.stats()
        assert s.entries == 0 and s.bytes == 0 and s.hits == 1

    def test_replace_same_plan_reaccounts_bytes(self):
        c = QueryResultCache()
        c.put(plan(), 1, batch(64))
        big = c.stats().bytes
        c.put(plan(), 2, batch(4))
        s = c.stats()
        assert s.entries == 1 and s.bytes < big
