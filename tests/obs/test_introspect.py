"""Integration tests: the pipeline observing itself end to end."""

import pytest

from repro.cluster import HungNode, SlowOst
from repro.obs.introspect import STAGES
from repro.pipeline import default_pipeline
from tests.test_pipeline import make_machine


@pytest.fixture(scope="module")
def monitored_run():
    """A ≥1-simulated-hour workload with self-monitoring enabled."""
    m = make_machine()
    m.faults.add(HungNode(start=900.0, duration=1200.0,
                          node=m.topo.nodes[5]))
    m.faults.add(SlowOst(start=1800.0, duration=1200.0, ost=0,
                         bw_factor=0.1))
    p = default_pipeline(m, seed=1)
    p.run(hours=1.0, dt=10.0)
    return p


class TestSelfMonSeries:
    def test_selfmon_families_reach_tsdb(self, monitored_run):
        metrics = {k.metric for k in monitored_run.tsdb.keys()}
        for m in ("selfmon.bus.publish_rate", "selfmon.bus.completeness",
                  "selfmon.bus.queue_depth",
                  "selfmon.collector.sweep_p50_ms",
                  "selfmon.collector.sweep_p95_ms",
                  "selfmon.collector.sweep_max_ms",
                  "selfmon.store.tsdb_ingest_rate",
                  "selfmon.store.tsdb_points",
                  "selfmon.store.log_events",
                  "selfmon.store.sql_bytes",
                  "selfmon.pipeline.tick_ms"):
            assert m in metrics, m

    def test_selfmon_series_are_per_component(self, monitored_run):
        p = monitored_run
        # one latency series per collector
        comps = set(p.tsdb.components("selfmon.collector.sweep_p50_ms"))
        assert {c.name for c in p.scheduler.collectors} <= comps
        # one queue-depth series per subscription
        comps = set(p.tsdb.components("selfmon.bus.queue_depth"))
        assert {"tsdb-ingest", "selfmon-ingest", "log-ingest"} <= comps

    def test_counters_are_monotone(self, monitored_run):
        b = monitored_run.tsdb.query("selfmon.store.tsdb_points", "tsdb")
        assert len(b) >= 50        # one per cadence over the hour
        assert (b.values[1:] >= b.values[:-1]).all()

    def test_selfmon_appears_on_dashboard(self, monitored_run):
        p = monitored_run
        tiles = p.dashboard().selfmon_tiles(p.machine.now, window_s=600.0)
        names = {t.name for t in tiles}
        assert "data-path completeness" in names
        assert "monitoring tick" in names
        text = p.dashboard().render(p.machine.now, window_s=600.0)
        assert "monitoring plane" in text
        assert "data-path completeness" in text


class TestHealthReport:
    def test_stage_timings_cover_every_stage(self, monitored_run):
        report = monitored_run.introspect().report()
        stage_names = {s.name for s in report.stages}
        assert set(STAGES) <= stage_names
        for s in report.stages:
            assert s.calls > 0
            assert s.total_s >= 0.0
            assert s.max_ms >= s.mean_ms - 1e9 * 0.0  # max is a max
        assert report.ticks == 360                    # one hour at 10 s

    def test_completeness_is_one_under_no_drop(self, monitored_run):
        report = monitored_run.introspect().report()
        assert report.completeness == 1.0
        assert report.bus["dropped"] == 0
        assert report.bus["errors"] == 0

    def test_completeness_below_one_when_forced_to_drop(self):
        m = make_machine()
        p = default_pipeline(m, seed=1)
        # a deliberately tiny bounded subscription that must drop under
        # the full sweep load
        starved = p.bus.subscribe("metrics.*", maxlen=5, name="starved")
        p.run(duration_s=600.0, dt=10.0)
        assert starved.dropped > 0
        report = p.introspect().report()
        assert report.completeness < 1.0
        # and the selfmon series recorded the loss as it happened
        b = p.tsdb.query("selfmon.bus.completeness", "bus")
        assert len(b)
        assert b.values[-1] < 1.0

    def test_queue_depth_reports_backpressure(self, monitored_run):
        p = monitored_run
        report = p.introspect().report()
        assert "tsdb-ingest" in report.queue_depths
        sub = p.bus.subscribe("metrics.*", name="lagging-consumer")
        for _ in range(12):            # two minutes: every collector sweeps
            p.step(10.0)
        report = p.introspect().report()
        assert report.queue_depths["lagging-consumer"] == len(sub) > 0
        assert "lagging-consumer" in report.backpressured
        p.bus.unsubscribe(sub)

    def test_slowest_spans_present(self, monitored_run):
        report = monitored_run.introspect().report(slowest_n=3)
        assert len(report.slowest_spans) == 3
        durations = [ms for _, ms, _ in report.slowest_spans]
        assert durations == sorted(durations, reverse=True)

    def test_collector_latency_summaries(self, monitored_run):
        report = monitored_run.introspect().report()
        for c in monitored_run.scheduler.collectors:
            entry = report.collectors[c.name]
            assert entry["sweeps"] > 0
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["max_ms"]

    def test_render_is_complete(self, monitored_run):
        text = monitored_run.introspect().render()
        assert "data-path completeness: 1.0000" in text
        for stage in STAGES:
            assert stage in text
        assert "slowest spans" in text
        assert "stores:" in text
        assert "chunk cache:" in text

    def test_chunk_cache_counters_reported(self, monitored_run):
        p = monitored_run
        p.tsdb.flush()
        comp = p.tsdb.components("node.cpu_util")[0]
        for _ in range(2):
            p.tsdb.query("node.cpu_util", comp)
        report = p.introspect().report()
        assert report.chunk_cache["misses"] > 0
        assert report.chunk_cache["hits"] > 0
        assert 0.0 < report.chunk_cache["hit_ratio"] <= 1.0


class TestIntrospectorWithSwappedStore:
    def test_tiered_store_is_tolerated(self):
        from repro.storage.hierarchy import TieredStore
        from repro.storage.tsdb import TimeSeriesStore

        m = make_machine()
        p = default_pipeline(m, seed=1)
        p.tsdb = TieredStore(TimeSeriesStore(chunk_size=32))
        p.run(duration_s=300.0, dt=10.0)
        report = p.introspect().report()
        assert report.stores["tsdb_points"] > 0
        assert p.introspect().render()


class TestTieredStackReport:
    def test_flat_stack_reports_no_partitions_or_shards(self, monitored_run):
        report = monitored_run.introspect().report()
        assert report.partitions == {}
        assert report.shards == {}

    def test_partitioned_sharded_stack_reports_both(self):
        m = make_machine()
        p = default_pipeline(m, seed=1, transport="partitioned", shards=4)
        p.run(duration_s=600.0, dt=10.0)
        report = p.introspect().report()
        assert sorted(report.partitions) == [
            f"partition-{i}" for i in range(4)
        ]
        assert sorted(report.shards) == [f"shard-{i}" for i in range(4)]
        assert (sum(s["points"] for s in report.shards.values())
                == p.tsdb.stats().samples)
        text = p.introspect().render()
        assert "partitions:" in text
        assert "shards:" in text


class TestAnalysisSection:
    """Streaming detectors surface in the health report and render."""

    @pytest.fixture(scope="class")
    def streaming_run(self):
        from repro.analysis.streaming import (
            StreamingOutlierDetector,
            StreamingStats,
        )

        p = default_pipeline(make_machine(), seed=2)
        p.add_streaming(StreamingStats())
        p.add_streaming(
            StreamingOutlierDetector(("node.power_w",), z_threshold=4.0)
        )
        p.run(duration_s=600.0, dt=10.0)
        return p

    def test_report_covers_every_detector(self, streaming_run):
        report = streaming_run.introspect().report()
        assert set(report.analysis) == {
            "StreamingStats", "StreamingOutlierDetector"
        }
        for entry in report.analysis.values():
            assert entry["batches"] > 0
            assert entry["samples"] > 0
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["max_ms"]

    def test_render_lists_detectors(self, streaming_run):
        text = streaming_run.introspect().render()
        assert "streaming detectors:" in text
        assert "StreamingStats" in text

    def test_no_detectors_no_section(self, monitored_run):
        report = monitored_run.introspect().report()
        assert report.analysis == {}
        assert "streaming detectors:" not in monitored_run.introspect().render()
