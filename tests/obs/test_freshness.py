"""Unit tests for the freshness plane: trace contexts, histograms,
SLO burn-rate tracking, exemplar linking, and the exact waterfall."""

import math

import pytest

from repro.core.metric import SeriesBatch, merge_batches
from repro.core.tracectx import (
    HOP_COLLECT,
    HOP_INGEST,
    HOP_PUBLISH,
    MAX_HOPS,
    TraceContext,
)
from repro.obs.freshness import (
    Exemplar,
    FreshnessBreach,
    FreshnessHistogram,
    FreshnessSLO,
    FreshnessTracker,
    default_slos,
)
from repro.response.policy import default_rules
from repro.response.sec import SecEngine


def traced_batch(metric="node.power_w", hops=None, tick=0):
    """One-sample batch carrying a hand-built hop vector."""
    b = SeriesBatch(metric, ["n0"], [0.0], [1.0])
    if hops is not None:
        ctx = TraceContext.start(hops[0][1], tick=tick, hop=hops[0][0])
        for hop, t in hops[1:]:
            ctx.stamp(hop, t)
        b.trace = ctx
    return b


class TestTraceContext:
    def test_start_then_stamp_builds_the_path(self):
        ctx = TraceContext.start(100.0, tick=7)
        ctx.stamp(HOP_PUBLISH, 100.0)
        ctx.stamp(HOP_INGEST, 110.0)
        assert ctx.path() == "collect->publish->ingest"
        assert ctx.origin_tick == 7
        assert ctx.end_to_end() == 10.0

    def test_hop_latencies_telescope_exactly(self):
        ctx = TraceContext.start(600.0)
        ctx.stamp("enqueue", 600.0)
        ctx.stamp("pump", 620.0)
        ctx.stamp(HOP_INGEST, 630.0)
        deltas = ctx.hop_latencies()
        assert sum(d for _, d in deltas) == ctx.end_to_end()
        assert deltas == [("enqueue", 0.0), ("pump", 20.0),
                          ("ingest", 10.0)]
        assert ctx.worst_hop() == ("pump", 20.0)

    def test_restamping_trailing_hop_widens_not_appends(self):
        ctx = TraceContext.start(0.0)
        ctx.stamp(HOP_PUBLISH, 10.0)
        ctx.stamp(HOP_PUBLISH, 30.0)   # duplicate delivery
        ctx.stamp(HOP_PUBLISH, 5.0)
        assert len(ctx.hops) == 2
        assert ctx.hops[-1][1] == 5.0   # t_min widened down
        assert ctx.hops[-1][2] == 30.0  # t_max widened up

    def test_vector_is_bounded_and_counts_truncation(self):
        ctx = TraceContext.start(0.0)
        for i in range(MAX_HOPS + 3):
            ctx.stamp(f"hop{i}", float(i))
        assert len(ctx.hops) == MAX_HOPS
        assert ctx.truncated == 4   # hops MAX_HOPS..MAX_HOPS+2 plus one

    def test_merged_brackets_every_parent(self):
        a = TraceContext.start(0.0, tick=1)
        a.stamp("leaf", 10.0)
        b = TraceContext.start(20.0, tick=2)
        b.stamp("leaf", 30.0)
        m = TraceContext.merged([a, b, None])
        assert m.origin_tick == 1
        assert m.hops == [["collect", 0.0, 20.0, 2],
                          ["leaf", 10.0, 30.0, 2]]
        assert TraceContext.merged([None, None]) is None

    def test_wire_round_trip(self):
        ctx = TraceContext.start(50.0, tick=3)
        ctx.stamp("pump", 60.0)
        assert TraceContext.from_obj(ctx.to_obj()) == ctx
        assert TraceContext.from_obj(None) is None

    def test_monotone_detection(self):
        good = TraceContext.start(0.0)
        good.stamp("a", 5.0)
        assert good.is_monotone()
        bad = TraceContext(hops=[["collect", 10.0, 10.0, 1],
                                 ["a", 5.0, 5.0, 1]])
        assert not bad.is_monotone()


class TestFreshnessHistogram:
    def test_fold_and_percentiles(self):
        h = FreshnessHistogram(window=16)
        for s in (1.0, 5.0, 10.0, 100.0):
            h.record(s)
        assert h.count == 4
        assert h.total_s == 116.0
        assert h.max_s == 100.0
        assert h.percentile(100.0) == 100.0

    def test_exemplar_built_only_on_new_bucket_worst(self):
        h = FreshnessHistogram()
        calls = []

        def make(s):
            def fn():
                calls.append(s)
                return Exemplar("m", s, (("collect", 0.0, 0.0, 1),), 0)
            return fn

        h.record(5.0, make(5.0))
        h.record(3.0, make(3.0))   # same bucket, not a new worst
        h.record(8.0, make(8.0))   # same bucket, new worst
        assert calls == [5.0, 8.0]
        assert h.worst_exemplar().latency_s == 8.0

    def test_buckets_must_end_with_inf(self):
        with pytest.raises(ValueError):
            FreshnessHistogram(buckets=(1.0, 10.0))


class TestSloBurnRate:
    def test_burn_is_over_fraction_divided_by_budget(self):
        slo = FreshnessSLO("s", max_latency_s=10.0, quantile=0.9,
                           window=10, min_count=4)
        tracker = FreshnessTracker([slo])
        track = tracker._tracks[0]
        for lat in (1.0, 1.0, 1.0, 20.0):   # 1/4 over, budget 0.1
            track.observe(lat)
        assert track.burn_rate() == pytest.approx(2.5)

    def test_breach_is_edge_triggered_and_rearms(self):
        slo = FreshnessSLO("s", max_latency_s=10.0, quantile=0.9,
                           window=8, min_count=2)
        tracker = FreshnessTracker([slo], tier="flat")
        track = tracker._tracks[0]
        track.observe(50.0)
        track.observe(50.0)
        (breach,) = tracker.evaluate(now=100.0)
        assert breach.burn_rate > 1.0
        assert tracker.evaluate(now=110.0) == []      # still breaching
        for _ in range(8):
            track.observe(1.0)                        # recover
        assert tracker.evaluate(now=120.0) == []
        track.observe(50.0)
        for _ in range(3):
            track.observe(50.0)
        (again,) = tracker.evaluate(now=130.0)        # re-armed
        assert again.slo.name == "s"
        assert tracker.breach_count() == 2

    def test_cold_window_never_alarms(self):
        slo = FreshnessSLO("s", max_latency_s=1.0, min_count=16)
        tracker = FreshnessTracker([slo])
        tracker._tracks[0].observe(99.0)
        assert tracker.evaluate(now=0.0) == []

    def test_default_slo_scales_with_tick(self):
        (slo,) = default_slos(tick_s=30.0)
        assert slo.max_latency_s == 60.0


class TestFreshnessTracker:
    def flat_hops(self, t0, ingest_delta):
        return [(HOP_COLLECT, t0), (HOP_PUBLISH, t0),
                (HOP_INGEST, t0 + ingest_delta)]

    def test_waterfall_telescopes_exactly(self):
        tracker = FreshnessTracker(tier="flat")
        for i in range(50):
            tracker.record(traced_batch(
                hops=self.flat_hops(10.0 * i, 10.0), tick=i))
        assert tracker.batches == 50
        assert tracker.waterfall_exact()
        assert tracker.hop_total() == tracker.e2e_total() == 500.0
        rows = {r["hop"]: r for r in tracker.waterfall()}
        assert rows["publish"]["total_s"] == 0.0
        assert rows["ingest"]["total_s"] == 500.0
        assert rows["ingest"]["share"] == 1.0

    def test_untraced_and_unfinished_batches_are_skipped(self):
        tracker = FreshnessTracker()
        tracker.record(traced_batch())                     # no context
        tracker.record(traced_batch(hops=[(HOP_COLLECT, 0.0)]))
        assert tracker.batches == 0

    def test_group_keying_splits_metrics_from_selfmon(self):
        tracker = FreshnessTracker()
        tracker.record(traced_batch("node.power_w",
                                    self.flat_hops(0.0, 10.0)))
        tracker.record(traced_batch("selfmon.bus.delivered",
                                    self.flat_hops(0.0, 30.0)))
        groups = tracker.group_summaries()
        assert set(groups) == {"node", "selfmon"}
        assert groups["node"]["max_s"] == 10.0
        assert groups["selfmon"]["max_s"] == 30.0

    def test_group_scoped_slo_ignores_other_groups(self):
        slo = FreshnessSLO("n", max_latency_s=5.0, group="node",
                           window=8, min_count=1)
        tracker = FreshnessTracker([slo])
        tracker.record(traced_batch("selfmon.x",
                                    self.flat_hops(0.0, 50.0)))
        assert tracker._tracks[0].burn_rate() == 0.0
        tracker.record(traced_batch("node.power_w",
                                    self.flat_hops(0.0, 50.0)))
        assert tracker._tracks[0].burn_rate() > 1.0

    def test_hop_scoped_slo_observes_that_hops_share(self):
        slo = FreshnessSLO("pump-slo", max_latency_s=5.0, hop="pump",
                           window=8, min_count=1)
        tracker = FreshnessTracker([slo])
        b = traced_batch(hops=[(HOP_COLLECT, 0.0), ("enqueue", 0.0),
                               ("pump", 20.0), (HOP_INGEST, 20.0)])
        tracker.record(b)
        (breach,) = tracker.evaluate(now=20.0)
        assert breach.slo.name == "pump-slo"
        assert breach.exemplar.worst_hop()[0] == "pump"

    def test_breach_fields_carry_the_offending_hop(self):
        slo = FreshnessSLO("s", max_latency_s=5.0, window=8, min_count=1)
        tracker = FreshnessTracker([slo], tier="flat")
        tracker.record(traced_batch(hops=self.flat_hops(0.0, 40.0)),
                       span="tick")
        (breach,) = tracker.evaluate(now=40.0)
        fields = breach.fields()
        assert fields["slo"] == "s"
        assert fields["worst_hop"] == "ingest"
        assert fields["worst_hop_s"] == 40.0
        assert fields["exemplar_latency_s"] == 40.0
        assert breach.exemplar.span == "tick"
        assert "worst hop ingest" in breach.describe()

    def test_snapshot_is_json_shaped(self):
        tracker = FreshnessTracker(default_slos(), tier="flat")
        tracker.record(traced_batch(hops=self.flat_hops(0.0, 10.0)))
        snap = tracker.snapshot()
        assert snap["exact"] is True
        assert snap["batches"] == 1
        assert snap["slos"][0]["name"] == "ingest-p99"
        assert not math.isnan(snap["e2e"]["p99_s"])


class TestBreachEscalation:
    def test_sec_rule_matches_and_forwards_exemplar_fields(self):
        """The breach message triggers ``freshness_slo_breach`` and the
        rule's ``forward_fields`` copies the structured exemplar payload
        onto the emitted action request."""
        slo = FreshnessSLO("ingest-p99", max_latency_s=5.0,
                           window=8, min_count=1)
        tracker = FreshnessTracker([slo], tier="flat")
        tracker.record(traced_batch(
            hops=[(HOP_COLLECT, 0.0), (HOP_PUBLISH, 0.0),
                  (HOP_INGEST, 40.0)]))
        (breach,) = tracker.evaluate(now=40.0)

        from repro.core.events import Event, EventKind, Severity
        sec = SecEngine(default_rules())
        out = sec.feed([Event(
            time=breach.time, component="flat",
            kind=EventKind.ALERT, severity=Severity.ALERT,
            message=breach.describe(), fields=breach.fields(),
        )])
        reqs = [r for r in out if r.rule == "freshness_slo_breach"]
        assert len(reqs) == 1
        assert reqs[0].fields["worst_hop"] == "ingest"
        assert "worst hop ingest" in reqs[0].message


class TestMergedBatchFreshness:
    def test_merge_aggregates_contexts_and_stays_exact(self):
        parts = []
        for i in range(3):
            b = SeriesBatch("m.x", [f"n{i}"], [float(i)], [1.0])
            ctx = TraceContext.start(10.0 * i, tick=i)
            ctx.stamp("leaf", 10.0 * i)
            parts.append(b)
            b.trace = ctx
        merged = merge_batches(parts)
        merged.trace.stamp("merge", 120.0)
        merged.trace.stamp(HOP_INGEST, 120.0)
        tracker = FreshnessTracker(tier="tree")
        tracker.record(merged)
        assert tracker.waterfall_exact()
        # oldest-path journey: collected at t=0, queryable at t=120
        assert tracker.e2e_total() == 120.0
        assert merged.trace.hops[0][3] == 3   # three contexts merged
