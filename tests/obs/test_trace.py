"""Unit tests for the span tracer."""

import time

from repro.obs.trace import Tracer


class TestSpans:
    def test_span_times_the_region(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.duration_s >= 0.002

    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("tick"):
            with tracer.span("stage"):
                with tracer.span("collect", collector="power"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["tick"].parent_name is None
        assert by_name["tick"].depth == 0
        assert by_name["stage"].parent_name == "tick"
        assert by_name["stage"].depth == 1
        assert by_name["collect"].parent_name == "stage"
        assert by_name["collect"].depth == 2
        assert by_name["collect"].attrs == {"collector": "power"}

    def test_children_finish_before_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("tick"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a"].parent_name == "tick"
        assert by_name["b"].parent_name == "tick"

    def test_span_closes_even_when_body_raises(self):
        tracer = Tracer()
        try:
            with tracer.span("tick"):
                with tracer.span("boom"):
                    raise RuntimeError("stage failed")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["boom", "tick"]
        # the stack unwound fully: a new root span nests at depth 0
        with tracer.span("next") as s:
            assert s.depth == 0


class TestRingBuffer:
    def test_ring_is_bounded(self):
        tracer = Tracer(maxlen=10)
        for i in range(25):
            with tracer.span(f"s{i}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 10
        assert spans[0].name == "s15"          # oldest survivors only
        assert spans[-1].name == "s24"

    def test_aggregate_outlives_the_ring(self):
        tracer = Tracer(maxlen=4)
        for _ in range(100):
            with tracer.span("tick"):
                pass
        assert len(tracer.spans()) == 4
        assert tracer.aggregate()["tick"]["count"] == 100

    def test_slowest_ranks_by_duration(self):
        tracer = Tracer()
        for delay in (0.0, 0.003, 0.001):
            with tracer.span("s"):
                time.sleep(delay)
        top = tracer.slowest(2)
        assert len(top) == 2
        assert top[0].duration_s >= top[1].duration_s

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.aggregate() == {}


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("tick", attr=1):
            with tracer.span("child"):
                pass
        assert tracer.spans() == []
        assert tracer.aggregate() == {}

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")


class TestAggregates:
    def test_aggregate_totals(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        agg = tracer.aggregate()["stage"]
        assert agg["count"] == 3
        assert agg["total_s"] >= 0.0
        assert agg["max_s"] <= agg["total_s"] + 1e-12
        assert agg["mean_ms"] >= 0.0

    def test_snapshot_counts_deltas(self):
        tracer = Tracer()
        with tracer.span("tick"):
            pass
        c0, t0 = tracer.snapshot_counts()["tick"]
        with tracer.span("tick"):
            pass
        c1, t1 = tracer.snapshot_counts()["tick"]
        assert c1 - c0 == 1
        assert t1 >= t0
