"""Unit tests for latency histograms and the self-metric emitter."""

import numpy as np
import pytest

from repro.core.registry import default_registry
from repro.obs.hist import LatencyHistogram
from repro.obs.selfmetrics import (
    SELFMON_METRICS,
    SelfMonitor,
    completeness_ratio,
)
from repro.pipeline import MonitoringPipeline
from repro.sources.counters import NodeCounterCollector
from tests.test_pipeline import make_machine


class TestLatencyHistogram:
    def test_percentiles_over_window(self):
        h = LatencyHistogram()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.record(v)
        assert h.percentile(50) == 3.0
        s = h.summary()
        assert s["p50_s"] == 3.0
        assert s["max_s"] == 5.0
        assert s["count"] == 5.0
        assert s["mean_s"] == 3.0

    def test_window_is_bounded_but_lifetime_stats_persist(self):
        h = LatencyHistogram(window=4)
        for v in range(100):
            h.record(float(v))
        assert len(h) == 4
        assert h.count == 100
        assert h.max_s == 99.0
        # window percentiles only see the most recent 4 observations
        assert h.percentile(0) == 96.0

    def test_empty_histogram_is_nan(self):
        h = LatencyHistogram()
        assert np.isnan(h.percentile(50))
        assert np.isnan(h.summary()["p50_s"])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(window=0)


class TestCompleteness:
    def test_perfect_delivery_is_one(self):
        assert completeness_ratio(100, 0, 0) == 1.0

    def test_no_traffic_is_one(self):
        assert completeness_ratio(0, 0, 0) == 1.0

    def test_drops_and_errors_reduce_it(self):
        assert completeness_ratio(100, 10, 0) == pytest.approx(0.9)
        assert completeness_ratio(90, 0, 10) == pytest.approx(0.9)


def small_pipeline(**kw):
    return MonitoringPipeline(
        make_machine(),
        collectors=[NodeCounterCollector(interval_s=60.0)],
        **kw,
    )


class TestSelfMonitor:
    def test_every_name_is_registered(self):
        SelfMonitor(small_pipeline()).verify_registered(default_registry())

    def test_first_call_is_baseline_only(self):
        p = small_pipeline()
        assert p.selfmon.maybe_emit(0.0) == []
        assert p.selfmon.emissions == 0

    def test_emits_on_cadence_not_before(self):
        p = small_pipeline(selfmon_interval_s=120.0)
        mon = p.selfmon
        mon.maybe_emit(0.0)
        assert mon.maybe_emit(60.0) == []
        batches = mon.maybe_emit(120.0)
        assert batches
        assert mon.emissions == 1

    def test_emitted_batches_land_in_tsdb_via_bus(self):
        p = small_pipeline(selfmon_interval_s=60.0)
        p.run(duration_s=200.0, dt=10.0)
        metrics = {k.metric for k in p.tsdb.keys()}
        for family in ("selfmon.bus.", "selfmon.collector.",
                       "selfmon.store."):
            assert any(m.startswith(family) for m in metrics), family

    def test_rates_use_elapsed_time(self):
        p = small_pipeline()
        mon = p.selfmon
        mon.maybe_emit(0.0)
        for _ in range(100):
            p.bus.publish("metrics.node.cpu_util", None)
        batches = {b.metric: b for b in mon.sample(50.0, elapsed_s=50.0)}
        rate = batches["selfmon.bus.publish_rate"].values[0]
        assert rate == pytest.approx(2.0)   # 100 msgs / 50 s

    def test_collector_latency_summaries_cover_all_collectors(self):
        p = small_pipeline()
        p.run(duration_s=200.0, dt=10.0)
        b = p.tsdb.query("selfmon.collector.sweep_p95_ms", "node_counters")
        assert len(b)
        assert (b.values >= 0.0).all()

    def test_disabled_selfmon_emits_nothing(self):
        p = small_pipeline(selfmon_interval_s=None)
        assert p.selfmon is None
        p.run(duration_s=200.0, dt=10.0)
        metrics = {k.metric for k in p.tsdb.keys()}
        assert not any(m.startswith("selfmon.") for m in metrics)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SelfMonitor(small_pipeline(), interval_s=0.0)

    def test_all_emitted_metrics_are_declared(self):
        p = small_pipeline()
        mon = p.selfmon
        mon.maybe_emit(0.0)
        emitted = {b.metric for b in mon.sample(60.0, elapsed_s=60.0)}
        assert emitted <= set(SELFMON_METRICS)


class TestTieredSurfaces:
    """Per-partition / per-shard gauges appear exactly when the tiered
    backends are installed, and are registered like everything else."""

    def test_flat_stack_omits_partition_and_shard_gauges(self):
        p = small_pipeline()
        p.selfmon.maybe_emit(0.0)
        emitted = {b.metric for b in p.selfmon.sample(60.0, elapsed_s=60.0)}
        assert "selfmon.bus.partition_depth" not in emitted
        assert "selfmon.store.shard_points" not in emitted

    def test_partitioned_bus_emits_partition_gauges(self):
        from repro.transport.partitioned import PartitionedBus

        p = small_pipeline(transport=PartitionedBus(partitions=4))
        p.run(duration_s=200.0, dt=10.0)
        comps = p.tsdb.components("selfmon.bus.partition_depth")
        assert comps == [f"partition-{i}" for i in range(4)]
        drops = p.tsdb.components("selfmon.bus.partition_dropped")
        assert drops == comps

    def test_sharded_store_emits_shard_gauges(self):
        from repro.storage.sharded import ShardedTimeSeriesStore

        p = small_pipeline(tsdb=ShardedTimeSeriesStore(shards=3))
        p.run(duration_s=200.0, dt=10.0)
        for metric in ("selfmon.store.shard_points",
                       "selfmon.store.shard_series",
                       "selfmon.store.shard_bytes"):
            assert (p.tsdb.components(metric)
                    == [f"shard-{i}" for i in range(3)]), metric
        # the per-shard gauges sum to the whole-store gauge
        t = p.machine.now
        total = sum(
            p.tsdb.query("selfmon.store.shard_points", c).values[-1]
            for c in p.tsdb.components("selfmon.store.shard_points")
        )
        whole = p.tsdb.query("selfmon.store.tsdb_points", "tsdb").values[-1]
        assert total <= whole <= p.tsdb.stats().samples
        assert t > 0

    def test_aggtree_reports_leaf_depths_as_partition_gauge(self):
        from repro.transport.aggtree import AggregatorTree

        p = small_pipeline(transport=AggregatorTree(leaves=4))
        p.run(duration_s=200.0, dt=10.0)
        comps = p.tsdb.components("selfmon.bus.partition_depth")
        assert comps == [f"leaf-{i}" for i in range(4)]


class TestCacheGauges:
    """The decompressed-chunk cache is a selfmon surface like any other."""

    CACHE_METRICS = ("selfmon.store.cache_hits",
                     "selfmon.store.cache_misses",
                     "selfmon.store.cache_evictions",
                     "selfmon.store.cache_bytes")

    def test_cache_gauges_emitted_for_plain_store(self):
        p = small_pipeline()
        p.selfmon.maybe_emit(0.0)
        batches = {b.metric: b for b in p.selfmon.sample(60.0,
                                                         elapsed_s=60.0)}
        for m in self.CACHE_METRICS:
            assert m in batches, m
            assert batches[m].components[0] == "chunk-cache"

    def test_cache_counters_reflect_query_traffic(self):
        p = small_pipeline()
        p.run(duration_s=400.0, dt=10.0)
        p.tsdb.flush()
        comp = p.tsdb.components("node.cpu_util")[0]
        for _ in range(3):
            p.tsdb.query("node.cpu_util", comp)
        mon = p.selfmon
        batches = {b.metric: b for b in mon.sample(500.0, elapsed_s=100.0)}
        hits = batches["selfmon.store.cache_hits"].values[0]
        misses = batches["selfmon.store.cache_misses"].values[0]
        assert misses > 0          # the cold read decompressed chunks
        assert hits > 0            # the repeats were served from cache
        s = p.tsdb.cache_stats()
        assert (hits, misses) == (float(s.hits), float(s.misses))

    def test_cache_gauges_emitted_for_sharded_store(self):
        from repro.storage.sharded import ShardedTimeSeriesStore

        p = small_pipeline(tsdb=ShardedTimeSeriesStore(shards=3))
        p.selfmon.maybe_emit(0.0)
        emitted = {b.metric for b in p.selfmon.sample(60.0, elapsed_s=60.0)}
        assert set(self.CACHE_METRICS) <= emitted


class TestAnalysisGauges:
    """selfmon.analysis.* appears exactly when streaming detectors are
    installed, one component per detector name."""

    ANALYSIS_METRICS = (
        "selfmon.analysis.batches",
        "selfmon.analysis.detections",
        "selfmon.analysis.sweep_p50_ms",
        "selfmon.analysis.sweep_p95_ms",
        "selfmon.analysis.sweep_max_ms",
    )

    def test_names_declared_and_registered(self):
        reg = default_registry()
        for m in self.ANALYSIS_METRICS:
            assert m in SELFMON_METRICS
            reg.get(m)

    def test_no_detectors_no_gauges(self):
        p = small_pipeline()
        p.selfmon.maybe_emit(0.0)
        emitted = {b.metric for b in p.selfmon.sample(60.0, elapsed_s=60.0)}
        assert not any(m.startswith("selfmon.analysis.") for m in emitted)

    def test_detector_gauges_land_in_tsdb(self):
        from repro.analysis.streaming import (
            StreamingOutlierDetector,
            StreamingStats,
        )

        p = small_pipeline(selfmon_interval_s=60.0)
        p.add_streaming(StreamingStats())
        p.add_streaming(
            StreamingOutlierDetector(("node.cpu_util",), z_threshold=4.0)
        )
        p.run(duration_s=300.0, dt=10.0)
        comps = set(p.tsdb.components("selfmon.analysis.batches"))
        assert {"StreamingStats", "StreamingOutlierDetector"} <= comps
        b = p.tsdb.query("selfmon.analysis.batches", "StreamingStats")
        assert b.values[-1] > 0            # it really observed traffic
        lat = p.tsdb.query(
            "selfmon.analysis.sweep_p95_ms", "StreamingStats"
        )
        assert (lat.values >= 0.0).all()

    def test_same_class_twice_gets_unique_gauge_components(self):
        from repro.analysis.streaming import StreamingStats

        p = small_pipeline(selfmon_interval_s=60.0)
        p.add_streaming(StreamingStats())
        p.add_streaming(StreamingStats())
        p.run(duration_s=200.0, dt=10.0)
        comps = set(p.tsdb.components("selfmon.analysis.batches"))
        assert {"StreamingStats", "StreamingStats-2"} <= comps
