"""The federation driver: one clock, N sites, strict isolation.

The load-bearing contract: sites in a federation share *nothing* but
the simulated clock, so (a) job identities restart at 1 per machine,
(b) a chaos campaign on one site leaves every other site's stored
series, health timeline, and delivery ledger bit-identical to a solo
run, and (c) fanning whole site ticks over threads changes no data.
"""

import numpy as np
import pytest

from repro.cluster.workload import Job, JobGenerator
from repro.obs.chaos import (
    ChaosTransport,
    CollectorRaise,
    MonitorFaultInjector,
    TransportDropStorm,
    TransportStall,
)
from repro.sites import (
    Federation,
    SiteConfig,
    build_site,
    paper_site,
)
from repro.transport import MessageBus


def _timing_metric(name):
    """Series allowed to differ between two runs of the same site:
    wall-clock timings and the size gauges that fold them in (same
    exclusion the serial-vs-threaded determinism contract uses)."""
    return ("_ms" in name or name.startswith("selfmon.exec.")
            or "bytes" in name
            or name.startswith("selfmon.store.shard_"))


def _assert_same_series(a, b, ctx):
    keys_a = {k for k in a.tsdb.keys() if not _timing_metric(k.metric)}
    keys_b = {k for k in b.tsdb.keys() if not _timing_metric(k.metric)}
    assert keys_a == keys_b, ctx
    assert keys_a, f"{ctx}: nothing was stored"
    for key in sorted(keys_a, key=lambda k: (k.metric, k.component)):
        ba = a.tsdb.query(key.metric, key.component)
        bb = b.tsdb.query(key.metric, key.component)
        assert np.array_equal(ba.times, bb.times), (ctx, key)
        assert np.array_equal(ba.values, bb.values, equal_nan=True), \
            (ctx, key)


class TestJobIdentity:
    """Satellite: job IDs are per-machine, not process-global."""

    def test_two_generators_repeat_the_id_sequence(self):
        a = JobGenerator(mean_interarrival_s=60.0, seed=5)
        jobs_a = a.poll(3600.0)
        b = JobGenerator(mean_interarrival_s=60.0, seed=5)
        jobs_b = b.poll(3600.0)
        assert len(jobs_a) > 5
        assert [j.id for j in jobs_a] == [j.id for j in jobs_b]
        assert jobs_a[0].id == 1
        # the ID-derived per-job RNG streams repeat too
        assert [j.work_seconds for j in jobs_a] == \
            [j.work_seconds for j in jobs_b]

    def test_interleaved_generators_stay_independent(self):
        solo = JobGenerator(mean_interarrival_s=60.0, seed=5)
        want = [j.id for j in solo.poll(3600.0)]
        a = JobGenerator(mean_interarrival_s=60.0, seed=5)
        noisy = JobGenerator(mean_interarrival_s=30.0, seed=9)
        got = []
        for t in range(600, 3601, 600):
            got.extend(j.id for j in a.poll(float(t)))
            noisy.poll(float(t))       # must not perturb a's identities
        assert got == want

    def test_direct_construction_keeps_the_fallback(self):
        app = next(iter(JobGenerator().apps))
        j = Job(app, 4, submit_time=0.0)
        k = Job(app, 4, submit_time=0.0)
        assert k.id == j.id + 1        # class counter still ticks


class TestFederationBasics:
    def test_needs_sites_and_names(self):
        with pytest.raises(ValueError, match="at least one site"):
            Federation({})
        with pytest.raises(ValueError, match="non-empty names"):
            Federation([SiteConfig()])
        with pytest.raises(TypeError, match="SiteConfigs"):
            Federation([42])

    def test_duplicate_names_are_rejected(self):
        cfg = paper_site("snl")
        with pytest.raises(ValueError, match="duplicate"):
            Federation([cfg, cfg])

    def test_lockstep_clock_across_mixed_ticks(self):
        fed = Federation.from_presets(["csc", "snl"])
        # snl declares tick_s=5, csc 10: the federation steps at the
        # finest tick so both sites' cadences fire on schedule
        fed.step()
        clocks = {p.machine.now for p in fed.pipelines.values()}
        assert clocks == {5.0}
        fed.run(duration_s=55.0)
        clocks = {p.machine.now for p in fed.pipelines.values()}
        assert clocks == {60.0}
        assert fed.now == 60.0

    def test_qualified_views_and_balance(self):
        fed = Federation.from_presets(["csc", "snl"])
        fed.run(duration_s=600.0)
        fed.flush()
        assert fed.balanced()
        fe = fed.frontend()
        comps = fe.components("cabinet.power_w")
        assert comps
        assert all("/" in c for c in comps)
        sites = {c.split("/", 1)[0] for c in comps}
        assert sites == {"csc", "snl"}
        merged = fed.health_report()
        assert merged
        assert all("/" in k for k in merged)
        assert {k.split("/", 1)[0] for k in merged} == {"csc", "snl"}

    def test_unknown_site_lookup(self):
        fed = Federation.from_presets(["snl"])
        with pytest.raises(KeyError, match="unknown site"):
            fed.site("csc")


def _run_solo(name, duration_s, dt):
    pipeline = build_site(paper_site(name))
    end = pipeline.machine.now + duration_s
    while pipeline.machine.now < end - 1e-9:
        pipeline.step(dt)
    pipeline.bus.flush()
    return pipeline


class TestSiteIsolation:
    """Chaos on site A must not perturb site B at all."""

    DURATION = 1800.0

    @pytest.fixture(scope="class")
    def runs(self):
        dt = 5.0                      # min(csc tick 10, snl tick 5)
        solo = _run_solo("snl", self.DURATION, dt)

        chaotic = build_site(
            paper_site("csc"),
            overrides={"transport": ChaosTransport(MessageBus())},
        )
        calm = build_site(paper_site("snl"))
        fed = Federation({"csc": chaotic, "snl": calm})
        inj = MonitorFaultInjector([
            CollectorRaise(start=300.0, duration=600.0, target="sedc"),
            TransportStall(start=600.0, duration=300.0),
            TransportDropStorm(start=1000.0, duration=400.0,
                               drop_every=3),
        ])
        end = fed.now + self.DURATION
        while fed.now < end - 1e-9:
            inj.step(chaotic, fed.now)
            fed.step()
        inj.step(chaotic, fed.now)    # revert anything still active
        fed.flush()
        assert inj.all_reverted()
        return solo, fed

    def test_chaos_actually_bit(self, runs):
        _, fed = runs
        report = fed.site("csc").delivery_report()
        # the storm dropped points, and every one is accounted loss —
        # degraded, never silently wrong
        assert report.lost > 0
        assert report.balanced and report.unaccounted == 0

    def test_calm_site_series_bit_identical(self, runs):
        solo, fed = runs
        _assert_same_series(solo, fed.site("snl"), "snl solo vs federated")

    def test_calm_site_health_identical(self, runs):
        solo, fed = runs
        calm = fed.site("snl")
        assert solo.supervisor.transitions == calm.supervisor.transitions
        assert solo.health_report() == calm.health_report()

    def test_calm_site_ledger_identical(self, runs):
        solo, fed = runs
        a = solo.delivery_report()
        b = fed.site("snl").delivery_report()
        assert a == b
        assert a.balanced and a.unaccounted == 0


class TestSerialThreadedFederation:
    """Fanning site ticks over threads changes no monitoring data."""

    @pytest.fixture(scope="class")
    def runs(self):
        serial = Federation.from_presets(["csc", "snl"], executor=None)
        threaded = Federation.from_presets(["csc", "snl"], executor=2)
        for fed in (serial, threaded):
            fed.run(duration_s=900.0)
            fed.flush()
        yield serial, threaded
        threaded.shutdown()

    def test_every_site_series_identical(self, runs):
        serial, threaded = runs
        for name in serial.names():
            _assert_same_series(serial.site(name), threaded.site(name),
                                f"{name} serial vs threaded federation")

    def test_ledgers_identical_and_balanced(self, runs):
        serial, threaded = runs
        a = serial.delivery_reports()
        b = threaded.delivery_reports()
        assert a == b
        assert serial.balanced() and threaded.balanced()

    def test_threaded_driver_actually_fanned_out(self, runs):
        _, threaded = runs
        snap = threaded.executor.snapshot()
        assert snap["workers"] == 2
        assert snap["tasks"] > 0
