"""The declarative site layer: validation, the single knob path, and
the config round-trip contract.

A :class:`~repro.sites.config.SiteConfig` is a whole deployment as
data; building it (:func:`~repro.sites.build.build_site`) and then
introspecting the live stack
(:func:`~repro.sites.build.site_capabilities`) must reproduce the
declared capability row *exactly* — that equality is what keeps the
regenerated Table I machine-checkable instead of hand-maintained.
"""

import pytest

from repro.pipeline import MonitoringPipeline, default_pipeline
from repro.serve.quota import TenantQuota
from repro.sites import (
    PAPER_SITES,
    SiteConfig,
    build_machine,
    build_site,
    paper_site,
    site_capabilities,
)


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = SiteConfig()
        assert cfg.name == ""
        assert cfg.expected_nodes() == 2 * 3 * 4 * 4

    def test_qualified_name_syntax_is_reserved(self):
        with pytest.raises(ValueError, match="may not contain"):
            SiteConfig(name="a/b")
        with pytest.raises(ValueError, match="may not contain"):
            SiteConfig(name="two words")

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            SiteConfig(topology="hypercube")

    def test_dragonfly_wiring_constraint(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            SiteConfig(chassis_per_group=4)

    def test_torus_dims(self):
        with pytest.raises(ValueError, match="three counts"):
            SiteConfig(topology="torus", torus_dims=(4, 4, 0))
        cfg = SiteConfig(topology="torus", torus_dims=(3, 2, 2))
        assert cfg.expected_nodes() == 3 * 2 * 2 * 2

    def test_unknown_transport(self):
        with pytest.raises(ValueError, match="unknown transport"):
            SiteConfig(transport="carrier-pigeon")

    def test_bad_counts(self):
        with pytest.raises(ValueError, match="shards"):
            SiteConfig(shards=0)
        with pytest.raises(ValueError, match="workers"):
            SiteConfig(workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            SiteConfig(chunk_size=1)
        with pytest.raises(ValueError, match="pyramid_levels"):
            SiteConfig(pyramid_levels=())

    def test_bad_intervals(self):
        with pytest.raises(ValueError, match="tick_s"):
            SiteConfig(tick_s=0.0)
        with pytest.raises(ValueError, match="selfmon_interval_s"):
            SiteConfig(selfmon_interval_s=-1.0)
        # None means "selfmon off", not an interval
        assert SiteConfig(selfmon_interval_s=None).selfmon_interval_s is None

    def test_gpu_nodes_shapes(self):
        SiteConfig(gpu_nodes=None)
        SiteConfig(gpu_nodes="all")
        SiteConfig(gpu_nodes=("c0-0c0s0n0",))
        with pytest.raises(ValueError, match="gpu_nodes"):
            SiteConfig(gpu_nodes=42)


class TestFromKnobs:
    """The historically mutually-exclusive knobs, one validated path."""

    def test_tsdb_vs_store_dir(self):
        with pytest.raises(ValueError,
                           match="pass either tsdb= or store_dir=, not both"):
            SiteConfig.from_knobs(tsdb=object(), store_dir="/tmp/x")

    def test_tsdb_vs_shards(self):
        with pytest.raises(ValueError,
                           match="pass either tsdb= or shards=, not both"):
            SiteConfig.from_knobs(tsdb=object(), shards=4)

    def test_workers_vs_executor(self):
        with pytest.raises(ValueError,
                           match="pass either workers= or executor=, not both"):
            SiteConfig.from_knobs(workers=2, executor=4)

    def test_int_executor_aliases_workers(self):
        cfg, overrides = SiteConfig.from_knobs(executor=3)
        assert cfg.workers == 3
        assert overrides == {}

    def test_instances_become_overrides(self):
        store, ex = object(), object()
        cfg, overrides = SiteConfig.from_knobs(tsdb=store, executor=ex)
        assert overrides == {"tsdb": store, "executor": ex}
        assert cfg.shards is None and cfg.workers is None

    def test_string_transport_is_declarative(self):
        cfg, overrides = SiteConfig.from_knobs(transport="tree")
        assert cfg.transport == "tree"
        assert overrides == {}

    def test_instance_transport_is_an_override(self):
        from repro.transport import MessageBus

        bus = MessageBus()
        cfg, overrides = SiteConfig.from_knobs(transport=bus)
        assert overrides == {"transport": bus}
        assert cfg.transport == "flat"

    def test_default_pipeline_raises_the_same_ladder(self):
        machine = build_machine(SiteConfig())
        with pytest.raises(ValueError,
                           match="pass either tsdb= or shards=, not both"):
            default_pipeline(machine, tsdb=object(), shards=2)
        with pytest.raises(ValueError,
                           match="pass either workers= or executor=, not both"):
            default_pipeline(machine, workers=2, executor=2)


class TestRoundTrip:
    """SiteConfig -> build_site -> introspect reproduces the declaration."""

    @pytest.mark.parametrize("name", sorted(PAPER_SITES))
    def test_every_paper_preset_round_trips(self, name):
        config = paper_site(name)
        pipeline = build_site(config)
        assert site_capabilities(pipeline) == config.capabilities()

    def test_anonymous_default_round_trips(self):
        config = SiteConfig()
        pipeline = build_site(config)
        assert site_capabilities(pipeline) == config.capabilities()
        # anonymous single-site keeps the historic selfmon identity
        assert pipeline.site == ""

    def test_disk_tier_round_trips(self, tmp_path):
        config = SiteConfig(name="d", shards=2,
                            store_dir=str(tmp_path / "cold"))
        pipeline = build_site(config)
        caps = site_capabilities(pipeline)
        assert caps == config.capabilities()
        assert caps["disk"] is True and caps["shards"] == 2

    def test_quotas_round_trip(self):
        config = SiteConfig(name="q", quotas={
            "users": TenantQuota(qps=10.0), "ops": TenantQuota(),
        })
        assert site_capabilities(build_site(config))["tenants"] == 2

    def test_unknown_preset_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown site"):
            paper_site("antarctica")

    def test_ten_sites_and_they_differ(self):
        assert len(PAPER_SITES) == 10
        rows = [c.capabilities() for c in PAPER_SITES.values()]
        # heterogeneity is the point: the rows must not collapse
        assert len({r["transport"] for r in rows}) == 3
        assert len({(r["topology"], r["nodes"]) for r in rows}) > 1


class TestDefaultPipelineShim:
    """``default_pipeline`` keeps its exact historic surface."""

    def test_plain_call_is_anonymous_and_runs(self):
        machine = build_machine(SiteConfig(seed=3))
        pipeline = default_pipeline(machine, seed=3)
        assert isinstance(pipeline, MonitoringPipeline)
        assert pipeline.site == ""
        pipeline.run(hours=0.05, dt=10.0)
        pipeline.bus.flush()
        report = pipeline.delivery_report()
        assert report.balanced and report.unaccounted == 0

    def test_shim_attaches_the_declared_config(self):
        machine = build_machine(SiteConfig())
        pipeline = default_pipeline(machine, shards=2, workers=2)
        assert pipeline.site_config.shards == 2
        assert pipeline.site_config.workers == 2
        pipeline.executor.shutdown()

    def test_pipeline_only_plumbing_still_passes_through(self):
        from repro.core.registry import default_registry

        reg = default_registry()
        machine = build_machine(SiteConfig())
        pipeline = default_pipeline(machine, registry=reg)
        assert pipeline.registry is reg
