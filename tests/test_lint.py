"""Lint gate, pytest-invoked so the tier-1 suite enforces it.

Runs ``ruff check`` against the configuration in ``pyproject.toml``
when ruff is installed; otherwise falls back to the stdlib checker in
``scripts/check.py`` (syntax errors + unused module-level imports), so
the gate never silently disappears in a container without linters.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

import check as check_mod  # noqa: E402  (needs the path tweak above)


def _have_ruff() -> bool:
    return (
        subprocess.run(
            [sys.executable, "-m", "ruff", "--version"],
            capture_output=True,
        ).returncode
        == 0
    )


class TestLintGate:
    def test_lint_clean(self):
        if _have_ruff():
            proc = subprocess.run(
                [sys.executable, "-m", "ruff", "check",
                 *check_mod.CHECKED_DIRS],
                cwd=REPO, capture_output=True, text=True,
            )
            assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}"
        else:
            problems = []
            for path in check_mod.python_files():
                problems.extend(check_mod.check_file(path))
            assert not problems, "lint findings:\n" + "\n".join(problems)

    def test_fallback_catches_syntax_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        problems = check_mod.check_file(bad)
        assert len(problems) == 1
        assert "syntax error" in problems[0]

    def test_fallback_catches_unused_import(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import os\nimport sys\nprint(sys.argv)\n")
        problems = check_mod.check_file(f)
        assert len(problems) == 1
        assert "unused import 'os'" in problems[0]

    def test_fallback_respects_string_annotations(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from x import Thing\n"
            "def f(t: 'Thing | None') -> None: ...\n"
        )
        # Thing is module-level-invisible but used in the annotation;
        # the word-level fallback must not flag it
        assert check_mod.check_file(f) == []


def _write_pkg(root, name, files):
    pkg = root / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, body in files.items():
        (pkg / f"{mod}.py").write_text(body)
    return pkg


class TestImportCycles:
    def test_src_repro_is_acyclic(self):
        """The stage extraction's load-bearing invariant: no runtime
        import cycles anywhere in src/repro (in particular, no
        pipeline <-> stages cycle)."""
        assert check_mod.check_import_cycles() == []

    def test_stages_never_imports_pipeline_at_runtime(self):
        graph = check_mod.import_graph(REPO / "src")
        assert "repro.pipeline" not in graph["repro.stages"]
        # ...while the pipeline does consume the stages (the edge the
        # TYPE_CHECKING exclusion must not erase by accident)
        assert "repro.stages" in graph["repro.pipeline"]

    def test_detects_synthetic_cycle(self, tmp_path):
        _write_pkg(tmp_path, "repro", {
            "a": "from .b import thing\nthing\n",
            "b": "from .a import other\nother\n",
        })
        graph = check_mod.import_graph(tmp_path)
        cycle = check_mod.find_import_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"repro.a", "repro.b"}

    def test_type_checking_imports_are_not_cycle_edges(self, tmp_path):
        _write_pkg(tmp_path, "repro", {
            "a": ("from typing import TYPE_CHECKING\n"
                  "if TYPE_CHECKING:\n"
                  "    from .b import B\n"
                  "def f(b: 'B'): ...\n"),
            "b": "from .a import f\nf\n",
        })
        graph = check_mod.import_graph(tmp_path)
        assert check_mod.find_import_cycle(graph) is None


class TestColumnarGate:
    """The per-sample-loop lint keeping src/repro/analysis columnar."""

    def test_analysis_plane_is_columnar(self):
        assert check_mod.check_columnar_analysis() == []

    def test_flags_zip_over_batch_columns(self, tmp_path):
        f = tmp_path / "hot.py"
        f.write_text(
            "def f(batch):\n"
            "    for c, v in zip(batch.components, batch.values):\n"
            "        print(c, v)\n"
        )
        problems = check_mod.check_columnar(f)
        assert len(problems) == 1
        assert "per-sample loop" in problems[0]
        assert ":2:" in problems[0]

    def test_flags_direct_column_iteration(self, tmp_path):
        f = tmp_path / "hot.py"
        f.write_text(
            "def f(batch):\n"
            "    return [str(c) for c in batch.components]\n"
        )
        assert len(check_mod.check_columnar(f)) == 1

    def test_flags_enumerate_over_columns(self, tmp_path):
        f = tmp_path / "hot.py"
        f.write_text(
            "def f(batch):\n"
            "    for i, v in enumerate(batch.values):\n"
            "        print(i, v)\n"
        )
        assert len(check_mod.check_columnar(f)) == 1

    def test_marker_suppresses(self, tmp_path):
        f = tmp_path / "ref.py"
        f.write_text(
            "def f_slow(batch):\n"
            "    for c, v in zip(batch.components, batch.values):"
            "  # per-sample: allowed\n"
            "        print(c, v)\n"
        )
        assert check_mod.check_columnar(f) == []

    def test_unrelated_loops_pass(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text(
            "def f(xs, ys, batch):\n"
            "    for a, b in zip(xs, ys):\n"
            "        print(a, b)\n"
            "    for c in batch.components.tolist():\n"
            "        print(c)\n"
            "    return batch.values * 2\n"
        )
        assert check_mod.check_columnar(f) == []

    def test_syntax_errors_left_to_the_syntax_check(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def broken(:\n")
        assert check_mod.check_columnar(f) == []


class TestSelfmonRegistryGate:
    """Every published ``selfmon.*`` name must be in the registry."""

    def test_src_repro_selfmon_names_are_registered(self):
        assert check_mod.check_selfmon_registry() == []

    def test_registry_covers_freshness_gauges(self):
        import sys as _sys

        _sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.core.registry import default_registry
            names = {m.name for m in default_registry()}
        finally:
            _sys.path.remove(str(REPO / "src"))
        for gauge in ("selfmon.freshness.e2e_p99_s",
                      "selfmon.freshness.slo_burn_rate",
                      "selfmon.freshness.slo_breaches",
                      "selfmon.trace.dropped"):
            assert gauge in names

    def test_gate_is_wired_into_lint(self):
        import inspect

        src = inspect.getsource(check_mod.lint)
        assert "check_selfmon_registry" in src


class TestSwallowGate:
    """The blind-exception-swallow lint keeping failures accounted."""

    def test_src_repro_has_no_blind_swallows(self):
        assert check_mod.check_swallows_repro() == []

    def test_flags_except_exception_pass(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except Exception:\n"
            "        pass\n"
        )
        problems = check_mod.check_swallows(f)
        assert len(problems) == 1
        assert "blind swallow" in problems[0]
        assert ":4:" in problems[0]

    def test_flags_bare_except_continue(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            print(1 / x)\n"
            "        except:\n"
            "            continue\n"
        )
        problems = check_mod.check_swallows(f)
        assert len(problems) == 1
        assert "bare except" in problems[0]

    def test_flags_exception_in_tuple(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except (ValueError, Exception):\n"
            "        ...\n"
        )
        assert len(check_mod.check_swallows(f)) == 1

    def test_specific_exception_passes(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except ZeroDivisionError:\n"
            "        pass\n"
        )
        assert check_mod.check_swallows(f) == []

    def test_handler_that_accounts_passes(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(x, errors):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except Exception as exc:\n"
            "        errors.append(exc)\n"
            "        return None\n"
        )
        assert check_mod.check_swallows(f) == []

    def test_marker_suppresses(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except Exception:  # swallow: allowed\n"
            "        pass\n"
        )
        assert check_mod.check_swallows(f) == []

    def test_syntax_errors_left_to_the_syntax_check(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def broken(:\n")
        assert check_mod.check_swallows(f) == []

    def test_gate_is_wired_into_lint(self):
        """The gate must actually run as part of ``scripts/check.py``."""
        import inspect

        src = inspect.getsource(check_mod.lint)
        assert "check_swallows_repro" in src


class TestSharedStateGate:
    """Module-level mutable state is forbidden in worker-shared planes."""

    def test_transport_and_storage_have_no_module_state(self):
        problems = check_mod.check_shared_state()
        assert not problems, "\n".join(problems)

    def test_flags_module_level_dict(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("CACHE = {}\n")
        problems = check_mod.check_module_state(f)
        assert len(problems) == 1
        assert "module-level mutable state" in problems[0]
        assert "CACHE" in problems[0]

    def test_flags_list_set_and_constructor_calls(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "from collections import defaultdict\n"
            "SEEN = []\n"
            "ACTIVE = set()\n"
            "BY_TOPIC = defaultdict(list)\n"
        )
        problems = check_mod.check_module_state(f)
        assert len(problems) == 3

    def test_flags_annotated_assignment(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("REGISTRY: dict[str, int] = {}\n")
        problems = check_mod.check_module_state(f)
        assert len(problems) == 1

    def test_dunder_and_immutable_assignments_pass(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "__all__ = ['x']\n"
            "NAMES = ('a', 'b')\n"
            "KINDS = frozenset({'a', 'b'})\n"
            "LIMIT = 42\n"
        )
        assert check_mod.check_module_state(f) == []

    def test_instance_state_passes(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "class Buffered:\n"
            "    def __init__(self):\n"
            "        self.pending = []\n"
            "        self.index = {}\n"
        )
        assert check_mod.check_module_state(f) == []

    def test_marker_suppresses(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("CACHE = {}  # shared-state: allowed\n")
        assert check_mod.check_module_state(f) == []

    def test_syntax_errors_left_to_the_syntax_check(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def broken(:\n")
        assert check_mod.check_module_state(f) == []

    def test_gate_is_wired_into_lint(self):
        """The gate must actually run as part of ``scripts/check.py``."""
        import inspect

        src = inspect.getsource(check_mod.lint)
        assert "check_shared_state" in src


class TestFdLifetimeGate:
    """File/mmap handles in the storage plane must have a clear owner."""

    def test_storage_handles_are_owned(self):
        problems = check_mod.check_fd_lifetime_storage()
        assert not problems, "\n".join(problems)

    def test_flags_bare_open(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("f = open('x')\n")
        problems = check_mod.check_fd_lifetime(f)
        assert len(problems) == 1
        assert "open()" in problems[0]
        assert "handle-owner" in problems[0]

    def test_flags_bare_mmap(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "import mmap\n"
            "def remap(fd, n):\n"
            "    return mmap.mmap(fd, n)\n"
        )
        problems = check_mod.check_fd_lifetime(f)
        assert len(problems) == 1
        assert "mmap.mmap()" in problems[0]

    def test_with_block_passes(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "import mmap\n"
            "with open('x', 'rb') as fh:\n"
            "    with mmap.mmap(fh.fileno(), 0) as m:\n"
            "        data = m[:]\n"
        )
        assert check_mod.check_fd_lifetime(f) == []

    def test_owner_marker_passes(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "import mmap\n"
            "class Seg:\n"
            "    def __init__(self, path, fd):\n"
            "        self.w = open(path, 'ab')  # handle-owner: Seg.close\n"
            "        self.m = mmap.mmap(fd, 0)  # handle-owner: Seg.close\n"
        )
        assert check_mod.check_fd_lifetime(f) == []

    def test_unrelated_calls_pass(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "import os\n"
            "fd = os.open('/dev/null', 0)\n"   # not the gated surface
            "x = max(1, 2)\n"
            "y = {}.get('mmap')\n"
        )
        assert check_mod.check_fd_lifetime(f) == []

    def test_syntax_errors_left_to_the_syntax_check(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def broken(:\n")
        assert check_mod.check_fd_lifetime(f) == []

    def test_gate_is_wired_into_lint(self):
        """The gate must actually run as part of ``scripts/check.py``."""
        import inspect

        src = inspect.getsource(check_mod.lint)
        assert "check_fd_lifetime_storage" in src


class TestConfigDriftGate:
    """Every pipeline-assembly knob must map to a SiteConfig field."""

    def test_real_assembly_surface_is_representable(self):
        problems = check_mod.check_config_drift()
        assert not problems, "\n".join(problems)

    def test_flags_knob_without_field(self, tmp_path):
        pipeline = tmp_path / "pipeline.py"
        pipeline.write_text(
            "class MonitoringPipeline:\n"
            "    def __init__(self, machine, tick_s=10.0,\n"
            "                 shiny_new_knob=None):\n"
            "        pass\n"
        )
        config = tmp_path / "config.py"
        config.write_text(
            "class SiteConfig:\n"
            "    tick_s: float = 10.0\n"
        )
        problems = check_mod.check_config_drift(pipeline, config)
        assert len(problems) == 1
        assert "shiny_new_knob" in problems[0]
        assert "SiteConfig" in problems[0]

    def test_flags_default_pipeline_knob_too(self, tmp_path):
        pipeline = tmp_path / "pipeline.py"
        pipeline.write_text(
            "def default_pipeline(machine, tick_s=10.0, mystery=1, **kw):\n"
            "    pass\n"
        )
        config = tmp_path / "config.py"
        config.write_text(
            "class SiteConfig:\n"
            "    tick_s: float = 10.0\n"
        )
        problems = check_mod.check_config_drift(pipeline, config)
        assert len(problems) == 1
        assert "mystery" in problems[0]
        assert "default_pipeline" in problems[0]

    def test_matching_fields_and_aliases_pass(self, tmp_path):
        pipeline = tmp_path / "pipeline.py"
        pipeline.write_text(
            "class MonitoringPipeline:\n"
            "    def __init__(self, machine, tick_s=10.0, site='',\n"
            "                 serve_quotas=None, executor=None, tsdb=None):\n"
            "        pass\n"
        )
        config = tmp_path / "config.py"
        config.write_text(
            "class SiteConfig:\n"
            "    name: str = ''\n"
            "    tick_s: float = 10.0\n"
            "    quotas: dict | None = None\n"
            "    workers: int | None = None\n"
        )
        assert check_mod.check_config_drift(pipeline, config) == []

    def test_empty_config_is_itself_a_finding(self, tmp_path):
        pipeline = tmp_path / "pipeline.py"
        pipeline.write_text("def default_pipeline(machine):\n    pass\n")
        config = tmp_path / "config.py"
        config.write_text("X = 1\n")
        problems = check_mod.check_config_drift(pipeline, config)
        assert len(problems) == 1
        assert "no SiteConfig fields" in problems[0]

    def test_syntax_errors_left_to_the_syntax_check(self, tmp_path):
        pipeline = tmp_path / "pipeline.py"
        pipeline.write_text("def broken(:\n")
        config = tmp_path / "config.py"
        config.write_text("class SiteConfig:\n    tick_s: float = 10.0\n")
        assert check_mod.check_config_drift(pipeline, config) == []

    def test_gate_is_wired_into_lint(self):
        """The gate must actually run as part of ``scripts/check.py``."""
        import inspect

        src = inspect.getsource(check_mod.lint)
        assert "check_config_drift" in src
