"""Unit tests for the out-of-core disk tier (spill, WAL, recovery)."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.storage.diskier import (
    DiskTier,
    DiskTierStats,
    RecoveryReport,
    merge_disk_stats,
    recover_sharded,
    recover_store,
)
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore


def sweep(metric, t, comps, vals):
    return SeriesBatch.sweep(metric, t, comps, vals)


def fill(store, n=400, metrics=("m1", "m2"), comps=("a", "b", "c")):
    rng = np.random.default_rng(7)
    for i in range(n):
        for m in metrics:
            store.append(sweep(m, i * 10.0, list(comps),
                               rng.normal(size=len(comps))))


def disk_store(tmp_path, **kw):
    kw.setdefault("hot_bytes", 1 << 12)
    kw.setdefault("sync_every_bytes", 1 << 12)
    return TimeSeriesStore(chunk_size=16,
                           disk=DiskTier(tmp_path / "tier", **kw))


class TestHotBudget:
    def test_hot_bytes_never_exceed_budget(self, tmp_path):
        store = disk_store(tmp_path)
        rng = np.random.default_rng(1)
        for i in range(600):
            store.append(sweep("m", i * 10.0, ["a", "b", "c", "d"],
                               rng.normal(size=4)))
            d = store.disk_stats()
            assert d.hot_bytes <= store.disk.hot_bytes
        d = store.disk_stats()
        assert d.spills > 0                   # the budget actually bit
        assert d.disk_bytes > 10 * store.disk.hot_bytes

    def test_spilled_chunks_still_answer_exactly(self, tmp_path):
        store = disk_store(tmp_path)
        oracle = TimeSeriesStore(chunk_size=16)
        fill(store)
        fill(oracle)
        assert store.disk_stats().spills > 0
        for m in ("m1", "m2"):
            for c in ("a", "b", "c"):
                got = store.query(m, c)
                want = oracle.query(m, c)
                assert np.array_equal(got.times, want.times)
                assert np.array_equal(got.values.view(np.uint64),
                                      want.values.view(np.uint64))
                for prune in (False, True):
                    g = store.downsample(m, c, 0.0, 4000.0, 300.0,
                                         prune=prune)
                    w = oracle.downsample(m, c, 0.0, 4000.0, 300.0,
                                          prune=prune)
                    assert np.array_equal(g.times, w.times)
                    assert np.array_equal(g.values, w.values)

    def test_mmap_reads_hit_established_map(self, tmp_path):
        store = disk_store(tmp_path, hot_bytes=1 << 10)
        fill(store, n=300, metrics=("m",), comps=("a",))
        store.cache.clear()
        store.query("m", "a")
        store.cache.clear()
        store.query("m", "a")
        d = store.disk_stats()
        assert d.loads > 0
        assert d.map_hits > 0                 # second pass reused the map


class TestEvictionBecomesDemotion:
    def test_evict_demotes_with_tier(self, tmp_path):
        store = disk_store(tmp_path, hot_bytes=1 << 20)
        fill(store, n=200, metrics=("m",), comps=("a",))
        key = MetricKey("m", "a")
        oracle = TimeSeriesStore(chunk_size=16)
        fill(oracle, n=200, metrics=("m",), comps=("a",))
        before = store.stats()
        epoch = store.query_epoch("m")
        n = store.evict_chunks_before(key, 1000.0)
        assert n > 0
        # demotion, not loss: counts, epoch, and answers all unchanged
        after = store.stats()
        assert after.samples == before.samples
        assert after.sealed_chunks == before.sealed_chunks
        assert store.query_epoch("m") == epoch
        got = store.query("m", "a")
        want = oracle.query("m", "a")
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values.view(np.uint64),
                              want.values.view(np.uint64))
        # a second call finds nothing newly demotable
        assert store.evict_chunks_before(key, 1000.0) == 0

    def test_evict_discards_without_tier(self, tmp_path):
        store = TimeSeriesStore(chunk_size=16)
        fill(store, n=200, metrics=("m",), comps=("a",))
        key = MetricKey("m", "a")
        before = store.stats()
        epoch = store.query_epoch("m")
        n = store.evict_chunks_before(key, 1000.0)
        assert n > 0
        after = store.stats()
        assert after.samples < before.samples          # truly discarded
        assert store.query_epoch("m") == epoch + 1     # epoch bumped
        # only a partial chunk straddling the cut may remain
        assert len(store.query("m", "a", 0.0, 999.0)) < 16


class TestSnapshotRecover:
    def test_synced_crash_loses_nothing(self, tmp_path):
        store = disk_store(tmp_path)
        fill(store)
        store.snapshot()
        fill_more = np.random.default_rng(9)
        for i in range(400, 450):
            store.append(sweep("m1", i * 10.0, ["a", "b", "c"],
                               fill_more.normal(size=3)))
        store.flush()                          # fsync everything
        want = {(m, c): store.query(m, c)
                for m in ("m1", "m2") for c in ("a", "b", "c")}
        want_ds = {(m, c, prune): store.downsample(m, c, 0.0, 5000.0,
                                                   300.0, prune=prune)
                   for m in ("m1", "m2") for c in ("a", "b", "c")
                   for prune in (False, True)}
        n_points = store.points_by_metric()
        store.disk.simulate_crash()
        recovered, report = recover_store(tmp_path / "tier",
                                          hot_bytes=1 << 12,
                                          sync_every_bytes=1 << 12)
        assert recovered.points_by_metric() == n_points
        assert report.points == sum(n_points.values())
        for (m, c), w in want.items():
            got = recovered.query(m, c)
            assert np.array_equal(got.times, w.times)
            assert np.array_equal(got.values.view(np.uint64),
                                  w.values.view(np.uint64))
            for prune in (False, True):
                g = recovered.downsample(m, c, 0.0, 5000.0, 300.0,
                                         prune=prune)
                o = want_ds[(m, c, prune)]
                assert np.array_equal(g.times, o.times)
                assert np.array_equal(g.values, o.values)

    def test_unsynced_tail_is_counted_not_silent(self, tmp_path):
        store = disk_store(tmp_path, sync_every_bytes=1 << 30)
        fill(store, n=100, metrics=("m",), comps=("a",))
        store.disk.sync()
        synced = sum(store.points_by_metric().values())
        for i in range(100, 140):              # past the last fsync
            store.append(sweep("m", i * 10.0, ["a"], [float(i)]))
        total = sum(store.points_by_metric().values())
        store.disk.simulate_crash()
        recovered, report = recover_store(tmp_path / "tier")
        back = sum(recovered.points_by_metric().values())
        assert back == synced                  # tail gone...
        assert total - back == 40              # ...but exactly countable

    def test_dead_tier_refuses_use(self, tmp_path):
        store = disk_store(tmp_path)
        fill(store, n=50, metrics=("m",), comps=("a",))
        store.disk.simulate_crash()
        with pytest.raises(RuntimeError, match="crashed"):
            store.append(sweep("m", 1e6, ["a"], [1.0]))

    def test_second_recovery_is_manifest_only(self, tmp_path):
        store = disk_store(tmp_path)
        fill(store, n=200, metrics=("m",), comps=("a", "b"))
        store.flush()
        store.disk.simulate_crash()
        r1, rep1 = recover_store(tmp_path / "tier")
        # recover_store ends with a snapshot: a second crash right away
        # recovers purely from the manifest (no scan, no replay)
        r1.disk.simulate_crash()
        r2, rep2 = recover_store(tmp_path / "tier")
        assert rep2.scanned_chunks == 0
        assert rep2.wal_points_replayed == 0
        assert r2.points_by_metric() == r1.points_by_metric()

    def test_torn_tails_truncated_and_reported(self, tmp_path):
        store = disk_store(tmp_path, sync_every_bytes=1 << 30)
        fill(store, n=150, metrics=("m",), comps=("a",))
        store.flush()
        store.disk.simulate_crash()
        # corrupt: append garbage half-records past the synced extents
        for pat in ("seg-*.dat", "wal-*.log"):
            for p in (tmp_path / "tier").glob(pat):
                with open(p, "ab") as fh:
                    fh.write(b"SG\x99\x99torn-garbage")
        recovered, report = recover_store(tmp_path / "tier")
        assert report.torn_segment_bytes > 0
        assert report.torn_wal_bytes > 0
        got = recovered.query("m", "a")
        assert len(got) == 150                 # data before the tear intact


class TestSeriesLifecycle:
    def test_drop_series_releases_hot_accounting(self, tmp_path):
        store = disk_store(tmp_path, hot_bytes=1 << 20)
        fill(store, n=200, metrics=("m",), comps=("a", "b"))
        assert store.disk.hot_bytes_used > 0
        store.drop_series("m", "a")
        store.drop_series("m", "b")
        assert store.disk.hot_bytes_used == 0

    def test_export_series_materializes_spilled_bytes(self, tmp_path):
        store = disk_store(tmp_path, hot_bytes=1 << 10)
        fill(store, n=200, metrics=("m",), comps=("a",))
        assert store.disk_stats().spills > 0
        blobs, spans = store.export_series(MetricKey("m", "a"))
        assert len(blobs) == len(spans) > 0
        assert all(isinstance(b, bytes) for b in blobs)

    def test_import_chunks_lands_in_tier(self, tmp_path):
        src = TimeSeriesStore(chunk_size=16)
        fill(src, n=200, metrics=("m",), comps=("a",))
        blobs, spans = src.export_series(MetricKey("m", "a"))
        dst = disk_store(tmp_path)
        dst.import_chunks(MetricKey("m", "a"), blobs, spans)
        assert dst.disk_stats().disk_bytes > 0
        got = dst.query("m", "a", 0.0, spans[-1][1] + 1.0)
        want = src.query("m", "a", 0.0, spans[-1][1] + 1.0)
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values.view(np.uint64),
                              want.values.view(np.uint64))


class TestSharded:
    def test_sharded_crash_recover_round_trip(self, tmp_path):
        sh = ShardedTimeSeriesStore(shards=3, chunk_size=16,
                                    disk_dir=str(tmp_path),
                                    hot_bytes=1 << 12,
                                    sync_every_bytes=1 << 12)
        fill(sh, n=300)
        sh.snapshot()
        fill2 = np.random.default_rng(3)
        for i in range(300, 340):
            sh.append(sweep("m1", i * 10.0, ["a", "b", "c"],
                            fill2.normal(size=3)))
        sh.flush()
        want = {(m, c): sh.query(m, c)
                for m in ("m1", "m2") for c in ("a", "b", "c")}
        for s in sh.shards:
            s.disk.simulate_crash()
        rec, report = recover_sharded(tmp_path, shards=3,
                                      hot_bytes=1 << 12,
                                      sync_every_bytes=1 << 12)
        assert report.points == sum(rec.points_by_metric().values())
        for (m, c), w in want.items():
            got = rec.query(m, c)
            assert np.array_equal(got.times, w.times)
            assert np.array_equal(got.values.view(np.uint64),
                                  w.values.view(np.uint64))

    def test_merged_disk_stats(self, tmp_path):
        sh = ShardedTimeSeriesStore(shards=3, chunk_size=16,
                                    disk_dir=str(tmp_path),
                                    hot_bytes=1 << 12)
        fill(sh, n=200)
        merged = sh.disk_stats()
        per = [s.disk_stats() for s in sh.shards]
        assert merged.disk_bytes == sum(p.disk_bytes for p in per)
        assert merged.spills == sum(p.spills for p in per)

    def test_in_memory_sharded_has_no_disk_stats(self):
        sh = ShardedTimeSeriesStore(shards=2, chunk_size=16)
        assert sh.disk_stats() is None


class TestStatsPlumbing:
    def test_merge_disk_stats_fieldwise(self):
        a = DiskTierStats(1, 10, 5, 3, 2, 1, 1, 1, 1, 1, 1)
        b = DiskTierStats(2, 20, 5, 4, 2, 2, 2, 2, 2, 2, 2)
        m = merge_disk_stats([a, b])
        assert m.segments == 3 and m.disk_bytes == 30
        assert m.spills == 3 and m.wal_syncs == 3

    def test_recovery_report_merge(self):
        a = RecoveryReport(1, 100, 2, 3, 4, 5, 6, 7)
        b = RecoveryReport(1, 50, 1, 1, 1, 1, 1, 1)
        m = a.merged(b)
        assert m.points == 150 and m.series == 2
        assert m.torn_wal_bytes == 8

    def test_in_memory_store_has_no_disk_stats(self):
        assert TimeSeriesStore(chunk_size=16).disk_stats() is None
        with pytest.raises(RuntimeError):
            TimeSeriesStore(chunk_size=16).snapshot()


class TestTierResume:
    def test_reopen_appends_to_existing_segments(self, tmp_path):
        store = disk_store(tmp_path)
        fill(store, n=100, metrics=("m",), comps=("a",))
        store.flush()
        before = store.disk_stats()
        seg_bytes = before.disk_bytes - before.wal_bytes
        store.disk.close()
        tier = DiskTier(tmp_path / "tier", hot_bytes=1 << 12,
                        sync_every_bytes=1 << 12)
        after = tier.stats()
        # segments reopened at full size; the WAL starts a fresh gen
        assert after.disk_bytes - after.wal_bytes == seg_bytes
        tier.close()
