"""Unit tests for the indexed log store."""

import pytest

from repro.core.events import Event, EventKind, Severity
from repro.storage.logstore import LogStore, tokenize


def ev(t, comp="c0-0c0s0n0", kind=EventKind.CONSOLE,
       sev=Severity.INFO, msg="hello world"):
    return Event(time=t, component=comp, kind=kind, severity=sev,
                 message=msg)


@pytest.fixture()
def store():
    s = LogStore()
    s.append(ev(0.0, msg="lustre mount failed on scratch"))
    s.append(ev(10.0, msg="slurmd started ok", sev=Severity.NOTICE))
    s.append(ev(20.0, comp="c1-0c0s0n0", kind=EventKind.HWERR,
                sev=Severity.ERROR, msg="machine check exception bank 4"))
    s.append(ev(30.0, msg="lustre recovery complete"))
    return s


class TestTokenize:
    def test_basic_tokens(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_cnames_survive(self):
        assert "c0-0c0s0n3" in tokenize("error on c0-0c0s0n3 occurred")

    def test_paths_survive(self):
        assert "/scratch" in tokenize("mount /scratch lost")


class TestSearch:
    def test_term_and(self, store):
        hits = store.search(["lustre", "failed"])
        assert len(hits) == 1
        assert "mount failed" in hits[0].message

    def test_missing_term_empty(self, store):
        assert store.search(["nonexistentterm"]) == []

    def test_time_window(self, store):
        hits = store.search(["lustre"], t0=5.0, t1=100.0)
        assert len(hits) == 1
        assert hits[0].time == 30.0

    def test_kind_filter(self, store):
        hits = store.search(kind=EventKind.HWERR)
        assert len(hits) == 1
        assert hits[0].severity is Severity.ERROR

    def test_component_filter(self, store):
        hits = store.search(component="c1-0c0s0n0")
        assert len(hits) == 1

    def test_severity_floor(self, store):
        hits = store.search(min_severity=Severity.ERROR)
        assert len(hits) == 1

    def test_regex_post_filter(self, store):
        hits = store.search(regex=r"bank \d")
        assert len(hits) == 1

    def test_limit(self, store):
        assert len(store.search(limit=2)) == 2

    def test_no_filters_returns_all(self, store):
        assert len(store.search()) == 4

    def test_index_matches_naive_scan(self, store):
        via_index = store.search(["lustre"])
        via_scan = store.scan(r"lustre")
        assert via_index == via_scan


class TestOccurrenceAnalytics:
    def test_count_by_component(self, store):
        counts = store.count_by_component()
        assert counts["c0-0c0s0n0"] == 3
        assert counts["c1-0c0s0n0"] == 1

    def test_count_by_kind(self, store):
        counts = store.count_by_kind()
        assert counts["console"] == 3
        assert counts["hwerr"] == 1

    def test_occurrence_series_buckets(self, store):
        starts, counts = store.occurrence_series(
            ["lustre"], t0=0.0, t1=40.0, bucket_s=10.0
        )
        assert len(starts) == 4
        assert list(counts) == [1, 0, 0, 1]

    def test_occurrence_series_includes_empty_buckets(self, store):
        starts, counts = store.occurrence_series(
            ["nothing"], t0=0.0, t1=100.0, bucket_s=10.0
        )
        assert counts.sum() == 0
        assert len(starts) == 10


class TestFootprint:
    def test_index_bytes_positive(self, store):
        assert store.index_bytes() > 0

    def test_raw_bytes_counts_lines(self, store):
        assert store.raw_bytes() > 4 * 20

    def test_len_and_get(self, store):
        assert len(store) == 4
        assert store.get(0).time == 0.0
