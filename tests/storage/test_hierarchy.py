"""Unit tests for hierarchical hot/cold storage."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.storage.hierarchy import TieredStore
from repro.storage.tsdb import TimeSeriesStore


def fill(store, n=100, comp="a"):
    for i in range(n):
        store.append(
            SeriesBatch.sweep("m", i * 60.0, [comp], [float(i)])
        )


@pytest.fixture()
def tiered():
    t = TieredStore(TimeSeriesStore(chunk_size=16))
    fill(t)
    return t


class TestArchive:
    def test_archive_moves_old_chunks(self, tiered):
        moved = tiered.archive_before(3000.0)
        assert moved > 0
        assert tiered.catalog
        # hot tier no longer holds the archived span
        hot = tiered.hot.query("m", "a")
        assert hot.times.min() >= 16 * 60.0  # first chunk(s) gone

    def test_archive_is_idempotent(self, tiered):
        tiered.archive_before(3000.0)
        assert tiered.archive_before(3000.0) == 0

    def test_catalog_tracks_spans(self, tiered):
        tiered.archive_before(3000.0)
        spans = tiered.cold_spans("m", "a")
        assert spans
        assert all(hi < 3000.0 for _, hi in spans)

    def test_cold_bytes_positive(self, tiered):
        tiered.archive_before(3000.0)
        assert tiered.cold_bytes() > 0


class TestReload:
    def test_transparent_query_reloads(self, tiered):
        tiered.archive_before(3000.0)
        out = tiered.query("m", "a", 0.0, 6000.0)
        assert len(out) == 100
        assert list(out.values) == [float(i) for i in range(100)]
        assert tiered.reloads == 1

    def test_query_outside_cold_span_no_reload(self, tiered):
        tiered.archive_before(1000.0)
        tiered.query("m", "a", 5000.0, 6000.0)
        assert tiered.reloads == 0

    def test_reload_removes_catalog_entries(self, tiered):
        tiered.archive_before(3000.0)
        key = MetricKey("m", "a")
        n = tiered.reload(key, 0.0, 3000.0)
        assert n > 0
        assert not tiered.cold_spans("m", "a")

    def test_data_identical_after_archive_reload_cycle(self, tiered):
        before = tiered.hot.query("m", "a")
        tiered.archive_before(3000.0)
        after = tiered.query("m", "a")
        assert np.array_equal(before.times, after.times)
        assert np.array_equal(before.values, after.values)


class TestDiskTier:
    def test_cold_dir_persistence(self, tmp_path):
        t = TieredStore(TimeSeriesStore(chunk_size=16),
                        cold_dir=tmp_path / "cold")
        fill(t)
        t.archive_before(3000.0)
        files = list((tmp_path / "cold").iterdir())
        assert files
        out = t.query("m", "a", 0.0, 6000.0)
        assert len(out) == 100
        # reload consumed the cold files
        assert not list((tmp_path / "cold").iterdir())

    def test_multiple_series_archived_separately(self, tmp_path):
        t = TieredStore(TimeSeriesStore(chunk_size=16),
                        cold_dir=tmp_path / "cold")
        fill(t, comp="a")
        fill(t, comp="b")
        t.archive_before(3000.0)
        assert t.cold_spans("m", "a") and t.cold_spans("m", "b")
        # reloading a must not disturb b's cold data
        t.query("m", "a", 0.0, 6000.0)
        assert not t.cold_spans("m", "a")
        assert t.cold_spans("m", "b")
