"""Unit tests for the time-series store and chunk codec."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.storage.chunkcache import ChunkCache
from repro.storage.tsdb import (
    TimeSeriesStore,
    _compress_chunk_slow,
    _decompress_chunk_slow,
    _xor_token_lens,
    compress_chunk,
    decompress_chunk,
)


class TestChunkCodec:
    def round_trip(self, times, values):
        t, v = decompress_chunk(compress_chunk(np.asarray(times),
                                               np.asarray(values)))
        return t, v

    def test_empty_chunk(self):
        t, v = self.round_trip([], [])
        assert len(t) == 0 and len(v) == 0

    def test_single_sample(self):
        t, v = self.round_trip([42.0], [3.14])
        assert t[0] == 42.0 and v[0] == 3.14

    def test_regular_interval_exact(self):
        times = np.arange(0, 600, 60, dtype=float)
        values = np.linspace(100, 200, len(times))
        t, v = self.round_trip(times, values)
        assert np.array_equal(t, times)
        assert np.array_equal(v, values)

    def test_irregular_times_ms_resolution(self):
        times = np.array([0.001, 0.5, 7.25, 1000.125])
        values = np.array([1.0, -2.5, 1e-9, 1e9])
        t, v = self.round_trip(times, values)
        assert np.allclose(t, times, atol=5e-4)
        assert np.array_equal(v, values)

    def test_special_float_values(self):
        values = np.array([0.0, -0.0, np.nan, np.inf, -np.inf, 1e-300])
        times = np.arange(len(values), dtype=float)
        t, v = self.round_trip(times, values)
        assert np.array_equal(
            np.isnan(v), np.isnan(values)
        )
        finite = ~np.isnan(values)
        assert np.array_equal(v[finite], values[finite])

    def test_constant_series_compresses_hard(self):
        times = np.arange(0, 512 * 60, 60, dtype=float)
        values = np.full(512, 230.0)
        blob = compress_chunk(times, values)
        # ~2 bytes/sample (1 ts varint + 1 zero-xor marker) + headers
        assert len(blob) < 512 * 3
        raw = 512 * 16
        assert raw / len(blob) > 5

    def test_random_series_still_round_trips(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 1e6, 300))
        # dedupe at ms resolution to keep expectations exact
        times = np.unique(np.round(times * 1000) / 1000)
        values = rng.normal(0, 1e5, len(times))
        t, v = self.round_trip(times, values)
        assert np.allclose(t, times, atol=5e-4)
        assert np.array_equal(v, values)


class TestVectorizedMatchesSlow:
    """The vectorized codec against its retained scalar reference."""

    def cases(self):
        rng = np.random.default_rng(7)
        yield np.arange(0, 512 * 60, 60, dtype=float), rng.normal(size=512)
        yield np.arange(5, dtype=float), np.array(
            [0.0, -0.0, np.nan, np.inf, -np.inf])
        # duplicate + out-of-order timestamps (seal sorts, codec must not)
        yield (np.array([3.0, 1.0, 1.0, 2.0, 0.5]),
               np.array([1.0, 1.0, 1.0, 2.0, 5e-324]))
        yield np.array([]), np.array([])
        yield np.array([1.5]), np.array([42.0])

    def test_compress_byte_identical(self):
        for times, values in self.cases():
            assert (compress_chunk(times, values)
                    == _compress_chunk_slow(times, values))

    def test_decompress_matches_slow_with_and_without_hint(self):
        for times, values in self.cases():
            blob = compress_chunk(times, values)
            st, sv = _decompress_chunk_slow(blob)
            for hint in (None, _xor_token_lens(values)):
                vt, vv = decompress_chunk(blob, lens_hint=hint)
                assert np.array_equal(vt, st)
                assert np.array_equal(vv.view(np.uint64),
                                      sv.view(np.uint64))


@pytest.fixture()
def store():
    return TimeSeriesStore(chunk_size=16)


def sweep(metric, t, comps, vals):
    return SeriesBatch.sweep(metric, t, comps, vals)


class TestIngestAndQuery:
    def test_append_and_query_single(self, store):
        store.append(sweep("m", 0.0, ["a"], [1.0]))
        store.append(sweep("m", 60.0, ["a"], [2.0]))
        out = store.query("m", "a")
        assert list(out.values) == [1.0, 2.0]
        assert list(out.times) == [0.0, 60.0]

    def test_query_unknown_series_empty(self, store):
        assert len(store.query("m", "nope")) == 0

    def test_query_spans_sealed_and_head(self, store):
        for i in range(40):  # crosses two sealed chunks + open head
            store.append(sweep("m", i * 60.0, ["a"], [float(i)]))
        out = store.query("m", "a")
        assert len(out) == 40
        assert list(out.values) == [float(i) for i in range(40)]

    def test_time_window_query(self, store):
        for i in range(40):
            store.append(sweep("m", i * 60.0, ["a"], [float(i)]))
        out = store.query("m", "a", t0=600.0, t1=1200.0)
        assert list(out.values) == [10.0, 11.0, 12.0, 13.0,
                                    14.0, 15.0, 16.0, 17.0, 18.0, 19.0]

    def test_multi_component_sweep(self, store):
        store.append(sweep("m", 0.0, ["a", "b", "c"], [1, 2, 3]))
        assert store.components("m") == ["a", "b", "c"]
        assert store.query("m", "b").values[0] == 2.0

    def test_keys_filtered_by_metric(self, store):
        store.append(sweep("m1", 0.0, ["a"], [1]))
        store.append(sweep("m2", 0.0, ["a"], [1]))
        assert store.keys("m1") == [MetricKey("m1", "a")]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(chunk_size=1)

    def test_flush_then_query(self, store):
        store.append(sweep("m", 0.0, ["a"], [5.0]))
        store.flush()
        assert store.query("m", "a").values[0] == 5.0
        assert store.stats().sealed_chunks == 1


class TestDownsample:
    def fill(self, store):
        for i in range(120):
            store.append(sweep("m", float(i), ["a"], [float(i)]))

    def test_mean_buckets(self, store):
        self.fill(store)
        out = store.downsample("m", "a", 0.0, 120.0, step=60.0, agg="mean")
        assert len(out) == 2
        assert out.values[0] == pytest.approx(np.mean(range(60)))
        assert out.values[1] == pytest.approx(np.mean(range(60, 120)))

    def test_max_buckets(self, store):
        self.fill(store)
        out = store.downsample("m", "a", 0.0, 120.0, step=60.0, agg="max")
        assert list(out.values) == [59.0, 119.0]

    def test_empty_buckets_omitted(self, store):
        store.append(sweep("m", 0.0, ["a"], [1.0]))
        store.append(sweep("m", 500.0, ["a"], [2.0]))
        out = store.downsample("m", "a", 0.0, 600.0, step=60.0)
        assert len(out) == 2
        assert list(out.times) == [0.0, 480.0]

    def test_unknown_agg_rejected(self, store):
        with pytest.raises(ValueError, match="unknown agg"):
            store.downsample("m", "a", 0, 1, 1, agg="median?")

    def test_bad_step_rejected(self, store):
        with pytest.raises(ValueError, match="step"):
            store.downsample("m", "a", 0, 1, 0.0)


class TestAggregateAcross:
    def test_sum_across_components(self, store):
        for t in (0.0, 60.0):
            store.append(sweep("fs.read_bps", t, ["ost0", "ost1"],
                               [100.0, 50.0]))
        out = store.aggregate_across("fs.read_bps", step=60.0, agg="sum")
        assert list(out.values) == [150.0, 150.0]

    def test_mean_across_subset(self, store):
        store.append(sweep("m", 0.0, ["a", "b", "c"], [1.0, 3.0, 100.0]))
        out = store.aggregate_across("m", ["a", "b"], step=60.0, agg="mean")
        assert out.values[0] == 2.0

    def test_empty_store_empty_aggregate(self, store):
        assert len(store.aggregate_across("m")) == 0

    def test_last_is_time_ordered_not_component_ordered(self, store):
        # regression: "a" iterates first but holds the LATEST sample; a
        # concatenate-without-sort implementation returns b's 2.0
        store.append(sweep("m", 10.0, ["a"], [1.0]))
        store.append(sweep("m", 5.0, ["b"], [2.0]))
        out = store.aggregate_across("m", step=60.0, agg="last")
        assert list(out.values) == [1.0]

    def test_matches_naive_mask_scan_oracle(self, store):
        rng = np.random.default_rng(3)
        times = np.round(np.sort(rng.uniform(0, 900, 200)), 3)
        for comp in ("a", "b", "c"):
            vals = rng.normal(size=len(times))
            for t, v in zip(times, vals):
                store.append(sweep("m", float(t), [comp], [float(v)]))
        store.flush()
        full = store.query_components("m")
        t = np.concatenate([b.times for b in full.values()])
        v = np.concatenate([b.values for b in full.values()])
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
        for agg, fn in (("sum", np.sum), ("mean", np.mean),
                        ("min", np.min), ("max", np.max),
                        ("last", lambda a: a[-1]),
                        ("count", len)):
            out = store.aggregate_across("m", step=60.0, agg=agg)
            # unbounded windows anchor on the step grid at/below the
            # first sample (bucket_anchor), like every bucketing path
            anchor = np.floor(t[0] / 60.0) * 60.0
            buckets = np.floor((t - anchor) / 60.0).astype(int)
            expect = [float(fn(v[buckets == b]))
                      for b in np.unique(buckets)]
            assert np.allclose(out.values, expect, rtol=1e-12), agg
            assert np.array_equal(out.times,
                                  anchor + np.unique(buckets) * 60.0), agg

    def test_single_component_aggregate_equals_downsample(self, store):
        for i in range(100):
            store.append(sweep("m", float(i), ["a"], [float(i % 7)]))
        store.flush()
        for agg in ("sum", "mean", "min", "max", "last", "count"):
            via_agg = store.aggregate_across("m", ["a"], t0=0.0, t1=100.0,
                                             step=13.0, agg=agg)
            via_ds = store.downsample("m", "a", 0.0, 100.0, step=13.0,
                                      agg=agg, prune=False)
            assert np.array_equal(via_agg.times, via_ds.times), agg
            assert np.allclose(via_agg.values, via_ds.values,
                               rtol=1e-12), agg


class TestSummaryPrunedDownsample:
    """prune=True (summaries + cache) against prune=False (decompress)."""

    def fill(self, store, n=400, seed=11):
        rng = np.random.default_rng(seed)
        times = np.round(np.sort(rng.uniform(0, 3600, n)), 3)
        vals = rng.normal(50.0, 20.0, n)
        for t, v in zip(times, vals):
            store.append(sweep("m", float(t), ["a"], [float(v)]))
        store.flush()

    @pytest.mark.parametrize("agg", ["mean", "sum", "min", "max",
                                     "last", "count"])
    def test_pruned_equals_cold(self, agg):
        store = TimeSeriesStore(chunk_size=16)
        self.fill(store)
        warm = store.downsample("m", "a", 0.0, 3600.0, step=300.0, agg=agg)
        cold = store.downsample("m", "a", 0.0, 3600.0, step=300.0, agg=agg,
                                prune=False)
        assert np.array_equal(warm.times, cold.times)
        if agg in ("min", "max", "last", "count"):
            assert np.array_equal(warm.values, cold.values)
        else:   # sum/mean may differ in ulps (reassociated additions)
            assert np.allclose(warm.values, cold.values, rtol=1e-9)

    def test_pruned_covers_open_head_and_window_edges(self):
        store = TimeSeriesStore(chunk_size=16)
        self.fill(store, n=100)
        store.append(sweep("m", 3599.5, ["a"], [7.0]))   # unsealed head
        warm = store.downsample("m", "a", 100.0, 3500.0, step=77.0)
        cold = store.downsample("m", "a", 100.0, 3500.0, step=77.0,
                                prune=False)
        assert np.array_equal(warm.times, cold.times)
        assert np.allclose(warm.values, cold.values, rtol=1e-9)

    def test_pruned_path_avoids_decompression(self):
        cache = ChunkCache()
        store = TimeSeriesStore(chunk_size=16, cache=cache)
        for i in range(160):
            store.append(sweep("m", float(i), ["a"], [float(i)]))
        store.flush()
        # chunks span 16 s each; 160-s buckets swallow chunks whole, so
        # the summary path never touches the cache at all
        store.downsample("m", "a", 0.0, 160.0, step=160.0, agg="sum")
        assert cache.stats().misses == 0
        # misaligned buckets force boundary chunks through the cache
        store.downsample("m", "a", 0.0, 160.0, step=24.0, agg="sum")
        assert cache.stats().misses > 0


class TestStats:
    def test_counts(self, store):
        for i in range(40):
            store.append(sweep("m", float(i), ["a", "b"], [1.0, 2.0]))
        s = store.stats()
        assert s.series == 2
        assert s.samples == 80
        assert s.sealed_chunks == 4  # 2 series x (40 // 16) sealed
        assert s.compressed_bytes > 0

    def test_compression_ratio_beats_raw_on_regular_data(self, store):
        for i in range(512):
            store.append(sweep("m", i * 60.0, ["a"], [42.0]))
        store.flush()
        assert store.stats().compression_ratio > 4

    def test_drop_series(self, store):
        store.append(sweep("m", 0.0, ["a"], [1.0]))
        assert store.drop_series("m", "a")
        assert not store.drop_series("m", "a")
        assert len(store.query("m", "a")) == 0


class TestEvictImport:
    def test_evict_then_import_round_trip(self, store):
        for i in range(64):
            store.append(sweep("m", float(i), ["a"], [float(i)]))
        store.flush()
        key = MetricKey("m", "a")
        chunks, spans = store.export_series(key)
        evicted = store.evict_chunks_before(key, 32.0)
        assert evicted == 2
        assert len(store.query("m", "a")) == 32
        old = [(c, s) for c, s in zip(chunks, spans) if s[1] < 32.0]
        store.import_chunks(key, [c for c, _ in old], [s for _, s in old])
        out = store.query("m", "a")
        assert len(out) == 64
        assert list(out.values) == [float(i) for i in range(64)]

    def test_evict_keeps_summaries_and_cache_consistent(self):
        cache = ChunkCache()
        store = TimeSeriesStore(chunk_size=16, cache=cache)
        for i in range(64):
            store.append(sweep("m", float(i), ["a"], [float(i)]))
        store.flush()
        store.query("m", "a")                      # warm the cache
        assert len(cache) == 4
        key = MetricKey("m", "a")
        assert store.evict_chunks_before(key, 32.0) == 2
        # evicted chunks' cache entries are invalidated, survivors stay
        assert len(cache) == 2
        assert cache.stats().invalidations == 2
        # the parallel per-chunk lists stay aligned
        series, _ = store._series_view("m", "a")
        n = len(series.chunks)
        assert (len(series.chunk_spans) == len(series.chunk_ids)
                == len(series.summaries) == len(series.chunk_hints) == n)
        # summary-pruned queries over the survivors agree with cold reads
        warm = store.downsample("m", "a", 0.0, 64.0, step=64.0, agg="sum")
        cold = store.downsample("m", "a", 0.0, 64.0, step=64.0, agg="sum",
                                prune=False)
        assert np.array_equal(warm.times, cold.times)
        assert np.allclose(warm.values, cold.values, rtol=1e-12)
        assert warm.values[0] == pytest.approx(sum(range(32, 64)))

    def test_import_rebuilds_summaries_for_pruned_queries(self):
        store = TimeSeriesStore(chunk_size=16)
        for i in range(64):
            store.append(sweep("m", float(i), ["a"], [float(i)]))
        store.flush()
        key = MetricKey("m", "a")
        chunks, spans = store.export_series(key)
        store.evict_chunks_before(key, 64.0)
        store.import_chunks(key, chunks, spans)
        warm = store.downsample("m", "a", 0.0, 64.0, step=64.0, agg="sum")
        assert warm.values[0] == pytest.approx(sum(range(64)))
