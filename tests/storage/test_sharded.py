"""Unit tests for the sharded time-series store."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore


def fill(store, n_metrics=3, n_components=16, n_sweeps=5):
    for metric_i in range(n_metrics):
        metric = f"m{metric_i}.value"
        comps = [f"c{j}" for j in range(n_components)]
        for s in range(n_sweeps):
            store.append(SeriesBatch.sweep(
                metric, 10.0 * s, comps,
                [float(metric_i * 100 + j + s) for j in range(n_components)],
            ))


class TestRouting:
    def test_shard_assignment_is_stable(self):
        a = ShardedTimeSeriesStore(shards=4)
        b = ShardedTimeSeriesStore(shards=4)
        for j in range(50):
            assert (a.shard_of("node.power_w", f"n{j}")
                    == b.shard_of("node.power_w", f"n{j}"))

    def test_series_spread_across_shards(self):
        store = ShardedTimeSeriesStore(shards=4)
        hit = {store.shard_of("node.power_w", f"n{j}") for j in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedTimeSeriesStore(shards=0)


class TestSingleStoreEquivalence:
    def test_query_matches_single_store(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        for key in single.keys():
            a = sharded.query(key.metric, key.component)
            b = single.query(key.metric, key.component)
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.values, b.values)

    def test_keys_and_components_match(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        assert sharded.keys() == single.keys()
        assert sharded.keys("m1.value") == single.keys("m1.value")
        assert sharded.components("m1.value") == single.components("m1.value")

    def test_query_layer_rides_the_mixin(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        a = sharded.aggregate_across("m0.value", None, 0.0, 50.0, step=10.0)
        b = single.aggregate_across("m0.value", None, 0.0, 50.0, step=10.0)
        assert np.array_equal(a.values, b.values)

    def test_stats_merge_across_shards(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        a, b = sharded.stats(), single.stats()
        assert a.series == b.series
        assert a.samples == b.samples

    def test_drop_series_routes_to_owner(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        assert sharded.drop_series("m0.value", "c3")
        assert not sharded.drop_series("m0.value", "c3")
        assert MetricKey("m0.value", "c3") not in sharded.keys()


class TestShardFailover:
    def batch(self, n=16, t=0.0, metric="m.value"):
        return SeriesBatch.sweep(metric, t, [f"c{j}" for j in range(n)],
                                 [float(j) for j in range(n)])

    def shard_split(self, store, batch):
        """points of ``batch`` owned by each shard index."""
        counts = [0] * store.n_shards
        for c in batch.components:
            counts[store.shard_of(batch.metric, str(c))] += 1
        return counts

    def test_failed_shard_defers_to_redo_not_stored(self):
        from repro.core.lifecycle import Health

        store = ShardedTimeSeriesStore(shards=4)
        b = self.batch()
        split = self.shard_split(store, b)
        store.fail_shard(1)
        assert store.shard_health()[1] is Health.FAILED
        assert store.health() is Health.DEGRADED   # others still serve
        stored = store.append(b)
        assert stored == len(b) - split[1]
        assert store.redo_pending_points() == split[1]

    def test_recover_replays_redo_exactly(self):
        store = ShardedTimeSeriesStore(shards=4)
        b = self.batch()
        split = self.shard_split(store, b)
        store.fail_shard(1)
        store.append(b)
        replayed = store.recover_shard(1)
        assert replayed == split[1]
        assert store.redo_pending_points() == 0
        # every component queryable again, including shard 1's
        for c in b.components:
            assert len(store.query(b.metric, str(c))) == 1

    def test_query_on_failed_shard_returns_empty_not_raises(self):
        store = ShardedTimeSeriesStore(shards=4)
        b = self.batch()
        store.append(b)
        victim = str(b.components[0])
        i = store.shard_of(b.metric, victim)
        store.fail_shard(i)
        out = store.query(b.metric, victim)
        assert len(out) == 0 and out.metric == b.metric
        assert all(store.shard_of(k.metric, k.component) != i
                   for k in store.keys())    # failed shard's keys hidden
        store.recover_shard(i)
        assert len(store.query(b.metric, victim)) == 1

    def test_redo_overflow_evicts_oldest_as_accounted_loss(self):
        from repro.core.ledger import DeliveryLedger

        store = ShardedTimeSeriesStore(shards=1, redo_points=40)
        ledger = DeliveryLedger()
        store.ledger = ledger
        store.fail_shard(0)
        for k in range(5):                       # 5 x 16 points > 40
            b = self.batch(t=float(k), metric="metrics.m")
            ledger.published_batch("test", b)
            store.append(b)
        assert store.redo_pending_points() <= 40
        lost = ledger.lost_by_cause()
        assert lost.get("shard-redo-overflow", 0) == \
            5 * 16 - store.redo_pending_points()
        # identity holds with the redo buffer as `pending`
        report = ledger.balance(pending=store.redo_pending_points(),
                                in_flight=0)
        assert report.balanced, report.render()
        # recovery replays the survivors; identity still exact
        store.recover_shard(0)
        report = ledger.balance(pending=0, in_flight=0)
        assert report.balanced, report.render()
        assert report.stored == store.stats().samples

    def test_single_shard_failure_is_total_failure(self):
        from repro.core.lifecycle import Health

        store = ShardedTimeSeriesStore(shards=1)
        store.fail_shard(0)
        assert store.health() is Health.FAILED

    def test_supervised_surface(self):
        from repro.core.lifecycle import Health, Supervised

        store = ShardedTimeSeriesStore(shards=2)
        assert isinstance(store, Supervised)
        assert store.health() is Health.OK
        store.fail("injected")
        assert store.health() is not Health.OK
        store.heal()
        assert store.health() is Health.OK


class TestPerShardSurfaces:
    def test_per_shard_stats_sum_to_total(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        per = sharded.per_shard_stats()
        assert len(per) == 4
        assert sum(p.samples for p in per) == sharded.stats().samples
        assert sum(p.series for p in per) == sharded.stats().series

    def test_hierarchy_hooks_delegate_to_owner(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        sharded.flush()
        key = sharded.keys()[0]
        chunks, spans = sharded.export_series(key)
        assert chunks
        n = sharded.evict_chunks_before(key, 1e9)
        assert n == len(chunks)
        sharded.import_chunks(key, chunks, spans)
        restored = sharded.query(key.metric, key.component)
        assert len(restored) > 0
