"""Unit tests for the sharded time-series store."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore


def fill(store, n_metrics=3, n_components=16, n_sweeps=5):
    for metric_i in range(n_metrics):
        metric = f"m{metric_i}.value"
        comps = [f"c{j}" for j in range(n_components)]
        for s in range(n_sweeps):
            store.append(SeriesBatch.sweep(
                metric, 10.0 * s, comps,
                [float(metric_i * 100 + j + s) for j in range(n_components)],
            ))


class TestRouting:
    def test_shard_assignment_is_stable(self):
        a = ShardedTimeSeriesStore(shards=4)
        b = ShardedTimeSeriesStore(shards=4)
        for j in range(50):
            assert (a.shard_of("node.power_w", f"n{j}")
                    == b.shard_of("node.power_w", f"n{j}"))

    def test_series_spread_across_shards(self):
        store = ShardedTimeSeriesStore(shards=4)
        hit = {store.shard_of("node.power_w", f"n{j}") for j in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedTimeSeriesStore(shards=0)


class TestSingleStoreEquivalence:
    def test_query_matches_single_store(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        for key in single.keys():
            a = sharded.query(key.metric, key.component)
            b = single.query(key.metric, key.component)
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.values, b.values)

    def test_keys_and_components_match(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        assert sharded.keys() == single.keys()
        assert sharded.keys("m1.value") == single.keys("m1.value")
        assert sharded.components("m1.value") == single.components("m1.value")

    def test_query_layer_rides_the_mixin(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        a = sharded.aggregate_across("m0.value", None, 0.0, 50.0, step=10.0)
        b = single.aggregate_across("m0.value", None, 0.0, 50.0, step=10.0)
        assert np.array_equal(a.values, b.values)

    def test_stats_merge_across_shards(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        single = TimeSeriesStore()
        fill(sharded)
        fill(single)
        a, b = sharded.stats(), single.stats()
        assert a.series == b.series
        assert a.samples == b.samples

    def test_drop_series_routes_to_owner(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        assert sharded.drop_series("m0.value", "c3")
        assert not sharded.drop_series("m0.value", "c3")
        assert MetricKey("m0.value", "c3") not in sharded.keys()


class TestPerShardSurfaces:
    def test_per_shard_stats_sum_to_total(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        per = sharded.per_shard_stats()
        assert len(per) == 4
        assert sum(p.samples for p in per) == sharded.stats().samples
        assert sum(p.series for p in per) == sharded.stats().series

    def test_hierarchy_hooks_delegate_to_owner(self):
        sharded = ShardedTimeSeriesStore(shards=4)
        fill(sharded)
        sharded.flush()
        key = sharded.keys()[0]
        chunks, spans = sharded.export_series(key)
        assert chunks
        n = sharded.evict_chunks_before(key, 1e9)
        assert n == len(chunks)
        sharded.import_chunks(key, chunks, spans)
        restored = sharded.query(key.metric, key.component)
        assert len(restored) > 0
