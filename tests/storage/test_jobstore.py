"""Unit tests for the job allocation index."""

import pytest

from repro.core.metric import SeriesBatch
from repro.storage.jobstore import JobIndex
from repro.storage.tsdb import TimeSeriesStore


@pytest.fixture()
def idx():
    ji = JobIndex()
    ji.record_start(1, "lammps", ["n0", "n1"], 0.0)
    ji.record_end(1, 100.0)
    ji.record_start(2, "qmc", ["n2", "n3"], 50.0)
    ji.record_end(2, 150.0)
    ji.record_start(3, "cfd_fft", ["n0", "n4"], 120.0)  # still running
    return ji


class TestRecording:
    def test_duplicate_start_rejected(self, idx):
        with pytest.raises(ValueError, match="already recorded"):
            idx.record_start(1, "x", ["n9"], 0.0)

    def test_double_end_rejected(self, idx):
        with pytest.raises(ValueError, match="already ended"):
            idx.record_end(1, 200.0)

    def test_contains_and_len(self, idx):
        assert 1 in idx and 9 not in idx
        assert len(idx) == 3


class TestAttribution:
    def test_jobs_active_at(self, idx):
        assert {a.job_id for a in idx.jobs_active_at(75.0)} == {1, 2}
        assert {a.job_id for a in idx.jobs_active_at(130.0)} == {2, 3}

    def test_job_on_node_at(self, idx):
        assert idx.job_on_node_at("n0", 50.0).job_id == 1
        assert idx.job_on_node_at("n0", 130.0).job_id == 3
        assert idx.job_on_node_at("n0", 110.0) is None
        assert idx.job_on_node_at("never", 0.0) is None

    def test_jobs_overlapping(self, idx):
        assert {a.job_id for a in idx.jobs_overlapping(140.0, 200.0)} == {2, 3}

    def test_concurrent_with(self, idx):
        assert {a.job_id for a in idx.concurrent_with(1)} == {2}
        # job 3 is open-ended: overlaps job 2's tail
        assert {a.job_id for a in idx.concurrent_with(3)} == {2}

    def test_runtimes_by_app(self, idx):
        rt = idx.runtimes_by_app()
        assert rt["lammps"] == [100.0]
        assert rt["qmc"] == [100.0]
        assert "cfd_fft" not in rt  # still running


class TestExtraction:
    def fill_tsdb(self):
        tsdb = TimeSeriesStore()
        for t in range(0, 200, 10):
            tsdb.append(
                SeriesBatch.sweep(
                    "node.power_w", float(t),
                    ["n0", "n1", "n2"], [100.0, 200.0, 300.0],
                )
            )
        return tsdb

    def test_extract_job_series_window(self, idx):
        tsdb = self.fill_tsdb()
        per_node = idx.extract_job_series(tsdb, 1, "node.power_w")
        assert set(per_node) == {"n0", "n1"}
        # job 1 ran [0, 100): samples at 0..90
        assert len(per_node["n0"]) == 10

    def test_condense_sum(self, idx):
        tsdb = self.fill_tsdb()
        series = idx.condense_job_series(
            tsdb, 1, "node.power_w", agg="sum", step=10.0
        )
        assert (series.values == 300.0).all()  # 100 + 200 per bucket
        assert series.components[0] == "job.1"

    def test_condense_mean(self, idx):
        tsdb = self.fill_tsdb()
        series = idx.condense_job_series(
            tsdb, 1, "node.power_w", agg="mean", step=10.0
        )
        assert (series.values == 150.0).all()
