"""Unit tests for the relational store."""

import pytest

from repro.core.metric import SeriesBatch
from repro.storage.sqlstore import SqlStore, TestResultRow


@pytest.fixture()
def db():
    store = SqlStore()
    yield store
    store.close()


class TestJobs:
    def test_upsert_and_fetch(self, db):
        db.upsert_job(1, "lammps", 64, 0.0, "pending")
        row = db.job(1)
        assert row.app == "lammps" and row.state == "pending"
        assert row.nodes == ()

    def test_upsert_updates_state(self, db):
        db.upsert_job(1, "lammps", 64, 0.0, "pending")
        db.upsert_job(1, "lammps", 64, 0.0, "running",
                      start_time=10.0, nodes=["n0", "n1"])
        row = db.job(1)
        assert row.state == "running"
        assert row.start_time == 10.0
        assert row.nodes == ("n0", "n1")

    def test_missing_job_none(self, db):
        assert db.job(99) is None

    def test_filter_by_state_and_app(self, db):
        db.upsert_job(1, "a", 1, 0.0, "running")
        db.upsert_job(2, "b", 1, 0.0, "completed")
        db.upsert_job(3, "a", 1, 0.0, "completed")
        assert [j.job_id for j in db.jobs(state="completed")] == [2, 3]
        assert [j.job_id for j in db.jobs(app="a")] == [1, 3]

    def test_jobs_running_at(self, db):
        db.upsert_job(1, "a", 1, 0.0, "completed",
                      start_time=10.0, end_time=20.0)
        db.upsert_job(2, "a", 1, 0.0, "running", start_time=15.0)
        at_12 = [j.job_id for j in db.jobs_running_at(12.0)]
        at_30 = [j.job_id for j in db.jobs_running_at(30.0)]
        assert at_12 == [1]
        assert at_30 == [2]


class TestNodeState:
    def test_unhealthy_window(self, db):
        db.insert_node_state(0.0, "n0", True, True)
        db.insert_node_state(10.0, "n1", True, False)
        db.insert_node_state(20.0, "n2", False, False)
        assert db.unhealthy_nodes_at(0.0, 15.0) == ["n1"]
        assert db.unhealthy_nodes_at(0.0, 30.0) == ["n1", "n2"]


class TestTestResults:
    def row(self, t, passed=True, test="dgemm", value=1.0):
        return TestResultRow(t, "nightly", test, "system", passed, value, "")

    def test_insert_and_filter(self, db):
        db.insert_test_result(self.row(0.0))
        db.insert_test_result(self.row(10.0, passed=False, value=0.2))
        db.insert_test_result(self.row(20.0, test="iorate"))
        fails = db.test_results(only_failures=True)
        assert len(fails) == 1 and fails[0].value == 0.2
        assert len(db.test_results(test="dgemm")) == 2
        assert len(db.test_results(t0=5.0, t1=15.0)) == 1


class TestSamples:
    def test_append_query_round_trip(self, db):
        b = SeriesBatch.for_component("m", "a", [0.0, 1.0, 2.0], [5, 6, 7])
        assert db.append(b) == 3
        out = db.query("m", "a", 0.5, 2.5)
        assert list(out.values) == [6.0, 7.0]

    def test_sample_count(self, db):
        db.append(SeriesBatch.sweep("m", 0.0, ["a", "b"], [1, 2]))
        assert db.sample_count() == 2

    def test_footprint_grows(self, db):
        before = db.footprint_bytes()
        for i in range(200):
            db.append(SeriesBatch.sweep("m", float(i),
                                        [f"c{j}" for j in range(20)],
                                        list(range(20))))
        db.commit()
        assert db.footprint_bytes() > before
