"""Unit + integration tests for the decompressed-chunk LRU cache."""

import numpy as np
import pytest

from repro.core.metric import SeriesBatch
from repro.storage.chunkcache import ChunkCache
from repro.storage.hierarchy import TieredStore
from repro.storage.sharded import ShardedTimeSeriesStore
from repro.storage.tsdb import TimeSeriesStore


def arrays(n, fill=1.0):
    return np.arange(n, dtype=np.float64), np.full(n, fill)


class TestChunkCacheUnit:
    def test_get_miss_then_hit(self):
        c = ChunkCache()
        assert c.get(1) is None
        t, v = arrays(8)
        c.put(1, t, v)
        got = c.get(1)
        assert got is not None and np.array_equal(got[0], t)
        s = c.stats()
        assert (s.hits, s.misses, s.entries) == (1, 1, 1)
        assert s.bytes == t.nbytes + v.nbytes
        assert s.hit_ratio == 0.5

    def test_lru_eviction_under_byte_bound(self):
        # each entry is 16 B/sample * 8 = 128 B; bound fits two entries
        c = ChunkCache(max_bytes=256)
        for cid in (1, 2):
            c.put(cid, *arrays(8))
        c.get(1)                       # make 2 the least-recently-used
        c.put(3, *arrays(8))
        assert c.get(2) is None        # evicted
        assert c.get(1) is not None
        assert c.get(3) is not None
        assert c.stats().evictions == 1
        assert c.resident_bytes <= 256

    def test_replacing_an_entry_does_not_leak_bytes(self):
        c = ChunkCache(max_bytes=1024)
        c.put(1, *arrays(8))
        c.put(1, *arrays(16))
        assert len(c) == 1
        assert c.resident_bytes == 16 * 16

    def test_oversized_entry_is_refused(self):
        c = ChunkCache(max_bytes=64)
        c.put(1, *arrays(64))
        assert len(c) == 0 and c.get(1) is None

    def test_zero_bytes_disables_caching(self):
        c = ChunkCache(max_bytes=0)
        c.put(1, *arrays(4))
        assert c.get(1) is None
        assert c.stats().evictions == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            ChunkCache(max_bytes=-1)

    def test_invalidate_counts_only_resident(self):
        c = ChunkCache()
        c.put(1, *arrays(4))
        c.put(2, *arrays(4))
        assert c.invalidate([1, 99]) == 1
        assert c.stats().invalidations == 1
        assert len(c) == 1

    def test_clear_preserves_lifetime_counters(self):
        c = ChunkCache()
        c.put(1, *arrays(4))
        c.get(1)
        c.clear()
        assert len(c) == 0 and c.resident_bytes == 0
        assert c.stats().hits == 1

    def test_empty_cache_hit_ratio_is_zero(self):
        assert ChunkCache().stats().hit_ratio == 0.0


def fill(store, n=64, metric="m", comp="a"):
    for i in range(n):
        store.append(SeriesBatch.sweep(metric, float(i), [comp], [float(i)]))
    store.flush()


class TestStoreIntegration:
    def test_repeated_reads_hit_the_cache(self):
        cache = ChunkCache()
        store = TimeSeriesStore(chunk_size=16, cache=cache)
        fill(store)
        store.query("m", "a")
        misses_after_cold = cache.stats().misses
        assert misses_after_cold == 4
        store.query("m", "a")
        s = cache.stats()
        assert s.misses == misses_after_cold
        assert s.hits == 4

    def test_cached_and_uncached_reads_agree(self):
        cached = TimeSeriesStore(chunk_size=16, cache=ChunkCache())
        plain = TimeSeriesStore(chunk_size=16)
        fill(cached), fill(plain)
        cached.query("m", "a")          # populate
        a = cached.query("m", "a", 10.0, 50.0)
        b = plain.query("m", "a", 10.0, 50.0)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.values, b.values)

    def test_drop_series_invalidates(self):
        cache = ChunkCache()
        store = TimeSeriesStore(chunk_size=16, cache=cache)
        fill(store)
        store.query("m", "a")
        store.drop_series("m", "a")
        assert len(cache) == 0
        assert cache.stats().invalidations == 4

    def test_sharded_store_shares_one_cache(self):
        store = ShardedTimeSeriesStore(shards=4, chunk_size=16)
        for comp in ("a", "b", "c", "d"):
            fill(store, comp=comp)
        for comp in ("a", "b", "c", "d"):
            store.query("m", comp)
        assert store.cache_stats().misses == 16
        for comp in ("a", "b", "c", "d"):
            store.query("m", comp)
        s = store.cache_stats()
        assert s.hits == 16
        # every shard routed through the same instance
        assert all(sh.cache is store.cache for sh in store.shards)

    def test_tiered_store_exposes_hot_cache_and_archive_invalidates(self):
        hot = TimeSeriesStore(chunk_size=16, cache=ChunkCache())
        tiered = TieredStore(hot=hot)
        fill(hot)
        tiered.query("m", "a")
        resident_before = len(hot.cache)
        assert resident_before == 4
        tiered.archive_before(32.0)
        assert len(hot.cache) == 2       # archived chunks dropped
        assert tiered.cache_stats().invalidations == 2
        # transparent reload still returns the full, correct series
        out = tiered.query("m", "a", 0.0, 64.0)
        assert list(out.values) == [float(i) for i in range(64)]
