"""Unit tests: rollup-pyramid primitives and their maintenance hooks."""

import numpy as np
import pytest

from repro.core.metric import MetricKey, SeriesBatch
from repro.serve.frontend import QueryFrontend
from repro.storage.rollup import (
    DEFAULT_LEVELS,
    SeriesPyramid,
    bucket_anchor,
    choose_level,
    fold_partials,
    reduce_partials,
)
from repro.storage.tsdb import TimeSeriesStore


class TestBucketAnchor:
    def test_aligned_is_identity(self):
        assert bucket_anchor(120.0, 60.0) == 120.0

    def test_floors_to_grid(self):
        assert bucket_anchor(123.456, 60.0) == 120.0
        assert bucket_anchor(59.999, 60.0) == 0.0

    def test_negative_floors_down(self):
        assert bucket_anchor(-0.5, 60.0) == -60.0
        assert bucket_anchor(-60.0, 60.0) == -60.0


class TestFoldReduce:
    def test_fold_matches_naive_oracle(self):
        rng = np.random.default_rng(3)
        t = np.sort(rng.uniform(0.0, 500.0, 200)).round(3)
        v = rng.normal(size=200)
        b, cnt, vsum, vmin, vmax, t_last, v_last, seq = fold_partials(
            t, v, 0.0, 10.0)
        want_b = np.unique(np.floor(t / 10.0).astype(np.int64))
        assert np.array_equal(b, want_b)
        for i, wb in enumerate(want_b):
            mask = np.floor(t / 10.0).astype(np.int64) == wb
            assert cnt[i] == mask.sum()
            assert vmin[i] == v[mask].min()
            assert vmax[i] == v[mask].max()
            assert np.isclose(vsum[i], v[mask].sum())
            assert t_last[i] == t[mask][-1]
            assert v_last[i] == v[mask][-1]
        assert seq[-1] == len(t) - 1

    def test_reduce_merges_split_pieces_exactly(self):
        t = np.arange(0.0, 100.0, 1.0)
        v = np.arange(100.0)
        whole = fold_partials(t, v, 0.0, 10.0)
        split = [fold_partials(t[:37], v[:37], 0.0, 10.0),
                 fold_partials(t[37:], v[37:], 0.0, 10.0, seq_base=37)]
        for agg in ("mean", "sum", "min", "max", "last", "count"):
            wt, wv = reduce_partials([whole], 0.0, 10.0, agg)
            gt, gv = reduce_partials(split, 0.0, 10.0, agg)
            assert np.array_equal(gt, wt)
            assert np.array_equal(gv, wv)

    def test_last_winner_uses_sequence_on_time_ties(self):
        # two pieces, same bucket, same timestamp: the higher sequence
        # (later-sealed sample) must win — stable time-sort semantics
        a = fold_partials(np.array([5.0]), np.array([1.0]), 0.0, 10.0,
                          seq_base=0)
        b = fold_partials(np.array([5.0]), np.array([2.0]), 0.0, 10.0,
                          seq_base=1)
        _, gv = reduce_partials([a, b], 0.0, 10.0, "last")
        assert gv[0] == 2.0
        _, gv = reduce_partials([b, a], 0.0, 10.0, "last")
        assert gv[0] == 2.0


class TestChooseLevel:
    def test_picks_coarsest_sufficient(self):
        assert choose_level(DEFAULT_LEVELS, 3600.0, 0.0) == 3600.0
        assert choose_level(DEFAULT_LEVELS, 600.0, 0.0) == 60.0
        assert choose_level(DEFAULT_LEVELS, 30.0, 0.0) == 10.0

    def test_rejects_indivisible_step(self):
        assert choose_level(DEFAULT_LEVELS, 7.0, 0.0) is None
        assert choose_level(DEFAULT_LEVELS, 77.0, 0.0) is None

    def test_anchor_must_sit_on_level_grid(self):
        assert choose_level(DEFAULT_LEVELS, 60.0, 30.0) == 10.0
        assert choose_level(DEFAULT_LEVELS, 60.0, 5.0) is None

    def test_magnitude_guard(self):
        assert choose_level(DEFAULT_LEVELS, 60.0, 2.0**60) is None


class TestPyramidMaintenance:
    def test_incremental_equals_batch_fold(self):
        rng = np.random.default_rng(9)
        t = np.sort(rng.uniform(0.0, 2000.0, 300)).round(3)
        # integer-valued so partial sums are associativity-independent
        # and the vsum column is held bit-exact, not approximately
        v = rng.integers(-1000, 1000, 300).astype(np.float64)
        inc = SeriesPyramid(DEFAULT_LEVELS)
        for lo in range(0, 300, 64):
            inc.add_sealed(t[lo:lo + 64], v[lo:lo + 64], lo)
        batch = SeriesPyramid(DEFAULT_LEVELS)
        batch.add_sealed(t, v, 0)
        for level in DEFAULT_LEVELS:
            got = inc.level_columns(level)
            want = batch.level_columns(level)
            for g, w in zip(got, want):
                assert np.array_equal(g, w)

    @pytest.mark.parametrize("mutate", ["evict", "import"])
    def test_rebuild_keeps_frontend_exact(self, mutate):
        store = TimeSeriesStore(chunk_size=32,
                                pyramid_levels=DEFAULT_LEVELS)
        rng = np.random.default_rng(11)
        t = np.sort(rng.uniform(0.0, 3600.0, 256)).round(3)
        store.append(SeriesBatch.for_component(
            "m.x", "a", t, rng.normal(size=256)))
        store.flush()
        key = MetricKey("m.x", "a")
        chunks, spans = store.export_series(key)
        if mutate == "evict":
            assert store.evict_chunks_before(key, 1800.0) > 0
        else:
            store.evict_chunks_before(key, 1800.0)
            old = [(c, s) for c, s in zip(chunks, spans)
                   if s[1] < 1800.0]
            store.import_chunks(key, [c for c, _ in old],
                                [s for _, s in old])
        fe = QueryFrontend(store)
        got = fe.downsample("m.x", "a", 0.0, 3600.0, 60.0, "max")
        want = store.downsample("m.x", "a", 0.0, 3600.0, 60.0, "max",
                                prune=False)
        assert np.array_equal(got.times, want.times)
        assert np.array_equal(got.values, want.values, equal_nan=True)
        assert fe.stats().pyramid_answers == 1
