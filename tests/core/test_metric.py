"""Unit tests for the core metric datatypes."""

import math

import numpy as np
import pytest

from repro.core.metric import (
    MetricKey,
    Sample,
    SeriesBatch,
    merge_batches,
    samples_to_batches,
)


class TestSample:
    def test_key_round_trip(self):
        s = Sample("node.power_w", "c0-0c0s0n0", 10.0, 250.0)
        assert s.key == MetricKey("node.power_w", "c0-0c0s0n0")

    def test_finite_detection(self):
        assert Sample("m", "c", 0.0, 1.0).is_finite()
        assert not Sample("m", "c", 0.0, float("nan")).is_finite()
        assert not Sample("m", "c", 0.0, float("inf")).is_finite()


class TestSeriesBatch:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            SeriesBatch("m", ["a", "b"], [1.0], [2.0])

    def test_sweep_constructor(self):
        b = SeriesBatch.sweep("m", 60.0, ["a", "b", "c"], [1, 2, 3])
        assert len(b) == 3
        assert (b.times == 60.0).all()
        assert b.component_values() == {"a": 1.0, "b": 2.0, "c": 3.0}

    def test_for_component_constructor(self):
        b = SeriesBatch.for_component("m", "n1", [0, 60, 120], [1, 2, 3])
        assert all(c == "n1" for c in b.components)

    def test_iteration_yields_samples(self):
        b = SeriesBatch.sweep("m", 5.0, ["x"], [9.0])
        (s,) = list(b)
        assert s == Sample("m", "x", 5.0, 9.0)

    def test_window_filter_half_open(self):
        b = SeriesBatch.for_component("m", "n", [0.0, 10.0, 20.0], [1, 2, 3])
        w = b.in_window(0.0, 20.0)
        assert list(w.values) == [1.0, 2.0]

    def test_filter_components(self):
        b = SeriesBatch.sweep("m", 0.0, ["a", "b", "a"], [1, 2, 3])
        f = b.filter_components(["a"])
        assert list(f.values) == [1.0, 3.0]

    def test_finite_drops_nan(self):
        b = SeriesBatch.sweep("m", 0.0, ["a", "b"], [np.nan, 2.0])
        assert list(b.finite().values) == [2.0]

    def test_total_ignores_nan(self):
        b = SeriesBatch.sweep("m", 0.0, ["a", "b"], [np.nan, 2.0])
        assert b.total() == 2.0

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(SeriesBatch.empty("m").mean())

    def test_empty_total_is_zero(self):
        assert SeriesBatch.empty("m").total() == 0.0


class TestMergeBatches:
    def test_merge_sorts_by_time(self):
        b1 = SeriesBatch.for_component("m", "a", [30.0], [3.0])
        b2 = SeriesBatch.for_component("m", "b", [10.0], [1.0])
        merged = merge_batches([b1, b2])
        assert list(merged.times) == [10.0, 30.0]
        assert list(merged.values) == [1.0, 3.0]

    def test_merge_rejects_mixed_metrics(self):
        b1 = SeriesBatch.for_component("m1", "a", [0.0], [1.0])
        b2 = SeriesBatch.for_component("m2", "a", [0.0], [1.0])
        with pytest.raises(ValueError, match="cannot merge"):
            merge_batches([b1, b2])

    def test_merge_skips_empty(self):
        b1 = SeriesBatch.empty("m")
        b2 = SeriesBatch.for_component("m", "a", [0.0], [1.0])
        assert len(merge_batches([b1, b2])) == 1

    def test_merge_all_empty_raises(self):
        with pytest.raises(ValueError):
            merge_batches([SeriesBatch.empty("m")])


class TestSamplesToBatches:
    def test_grouping_by_metric(self):
        samples = [
            Sample("a", "n1", 0.0, 1.0),
            Sample("b", "n1", 0.0, 2.0),
            Sample("a", "n2", 0.0, 3.0),
        ]
        batches = {b.metric: b for b in samples_to_batches(samples)}
        assert set(batches) == {"a", "b"}
        assert len(batches["a"]) == 2
        assert len(batches["b"]) == 1
