"""Unit tests for the metric schema registry."""

import pytest

from repro.core.registry import (
    MetricClass,
    MetricRegistry,
    MetricSpec,
    default_registry,
)


def spec(name="x.y", **kw):
    defaults = dict(
        unit="W",
        klass=MetricClass.GAUGE,
        level="node",
        meaning="test metric",
    )
    defaults.update(kw)
    return MetricSpec(name, **defaults)


class TestMetricRegistry:
    def test_register_and_get(self):
        reg = MetricRegistry()
        reg.register(spec())
        assert reg.get("x.y").unit == "W"

    def test_unknown_metric_raises_with_guidance(self):
        reg = MetricRegistry()
        with pytest.raises(KeyError, match="documented meaning"):
            reg.get("nope")

    def test_idempotent_reregistration(self):
        reg = MetricRegistry()
        reg.register(spec())
        reg.register(spec())  # identical: fine
        assert len(reg) == 1

    def test_conflicting_reregistration_rejected(self):
        reg = MetricRegistry()
        reg.register(spec())
        with pytest.raises(ValueError, match="different spec"):
            reg.register(spec(unit="kW"))

    def test_contains_and_names(self):
        reg = MetricRegistry()
        reg.register(spec("b.b"))
        reg.register(spec("a.a"))
        assert "a.a" in reg and "c.c" not in reg
        assert reg.names() == ["a.a", "b.b"]

    def test_at_level(self):
        reg = MetricRegistry()
        reg.register(spec("n.one", level="node"))
        reg.register(spec("l.one", level="link"))
        assert [s.name for s in reg.at_level("link")] == ["l.one"]

    def test_derived_flag(self):
        s = spec(derivation="sum(x)")
        assert s.is_derived
        assert not spec().is_derived


class TestDefaultRegistry:
    def test_every_paper_metric_present(self):
        reg = default_registry()
        for name in [
            "node.power_w",
            "link.stall_ratio",
            "link.ber",
            "node.inject_bw_frac",
            "fs.read_bps",
            "probe.io_latency_s",
            "probe.md_latency_s",
            "queue.backlog_nodeh",
            "cabinet.power_w",
            "system.power_w",
            "env.corrosion_rate",
            "bench.fom",
            "health.pass_frac",
        ]:
            assert name in reg, name

    def test_every_metric_has_meaning(self):
        for s in default_registry():
            assert s.meaning, s.name
            assert s.unit, s.name

    def test_derived_metrics_document_their_formula(self):
        reg = default_registry()
        assert reg.get("link.stall_ratio").is_derived
        assert reg.get("system.power_w").is_derived

    def test_document_renders_all_rows(self):
        reg = default_registry()
        doc = reg.document()
        assert len(doc.splitlines()) == len(reg) + 1  # header + one per metric
