"""Supervised-lifecycle unit tests: breaker, backoff, supervisor."""

import pytest

from repro.core.lifecycle import (
    BackoffSchedule,
    CircuitBreaker,
    Health,
    Supervised,
    Supervisor,
    Transition,
)


class TestHealth:
    def test_codes_are_ordered_by_badness(self):
        assert Health.OK.code == 0
        assert Health.DEGRADED.code == 1
        assert Health.FAILED.code == 2


class TestBackoffSchedule:
    def test_exponential_and_capped(self):
        b = BackoffSchedule(base_s=60.0, factor=2.0, max_s=3600.0)
        assert b.delay(0) == 60.0
        assert b.delay(1) == 120.0
        assert b.delay(2) == 240.0
        assert b.delay(10) == 3600.0     # capped

    def test_deterministic_no_jitter(self):
        b = BackoffSchedule()
        assert all(b.delay(k) == b.delay(k) for k in range(8))

    def test_negative_trips_rejected(self):
        with pytest.raises(ValueError):
            BackoffSchedule().delay(-1)


class TestCircuitBreaker:
    def test_trips_after_streak(self):
        br = CircuitBreaker(trip_after=3)
        br.record_failure(0.0)
        br.record_failure(10.0)
        assert br.state == br.CLOSED
        br.record_failure(20.0)
        assert br.state == br.OPEN
        assert br.retry_at == 20.0 + br.backoff.delay(0)

    def test_success_resets_streak(self):
        br = CircuitBreaker(trip_after=3)
        br.record_failure(0.0)
        br.record_failure(10.0)
        br.record_success(20.0)
        br.record_failure(30.0)
        br.record_failure(40.0)
        assert br.state == br.CLOSED     # streak never reached 3

    def test_half_open_probe_closes_on_success(self):
        br = CircuitBreaker(trip_after=1,
                            backoff=BackoffSchedule(base_s=100.0))
        br.record_failure(0.0)
        assert br.state == br.OPEN
        assert not br.allow(50.0)        # still quarantined
        assert br.allow(100.0)           # backoff elapsed: one probe
        assert br.state == br.HALF_OPEN
        br.record_success(100.0)
        assert br.state == br.CLOSED
        assert br.allow(100.0)

    def test_failed_probe_reopens_with_longer_backoff(self):
        br = CircuitBreaker(trip_after=1,
                            backoff=BackoffSchedule(base_s=100.0,
                                                    factor=2.0))
        br.record_failure(0.0)           # trip 0: retry at 100
        assert br.allow(100.0)
        br.record_failure(100.0)         # probe fails: trip 1
        assert br.state == br.OPEN
        assert br.retry_at == 100.0 + 200.0
        assert not br.allow(250.0)
        assert br.allow(300.0)

    def test_trip_after_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(trip_after=0)


class TestSupervisorCallDriven:
    def test_healthy_component_runs_free(self):
        sup = Supervisor()
        for t in range(5):
            assert sup.should_run("collector:x", float(t))
            sup.record("collector:x", True, float(t))
        assert sup.health("collector:x") is Health.OK
        assert sup.transitions == []     # no churn on the happy path

    def test_failure_streak_degrades_then_quarantines(self):
        sup = Supervisor(trip_after=3)
        for t in (0.0, 10.0, 20.0):
            sup.record("collector:x", False, t, reason="boom")
        assert sup.health("collector:x") is Health.FAILED
        assert not sup.should_run("collector:x", 25.0)
        states = [(tr.old, tr.new) for tr in sup.transitions]
        assert states == [(Health.OK, Health.DEGRADED),
                          (Health.DEGRADED, Health.FAILED)]

    def test_half_open_probe_recovers_component(self):
        sup = Supervisor(trip_after=1,
                         backoff=BackoffSchedule(base_s=60.0))
        sup.record("collector:x", False, 0.0, reason="boom")
        assert not sup.should_run("collector:x", 30.0)
        assert sup.should_run("collector:x", 60.0)   # half-open probe
        sup.record("collector:x", True, 60.0)
        assert sup.health("collector:x") is Health.OK
        assert sup.should_run("collector:x", 61.0)

    def test_transition_describe_is_sec_matchable(self):
        tr = Transition(5.0, "collector:x", Health.OK, Health.FAILED,
                        "raised RuntimeError")
        assert tr.describe() == (
            "monitor component collector:x OK -> FAILED: "
            "raised RuntimeError"
        )


class TestSupervisorObservationDriven:
    def test_heal_hysteresis(self):
        sup = Supervisor(heal_after=2)
        sup.observe("transport", Health.DEGRADED, 0.0, reason="drops")
        assert sup.health("transport") is Health.DEGRADED
        sup.observe("transport", Health.OK, 10.0)
        assert sup.health("transport") is Health.DEGRADED  # 1 clean < 2
        sup.observe("transport", Health.OK, 20.0)
        assert sup.health("transport") is Health.OK

    def test_dirty_observation_resets_clean_streak(self):
        sup = Supervisor(heal_after=2)
        sup.observe("transport", Health.DEGRADED, 0.0)
        sup.observe("transport", Health.OK, 10.0)
        sup.observe("transport", Health.DEGRADED, 20.0)   # reset
        sup.observe("transport", Health.OK, 30.0)
        assert sup.health("transport") is Health.DEGRADED

    def test_explicit_fail_heal(self):
        sup = Supervisor()
        sup.fail("store:shard-1", 5.0, reason="outage")
        assert sup.health("store:shard-1") is Health.FAILED
        assert sup.worst() is Health.FAILED
        sup.heal("store:shard-1", 15.0, reason="recovered")
        assert sup.health("store:shard-1") is Health.OK
        assert sup.all_ok()


class TestSupervisorReporting:
    def test_report_and_timeline(self):
        sup = Supervisor(trip_after=2)
        sup.record("a", False, 0.0, reason="x")
        sup.record("a", False, 10.0, reason="x")
        sup.record("b", True, 10.0)
        rep = sup.report()
        assert set(rep) == {"a", "b"}
        assert rep["a"]["state"] == "failed"
        assert rep["a"]["quarantined"] == 1.0
        assert rep["b"]["state"] == "ok"
        tl = sup.timeline()
        assert "monitor component a OK -> DEGRADED" in tl
        assert "monitor component a DEGRADED -> FAILED" in tl

    def test_empty_timeline(self):
        assert Supervisor().timeline() == "(no health transitions)"

    def test_supervised_protocol_duck_typing(self):
        class Thing:
            def health(self):
                return Health.OK

            def heal(self):
                pass

            def fail(self, reason=""):
                pass

        assert isinstance(Thing(), Supervised)
