"""Unit tests for simulation time and clock drift."""

import pytest

from repro.core.clock import DriftingClock, DriftModel, SimClock


class TestSimClock:
    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(5.0)
        c.advance(2.5)
        assert c.now == 7.5

    def test_non_positive_advance_rejected(self):
        c = SimClock()
        with pytest.raises(ValueError):
            c.advance(0.0)
        with pytest.raises(ValueError):
            c.advance(-1.0)

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0


class TestDriftingClock:
    def test_zero_drift_is_identity(self):
        c = DriftingClock()
        assert c.local_time(1234.5) == 1234.5

    def test_rate_accumulates_linearly(self):
        c = DriftingClock(rate_ppm=100.0)  # gains 100 us per second
        assert c.error_at(10_000.0) == pytest.approx(1.0)

    def test_offset_applies_immediately(self):
        c = DriftingClock(offset=0.25)
        assert c.error_at(0.0) == pytest.approx(0.25)

    def test_sync_collapses_offset_not_rate(self):
        c = DriftingClock(rate_ppm=50.0, offset=1.0)
        c.sync(1000.0)
        assert c.error_at(1000.0) == pytest.approx(0.0)
        # rate keeps accumulating from the sync epoch
        assert c.error_at(1000.0 + 20_000.0) == pytest.approx(1.0)


class TestDriftModel:
    def test_deterministic_with_seed(self):
        a = DriftModel(seed=42).make_clock()
        b = DriftModel(seed=42).make_clock()
        assert a.rate_ppm == b.rate_ppm
        assert a.offset == b.offset

    def test_population_spread(self):
        clocks = DriftModel(rate_sigma_ppm=20, seed=1).make_clocks(200)
        rates = [c.rate_ppm for c in clocks]
        assert min(rates) < -5 and max(rates) > 5  # genuine spread

    def test_offsets_bounded(self):
        model = DriftModel(initial_offset_s=0.05, seed=3)
        for c in model.make_clocks(100):
            assert abs(c.offset) <= 0.05
