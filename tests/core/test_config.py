"""Unit tests for the declarative monitoring configuration."""

import json

import pytest

from repro.cluster import Machine, build_dragonfly
from repro.core.config import CollectorConfig, MonitoringConfig


@pytest.fixture()
def machine():
    return Machine(build_dragonfly(groups=2, chassis_per_group=3,
                                   blades_per_chassis=4), seed=1)


class TestCollectorConfig:
    def test_unknown_collector_rejected(self):
        with pytest.raises(ValueError, match="unknown collector"):
            CollectorConfig("spy_daemon")

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            CollectorConfig("sedc", interval_s=0.0)


class TestSerialization:
    def test_json_round_trip(self):
        cfg = MonitoringConfig.default()
        text = json.dumps(cfg.to_dict())
        back = MonitoringConfig.from_dict(json.loads(text))
        assert back.to_dict() == cfg.to_dict()

    def test_presets_differ(self):
        full = MonitoringConfig.default()
        small = MonitoringConfig.minimal()
        assert len(full.collectors) > len(small.collectors)
        assert not small.health_gate


class TestBuild:
    def test_default_builds_full_pipeline(self, machine):
        pipeline = MonitoringConfig.default().build(machine)
        names = {c.name for c in pipeline.scheduler.collectors}
        assert "node_counters" in names
        assert "benchmark_suite" in names
        assert machine.scheduler.health_gate is not None

    def test_minimal_pipeline_runs(self, machine):
        pipeline = MonitoringConfig.minimal().build(machine)
        pipeline.run(duration_s=180.0, dt=10.0)
        assert pipeline.tsdb.stats().samples > 0
        assert machine.scheduler.health_gate is None

    def test_disabled_collectors_skipped(self, machine):
        cfg = MonitoringConfig(
            collectors=[
                CollectorConfig("sedc", 60.0),
                CollectorConfig("node_health", 600.0, enabled=False),
            ],
            health_gate=False,
        )
        pipeline = cfg.build(machine)
        names = {c.name for c in pipeline.scheduler.collectors}
        assert names == {"sedc"}

    def test_intervals_applied(self, machine):
        cfg = MonitoringConfig(
            collectors=[CollectorConfig("sedc", 120.0)],
            health_gate=False,
        )
        pipeline = cfg.build(machine)
        (c,) = pipeline.scheduler.collectors
        assert c.interval_s == 120.0

    def test_tick_and_renotify_applied(self, machine):
        cfg = MonitoringConfig(tick_s=5.0, alert_renotify_s=60.0,
                               health_gate=False)
        pipeline = cfg.build(machine)
        assert pipeline.tick_s == 5.0
        assert pipeline.alerts.renotify_s == 60.0
