"""Thread-safety of the supervised lifecycle under concurrent planes.

The parallel runtime lets collector sweeps, shard ingest, and leaf
coalescing report outcomes from worker threads; the Supervisor and its
per-component CircuitBreakers take one lock per mutating entry point so
the counters stay exact and the transition timeline uncorrupted.  These
tests hammer those entry points from many threads and assert the exact
totals a serial run would produce.
"""

import threading

from repro.core.lifecycle import CircuitBreaker, Health, Supervisor


def _hammer(n_threads, fn):
    """Run ``fn(thread_index)`` on N threads, all released together."""
    start = threading.Barrier(n_threads)
    errors = []

    def run(i):
        start.wait()
        try:
            fn(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


class TestSupervisorConcurrency:
    N_THREADS = 8
    N_CALLS = 400

    def test_record_totals_are_exact(self):
        sup = Supervisor(trip_after=10 ** 9)   # never quarantine
        per_thread_failures = 5

        def work(i):
            for k in range(self.N_CALLS):
                ok = k >= per_thread_failures
                sup.record("plane", ok, now=float(k),
                           reason="" if ok else "injected")

        _hammer(self.N_THREADS, work)
        br = sup.components["plane"].breaker
        assert br.successes + br.failures == self.N_THREADS * self.N_CALLS
        assert br.failures == self.N_THREADS * per_thread_failures

    def test_concurrent_registration_is_single(self):
        sup = Supervisor()

        def work(i):
            for k in range(self.N_CALLS):
                sup.record(f"comp-{k % 7}", True, now=float(k))

        _hammer(self.N_THREADS, work)
        assert len(sup.components) == 7
        total = sum(r.breaker.successes for r in sup.components.values())
        assert total == self.N_THREADS * self.N_CALLS

    def test_observe_timeline_stays_consistent(self):
        sup = Supervisor(heal_after=1)

        def work(i):
            for k in range(self.N_CALLS):
                health = Health.DEGRADED if k % 2 else Health.OK
                sup.observe("store", health, now=float(k))

        _hammer(self.N_THREADS, work)
        # every transition recorded flips state; a torn timeline would
        # show two consecutive transitions to the same health
        states = [t.new for t in sup.transitions]
        assert all(a != b for a, b in zip(states, states[1:]))

    def test_fail_heal_from_many_threads(self):
        sup = Supervisor(heal_after=1)

        def work(i):
            for k in range(50):
                if i % 2:
                    sup.fail("shard-1", now=float(k), reason="outage")
                else:
                    sup.heal("shard-1", now=float(k))

        _hammer(self.N_THREADS, work)
        assert sup.health("shard-1") in (Health.OK, Health.FAILED)
        states = [t.new for t in sup.transitions]
        assert all(a != b for a, b in zip(states, states[1:]))


class TestCircuitBreakerConcurrency:
    def test_counter_totals_are_exact(self):
        br = CircuitBreaker(trip_after=10 ** 9)

        def work(i):
            for k in range(500):
                if k % 10 == 0:
                    br.record_failure(float(k))
                else:
                    br.record_success(float(k))

        _hammer(8, work)
        assert br.successes + br.failures == 8 * 500
        assert br.failures == 8 * 50

    def test_trip_is_not_torn(self):
        # all threads slam failures; the breaker must end OPEN with a
        # coherent (streak, trips) pair, never a half-written state
        br = CircuitBreaker(trip_after=3)

        def work(i):
            for k in range(200):
                br.record_failure(1000.0)

        _hammer(8, work)
        assert br.state == CircuitBreaker.OPEN
        assert br.failures == 8 * 200
        assert br.trips >= 1

    def test_half_open_admits_probes_single_threadedly(self):
        br = CircuitBreaker(trip_after=1)
        br.record_failure(0.0)          # trip; retry_at = backoff step
        assert br.state == CircuitBreaker.OPEN
        now = br.retry_at + 1.0
        admitted = []
        lock = threading.Lock()

        def work(i):
            if br.allow(now):
                with lock:
                    admitted.append(i)

        _hammer(8, work)
        # every admit happened in HALF_OPEN (single transition), and the
        # probe outcome decides the state exactly once
        assert br.state == CircuitBreaker.HALF_OPEN
        assert admitted, "backoff elapsed: at least one probe admitted"
        br.record_failure(now)
        assert br.state == CircuitBreaker.OPEN
        assert br.retry_at > now
