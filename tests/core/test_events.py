"""Unit tests for event datatypes."""

from repro.core.events import Event, EventKind, Severity


class TestSeverity:
    def test_ordering(self):
        assert Severity.DEBUG < Severity.WARNING < Severity.CRITICAL

    def test_full_syslog_ladder(self):
        assert [s.value for s in Severity] == list(range(8))


class TestEvent:
    def make(self, **kw):
        defaults = dict(
            time=12.5,
            component="c0-0c0s0n1",
            kind=EventKind.CONSOLE,
            severity=Severity.ERROR,
            message="oops",
        )
        defaults.update(kw)
        return Event(**defaults)

    def test_syslog_line_contains_all_parts(self):
        line = self.make().syslog_line()
        assert "12.500" in line
        assert "c0-0c0s0n1" in line
        assert "console.error" in line
        assert "oops" in line

    def test_with_time_preserves_payload(self):
        ev = self.make(fields={"a": 1})
        moved = ev.with_time(99.0)
        assert moved.time == 99.0
        assert moved.fields == {"a": 1}
        assert moved.message == ev.message
        assert ev.time == 12.5  # original untouched

    def test_default_fields_empty(self):
        assert self.make().fields == {}

    def test_kinds_cover_paper_sources(self):
        # the ERD multiplexes at least console, hwerr and env streams
        for kind in ("console", "hwerr", "env", "network", "scheduler"):
            assert EventKind(kind)
