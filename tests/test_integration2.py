"""Second round of integration tests: tiering, log mining, long-term
analysis over the live pipeline."""

import numpy as np
import pytest

from repro.analysis.logpatterns import (
    KnownPatternScanner,
    TemplateTracker,
    template_of,
)
from repro.cluster import (
    HungNode,
    LinkFailure,
    Machine,
    PackedPlacement,
    ServiceDeath,
    build_dragonfly,
)
from repro.cluster.workload import APP_LIBRARY, Job, JobGenerator
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.storage.hierarchy import TieredStore
from repro.storage.tsdb import TimeSeriesStore


def faulty_pipeline(seed=5, hours=1.0):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=300,
                                   max_nodes=24, seed=seed),
        seed=seed,
    )
    machine.faults.add(HungNode(start=600.0, duration=900.0,
                                node=topo.nodes[3]))
    machine.faults.add(LinkFailure(start=1500.0, duration=600.0,
                                   link_index=2))
    machine.faults.add(ServiceDeath(start=2400.0, duration=600.0,
                                    node=topo.nodes[9], service="lnet"))
    pipeline = MonitoringPipeline(
        machine, collectors=default_collectors(machine, seed=seed)
    )
    pipeline.run(hours=hours, dt=10.0)
    return pipeline


class TestTieredStorageInPipeline:
    def test_archive_mid_run_queries_transparent(self):
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, placement=PackedPlacement(), seed=2)
        job = Job(APP_LIBRARY["qmc"], 16, 0.0, seed=2)
        machine.scheduler.submit(job, 0.0)
        pipeline = MonitoringPipeline(
            machine,
            collectors=default_collectors(machine, seed=2),
        )
        # swap in a tiered store with small chunks (so sealed chunks
        # age out within the test's short horizon) before data flows
        tiered = TieredStore(TimeSeriesStore(chunk_size=8))
        pipeline.tsdb = tiered

        pipeline.run(duration_s=1800.0, dt=10.0)
        moved = tiered.archive_before(900.0)
        assert moved > 0
        pipeline.run(duration_s=600.0, dt=10.0)

        node = topo.nodes[0]
        # the long-term query spans archived + live data transparently
        full = tiered.query("node.power_w", node, 0.0, machine.now)
        assert full.times.min() < 900.0 < full.times.max()
        assert tiered.reloads >= 1
        # samples are continuous: one per collection interval
        assert len(full) == len(np.unique(full.times))

    def test_cold_footprint_smaller_than_hot(self, tmp_path):
        tiered = TieredStore(TimeSeriesStore(chunk_size=32),
                             cold_dir=tmp_path)
        rng = np.random.default_rng(0)
        from repro.core.metric import SeriesBatch
        for t in range(400):
            tiered.append(SeriesBatch.sweep(
                "m", t * 60.0, [f"n{i}" for i in range(8)],
                rng.normal(250, 5, 8)))
        hot_before = tiered.hot.stats().compressed_bytes
        tiered.archive_before(300 * 60.0)
        assert tiered.cold_bytes() < hot_before


class TestLogMiningOverPipeline:
    def test_known_patterns_catch_injected_faults(self):
        p = faulty_pipeline()
        events = [p.logs.get(i) for i in range(len(p.logs))]
        hits = KnownPatternScanner().scan(events)
        assert "soft_lockup" in hits
        assert "link_failed" in hits
        assert "service_exit" in hits

    def test_novel_template_surfacing(self):
        p = faulty_pipeline()
        tracker = TemplateTracker(bucket_s=300.0)
        # day-one learning pass over the healthy prefix
        events = sorted(
            (p.logs.get(i) for i in range(len(p.logs))),
            key=lambda e: e.time,
        )
        healthy = [e for e in events if e.time < 500.0]
        faulty = [e for e in events if e.time >= 500.0]
        tracker.observe(healthy)
        novel = tracker.observe(faulty)
        # the fault signatures were never seen in the healthy prefix
        assert any("lockup" in t for t in novel)
        assert any("lcb lanes down" in t.lower() or "failed" in t
                   for t in novel)

    def test_template_collapses_variable_fields(self):
        p = faulty_pipeline()
        msgs = [p.logs.get(i).message for i in range(len(p.logs))
                if "started on" in p.logs.get(i).message]
        assert len(msgs) >= 2
        # job ids and node counts are masked; the app name (a stable
        # categorical field) survives — one template per application
        apps = {m.split("(")[1].split(")")[0] for m in msgs}
        assert len({template_of(m) for m in msgs}) == len(apps)


class TestLongTermTrend:
    def test_gpu_health_trend_over_archived_history(self, tmp_path):
        """Trend analysis across a reloaded archive — the 'revisiting
        historical data in conjunction with current data' requirement."""
        from repro.analysis.trend import fit_trend
        from repro.core.metric import SeriesBatch

        tiered = TieredStore(TimeSeriesStore(chunk_size=8),
                             cold_dir=tmp_path)
        # a year of weekly samples of declining GPU health
        for week in range(52):
            t = week * 7 * 86400.0
            health = 1.0 - 0.01 * week
            tiered.append(SeriesBatch.sweep("gpu.health", t,
                                            ["n0g0"], [health]))
        tiered.archive_before(26 * 7 * 86400.0)
        assert tiered.cold_spans("gpu.health", "n0g0")
        series = tiered.query("gpu.health", "n0g0", 0.0, np.inf)
        assert len(series) == 52
        fit = fit_trend(series)
        per_week = fit.slope * 7 * 86400.0
        assert per_week == pytest.approx(-0.01, rel=1e-6)
