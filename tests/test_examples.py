"""Smoke tests: every shipped example runs to completion.

The examples double as executable documentation of the paper's site
stories; each carries its own assertions (detection found the injected
fault, invariants held), so "exits 0" is a meaningful end-to-end check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_inventory():
    """Every site story has its example (and the quickstart exists)."""
    assert "quickstart.py" in EXAMPLES
    covered_sites = {
        name.split("_")[1]
        for name in EXAMPLES
        if name.startswith("site_")
    }
    assert covered_sites >= {
        "ncsa", "kaust", "cscs", "snl", "hlrs", "alcf", "ornl", "csc"
    }


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{example} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{example} produced no output"
