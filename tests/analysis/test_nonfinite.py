"""Non-finite telemetry must never turn into phantom anomalies.

Real collectors emit NaN (sensor not ready), +/-inf (division by a
zero dt upstream), and occasionally whole sweeps of NaN (a cabinet
controller rebooting).  Section III-C's lesson is that the monitoring
system has to survive its own inputs: these tests pin down that the
analysis plane neither emits spurious detections for non-finite
samples nor lets them poison running state.
"""

import numpy as np

from repro.analysis.anomaly import (
    CusumDetector,
    EwmaDetector,
    iqr_outliers,
    sweep_outliers,
)
from repro.analysis.stats import mad, robust_zscores
from repro.analysis.streaming import (
    StreamingOutlierDetector,
    StreamingRateWatch,
    StreamingStats,
)
from repro.core.metric import SeriesBatch

NAN, INF = float("nan"), float("inf")


def batch(values, metric="m", comp=None, times=None):
    v = np.asarray(values, dtype=float)
    n = len(v)
    comps = np.array([comp or "c"] * n if isinstance(comp or "c", str)
                     else comp, dtype=object)
    t = np.arange(float(n)) if times is None else np.asarray(times, float)
    return SeriesBatch(metric, comps, t, v)


class TestRobustStats:
    def test_mad_ignores_nonfinite(self):
        assert mad([1.0, 2.0, NAN, 3.0, INF, -INF]) == mad([1.0, 2.0, 3.0])

    def test_mad_all_nan_is_nan(self):
        assert np.isnan(mad([NAN, NAN, NAN]))

    def test_robust_zscores_all_nan_is_all_zero(self):
        z = robust_zscores(np.full(8, NAN))
        assert np.array_equal(z, np.zeros(8))

    def test_robust_zscores_finite_positions_unpoisoned(self):
        x = np.array([10.0, 11.0, NAN, 9.0, INF, 10.5, 30.0])
        z = robust_zscores(x)
        finite = np.isfinite(x)
        ref = robust_zscores(x[finite])
        assert np.allclose(z[finite], ref)
        # the genuine outlier still stands out
        assert abs(z[6]) > 3.0

    def test_iqr_never_flags_nan(self):
        v = np.array([1.0, 2.0, NAN, 3.0, 4.0, NAN, 100.0])
        flagged = iqr_outliers(v)
        assert not flagged[2] and not flagged[5]
        assert flagged[6]

    def test_iqr_all_nan_flags_nothing(self):
        assert not iqr_outliers(np.full(10, NAN)).any()

    def test_iqr_inf_does_not_widen_fences(self):
        base = np.array([10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 50.0])
        with_inf = np.concatenate([base, [INF, -INF]])
        # the finite outlier is still caught with infinities present
        assert iqr_outliers(with_inf)[6]


class TestSweepOutliers:
    def test_nonfinite_samples_never_detected(self):
        comps = np.array([f"n{i}" for i in range(12)], dtype=object)
        v = np.array([10.0, 11.0, 9.0, 10.5, 9.5, 10.2,
                      NAN, INF, -INF, 10.1, 9.9, 60.0])
        b = SeriesBatch.sweep("node.power_w", 0.0, comps, v)
        out = sweep_outliers(b, z_threshold=4.0)
        assert [d.component for d in out] == ["n11"]

    def test_all_nan_sweep_is_quiet(self):
        comps = np.array([f"n{i}" for i in range(8)], dtype=object)
        b = SeriesBatch.sweep("node.power_w", 0.0, comps, np.full(8, NAN))
        assert sweep_outliers(b, z_threshold=1.0) == []


class TestStreamingStateIsNotPoisoned:
    def test_welford_skips_nonfinite_samples(self):
        s = StreamingStats()
        s.observe(batch([1.0, INF, 2.0, NAN, 3.0, -INF]))
        m = s.get("m", "c")
        assert m.n == 3
        assert m.mean == 2.0
        assert m.minimum == 1.0 and m.maximum == 3.0
        assert np.isfinite(m.m2)

    def test_all_nan_registers_but_accumulates_nothing(self):
        s = StreamingStats()
        s.observe(batch([NAN, NAN, NAN]))
        m = s.get("m", "c")
        assert m is not None and m.n == 0 and m.m2 == 0.0
        # clean state: a later finite sample lands normally
        s.observe(batch([7.0]))
        m = s.get("m", "c")
        assert m.n == 1 and m.mean == 7.0

    def test_ratewatch_nan_emits_nothing_and_recovers(self):
        w = StreamingRateWatch("ctr", max_rate_per_s=0.1)
        w.observe(batch([0.0], metric="ctr", times=[0.0]))
        w.observe(batch([NAN], metric="ctr", times=[60.0]))
        w.observe(batch([INF], metric="ctr", times=[120.0]))
        assert w.drain() == []
        assert w.detections_total == 0
        # a real counter jump after the gap still fires
        w.observe(batch([1e9], metric="ctr", times=[180.0]))
        w.observe(batch([2e9], metric="ctr", times=[240.0]))
        assert any(d.component == "c" for d in w.drain())

    def test_outlier_detector_quiet_on_all_nan(self):
        det = StreamingOutlierDetector(("node.power_w",), z_threshold=3.0)
        comps = np.array([f"n{i}" for i in range(16)], dtype=object)
        det.observe(SeriesBatch.sweep("node.power_w", 0.0, comps,
                                      np.full(16, NAN)))
        assert det.drain() == []
        assert det.detections_total == 0


class TestSeriesDetectorsOnNonfinite:
    def test_ewma_all_nan_is_quiet(self):
        det = EwmaDetector(alpha=0.3, warmup=4)
        assert det.detect(batch(np.full(32, NAN))) == []

    def test_ewma_nan_laced_shift_no_nan_detection(self):
        v = np.r_[np.full(20, 10.0), [NAN], np.full(20, 10.0)]
        det = EwmaDetector(alpha=0.3, warmup=8)
        for d in det.detect(batch(v)):
            assert np.isfinite(d.score)

    def test_cusum_all_nan_is_quiet(self):
        det = CusumDetector(k=0.5, h=4.0, warmup=8)
        assert det.detect(batch(np.full(64, NAN))) == []

    def test_cusum_nan_resets_but_real_shift_still_trips(self):
        rng = np.random.default_rng(3)
        v = np.r_[rng.normal(0.0, 1.0, 40), [NAN],
                  rng.normal(8.0, 1.0, 40)]
        det = CusumDetector(k=0.5, h=4.0, warmup=16)
        out = det.detect(batch(v))
        assert len(out) >= 1
        assert all(np.isfinite(d.score) for d in out)
