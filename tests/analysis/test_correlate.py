"""Unit tests for event correlation and clock-drift sensitivity."""

import pytest

from repro.analysis.correlate import (
    cluster_events,
    link_failure_cascades,
    order_accuracy,
)
from repro.core.clock import DriftingClock
from repro.core.events import Event, EventKind, Severity


def ev(t, comp="n0", kind=EventKind.CONSOLE, msg="x", fields=None):
    return Event(t, comp, kind, Severity.INFO, msg, fields or {})


class TestClusterEvents:
    def test_empty(self):
        assert cluster_events([]) == []

    def test_two_incidents(self):
        events = [ev(0.0), ev(5.0), ev(500.0, comp="n1")]
        incidents = cluster_events(events, gap_s=30.0)
        assert len(incidents) == 2
        assert incidents[0].size == 2
        assert incidents[1].components == ("n1",)

    def test_chain_links_into_one(self):
        # each consecutive pair within gap even though ends are far apart
        events = [ev(i * 10.0) for i in range(10)]
        incidents = cluster_events(events, gap_s=15.0)
        assert len(incidents) == 1
        assert incidents[0].t_end - incidents[0].t_start == 90.0

    def test_unsorted_input_handled(self):
        events = [ev(100.0), ev(0.0), ev(103.0)]
        incidents = cluster_events(events, gap_s=10.0)
        assert [i.size for i in incidents] == [1, 2]


class TestOrderAccuracy:
    def make_pair(self, drift_rates, spacing_s=0.05, n=40):
        """True events on n components, restamped by drifting clocks."""
        clocks = [DriftingClock(rate_ppm=r, offset=o)
                  for r, o in drift_rates]
        true, stamped = [], []
        for i in range(n):
            comp = i % len(clocks)
            t = 1000.0 + i * spacing_s
            e = ev(t, comp=f"n{comp}")
            true.append(e)
            stamped.append(e.with_time(clocks[comp].local_time(t)))
        return true, stamped

    def test_perfect_clocks_perfect_order(self):
        true, stamped = self.make_pair([(0.0, 0.0), (0.0, 0.0)])
        assert order_accuracy(true, stamped) == 1.0

    def test_drift_corrupts_close_events(self):
        # 80 ms offsets vs 50 ms spacing: misordering guaranteed
        true, stamped = self.make_pair([(0.0, 0.08), (0.0, -0.08)])
        acc = order_accuracy(true, stamped)
        assert acc < 1.0

    def test_min_separation_masks_ambiguous_pairs(self):
        true, stamped = self.make_pair([(0.0, 0.08), (0.0, -0.08)])
        acc = order_accuracy(true, stamped, min_separation_s=1.0)
        # only well-separated pairs remain, which big offsets can't flip
        assert acc == 1.0

    def test_parallel_list_validation(self):
        with pytest.raises(ValueError):
            order_accuracy([ev(0.0)], [])


class TestCascades:
    def trail(self):
        return [
            ev(100.0, "r0", EventKind.NETWORK,
               "HSN link r0<->r1 (blue) failed: LCB lanes down",
               {"link_index": 7}),
            ev(101.0, "r1", EventKind.NETWORK,
               "routing around failed link", {"link_index": 7}),
            ev(130.0, "n5", EventKind.CONSOLE, "app stalled on retry"),
            ev(220.0, "r0", EventKind.NETWORK,
               "HSN link r0<->r1 restored after maintenance",
               {"link_index": 7}),
            ev(500.0, "n9", EventKind.CONSOLE, "unrelated much later"),
        ]

    def test_cascade_collects_followers_until_restore(self):
        (cascade,) = link_failure_cascades(self.trail(), window_s=1000.0)
        assert cascade.root.fields["link_index"] == 7
        msgs = [e.message for e in cascade.followers]
        assert any("routing around" in m for m in msgs)
        assert any("stalled" in m for m in msgs)
        # restore bounded the window: the t=500 event excluded
        assert not any("unrelated" in m for m in msgs)

    def test_window_caps_without_restore(self):
        events = [e for e in self.trail() if "restored" not in e.message]
        (cascade,) = link_failure_cascades(events, window_s=50.0)
        assert all(e.time <= 150.0 for e in cascade.followers)

    def test_no_failures_no_cascades(self):
        assert link_failure_cascades([ev(0.0)]) == []

    def test_affected_components(self):
        (cascade,) = link_failure_cascades(self.trail(), window_s=1000.0)
        assert "n5" in cascade.affected_components
        assert cascade.span_s > 0
