"""Unit tests for aggressor/victim, power signatures, queueing, logs."""

import numpy as np
import pytest

from repro.analysis.aggressor import classify
from repro.analysis.logpatterns import (
    KnownPatternScanner,
    TemplateTracker,
    template_of,
)
from repro.analysis.powersig import (
    SignatureLibrary,
    detect_hung_nodes,
    detect_load_imbalance,
    match,
)
from repro.analysis.queueing import characterize, estimate_wait
from repro.analysis.variability import (
    attribute_window,
    detect_degradations,
)
from repro.core.events import Event, EventKind, Severity
from repro.core.metric import SeriesBatch
from repro.storage.jobstore import JobIndex


class TestAggressorVictim:
    def build_index(self):
        """Victim app with wild runtimes, overlapped by a stable app."""
        idx = JobIndex()
        jid = 0
        rng = np.random.default_rng(0)
        t = 0.0
        for i in range(6):
            jid += 1
            start = t
            # victim runtime varies hugely depending on contention
            runtime = 1000.0 * (1.0 + (0.8 if i % 2 else 0.0))
            idx.record_start(jid, "victim_app", [f"v{jid}"], start)
            idx.record_end(jid, start + runtime)
            # aggressor runs concurrently, always the same runtime
            jid += 1
            idx.record_start(jid, "aggressor_app", [f"a{jid}"], start)
            idx.record_end(jid, start + 900.0)
            t += 2000.0
        # a stable app that never overlaps the victim
        jid += 1
        idx.record_start(jid, "loner_app", ["l1"], 1e6)
        idx.record_end(jid, 1e6 + 500.0)
        jid += 1
        idx.record_start(jid, "loner_app", ["l2"], 2e6)
        idx.record_end(jid, 2e6 + 505.0)
        jid += 1
        idx.record_start(jid, "loner_app", ["l3"], 3e6)
        idx.record_end(jid, 3e6 + 495.0)
        return idx

    def test_victim_classified(self):
        report = classify(self.build_index())
        assert [v.app for v in report.victims] == ["victim_app"]
        assert report.victims[0].cov > 0.1

    def test_aggressor_is_the_concurrent_stable_app(self):
        report = classify(self.build_index())
        assert report.aggressors == ("aggressor_app",)
        assert report.suspects_by_victim["victim_app"] == (
            "aggressor_app",
        )

    def test_non_overlapping_stable_app_not_suspect(self):
        report = classify(self.build_index())
        assert "loner_app" not in report.aggressors
        assert any(v.app == "loner_app" for v in report.stable)

    def test_min_runs_filter(self):
        idx = JobIndex()
        idx.record_start(1, "once", ["n1"], 0.0)
        idx.record_end(1, 100.0)
        report = classify(idx)
        assert not report.victims and not report.stable


def power_series(values, dt=60.0):
    t = np.arange(len(values)) * dt
    return SeriesBatch.for_component("node.power_w", "job.1", t, values)


class TestPowerSignatures:
    def profile_values(self, scale=1.0, n=60):
        """A two-phase profile: ramp then plateau."""
        ramp = np.linspace(100, 300, n // 3)
        plateau = np.full(n - n // 3, 300.0)
        return np.concatenate([ramp, plateau]) * scale

    def library(self):
        lib = SignatureLibrary()
        for i in range(3):
            vals = self.profile_values() * (1 + 0.01 * i)
            lib.record_run("qmc", power_series(vals * 8), n_nodes=8)
        return lib

    def test_good_run_matches(self):
        lib = self.library()
        good = power_series(self.profile_values() * 8)
        r = match(lib, "qmc", good, n_nodes=8)
        assert r.matches and r.deviation < 0.05

    def test_degraded_run_flagged(self):
        lib = self.library()
        # imbalance scenario: power collapses mid-run
        vals = self.profile_values()
        vals[30:] *= 0.5
        r = match(lib, "qmc", power_series(vals * 8), n_nodes=8)
        assert not r.matches

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError, match="no known-good"):
            match(SignatureLibrary(), "mystery",
                  power_series(np.ones(10)), 1)

    def test_signature_is_median_of_runs(self):
        lib = self.library()
        sig = lib.signature("qmc")
        assert sig.n_runs == 3
        assert sig.mean_level == pytest.approx(
            self.profile_values().mean() * 1.01, rel=0.05
        )


class TestLoadImbalance:
    def cab_sweep(self, values):
        comps = [f"c{i}-0" for i in range(len(values))]
        return SeriesBatch.sweep("cabinet.power_w", 0.0, comps, values)

    def test_balanced_not_detected(self):
        f = detect_load_imbalance(self.cab_sweep([50e3, 52e3, 49e3, 51e3]))
        assert not f.detected
        assert f.spread_ratio < 1.1

    def test_figure3_spread_detected(self):
        # KAUST saw up to 3x cabinet variation
        f = detect_load_imbalance(self.cab_sweep([60e3, 20e3, 58e3, 21e3]))
        assert f.detected
        assert f.spread_ratio == pytest.approx(3.0, rel=0.05)
        assert set(f.hot_cabinets) == {"c0-0", "c2-0"}
        assert set(f.cold_cabinets) == {"c1-0", "c3-0"}

    def test_single_cabinet_undetectable(self):
        f = detect_load_imbalance(self.cab_sweep([50e3]))
        assert not f.detected


class TestHungNodes:
    def test_unallocated_hot_node_flagged(self):
        sweep = SeriesBatch.sweep(
            "node.power_w", 0.0, ["n0", "n1", "n2"], [320.0, 95.0, 310.0]
        )
        hung = detect_hung_nodes(sweep, allocated_nodes=["n2"])
        assert hung == ["n0"]

    def test_allocated_hot_nodes_fine(self):
        sweep = SeriesBatch.sweep(
            "node.power_w", 0.0, ["n0", "n1"], [320.0, 330.0]
        )
        assert detect_hung_nodes(sweep, allocated_nodes=["n0", "n1"]) == []


class TestQueueing:
    def backlog(self, values, dt=60.0):
        t = np.arange(len(values)) * dt
        return SeriesBatch.for_component(
            "queue.backlog_nodeh", "scheduler", t, values
        )

    def test_steady_queue_normal(self):
        rng = np.random.default_rng(1)
        eps = characterize(self.backlog(100 + rng.normal(0, 0.5, 50)))
        assert eps
        assert all(e.label == "normal" for e in eps)

    def test_blockage_fills_fast(self):
        flat = np.full(30, 100.0)
        filling = 100.0 + np.arange(30) * 50.0   # queue racing upward
        eps = characterize(self.backlog(np.concatenate([flat, filling])))
        labels = {e.label for e in eps}
        assert "blockage" in labels or "filling" in labels

    def test_drain_detected(self):
        flat = np.full(30, 1000.0)
        draining = 1000.0 - np.arange(30) * 30.0
        eps = characterize(self.backlog(np.concatenate([flat, draining])))
        assert any(e.label == "draining" for e in eps)

    def test_wait_estimate(self):
        # 900 node-hours through 900 effective nodes ~ 1 hour
        assert estimate_wait(900.0, machine_nodes=1000,
                             utilization=0.9) == pytest.approx(3600.0)

    def test_wait_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_wait(10.0, machine_nodes=0)


class TestVariabilityDetection:
    def fom(self, values, dt=600.0):
        t = np.arange(len(values)) * dt
        return SeriesBatch.for_component("bench.fom", "ior_read", t, values)

    def test_degradation_window_found(self):
        rng = np.random.default_rng(2)
        healthy = rng.normal(100, 1, 20)
        degraded = rng.normal(60, 1, 10)
        recovered = rng.normal(100, 1, 10)
        series = self.fom(np.concatenate([healthy, degraded, recovered]))
        (win,) = detect_degradations(series)
        assert win.benchmark == "ior_read"
        assert 19 * 600 <= win.t_onset <= 21 * 600
        assert win.t_recovery == pytest.approx(30 * 600)
        assert win.depth == pytest.approx(0.4, abs=0.05)

    def test_unrecovered_window_open_ended(self):
        rng = np.random.default_rng(3)
        series = self.fom(
            np.concatenate([rng.normal(100, 1, 20), rng.normal(50, 1, 10)])
        )
        (win,) = detect_degradations(series)
        assert win.t_recovery is None

    def test_healthy_series_no_windows(self):
        rng = np.random.default_rng(4)
        assert detect_degradations(self.fom(rng.normal(100, 1, 40))) == []

    def test_attribution_pulls_overlapping_fault(self):
        rng = np.random.default_rng(5)
        series = self.fom(
            np.concatenate([rng.normal(100, 1, 20), rng.normal(50, 1, 10),
                            rng.normal(100, 1, 5)])
        )
        (win,) = detect_degradations(series)
        events = [
            Event(win.t_onset + 60, "scratch-ost0", EventKind.FILESYSTEM,
                  Severity.WARNING, "slow_io"),
            Event(0.0, "n0", EventKind.CONSOLE, Severity.INFO, "boot"),
        ]
        truth = [
            {"name": "slow_ost", "start": win.t_onset - 30,
             "end": win.t_recovery, "target": "scratch-ost0"},
            {"name": "old_fault", "start": 0.0, "end": 10.0,
             "target": "x"},
        ]
        result = attribute_window(win, events, truth)
        assert len(result["events"]) == 1
        assert [f["name"] for f in result["faults"]] == ["slow_ost"]


class TestLogPatterns:
    def ev(self, t, msg, comp="n0"):
        return Event(t, comp, EventKind.CONSOLE, Severity.INFO, msg)

    def test_known_scanner_hits(self):
        scanner = KnownPatternScanner()
        hits = scanner.scan(
            [
                self.ev(0, "kernel: watchdog: soft lockup on CPU#3"),
                self.ev(1, "all quiet"),
                self.ev(2, "GPU has fallen off the bus"),
            ]
        )
        assert set(hits) == {"soft_lockup", "gpu_falloff"}

    def test_template_masks_volatile_tokens(self):
        a = template_of("job 4312 started on 64 nodes")
        b = template_of("job 99 started on 8 nodes")
        assert a == b

    def test_template_masks_hex_and_cnames(self):
        t = template_of("MCE at 0xdeadbeef on c0-0c1s4n2")
        assert "<hex>" in t and "<cname>" in t

    def test_novel_template_surfaced(self):
        tr = TemplateTracker()
        tr.observe([self.ev(0, "routine message 1")])
        novel = tr.observe(
            [self.ev(10, "routine message 2"),
             self.ev(20, "NEW subsystem wedged")]
        )
        assert novel == [template_of("NEW subsystem wedged")]

    def test_rate_anomaly_on_known_template(self):
        tr = TemplateTracker(bucket_s=100.0)
        # 1/bucket background for 10 buckets, then a storm
        for b in range(10):
            tr.observe([self.ev(b * 100.0, "link retry count 5")])
        tr.observe(
            [self.ev(1050.0, f"link retry count {i}") for i in range(50)]
        )
        anomalies = tr.rate_anomalies(0.0, 1100.0)
        assert anomalies
        assert anomalies[0].count == 50
        assert anomalies[0].bucket_t == 1000.0

    def test_counts_include_empty_buckets(self):
        tr = TemplateTracker(bucket_s=10.0)
        tr.observe([self.ev(5.0, "x"), self.ev(35.0, "x")])
        counts = tr.counts(template_of("x"), 0.0, 40.0)
        assert list(counts) == [1, 0, 0, 1]
