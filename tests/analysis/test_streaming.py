"""Tests for streaming (at-ingest) analysis operators."""

import numpy as np
import pytest

from repro.analysis.streaming import (
    RunningMoments,
    StreamingOutlierDetector,
    StreamingRateWatch,
    StreamingStats,
)
from repro.cluster import HungNode, Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.metric import SeriesBatch
from repro.pipeline import MonitoringPipeline
from repro.sources.sedc import SedcCollector
from repro.transport.bus import MessageBus


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10, 3, 500)
        m = RunningMoments()
        for x in xs:
            m.update(float(x))
        assert m.n == 500
        assert m.mean == pytest.approx(xs.mean())
        assert m.std == pytest.approx(xs.std(ddof=1))
        assert m.minimum == xs.min() and m.maximum == xs.max()

    def test_nan_ignored(self):
        m = RunningMoments()
        m.update(float("nan"))
        m.update(5.0)
        assert m.n == 1 and m.mean == 5.0

    def test_single_sample_variance_zero(self):
        m = RunningMoments()
        m.update(3.0)
        assert m.variance == 0.0


class TestStreamingStats:
    def test_per_series_moments_via_bus(self):
        bus = MessageBus()
        stats = StreamingStats()
        stats.attach(bus)
        for t in range(10):
            bus.publish("metrics.m", SeriesBatch.sweep(
                "m", float(t), ["a", "b"], [1.0, float(t)]))
        assert stats.series_count() == 2
        assert stats.get("m", "a").mean == 1.0
        assert stats.get("m", "b").maximum == 9.0
        assert stats.get("m", "nope") is None

    def test_non_batch_payloads_ignored(self):
        bus = MessageBus()
        stats = StreamingStats()
        stats.attach(bus)
        bus.publish("metrics.m", {"not": "a batch"})
        assert stats.batches_seen == 0


class TestStreamingOutlierDetector:
    def sweep(self, values, t=0.0):
        comps = [f"n{i}" for i in range(len(values))]
        return SeriesBatch.sweep("node.power_w", t, comps, values)

    def test_outlier_detected_at_ingest(self):
        det = StreamingOutlierDetector(("node.power_w",), z_threshold=5.0)
        values = np.full(32, 95.0)
        values[7] = 340.0
        det.observe(self.sweep(values))
        (d,) = det.drain()
        assert d.component == "n7"
        assert det.drain() == []

    def test_other_metrics_skipped(self):
        det = StreamingOutlierDetector(("node.power_w",))
        det.observe(SeriesBatch.sweep("node.temp_c", 0.0,
                                      ["a"] * 9 + ["b"],
                                      [30.0] * 9 + [90.0]))
        assert det.sweeps_checked == 0

    def test_small_sweeps_skipped(self):
        det = StreamingOutlierDetector(("node.power_w",), min_sweep=8)
        det.observe(self.sweep(np.array([95.0, 400.0, 95.0])))
        assert det.drain() == []


class TestStreamingRateWatch:
    def test_rate_breach_flagged(self):
        watch = StreamingRateWatch("gpu.ecc_dbe", max_rate_per_s=0.1)
        watch.observe(SeriesBatch.sweep("gpu.ecc_dbe", 0.0, ["g0"], [0.0]))
        watch.observe(SeriesBatch.sweep("gpu.ecc_dbe", 10.0, ["g0"], [50.0]))
        (d,) = watch.drain()
        assert d.component == "g0"
        assert d.score == pytest.approx(50.0)   # 5/s over a 0.1/s limit

    def test_slow_growth_quiet(self):
        watch = StreamingRateWatch("gpu.ecc_dbe", max_rate_per_s=1.0)
        for t in range(5):
            watch.observe(SeriesBatch.sweep("gpu.ecc_dbe", t * 100.0,
                                            ["g0"], [float(t)]))
        assert watch.drain() == []


class TestPipelineIntegration:
    def test_streaming_detection_reaches_alerts(self):
        """The KAUST hung-node scenario caught by the *streaming*
        location: the power-sweep outlier fires at ingest and lands in
        the alert manager the same tick."""
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        machine = Machine(topo, placement=PackedPlacement(), seed=3)
        job = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=1, walltime_req=600.0)
        machine.scheduler.submit(job, 0.0)
        pipeline = MonitoringPipeline(
            machine, collectors=[SedcCollector(interval_s=60.0)]
        )
        pipeline.add_streaming(
            StreamingOutlierDetector(("node.power_w",), z_threshold=6.0)
        )
        pipeline.run(duration_s=300.0, dt=10.0)
        victim = job.nodes[0]
        machine.faults.add(HungNode(start=machine.now, node=victim))
        pipeline.run(duration_s=1500.0, dt=10.0)
        stream_alerts = [a for a in pipeline.alerts.alerts
                         if a.rule.startswith("stream.")]
        assert any(a.component == victim for a in stream_alerts)
