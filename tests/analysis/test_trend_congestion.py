"""Unit tests for trend analysis and congestion-region detection."""

import numpy as np
import pytest

from repro.analysis.congestion import (
    congestion_levels,
    congestion_regions,
    jobs_touching_region,
)
from repro.analysis.trend import (
    FailureRateTracker,
    fit_trend,
    time_to_threshold,
)
from repro.cluster.network import Flow, NetworkState
from repro.cluster.topology import build_dragonfly
from repro.core.metric import SeriesBatch
from repro.storage.jobstore import JobIndex


class TestTrendFit:
    def test_linear_fit_recovers_slope(self):
        t = np.arange(0, 100, 10, dtype=float)
        v = 5.0 + 0.25 * t
        fit = fit_trend(SeriesBatch.for_component("m", "c", t, v))
        assert fit.slope == pytest.approx(0.25)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.predict(200.0) == pytest.approx(55.0)

    def test_log_fit_for_exponential_growth(self):
        t = np.arange(0, 5 * 86400, 86400, dtype=float)
        v = 1e-15 * 10 ** (t / 86400.0)  # one decade per day
        fit = fit_trend(SeriesBatch.for_component("link.ber", "l", t, v),
                        log_space=True)
        assert fit.slope * 86400 == pytest.approx(1.0, rel=1e-6)
        assert fit.predict(t[-1]) == pytest.approx(v[-1], rel=1e-6)

    def test_log_fit_rejects_nonpositive(self):
        b = SeriesBatch.for_component("m", "c", [0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError, match="positive"):
            fit_trend(b, log_space=True)

    def test_needs_two_points(self):
        b = SeriesBatch.for_component("m", "c", [0.0], [1.0])
        with pytest.raises(ValueError):
            fit_trend(b)


class TestTimeToThreshold:
    def make_fit(self, t, v, log=False):
        return fit_trend(SeriesBatch.for_component("m", "c", t, v), log)

    def test_projection(self):
        t = np.arange(0, 100, 10, dtype=float)
        fit = self.make_fit(t, 1.0 + 0.1 * t)
        # value hits 21 at t=200; from now=100 that's 100s out
        assert time_to_threshold(fit, 21.0, now=100.0) == pytest.approx(100.0)

    def test_already_past_threshold(self):
        t = np.arange(0, 100, 10, dtype=float)
        fit = self.make_fit(t, 1.0 + 0.1 * t)
        assert time_to_threshold(fit, 2.0, now=100.0) == 0.0

    def test_trending_away_returns_none(self):
        t = np.arange(0, 100, 10, dtype=float)
        fit = self.make_fit(t, 100.0 - 0.1 * t)
        assert time_to_threshold(fit, 200.0, now=100.0) is None

    def test_flat_returns_none(self):
        t = np.arange(0, 100, 10, dtype=float)
        fit = self.make_fit(t, np.full_like(t, 5.0))
        assert time_to_threshold(fit, 10.0, now=100.0) is None


class TestFailureRateTracker:
    DAY = 86400.0

    def test_background_rate_not_elevated(self):
        tr = FailureRateTracker(window_s=30 * self.DAY)
        # one failure a month for a year
        for m in range(12):
            tr.record(m * 30 * self.DAY)
        assert not tr.elevated(now=360 * self.DAY)

    def test_wave_detected(self):
        tr = FailureRateTracker(window_s=30 * self.DAY)
        for m in range(24):
            tr.record(m * 30 * self.DAY)        # 1/month baseline
        base_end = 24 * 30 * self.DAY
        for d in range(12):                      # then 12 in one month
            tr.record(base_end + d * 2 * self.DAY)
        now = base_end + 29 * self.DAY
        assert tr.rate_ratio(now) > 5
        assert tr.elevated(now)

    def test_single_failure_insufficient(self):
        tr = FailureRateTracker(window_s=30 * self.DAY)
        tr.record(100 * self.DAY)
        assert not tr.elevated(now=101 * self.DAY)

    def test_no_baseline_infinite_ratio(self):
        tr = FailureRateTracker(window_s=30 * self.DAY)
        for d in range(6):
            tr.record(d * self.DAY)
        assert tr.rate_ratio(now=10 * self.DAY) == float("inf")


class TestCongestionLevels:
    def test_binning(self):
        r = np.array([0.0, 0.06, 0.15, 0.5])
        assert list(congestion_levels(r)) == [0, 1, 2, 3]


@pytest.fixture()
def hot_network():
    """A dragonfly with one genuinely congested corner."""
    topo = build_dragonfly(groups=3, chassis_per_group=3,
                           blades_per_chassis=4)
    net = NetworkState(topo, seed=0)
    # hammer one destination from many sources -> a hot neighborhood
    dst = topo.nodes[-1]
    flows = [Flow(topo.nodes[i], dst, 30e9) for i in range(40)]
    net.step(1.0, flows)
    return topo, net


class TestCongestionRegions:
    def test_idle_network_no_regions(self):
        topo = build_dragonfly(groups=2, chassis_per_group=3,
                               blades_per_chassis=4)
        net = NetworkState(topo)
        net.step(1.0, [])
        assert congestion_regions(topo, net.link_stall_ratio) == []

    def test_hotspot_found_as_one_region(self, hot_network):
        topo, net = hot_network
        regions = congestion_regions(topo, net.link_stall_ratio)
        assert regions
        top = regions[0]
        assert top.max_stall > 0.2
        # the destination's router must sit inside the hot region
        dst_router = topo.node_router[topo.nodes[-1]]
        assert dst_router in regions[0].routers or any(
            dst_router in r.routers for r in regions
        )

    def test_regions_are_connected(self, hot_network):
        topo, net = hot_network
        for region in congestion_regions(topo, net.link_stall_ratio):
            # every link in the region shares a router with another
            routers = set(region.routers)
            for idx in region.link_indices:
                link = topo.links[idx]
                assert link.a in routers and link.b in routers

    def test_jobs_touching_region(self, hot_network):
        topo, net = hot_network
        regions = congestion_regions(topo, net.link_stall_ratio)
        idx = JobIndex()
        # the traffic job: sources + destination
        idx.record_start(1, "cfd_fft",
                         [topo.nodes[i] for i in range(40)]
                         + [topo.nodes[-1]], 0.0)
        # an unrelated small job on nodes sharing one router
        quiet = [n for n in topo.nodes
                 if topo.node_router[n] == topo.node_router[topo.nodes[4]]]
        idx.record_start(2, "qmc", quiet[:2], 0.0)
        touched = jobs_touching_region(
            topo, regions[0], idx.jobs_active_at(0.5)
        )
        assert 1 in touched
        assert 2 not in touched
