"""Unit tests for robust statistics and anomaly detectors."""

import numpy as np
import pytest

from repro.analysis.anomaly import (
    CusumDetector,
    EwmaDetector,
    ThresholdDetector,
    iqr_outliers,
    sweep_outliers,
)
from repro.analysis.stats import (
    coefficient_of_variation,
    ewma,
    mad,
    robust_zscores,
    rolling_mean,
)
from repro.core.metric import SeriesBatch


class TestStats:
    def test_mad_of_normal_estimates_sigma(self):
        x = np.random.default_rng(0).normal(10, 2.0, 5000)
        assert mad(x) == pytest.approx(2.0, rel=0.1)

    def test_mad_ignores_nan(self):
        assert np.isfinite(mad(np.array([1.0, 2.0, np.nan, 3.0])))

    def test_mad_empty_nan(self):
        assert np.isnan(mad(np.array([])))

    def test_robust_z_flags_outlier_against_constant_bulk(self):
        # the hung-node-in-idle-sweep case: MAD degenerates to 0 and the
        # mean-absolute-deviation fallback must still flag the outlier
        x = np.ones(100)
        x[0] = 1000.0
        z = robust_zscores(x)
        assert abs(z[0]) > 10
        assert np.abs(z[1:]).max() < 1

    def test_robust_z_constant_input_all_zero(self):
        assert (robust_zscores(np.full(50, 7.0)) == 0).all()

    def test_robust_z_flags_single_outlier(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 500)
        x[42] = 25.0
        z = robust_zscores(x)
        assert np.argmax(np.abs(z)) == 42
        assert abs(z[42]) > 10

    def test_constant_series_zero_z(self):
        assert (robust_zscores(np.full(10, 3.0)) == 0).all()

    def test_ewma_converges(self):
        x = np.concatenate([np.zeros(5), np.full(200, 10.0)])
        sm = ewma(x, alpha=0.2)
        assert sm[-1] == pytest.approx(10.0, abs=0.01)

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            ewma(np.ones(3), alpha=0.0)

    def test_rolling_mean_matches_numpy(self):
        x = np.arange(10, dtype=float)
        rm = rolling_mean(x, 3)
        assert rm[0] == 0.0
        assert rm[1] == 0.5
        assert rm[5] == pytest.approx(np.mean([3, 4, 5]))

    def test_rolling_window_validated(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones(3), 0)

    def test_cov(self):
        assert coefficient_of_variation(np.array([10.0, 10.0])) == 0.0
        assert coefficient_of_variation(
            np.array([5.0, 15.0])
        ) == pytest.approx(np.std([5, 15], ddof=1) / 10.0)
        assert np.isnan(coefficient_of_variation(np.array([1.0])))


class TestSweepOutliers:
    def sweep(self, values):
        comps = [f"n{i}" for i in range(len(values))]
        return SeriesBatch.sweep("node.power_w", 100.0, comps, values)

    def test_flags_the_hung_node(self):
        rng = np.random.default_rng(2)
        values = rng.normal(95, 2, 100)
        values[13] = 330.0   # hung at busy power while others idle
        dets = sweep_outliers(self.sweep(values))
        assert dets[0].component == "n13"
        assert dets[0].kind == "outlier"

    def test_clean_sweep_no_detections(self):
        rng = np.random.default_rng(3)
        assert sweep_outliers(self.sweep(rng.normal(95, 2, 100))) == []

    def test_tiny_sweep_skipped(self):
        assert sweep_outliers(self.sweep([1.0, 2.0])) == []

    def test_detections_sorted_by_magnitude(self):
        values = np.full(50, 10.0) + np.random.default_rng(4).normal(0, 0.1, 50)
        values[5] = 20.0
        values[7] = 50.0
        dets = sweep_outliers(self.sweep(values))
        assert dets[0].component == "n7"


class TestThresholdDetector:
    def sweep(self, t, values):
        comps = [f"n{i}" for i in range(len(values))]
        return SeriesBatch.sweep("node.temp_c", t, comps, values)

    def test_fires_once_per_episode(self):
        det = ThresholdDetector("node.temp_c", 80.0)
        first = det.check(self.sweep(0.0, [85.0, 50.0]))
        again = det.check(self.sweep(60.0, [86.0, 50.0]))
        assert len(first) == 1 and again == []

    def test_rearm_after_clear(self):
        det = ThresholdDetector("node.temp_c", 80.0, clear_fraction=0.9)
        det.check(self.sweep(0.0, [85.0]))
        det.check(self.sweep(60.0, [60.0]))   # cleared (< 72)
        refire = det.check(self.sweep(120.0, [90.0]))
        assert len(refire) == 1

    def test_below_threshold_mode(self):
        det = ThresholdDetector("node.temp_c", 10.0, above=False)
        out = det.check(self.sweep(0.0, [5.0, 20.0]))
        assert len(out) == 1 and out[0].component == "n0"

    def test_wrong_metric_ignored(self):
        det = ThresholdDetector("other.metric", 1.0)
        assert det.check(self.sweep(0.0, [100.0])) == []


class TestIqrOutliers:
    def test_flags_extremes(self):
        x = np.concatenate([np.random.default_rng(5).normal(0, 1, 100),
                            [40.0]])
        mask = iqr_outliers(x)
        assert mask[-1]
        assert mask.sum() < 10

    def test_small_input_no_flags(self):
        assert not iqr_outliers(np.array([1.0, 100.0])).any()


def series(values, dt=60.0):
    t = np.arange(len(values)) * dt
    return SeriesBatch.for_component("bench.fom", "dgemm", t, values)


class TestEwmaDetector:
    def test_detects_level_shift(self):
        rng = np.random.default_rng(6)
        v = np.concatenate([rng.normal(100, 1, 30), rng.normal(70, 1, 30)])
        dets = EwmaDetector().detect(series(v))
        assert dets
        assert 29 * 60 <= dets[0].time <= 33 * 60

    def test_quiet_series_silent(self):
        rng = np.random.default_rng(7)
        assert EwmaDetector().detect(series(rng.normal(100, 1, 60))) == []

    def test_short_series_skipped(self):
        assert EwmaDetector().detect(series(np.ones(5))) == []


class TestCusumDetector:
    def test_detects_sustained_drift(self):
        rng = np.random.default_rng(8)
        v = np.concatenate(
            [rng.normal(100, 1, 40), rng.normal(97, 1, 60)]  # subtle shift
        )
        dets = CusumDetector().detect(series(v))
        assert dets
        assert dets[0].detail == "direction=down"
        assert dets[0].time >= 40 * 60

    def test_single_spike_not_changepoint(self):
        rng = np.random.default_rng(9)
        v = rng.normal(100, 1, 80)
        v[40] = 120.0
        assert CusumDetector().detect(series(v)) == []

    def test_upward_shift_direction(self):
        rng = np.random.default_rng(10)
        v = np.concatenate([rng.normal(10, 0.5, 30), rng.normal(14, 0.5, 30)])
        dets = CusumDetector().detect(series(v))
        assert dets and dets[0].detail == "direction=up"
