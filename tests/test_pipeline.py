"""Integration tests: the assembled end-to-end pipeline."""

import numpy as np
import pytest

from repro import MonitoringPipeline, default_pipeline
from repro.analysis.anomaly import sweep_outliers
from repro.cluster import (
    HungNode,
    JobGenerator,
    Machine,
    PackedPlacement,
    SlowOst,
    build_dragonfly,
)
from repro.cluster.workload import APP_LIBRARY, Job


def make_machine(**kw):
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    defaults = dict(
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=240,
                                   max_nodes=32, seed=2),
        gpu_nodes="all",
        seed=7,
    )
    defaults.update(kw)
    return Machine(topo, **defaults)


@pytest.fixture(scope="module", params=["flat", "partitioned"])
def faulty_run(request):
    """One shared hour-long run with a hung node and a slow OST.

    Parametrized over transport tiers: the same scenario must pass on
    the default stack (flat bus + single store) and on the tiered one
    (partitioned bus + 4-shard store) — the acceptance oracle for the
    transport/storage refactor.
    """
    m = make_machine()
    m.faults.add(HungNode(start=900.0, duration=1200.0,
                          node=m.topo.nodes[5]))
    m.faults.add(SlowOst(start=1800.0, duration=1200.0, ost=0,
                         bw_factor=0.1))
    kw = ({} if request.param == "flat"
          else dict(transport="partitioned", shards=4))
    p = default_pipeline(m, seed=1, **kw)
    p.run(hours=1.0, dt=10.0)
    return p


class TestDataFlow:
    def test_metrics_reach_tsdb(self, faulty_run):
        p = faulty_run
        stats = p.tsdb.stats()
        assert stats.samples > 10_000
        # every registered collector metric family shows up
        metrics = {k.metric for k in p.tsdb.keys()}
        for m in ("node.power_w", "link.stall_ratio", "probe.io_latency_s",
                  "queue.depth", "cabinet.power_w", "bench.fom",
                  "health.pass_frac", "env.corrosion_rate"):
            assert m in metrics, m

    def test_events_reach_logstore(self, faulty_run):
        p = faulty_run
        assert len(p.logs) > 0
        hits = p.logs.search(["soft", "lockup"])
        assert hits

    def test_jobs_tracked_with_tenure(self, faulty_run):
        p = faulty_run
        assert len(p.jobs) > 0
        done = [a for a in p.jobs.jobs_overlapping(-np.inf, np.inf)
                if a.end is not None]
        rows = p.sql.jobs(state="completed")
        assert len(rows) == len([a for a in done])

    def test_sweeps_are_synchronized(self, faulty_run):
        p = faulty_run
        a = p.tsdb.query("node.power_w", p.machine.topo.nodes[0])
        b = p.tsdb.query("node.power_w", p.machine.topo.nodes[-1])
        assert np.array_equal(a.times, b.times)


class TestDetectionEndToEnd:
    def test_hung_node_alert_and_drain(self, faulty_run):
        p = faulty_run
        victim = p.machine.topo.nodes[5]
        rules = {a.rule for a in p.alerts.alerts if a.component == victim}
        assert "soft_lockup" in rules
        drains = [r for r in p.actions.audit
                  if r.action == "drain_node" and r.component == victim]
        assert drains

    def test_slow_ost_degrades_benchmark_alert(self, faulty_run):
        p = faulty_run
        assert any(a.rule == "bench_degraded" and
                   a.component == "ior_read" for a in p.alerts.alerts)

    def test_slow_ost_visible_in_probe_series(self, faulty_run):
        p = faulty_run
        s = p.tsdb.query("probe.io_latency_s", "scratch-ost0")
        during = s.in_window(1900.0, 3000.0).values
        before = s.in_window(0.0, 1800.0).values
        assert np.median(during) > 3 * np.median(before)

    def test_hung_node_is_power_sweep_outlier(self):
        """The KAUST signature: a job's node wedges mid-run; after the
        job dies the machine idles, but the hung node keeps burning —
        a screaming outlier in the synchronized power sweep."""
        m = make_machine(job_generator=None)
        job = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=1, walltime_req=600.0)
        m.scheduler.submit(job, 0.0)
        p = MonitoringPipeline(m, collectors=[])
        p.run(duration_s=300.0, dt=10.0)       # job busy, power up
        victim = job.nodes[0]
        m.faults.add(HungNode(start=m.now, node=victim))
        p.run(duration_s=900.0, dt=10.0)       # walltime kills the job
        from repro.core.metric import SeriesBatch
        sweep = SeriesBatch.sweep(
            "node.power_w", m.now, m.nodes.names, m.nodes.power_w
        )
        dets = sweep_outliers(sweep, z_threshold=4.0)
        assert any(d.component == victim for d in dets)


class TestAnalysisHooks:
    def test_hook_runs_on_cadence_and_alerts(self):
        m = make_machine(job_generator=None)
        p = MonitoringPipeline(m)
        calls = []

        def hook(pipeline, now):
            calls.append(now)
            from repro.analysis.anomaly import Detection
            return [Detection(now, "x.y", "n0", 9.0, "outlier", "synthetic")]

        p.add_analysis(60.0, hook)
        p.run(duration_s=300.0, dt=10.0)
        # phase-locked cadence: first fire on the first tick (due at 0),
        # then every interval on the interval — no drift from tick phase
        assert calls == [10.0, 60.0, 120.0, 180.0, 240.0, 300.0]
        assert any(a.rule.startswith("stat.x.y") for a in p.alerts.alerts)

    def test_hook_cadence_phase_locked_under_late_ticks(self):
        """A hook serviced by a late tick reschedules from its due time,
        not from the tick time — cadence phase never drifts."""
        m = make_machine(job_generator=None)
        p = MonitoringPipeline(m, selfmon_interval_s=None)
        calls = []
        p.add_analysis(60.0, lambda pipeline, now: calls.append(now) or [])
        # ticks land at 70, 140, 210, ... — never on a multiple of 60
        p.run(duration_s=420.0, dt=70.0)
        # due times stay on the 60 s grid: serviced at the first tick at
        # or after each due point, skipping slots a >1-interval gap misses
        assert calls == [70.0, 140.0, 210.0, 280.0, 350.0, 420.0]
        stage = p.stage("analysis-hooks")
        interval, next_due, _ = stage.hooks[0]
        assert next_due % 60.0 == 0.0    # still on the original grid

    def test_hook_rejects_nonpositive_interval(self):
        p = MonitoringPipeline(make_machine(job_generator=None))
        with pytest.raises(ValueError):
            p.add_analysis(0.0, lambda pipeline, now: [])

    def test_run_argument_validation(self):
        p = MonitoringPipeline(make_machine(job_generator=None))
        with pytest.raises(ValueError):
            p.run()
        with pytest.raises(ValueError):
            p.run(duration_s=10.0, hours=1.0)


class TestOverheadAccounting:
    def test_overhead_report_structure(self, faulty_run):
        rep = faulty_run.overhead_report()
        assert "node_counters" in rep
        for stats in rep.values():
            assert stats["sweeps"] >= 1
            assert stats["wall_per_sweep_ms"] >= 0.0


class TestDashboardIntegration:
    def test_dashboard_renders_from_live_store(self, faulty_run):
        p = faulty_run
        text = p.dashboard().render(p.machine.now, window_s=1200.0)
        assert "system status" in text
        assert "system power" in text


class TestAutomaticPostJobGate:
    def test_default_pipeline_drains_broken_nodes_post_job(self):
        """With default_pipeline's gate installed, a node that breaks
        during a job is drained automatically when the job ends — no
        manual post_job call required."""
        from repro import default_pipeline

        m = make_machine(job_generator=None)
        p = default_pipeline(m, seed=4)
        job = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=1)
        job.work_seconds = 200.0
        m.scheduler.submit(job, 0.0)
        p.run(duration_s=100.0, dt=10.0)
        victim = job.nodes[0]
        m.nodes.kill_service(victim, "lnet")     # breaks mid-job
        p.run(duration_s=400.0, dt=10.0)         # job completes
        assert job.state.value in ("completed", "failed")
        assert victim in m.scheduler.unavailable
        assert victim in p.health_gate.drained
