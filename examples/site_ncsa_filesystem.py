#!/usr/bin/env python
"""NCSA story: filesystem probes, aggregate I/O drill-down, per-job view.

Reproduces Blue Waters' filesystem monitoring workflow (Sections II-2,
III-B; Figures 4 and 5):

1. one-minute synchronized probes of every OST and the MDS detect a
   slow OST minutes after it degrades;
2. the aggregate ``fs.read_bps`` timeline shows an I/O spike; drilling
   down at the peak ranks the per-OST contributions and attributes the
   spike to the job that caused it (Figure 4);
3. the per-job multi-metric condensed timeseries plus CSV download is
   produced for that job (Figure 5).

Run:  python examples/site_ncsa_filesystem.py
"""

import numpy as np

from repro import default_pipeline
from repro.analysis.anomaly import sweep_outliers
from repro.cluster import Machine, PackedPlacement, SlowOst, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.metric import SeriesBatch
from repro.viz.figures import figure4_drilldown, figure5_perjob


class _DelayedSubmit:
    """Minimal job source: submit one prepared job at its submit time."""

    def __init__(self, job, at):
        self._job, self._at, self._done = job, at, False

    def poll(self, now):
        if not self._done and now >= self._at:
            self._done = True
            return [self._job]
        return []


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=11)

    # a quiet background job plus the read-heavy genomics job that will
    # own the Figure 4 spike (its first phase streams reads from every
    # node), submitted mid-run so the aggregate timeline has a baseline
    quiet = Job(APP_LIBRARY["qmc"], 16, 0.0, seed=3)
    io_heavy = Job(APP_LIBRARY["genomics"], 32, 600.0, seed=4)
    machine.scheduler.submit(quiet, 0.0)
    machine.job_generator = _DelayedSubmit(io_heavy, 600.0)

    # ground truth: ost3 degrades mid-run
    machine.faults.add(SlowOst(start=2400.0, duration=1800.0, ost=3,
                               bw_factor=0.1))

    pipeline = default_pipeline(machine, seed=2)
    pipeline.run(hours=1.5, dt=10.0)
    now = machine.now

    # -- 1. probe latencies surface the slow OST -------------------------
    print("=== per-OST probe latency sweep during the fault window ===")
    lat = {
        c: pipeline.tsdb.query("probe.io_latency_s", c, 2500.0, 4000.0)
        for c in pipeline.tsdb.components("probe.io_latency_s")
    }
    sweep = SeriesBatch(
        "probe.io_latency_s",
        list(lat),
        [b.times[len(b) // 2] for b in lat.values()],
        [float(np.median(b.values)) for b in lat.values()],
    )
    for det in sweep_outliers(sweep, z_threshold=4.0):
        print(f"  OUTLIER {det.component}: {det.detail}")

    # -- 2. Figure 4: aggregate -> drill-down -> job ----------------------
    fig4, result = figure4_drilldown(pipeline.tsdb, pipeline.jobs,
                                     0.0, now)
    print("\n" + fig4.render(height=8))
    print(f"\ndrill-down: peak {result.peak_value / 1e9:.2f} GB/s at "
          f"t={result.peak_time:.0f}s")
    print(f"top OSTs: {[(c, f'{v/1e6:.0f} MB/s') for c, v in result.ranked_components[:3]]}")
    print(f"attributed to job {result.job_id} ({result.job_app}) — "
          f"ground truth was job {io_heavy.id} ({io_heavy.app.name})")

    # -- 3. Figure 5: per-job condensed timeseries + CSV ------------------
    fig5 = figure5_perjob(pipeline.tsdb, pipeline.jobs, io_heavy.id)
    print("\n" + fig5.render(height=6))
    csv = fig5.csv()
    print(f"\nCSV download: {len(csv.splitlines()) - 1} data rows, "
          f"first three:")
    for line in csv.splitlines()[:4]:
        print("  " + line)


if __name__ == "__main__":
    main()
