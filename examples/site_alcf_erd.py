#!/usr/bin/env python
"""ALCF story: raw ERD access (Deluge) and link-BER trend analysis.

Reproduces the Theta methodology (Sections II-8, IV-A):

1. the vendor event stream is an opaque binary format; the default
   text path exposes only a lossy subset, while the Deluge-style tap
   decodes the raw stream into complete native events;
2. the vendor's default log handling scatters events into many per-day,
   per-kind files with inconsistent formats — we show the parsing cost;
3. trend analysis on per-link bit error rates flags the marginal cable
   and predicts when it will cross the FEC budget — before it fails.

Run:  python examples/site_alcf_erd.py
"""


from repro.analysis.trend import fit_trend, time_to_threshold
from repro.cluster import BerDegradation, HungNode, Machine, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.pipeline import MonitoringPipeline
from repro.sources.counters import NetLinkCollector
from repro.sources.logsource import CrayLogSplitter, parse_split_logs

BER_ALARM = 1e-11   # FEC budget: page when a link is headed here


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, gpu_nodes="all", seed=23)

    # ground truth: link 12's BER grows one decade per day; plus some
    # unrelated events for the log story
    machine.faults.add(BerDegradation(start=0.0, link_index=12,
                                      decades_per_day=1.5))
    machine.faults.add(HungNode(start=3600.0, duration=600.0,
                                node=topo.nodes[7]))
    job = Job(APP_LIBRARY["lammps"], 32, 0.0, seed=1)
    machine.scheduler.submit(job, 0.0)

    # collect link counters hourly over two simulated days
    pipeline = MonitoringPipeline(
        machine, collectors=[NetLinkCollector(interval_s=3600.0)]
    )
    pipeline.run(duration_s=2 * 86400.0, dt=120.0)

    # -- 1. raw ERD vs vendor text subset ----------------------------------
    print("=== event stream access ===")
    print(f"events routed through the ERD: {pipeline.router.events_routed}")
    text_lines = pipeline.router.text_subset()
    decoded = pipeline.logs   # the Deluge tap fed the log store
    print(f"vendor text subset exposes {len(text_lines)} lines "
          f"(console+hwerr only, structured fields dropped)")
    print(f"Deluge-style raw decode recovered {len(decoded)} complete "
          f"events across all kinds")

    # -- 2. the split-log mess and what parsing costs ----------------------
    splitter = CrayLogSplitter()
    all_events = [decoded.get(i) for i in range(len(decoded))]
    splitter.write(all_events)
    parsed = parse_split_logs(splitter.files)
    print(f"\nvendor-style log split: {splitter.n_files()} files across "
          f"per-day/per-kind directories, 4 timestamp formats")
    print(f"site-side parser recovered {len(parsed)}/{len(all_events)} "
          f"records after format-specific regexes + multi-line reassembly")

    # -- 3. BER trend analysis ----------------------------------------------
    print("\n=== link BER trend analysis ===")
    link_names = machine.network.link_names()
    flagged = []
    for name in (link_names[12], link_names[13]):
        series = pipeline.tsdb.query("link.ber", name)
        fit = fit_trend(series, log_space=True)
        eta = time_to_threshold(fit, BER_ALARM, now=machine.now)
        decades_per_day = fit.slope * 86400.0
        print(f"  {name}: BER now {series.values[-1]:.2e}, trend "
              f"{decades_per_day:+.2f} decades/day (r2={fit.r2:.2f}), "
              f"ETA to {BER_ALARM:g}: "
              f"{'none' if eta is None else f'{eta / 86400.0:.1f} days'}")
        if eta is not None:
            flagged.append(name)
    assert link_names[12] in flagged, "the degrading link must be flagged"
    assert link_names[13] not in flagged, "healthy links must not page"
    print("\nthe marginal cable was flagged from trend alone, days before "
          "it would cross the FEC budget.")


if __name__ == "__main__":
    main()
