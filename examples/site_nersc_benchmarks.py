#!/usr/bin/env python
"""NERSC story: tracked benchmarks reveal the onset of problems (Fig 2).

Reproduces the Edison/Cori methodology (Section II-3, Figure 2): "NERSC
regularly runs a suite of custom benchmarks that exercise compute,
network, and I/O functionality, and publishes performance over time ...
Occurrences and onset of performance problems are apparent in
visualizations tracking performance over time and are used by staff to
drive further investigation and diagnosis."

A filesystem problem develops mid-period; the published benchmark
timelines show the onset; the degradation-window detector turns the
eyeball judgment into a machine-checked finding and attributes it to
the injected fault.

Run:  python examples/site_nersc_benchmarks.py
"""

from repro.analysis.variability import attribute_window, detect_degradations
from repro.cluster import Machine, MdsDegradation, PackedPlacement, SlowOst, build_dragonfly
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.viz.figures import figure2_benchmarks


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=5)
    machine.faults.add(SlowOst(start=7200.0, duration=5400.0, ost=0,
                               bw_factor=0.08))
    machine.faults.add(MdsDegradation(start=18000.0, duration=3600.0,
                                      rate_factor=0.1))

    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(machine, metric_interval_s=300.0,
                                      bench_interval_s=600.0, seed=5),
    )
    print("running the benchmark suite every 10 minutes for 7 simulated "
          "hours\n(a slow OST develops at t=7200s, an MDS problem at "
          "t=18000s)...")
    pipeline.run(hours=7.0, dt=60.0)

    fig = figure2_benchmarks(pipeline.tsdb, 0.0, machine.now)
    print()
    print(fig.render(height=6))

    print("\n=== degradation windows (the 'onset apparent' judgment, "
          "machine-checked) ===")
    truth = machine.faults.ground_truth()
    for bench in ("ior_read", "mdtest", "dgemm"):
        series = pipeline.tsdb.query("bench.fom", bench)
        windows = detect_degradations(series, drop_fraction=0.2)
        if not windows:
            print(f"  {bench:10} no degradation (healthy throughout)")
            continue
        for w in windows:
            report = attribute_window(w, [], truth, slack_s=900.0)
            causes = [f["name"] for f in report["faults"]]
            end = ("ongoing" if w.t_recovery is None
                   else f"{w.t_recovery:.0f}s")
            print(f"  {bench:10} degraded [{w.t_onset:.0f}s, {end}] "
                  f"depth {w.depth:.0%} — overlapping faults: {causes}")

    ior_windows = detect_degradations(
        pipeline.tsdb.query("bench.fom", "ior_read"), drop_fraction=0.2
    )
    assert ior_windows and any(
        "slow_ost" in [f["name"] for f in
                       attribute_window(w, [], truth, 900.0)["faults"]]
        for w in ior_windows
    ), "the IOR degradation must attribute to the slow OST"
    print("\nthe tracked suite surfaced both problems and the windows "
          "attribute to the right faults.")


if __name__ == "__main__":
    main()
