#!/usr/bin/env python
"""Quickstart: a monitored machine, an injected fault, a caught alert.

Builds a small dragonfly machine with a realistic job mix, assembles the
full end-to-end monitoring pipeline (collectors -> bus -> stores ->
SEC rules -> actions), injects a hung node and a slow OST, and shows
what the monitoring surfaces: alerts, automated drains, the dashboard,
and the data trail in the stores.

Run:  python examples/quickstart.py
"""

from repro import default_pipeline
from repro.cluster import (
    HungNode,
    JobGenerator,
    Machine,
    PackedPlacement,
    SlowOst,
    build_dragonfly,
)


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=180,
                                   max_nodes=32, seed=2),
        gpu_nodes="all",
        seed=7,
    )
    print(f"machine: {len(topo.nodes)} nodes, {len(topo.links)} links, "
          f"{len(topo.cabinets)} cabinets")

    # ground truth: two faults the monitoring should catch
    victim = topo.nodes[5]
    machine.faults.add(HungNode(start=900.0, duration=1200.0, node=victim))
    machine.faults.add(SlowOst(start=1800.0, duration=1200.0, ost=0,
                               bw_factor=0.1))
    print(f"injected: hung node {victim} @t=900s, slow ost0 @t=1800s\n")

    pipeline = default_pipeline(machine, seed=1)
    pipeline.run(hours=1.0, dt=10.0)

    print("=== alerts raised ===")
    for a in pipeline.alerts.alerts:
        print(f"  t={a.time:6.0f}s [{a.severity.name:8}] {a.rule:18} "
              f"{a.component}: {a.message[:60]}")

    print("\n=== automated responses (audit trail) ===")
    for rec in pipeline.actions.audit:
        if rec.action != "alert":
            print(f"  t={rec.time:6.0f}s {rec.action:12} "
                  f"{rec.component:16} -> {rec.outcome}")

    print("\n" + pipeline.dashboard().render(machine.now, window_s=1200.0))

    stats = pipeline.tsdb.stats()
    print(f"\nstores: {stats.samples} samples across {stats.series} series "
          f"(compression {stats.compression_ratio:.1f}x), "
          f"{len(pipeline.logs)} log events, "
          f"{len(pipeline.jobs)} jobs indexed")

    print("\ncollection overhead per sweep:")
    for name, rep in sorted(pipeline.overhead_report().items()):
        print(f"  {name:20} {rep['sweeps']:4.0f} sweeps  "
              f"{rep['wall_per_sweep_ms']:6.2f} ms/sweep  "
              f"{rep['samples']:8.0f} samples")


if __name__ == "__main__":
    main()
