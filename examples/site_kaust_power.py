#!/usr/bin/env python
"""KAUST story: power signatures, load imbalance, hung-node detection.

Reproduces the Shaheen2 methodology (Section II-7, Figure 3):

1. profile known-good runs of an application into a power-signature
   library;
2. run the same application with an injected load imbalance: per-cabinet
   power spreads ~3x, total system draw sags (Figure 3), the signature
   match fails, and the imbalance detector names hot/cold cabinets;
3. a node hangs after its job dies: the power sweep vs allocation table
   cross-check flags it.

Run:  python examples/site_kaust_power.py
"""


from repro.analysis.powersig import (
    SignatureLibrary,
    detect_hung_nodes,
    detect_load_imbalance,
    match,
)
from repro.cluster import (
    HungNode,
    LoadImbalance,
    Machine,
    PackedPlacement,
    PowerModel,
    build_dragonfly,
)
from repro.cluster.workload import APP_LIBRARY, Job
from repro.core.metric import SeriesBatch
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.viz.figures import figure3_power


def run_job(machine_seed: int, fault=None, sim_hours=1.6,
            collect_s=60.0):
    """Run one full-machine qmc job under monitoring; returns
    (pipeline, job, machine)."""
    # four cabinets so imbalance concentrated in one cabinet shows the
    # Figure 3 cabinet-to-cabinet contrast
    topo = build_dragonfly(groups=4, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=machine_seed)
    job = Job(APP_LIBRARY["qmc"], len(topo.nodes), 0.0, seed=machine_seed)
    machine.scheduler.submit(job, 0.0)
    if fault is not None:
        machine.faults.add(fault)
    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(machine,
                                      metric_interval_s=collect_s),
    )
    pipeline.run(hours=sim_hours, dt=10.0)
    return pipeline, job, machine


def job_power_series(pipeline, job):
    return pipeline.jobs.condense_job_series(
        pipeline.tsdb, job.id, "node.power_w", agg="sum", step=60.0
    )


def main() -> None:
    # -- 1. build the signature library from known-good runs --------------
    library = SignatureLibrary()
    for seed in (21, 22, 23):
        pipeline, job, _ = run_job(seed)
        series = job_power_series(pipeline, job)
        library.record_run("qmc", series, n_nodes=len(job.nodes))
    sig = library.signature("qmc")
    print(f"signature library: qmc from {sig.n_runs} runs, "
          f"mean {sig.mean_level:.0f} W/node")

    # -- 2. the imbalanced run (Figure 3) ----------------------------------
    # concentrate the work on the first quarter of ranks = cabinet 0
    fault = LoadImbalance(start=1200.0, duration=1800.0, frac_busy=0.25,
                          wait_util=0.05)
    pipeline, job, machine = run_job(31, fault=fault)
    series = job_power_series(pipeline, job)
    verdict = match(library, "qmc", series, n_nodes=len(job.nodes))
    print(f"\nsignature match on the bad run: matches={verdict.matches} "
          f"({verdict.detail})")

    fig3 = figure3_power(pipeline.tsdb, 0.0, machine.now)
    print("\n" + fig3.render(height=8))
    print(f"\ncabinet spread at worst moment: "
          f"{fig3.summary['max_cabinet_spread']:.2f}x "
          f"(paper reports up to ~3x)")
    print(f"system draw max/min over the window: "
          f"{fig3.summary['system_max_over_min']:.2f}x "
          f"(paper reports ~1.9x)")

    # the detector over the worst cabinet sweep
    spread_t = fig3.summary["spread_time_s"]
    cab_sweep_vals = []
    cabs = pipeline.tsdb.components("cabinet.power_w")
    for c in cabs:
        b = pipeline.tsdb.query("cabinet.power_w", c, spread_t - 30,
                                spread_t + 90)
        if len(b):
            cab_sweep_vals.append((c, float(b.values[0])))
    sweep = SeriesBatch.sweep(
        "cabinet.power_w", spread_t,
        [c for c, _ in cab_sweep_vals], [v for _, v in cab_sweep_vals],
    )
    finding = detect_load_imbalance(sweep, spread_threshold=1.5)
    print(f"imbalance detector: detected={finding.detected}, "
          f"hot={finding.hot_cabinets}, cold={finding.cold_cabinets}")

    # -- 3. hung-node detection --------------------------------------------
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=41)
    job = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=41, walltime_req=900.0)
    machine.scheduler.submit(job, 0.0)
    machine.run(600.0, dt=10.0)
    victim = job.nodes[0]
    machine.faults.add(HungNode(start=machine.now, node=victim))
    machine.run(1200.0, dt=10.0)   # walltime kills the job; node burns on

    sweep = SeriesBatch.sweep(
        "node.power_w", machine.now, machine.nodes.names,
        machine.nodes.power_w,
    )
    hung = detect_hung_nodes(sweep, list(machine.scheduler.allocated))
    print(f"\nhung-node detector flags: {hung} "
          f"(ground truth: {[victim]})")


if __name__ == "__main__":
    main()
