#!/usr/bin/env python
"""The users' burning question: "why was my run slow?" — answered, scoped.

The paper's Conclusions: monitoring "information that might be of
tremendous benefit in answering users' burning question(s) cannot be
shared with them" because per-user access control is impractical at
sites.  Section III-B names the question: explaining observed
performance variation is "the highest priority question sites seek to
answer".

Two users run the same application twice.  Alice's second run overlaps
an injected slow-OST episode; Bob's runs are clean.  Each user asks for
their own run reports — and only their own; asking about someone else's
job is refused.

Run:  python examples/user_run_report.py
"""

from repro.cluster import Machine, PackedPlacement, SlowOst, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job
from repro.pipeline import MonitoringPipeline, default_collectors
from repro.viz.userreport import job_report


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(), seed=31)

    jobs = []
    for i, (user, start) in enumerate(
        [("alice", 0.0), ("bob", 0.0), ("alice", 2600.0), ("bob", 2600.0)]
    ):
        j = Job(APP_LIBRARY["genomics"], 16, start, seed=40 + i, user=user)
        j.work_seconds = 1500.0
        jobs.append(j)
    machine.scheduler.submit(jobs[0], 0.0)
    machine.scheduler.submit(jobs[1], 0.0)

    # the filesystem degrades during the second pair of runs, on an OST
    # inside the second jobs' stripes
    machine.faults.add(SlowOst(start=2600.0, duration=2600.0, ost=3,
                               bw_factor=0.08))

    pipeline = MonitoringPipeline(
        machine, collectors=default_collectors(machine, seed=4)
    )
    pipeline.run(duration_s=2600.0, dt=10.0)
    machine.scheduler.submit(jobs[2], machine.now)
    machine.scheduler.submit(jobs[3], machine.now)
    pipeline.run(duration_s=4000.0, dt=10.0)

    for user in ("alice", "bob"):
        print(f"\n################ {user}'s runs ################")
        mine = [j for j in jobs if j.user == user]
        for j in mine:
            report = job_report(
                user, j.id,
                index=pipeline.jobs, tsdb=pipeline.tsdb,
                logs=pipeline.logs, topo=topo,
            )
            print()
            print(report.render())

    # cross-user access is refused
    alices_job = jobs[0]
    try:
        job_report("bob", alices_job.id,
                   index=pipeline.jobs, tsdb=pipeline.tsdb,
                   logs=pipeline.logs, topo=topo)
        raise AssertionError("bob must not read alice's job")
    except PermissionError as e:
        print(f"\naccess control: {e}")

    # the runtimes themselves tell the story the reports explain
    r1, r2 = jobs[0].runtime, jobs[2].runtime
    print(f"\nalice's runtimes: clean {r1:.0f}s vs degraded {r2:.0f}s "
          f"({r2 / r1:.2f}x slower) — and her second report says why.")


if __name__ == "__main__":
    main()
