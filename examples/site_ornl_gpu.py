#!/usr/bin/env python
"""ORNL story: the sulfur-corrosion GPU failure wave, end to end.

Reproduces the Titan experience (Section II-6): ~2.5 years into
production the GPU failure rate climbed; the root cause was corrosive-
gas exposure of non-sulfur-resistant parts.  The remediation was (a)
machine-room environmental monitoring against ASHRAE severity limits
and (b) sulfur-resistant materials in replacement parts.

The timeline here compresses years to simulated months:

1. clean-room phase — background failure rate only;
2. corrosion excursion — ECC errors climb, then GPUs start dropping;
   the failure-rate tracker raises the alarm and the environment
   collector flags the ASHRAE excursion;
3. remediation — failed GPUs are replaced with sulfur-resistant parts;
   the wave dies out even though the room stays dirty for a while.

Run:  python examples/site_ornl_gpu.py
"""

import numpy as np

from repro.analysis.trend import FailureRateTracker
from repro.cluster import CorrosionExcursion, Machine, build_dragonfly
from repro.core.events import EventKind
from repro.pipeline import MonitoringPipeline
from repro.sources.environment import (
    ASHRAE_G1_CORROSION_LIMIT,
    EnvironmentCollector,
)
from repro.sources.sedc import SedcCollector

DAY = 86400.0


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, gpu_nodes="all", seed=29,
                      gpu_failure_kills_job=False)
    # accelerate ageing so the wave fits the example's runtime: the
    # population starts partway through its life
    machine.gpus.health[:] = np.random.default_rng(1).uniform(
        0.02, 0.30, machine.gpus.n
    )

    pipeline = MonitoringPipeline(
        machine,
        collectors=[
            SedcCollector(interval_s=6 * 3600.0),
            EnvironmentCollector(interval_s=6 * 3600.0),
        ],
    )
    tracker = FailureRateTracker(window_s=10 * DAY)

    corrosion = CorrosionExcursion(start=30 * DAY, duration=90 * DAY,
                                   rate=1600.0)
    machine.faults.add(corrosion)

    replaced: list[str] = []
    alarm_day = None
    phases = {"clean": (0, 30), "excursion": (30, 75),
              "remediation": (75, 120)}

    for day in range(120):
        machine.run(DAY, dt=7200.0)
        pipeline.router.pump(machine)
        for ev in pipeline.tap.drain():
            pipeline.logs.append(ev)
            if ev.kind is EventKind.HWERR and "fallen off" in ev.message:
                tracker.record(ev.time)
        pipeline.scheduler.poll(machine, machine.now)

        if alarm_day is None and tracker.elevated(machine.now,
                                                  min_recent=4):
            alarm_day = day
        # remediation phase: swap failed parts for sulfur-resistant ones
        if day >= 75:
            for host in machine.gpus.failed_hosts():
                machine.gpus.replace(host, sulfur_resistant=True)
                replaced.append(host)

    print("=== ORNL GPU failure wave timeline ===")
    for label, (d0, d1) in phases.items():
        t0, t1 = d0 * DAY, d1 * DAY
        n = sum(1 for t in tracker._times if t0 <= t < t1)
        print(f"  {label:12} days {d0:3d}-{d1:3d}: {n:3d} GPU failures")
    print(f"\nfailure-rate alarm raised on day {alarm_day} "
          f"(excursion began day 30)")
    assert alarm_day is not None and 30 <= alarm_day <= 80

    # environmental monitoring caught the cause
    env_alerts = pipeline.logs.search(["ashrae"])
    corr = pipeline.tsdb.query("env.corrosion_rate", "room0")
    over = corr.values > ASHRAE_G1_CORROSION_LIMIT
    print(f"ASHRAE excursion events logged: {len(env_alerts)}; "
          f"corrosion-rate samples over the G1 limit: {over.sum()}"
          f"/{len(over)}")

    # ECC errors led the failures (the early-warning signal)
    ecc = pipeline.tsdb.query_components("gpu.ecc_dbe")
    total_ecc = sum(b.values[-1] for b in ecc.values() if len(b))
    print(f"cumulative double-bit ECC errors across the fleet: "
          f"{total_ecc:.0f} (rising ECC preceded the drops)")

    print(f"\nremediation: {len(replaced)} GPUs replaced with "
          f"sulfur-resistant parts from day 75")
    post = sum(1 for t in tracker._times if t >= 100 * DAY)
    print(f"failures in the final 20 days (room still recovering, parts "
          f"immune): {post}")
    assert post <= 2, "the wave must die out after remediation"


if __name__ == "__main__":
    main()
