#!/usr/bin/env python
"""SNL story: congestion levels and regions from HSN counters.

Reproduces the Sandia methodology (Section II-9): synchronized per-link
stall/traffic counters -> congestion levels -> connected congestion
*regions* over the topology -> which jobs the region impacts.  Runs on
both interconnects the paper targets: an Aries-style dragonfly and a
Gemini-style 3D torus.

Run:  python examples/site_snl_congestion.py
"""


from repro.analysis.congestion import (
    congestion_levels,
    congestion_regions,
    jobs_touching_region,
)
from repro.cluster import (
    Machine,
    ScatteredPlacement,
    build_dragonfly,
    build_torus,
)
from repro.cluster.workload import APP_LIBRARY, Job
from repro.pipeline import MonitoringPipeline
from repro.sources.counters import NetLinkCollector
from repro.viz.topoview import by_link_class, group_pair_matrix, render_group_matrix


def run_and_analyze(topo, label: str, seed: int = 3) -> None:
    print(f"=== {label}: {len(topo.nodes)} nodes, "
          f"{len(topo.links)} links ===")
    machine = Machine(topo, placement=ScatteredPlacement(), seed=seed)

    # the aggressor: a large all-to-all job scattered across the fabric,
    # plus an innocent bystander
    aggressor = Job(APP_LIBRARY["cfd_fft"], min(64, len(topo.nodes) // 2),
                    0.0, seed=seed)
    bystander = Job(APP_LIBRARY["qmc"], 8, 0.0, seed=seed + 1)
    machine.scheduler.submit(aggressor, 0.0)
    machine.scheduler.submit(bystander, 0.0)

    pipeline = MonitoringPipeline(
        machine, collectors=[NetLinkCollector(interval_s=30.0)]
    )
    pipeline.run(duration_s=900.0, dt=10.0)

    stall = machine.network.link_stall_ratio
    levels = congestion_levels(stall)
    counts = {name: int((levels == i).sum())
              for i, name in enumerate(("none", "low", "medium", "high"))}
    print(f"link congestion levels: {counts}")

    print("by link class:")
    for klass, agg in by_link_class(topo, stall).items():
        print(f"  {klass:6} mean={agg['mean']:.3f} max={agg['max']:.3f} "
              f"links={agg['count']:.0f}")

    regions = congestion_regions(topo, stall, min_level=1)
    print(f"congestion regions (level>=low): {len(regions)}")
    for r in regions[:3]:
        print(f"  region: {r.size} links, {len(r.routers)} routers, "
              f"groups {r.groups}, mean stall {r.mean_stall:.3f}, "
              f"max {r.max_stall:.3f}")

    if regions:
        touched = jobs_touching_region(
            topo, regions[0], pipeline.jobs.jobs_active_at(machine.now - 1)
        )
        print(f"jobs with traffic crossing the top region: {touched} "
              f"(aggressor is job {aggressor.id})")

    mat = group_pair_matrix(topo, stall)
    print(render_group_matrix(mat))
    print()


def main() -> None:
    run_and_analyze(
        build_dragonfly(groups=3, chassis_per_group=3,
                        blades_per_chassis=4),
        "Aries-style dragonfly",
    )
    run_and_analyze(
        build_torus(4, 4, 4),
        "Gemini-style 3D torus",
    )


if __name__ == "__main__":
    main()
