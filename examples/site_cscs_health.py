#!/usr/bin/env python
"""CSCS story: pre-/post-job health gating on a GPU machine.

Reproduces the Piz Daint policy (Section II-5): "no job should start on
a node with a problem, and a problem should only be encountered by at
most one batch job - the job that was running when the problem first
occurred."

We run the same GPU-failure workload twice — once without gating, once
with the pre/post-job health suite wired into the scheduler — and count
per broken node how many jobs were *exposed* to it: the job killed by
the failure plus any job later scheduled onto the still-broken node.
The gate must cap exposure at one.

Run:  python examples/site_cscs_health.py
"""

import numpy as np

from repro.cluster import Machine, PackedPlacement, build_dragonfly
from repro.cluster.workload import APP_LIBRARY, Job, JobState
from repro.sources.health import HealthGate, NodeHealthSuite


def run_scenario(gated: bool, seed: int = 5):
    """A stream of short jobs while GPUs fail underneath them."""
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=PackedPlacement(),
                      gpu_nodes="all", seed=seed,
                      gpu_failure_kills_job=True)
    gate = HealthGate(machine, NodeHealthSuite())
    if gated:
        machine.scheduler.health_gate = gate.gate

    rng = np.random.default_rng(seed)
    fail_times = sorted(rng.uniform(300.0, 5400.0, 6))
    fail_nodes = [str(n) for n in rng.choice(topo.nodes, size=6,
                                             replace=False)]
    gpu_failed_at: dict[str, float] = {}

    jobs: list[Job] = []
    next_submit = 0.0
    fail_i = 0
    finished_jobs: set[int] = set()

    while machine.now < 9000.0:
        if machine.now >= next_submit:
            j = Job(APP_LIBRARY["qmc"], 8, machine.now, seed=len(jobs))
            j.work_seconds = 600.0
            machine.scheduler.submit(j, machine.now)
            jobs.append(j)
            next_submit = machine.now + 120.0
        while fail_i < len(fail_times) and machine.now >= fail_times[fail_i]:
            node = fail_nodes[fail_i]
            machine.gpus.health[machine.gpus.index[node]] = 0.0
            gpu_failed_at[node] = machine.now
            fail_i += 1
        machine.step(10.0)
        for j in machine.scheduler.completed:
            if j.id not in finished_jobs:
                finished_jobs.add(j.id)
                if gated:
                    gate.post_job(j)

    # exposure accounting: for each node whose GPU died at time tf,
    # count jobs whose tenure on that node overlapped [tf, end-of-run)
    exposure: dict[str, int] = {}
    for node, tf in gpu_failed_at.items():
        hit = 0
        for j in jobs:
            if j.start_time is None or node not in j.nodes:
                continue
            end = j.end_time if j.end_time is not None else machine.now
            if end > tf:
                hit += 1
        exposure[node] = hit
    return machine, gate, jobs, exposure


def main() -> None:
    print("scenario: 6 GPU failures under a steady stream of 8-node jobs\n")
    worst_by_policy = {}
    for gated in (False, True):
        machine, gate, jobs, exposure = run_scenario(gated)
        completed = [j for j in jobs if j.state is JobState.COMPLETED]
        failed = [j for j in jobs if j.state is JobState.FAILED]
        label = "WITH pre/post-job health gate" if gated else "NO gate"
        print(f"--- {label} ---")
        print(f"  jobs submitted: {len(jobs)}, completed: {len(completed)}, "
              f"failed: {len(failed)}")
        if gated:
            print(f"  pre-start gate rejections: {gate.pre_rejections}")
            print(f"  nodes drained after post-job check: "
                  f"{sorted(set(gate.drained))}")
        print(f"  jobs exposed per broken node: {exposure}")
        worst = max(exposure.values(), default=0)
        worst_by_policy[label] = worst
        print(f"  max jobs exposed to any single broken node: {worst}\n")

    assert worst_by_policy["WITH pre/post-job health gate"] <= 1, \
        "gating must cap exposure at one job"
    print("the gate enforces the paper's invariant: a problem is "
          "encountered by at most one batch job.")


if __name__ == "__main__":
    main()
