#!/usr/bin/env python
"""HLRS story: aggressor/victim classification from runtime variability.

Reproduces the Hazel Hen approach (Section II-10): applications with
high runtime variability are classified as victims; stable applications
running concurrently with victim runs are the aggressor suspects, with
the HSN assumed to be the contended resource.

The workload alternates a communication-sensitive app (lammps) with and
without a co-running all-to-all app (cfd_fft).  Contention emerges from
the shared network model — nobody tells the classifier which runs were
contended; it sees only runtimes and concurrency.

Run:  python examples/site_hlrs_aggressor.py
"""

import numpy as np

from repro.analysis.aggressor import classify
from repro.cluster import Machine, ScatteredPlacement, build_dragonfly
from repro.cluster.workload import AppProfile, CommPattern, Job, Phase
from repro.pipeline import MonitoringPipeline


# a communication-dominated victim candidate: most progress gated on HSN
VICTIM_APP = AppProfile(
    name="spectral",
    phases=(Phase(1.0, cpu_util=0.8, comm_Bps=600e6),),
    comm_pattern=CommPattern.ALLTOALL,
    work_seconds=1200.0,
    comm_weight=0.85,
    runtime_noise=0.01,
    typical_nodes=(24,),
)

# the aggressor: saturates the shared links but barely depends on them
# itself (bulk-synchronous sender), so its own runtime stays stable
AGGRESSOR_APP = AppProfile(
    name="transpose",
    phases=(Phase(1.0, cpu_util=0.7, comm_Bps=1.5e9),),
    comm_pattern=CommPattern.ALLTOALL,
    work_seconds=1400.0,
    comm_weight=0.05,
    runtime_noise=0.01,
    typical_nodes=(48,),
)


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(topo, placement=ScatteredPlacement(), seed=17)
    pipeline = MonitoringPipeline(machine, collectors=[])

    rounds = 8
    seq = 0
    for r in range(rounds):
        contended = r % 2 == 1
        start = machine.now
        victim = Job(VICTIM_APP, 24, start, seed=seq); seq += 1
        machine.scheduler.submit(victim, start)
        if contended:
            # the aggressor hammers the shared links alongside
            agg = Job(AGGRESSOR_APP, 48, start, seed=seq); seq += 1
            machine.scheduler.submit(agg, start)
        # run until the machine drains
        while machine.scheduler.running or machine.scheduler.queue:
            pipeline.step(10.0)
            if machine.now - start > 3 * 3600:
                break

    report = classify(pipeline.jobs, cov_threshold=0.05)
    print("runtimes by app:")
    for app, times in sorted(pipeline.jobs.runtimes_by_app().items()):
        arr = np.asarray(times)
        print(f"  {app:10} n={len(arr):2d} mean={arr.mean():7.0f}s "
              f"min={arr.min():7.0f}s max={arr.max():7.0f}s "
              f"cov={arr.std(ddof=1) / arr.mean():.3f}")

    print("\nclassification (victim threshold CoV >= 0.05):")
    for v in report.victims:
        print(f"  VICTIM    {v.app}: cov={v.cov:.3f} over {v.n_runs} runs")
    for v in report.stable:
        print(f"  stable    {v.app}: cov={v.cov:.3f} over {v.n_runs} runs")
    print(f"  aggressor suspects: {report.aggressors}")
    for victim, suspects in report.suspects_by_victim.items():
        print(f"  {victim} was concurrent with: {suspects}")

    assert any(v.app == "spectral" for v in report.victims), \
        "the comm-bound app should classify as victim"
    assert "transpose" in report.aggressors, \
        "the all-to-all app should be the aggressor suspect"
    print("\nthe HSN-contention victim and its aggressor were identified "
          "from runtimes + concurrency alone.")


if __name__ == "__main__":
    main()
