#!/usr/bin/env python
"""CSC + NERSC story: queue monitoring, wait-time estimates, blockage.

Reproduces two related methodologies:

* CSC (Section II-4): queue-length monitoring "to provide users a
  realistic view into the expected wait time for the currently
  submitted workload";
* NERSC (Section II-3): backlog monitoring where "large or sudden
  changes in outstanding demand" indicate trouble.  An injected
  scheduler blockage is caught three ways here, illustrating why sites
  layer detectors: the SEC rule on the scheduler's own log line fires
  instantly; the user-facing wait estimate climbs steadily through the
  window; and the backlog characterizer flags the abrupt drain when
  launches resume (the "sudden change" signature — the slow fill itself
  is deliberately gentle at this arrival rate).

Run:  python examples/site_csc_queue.py
"""


from repro import default_pipeline
from repro.analysis.queueing import characterize, estimate_wait
from repro.cluster import (
    JobGenerator,
    Machine,
    PackedPlacement,
    QueueBlockage,
    build_dragonfly,
)
from repro.viz.render import ascii_chart

BLOCK_START, BLOCK_END = 3600.0, 6000.0


def main() -> None:
    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=450,
                                   max_nodes=16, seed=6),
        seed=19,
    )
    machine.faults.add(
        QueueBlockage(start=BLOCK_START, duration=BLOCK_END - BLOCK_START)
    )

    pipeline = default_pipeline(machine, seed=3)
    pipeline.run(hours=2.5, dt=10.0)

    backlog = pipeline.tsdb.query("queue.backlog_nodeh", "scheduler")
    print(ascii_chart({"backlog node-h": backlog}, height=8,
                      title="queue backlog over the run "
                            f"(blockage [{BLOCK_START:.0f}, "
                            f"{BLOCK_END:.0f}))"))

    # -- detector 1: the SEC rule on the scheduler's log line ----------------
    queue_alerts = [a for a in pipeline.alerts.alerts
                    if a.rule == "queue_blocked"]
    assert queue_alerts, "SEC must alert on the suspension log line"
    print(f"\n[SEC]   t={queue_alerts[0].time:.0f}s: "
          f"{queue_alerts[0].message[:60]}")

    # -- detector 2: the CSC user-facing wait estimate climbs ----------------
    print("\n[CSC]   expected wait for a newly submitted job:")
    waits = {}
    for label, t in (("before", BLOCK_START - 300),
                     ("during", BLOCK_END - 300),
                     ("after drain", machine.now - 300)):
        b = backlog.in_window(t - 90, t + 90)
        if not len(b):
            continue
        waits[label] = estimate_wait(float(b.values[-1]), len(topo.nodes))
        print(f"    {label:12} (t={t:5.0f}s): backlog "
              f"{b.values[-1]:6.1f} node-h -> wait "
              f"{waits[label] / 60:5.1f} min")
    assert waits["during"] > 3 * waits["before"], \
        "the blockage must visibly inflate the wait estimate"

    # -- detector 3: the backlog characterizer flags the sudden drain --------
    episodes = characterize(backlog)
    drains = [ep for ep in episodes
              if ep.label == "draining" and abs(ep.slope) * 3600 > 500]
    print("\n[NERSC] abrupt backlog changes:")
    for ep in drains:
        print(f"    [{ep.t_start:6.0f}, {ep.t_end:6.0f}) {ep.label} "
              f"slope {ep.slope * 3600:+.0f} node-h/h")
    assert any(
        BLOCK_END - 120 <= ep.t_start <= BLOCK_END + 600 for ep in drains
    ), "the post-blockage drain must register as a sudden change"

    print("\nall three detection paths caught the episode.")


if __name__ == "__main__":
    main()
