"""Normalized query plans: the serving plane's unit of identity.

A :class:`QueryPlan` is the canonical, hashable description of one read
— the result-cache key and the planner's input.  Two textually
different calls that mean the same read (list vs tuple components, int
vs float bounds) normalize to the same plan, so they share one cache
entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["KNOWN_AGGS", "QueryPlan"]

#: the aggregations the store's ``_AGGS`` table supports; plans carrying
#: anything else skip the planner and let the store raise its usual
#: ``unknown agg`` error
KNOWN_AGGS: tuple[str, ...] = ("count", "last", "max", "mean", "min", "sum")


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """One normalized read: what is being asked, not how to answer it.

    ``kind`` is ``"range"`` (raw samples of one series), ``"sweep"``
    (range over many series), ``"downsample"`` or ``"aggregate"``.
    Unused fields are ``None``/0 so equal questions hash equal.
    """

    kind: str
    metric: str
    component: str | None
    components: tuple[str, ...] | None
    t0: float
    t1: float
    step: float
    agg: str

    @classmethod
    def range_query(cls, metric: str, component: str,
                    t0: float, t1: float) -> "QueryPlan":
        return cls("range", metric, str(component), None,
                   float(t0), float(t1), 0.0, "")

    @classmethod
    def sweep(cls, metric: str, components: Sequence[str] | None,
              t0: float, t1: float) -> "QueryPlan":
        comps = (
            tuple(str(c) for c in components)
            if components is not None else None
        )
        return cls("sweep", metric, None, comps,
                   float(t0), float(t1), 0.0, "")

    @classmethod
    def downsample(cls, metric: str, component: str, t0: float, t1: float,
                   step: float, agg: str) -> "QueryPlan":
        return cls("downsample", metric, str(component), None,
                   float(t0), float(t1), float(step), str(agg))

    @classmethod
    def aggregate(cls, metric: str, components: Sequence[str] | None,
                  t0: float, t1: float, step: float,
                  agg: str) -> "QueryPlan":
        comps = (
            tuple(str(c) for c in components)
            if components is not None else None
        )
        return cls("aggregate", metric, None, comps,
                   float(t0), float(t1), float(step), str(agg))
