"""The serving plane: a read-optimized, multi-tenant query front end.

The paper's dashboards and per-job analyses (Figures 1-5, Section IV-C)
are read-heavy: a whole facility of users hammers aggregated views while
ingest never stops.  MPCDF serves job-specific dashboards to every user
of the facility, and DCDB keeps query latency flat via continuous
downsampling at ingest time — this package is that pattern over the
existing stores:

* rollup pyramids (:mod:`repro.storage.rollup`) folded at chunk-seal
  time, answered from the coarsest sufficient level by the planner
  (:mod:`repro.serve.plan`),
* a bounded LRU query-result cache keyed on normalized query plans and
  invalidated precisely by per-metric store epochs
  (:mod:`repro.serve.cache`),
* per-tenant token-bucket quotas and concurrency limits in the
  ``response/governor`` style — rejections are accounted, not raised
  (:mod:`repro.serve.quota`),
* the :class:`~repro.serve.frontend.QueryFrontend` tying them together
  behind the familiar store query surface.
"""

from .cache import QueryResultCache, ResultCacheStats
from .federated import FederatedFrontend, FederatedStats
from .frontend import QueryFrontend, ServeStats
from .plan import QueryPlan
from .quota import TenantGovernor, TenantQuota, TenantStats

__all__ = [
    "FederatedFrontend",
    "FederatedStats",
    "QueryFrontend",
    "QueryPlan",
    "QueryResultCache",
    "ResultCacheStats",
    "ServeStats",
    "TenantGovernor",
    "TenantQuota",
    "TenantStats",
]
