"""Bounded LRU cache of query results, keyed on normalized plans.

The :class:`~repro.storage.chunkcache.ChunkCache` pattern one layer up:
where the chunk cache holds decompressed *inputs* (safe because sealed
chunks are immutable), this cache holds finished *answers* — which are
only immutable until the underlying metric changes.  Exactness is kept
by pairing every entry with the store's per-metric mutation epoch
(``query_epoch``): an entry whose recorded epoch no longer matches is
stale and is dropped on touch, so the cache can never serve an answer
the store would not produce right now.  Dashboards re-asking the same
window between ingest ticks hit; any append/drop/evict/import to the
metric invalidates precisely that metric's entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["QueryResultCache", "ResultCacheStats"]

#: fixed accounting overhead per cached entry (key + bookkeeping)
_ENTRY_OVERHEAD = 128


def _payload_bytes(payload) -> int:
    """Approximate footprint of a cached answer.

    Payloads are :class:`~repro.core.metric.SeriesBatch`es or
    dicts of them (the ``query_components`` shape).
    """
    if isinstance(payload, dict):
        return sum(_payload_bytes(b) for b in payload.values())
    return int(payload.times.nbytes + payload.values.nbytes) + 32


@dataclass(frozen=True, slots=True)
class ResultCacheStats:
    hits: int
    misses: int
    stale: int          # entries dropped because the metric's epoch moved
    evictions: int      # entries dropped by the LRU byte bound
    entries: int
    bytes: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryResultCache:
    """Thread-safe byte-bounded LRU of (plan, epoch) -> answer.

    ``max_bytes=0`` disables caching entirely (every get misses, puts
    are dropped) — the knob the benchmarks use to measure the uncached
    path without restructuring callers.
    """

    def __init__(self, max_bytes: int = 16 << 20) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, tuple[int, object, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._stale = 0
        self._evictions = 0

    def get(self, plan, epoch: int):
        """The cached answer for ``plan``, or None.

        ``epoch`` is the metric's current mutation epoch; an entry
        recorded under an older epoch is stale and dropped on touch.
        Callers must treat returned payloads as immutable — they are
        shared between every hit.
        """
        with self._lock:
            entry = self._entries.get(plan)
            if entry is None:
                self._misses += 1
                return None
            ent_epoch, payload, nbytes = entry
            if ent_epoch != epoch:
                del self._entries[plan]
                self._bytes -= nbytes
                self._stale += 1
                self._misses += 1
                return None
            self._entries.move_to_end(plan)
            self._hits += 1
            return payload

    def put(self, plan, epoch: int, payload) -> None:
        if self.max_bytes <= 0:
            return
        nbytes = _payload_bytes(payload) + _ENTRY_OVERHEAD
        with self._lock:
            old = self._entries.pop(plan, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[plan] = (epoch, payload, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, (_, _, gone) = self._entries.popitem(last=False)
                self._bytes -= gone
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters survive (they are lifetime totals)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                stale=self._stale,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
            )
