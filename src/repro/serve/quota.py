"""Per-tenant admission control for the serving plane.

The :class:`~repro.response.governor.PowerGovernor` style applied to
reads: a tenant over its budget is *deferred, not thrown at* — ``admit``
returns False and the rejection is accounted, so operators see exactly
who is being shed and why (rate vs concurrency), and the front end
degrades that tenant's query to an empty answer instead of an exception
mid-dashboard.

Each tenant gets a token bucket (``qps`` sustained refill, ``burst``
capacity) plus an in-flight concurrency cap.  The clock is injectable:
the pipeline passes the simulated clock so quota behavior is
deterministic in tests and scenarios, while a standalone front end
defaults to ``time.monotonic``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = ["TenantGovernor", "TenantQuota", "TenantStats"]


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Admission budget for one tenant; defaults are unlimited.

    A finite ``qps`` with the default ``burst`` gets a bucket capacity
    of ``max(1, qps)`` — one second of sustained rate — so setting just
    a rate behaves as a rate limit.
    """

    qps: float = math.inf          # sustained queries/s (token refill)
    burst: float = math.inf        # token-bucket capacity
    max_concurrent: int = 1 << 30  # in-flight query cap

    @property
    def effective_burst(self) -> float:
        if math.isfinite(self.burst):
            return self.burst
        if math.isfinite(self.qps):
            return max(1.0, self.qps)
        return math.inf


@dataclass(frozen=True, slots=True)
class TenantStats:
    """Lifetime admission counters for one tenant."""

    admitted: int
    rejected_rate: int
    rejected_concurrency: int

    @property
    def rejected(self) -> int:
        return self.rejected_rate + self.rejected_concurrency


class _TenantState:
    __slots__ = ("quota", "tokens", "last_refill", "in_flight",
                 "admitted", "rejected_rate", "rejected_concurrency")

    def __init__(self, quota: TenantQuota, now: float) -> None:
        self.quota = quota
        self.tokens = quota.effective_burst
        self.last_refill = now
        self.in_flight = 0
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_concurrency = 0


class TenantGovernor:
    """Token-bucket + concurrency admission across every tenant.

    ``quotas`` maps tenant name -> :class:`TenantQuota`; unknown tenants
    get ``default`` (unlimited unless configured otherwise), so an
    unconfigured deployment admits everything while still accounting
    per-tenant traffic.
    """

    def __init__(
        self,
        quotas: Mapping[str, TenantQuota] | None = None,
        default: TenantQuota = TenantQuota(),
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.default = default
        self.clock = clock if clock is not None else time.monotonic
        self._quotas = dict(quotas) if quotas else {}
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._quotas[tenant] = quota
            state = self._tenants.get(tenant)
            if state is not None:
                state.quota = quota
                state.tokens = min(state.tokens, quota.effective_burst)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self.default)
            state = _TenantState(quota, self.clock())
            self._tenants[tenant] = state
        return state

    def admit(self, tenant: str) -> bool:
        """Try to admit one query; False means shed (and accounted)."""
        now = self.clock()
        with self._lock:
            state = self._state(tenant)
            quota = state.quota
            if state.in_flight >= quota.max_concurrent:
                state.rejected_concurrency += 1
                return False
            if math.isfinite(state.tokens):
                refill = (now - state.last_refill) * quota.qps
                if refill > 0:
                    state.tokens = min(quota.effective_burst,
                                       state.tokens + refill)
                state.last_refill = now
                if state.tokens < 1.0:
                    state.rejected_rate += 1
                    return False
                state.tokens -= 1.0
            state.in_flight += 1
            state.admitted += 1
            return True

    def release(self, tenant: str) -> None:
        """Return one admitted query's concurrency slot."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None and state.in_flight > 0:
                state.in_flight -= 1

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenant_stats(self, tenant: str) -> TenantStats:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return TenantStats(0, 0, 0)
            return TenantStats(state.admitted, state.rejected_rate,
                               state.rejected_concurrency)

    def totals(self) -> TenantStats:
        with self._lock:
            return TenantStats(
                sum(s.admitted for s in self._tenants.values()),
                sum(s.rejected_rate for s in self._tenants.values()),
                sum(s.rejected_concurrency for s in self._tenants.values()),
            )
