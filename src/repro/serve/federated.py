"""Cross-site federated reads over per-site query front ends.

:class:`FederatedFrontend` is the MPCDF-style single query surface over
N heterogeneous sites: every component name is qualified as
``"site/component"``, single-series calls route to the owning site's
:class:`~repro.serve.frontend.QueryFrontend` (admission, caching, and
planning all happen *there*, so per-site tenancy and quotas stay
intact), and ``aggregate_across`` fans out raw per-site reads and
merges them through the partial-column machinery
(:func:`~repro.storage.rollup.fold_partials` /
:func:`~repro.storage.rollup.reduce_partials`) — the same columns the
rollup pyramids use — so a cross-site answer is bit-exact against
concatenating the per-site raw reads into one store.

Unreachable sites mirror the failed-shard semantics of the sharded
store: a site that is marked down (or whose front end raises) is
skipped, the answer covers the remaining sites, and the degradation is
*accounted* — ``stats()`` reports the partial answers and per-site
errors rather than anyone seeing an exception.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.metric import SeriesBatch
from ..storage.rollup import bucket_anchor, fold_partials, reduce_partials
from .frontend import DEFAULT_TENANT, QueryFrontend
from .plan import KNOWN_AGGS

__all__ = ["FederatedFrontend", "FederatedStats"]


@dataclass(frozen=True)
class FederatedStats:
    """Lifetime federation counters (the accounted-degradation surface)."""

    sites: int                 # participating front ends
    queries: int               # federated calls answered
    fanouts: int               # per-site sub-calls issued
    partial_answers: int       # answers missing >= 1 site
    site_errors: Mapping[str, int]   # raises swallowed, per site
    down: tuple[str, ...]      # sites currently marked unreachable


class FederatedFrontend:
    """One read surface over many per-site :class:`QueryFrontend`s."""

    def __init__(self, frontends: Mapping[str, QueryFrontend]) -> None:
        if not frontends:
            raise ValueError("a federation needs at least one site")
        for name in frontends:
            if not name or "/" in name:
                raise ValueError(
                    f"bad site name {name!r}: must be non-empty, no '/'"
                )
        self.frontends: dict[str, QueryFrontend] = dict(frontends)
        self._down: set[str] = set()
        self._lock = threading.Lock()
        self._queries = 0
        self._fanouts = 0
        self._partial_answers = 0
        self._site_errors: dict[str, int] = {}

    # -- site reachability --------------------------------------------------

    def sites(self) -> list[str]:
        return list(self.frontends)

    def mark_down(self, site: str) -> None:
        """Declare a site unreachable (network partition, maintenance)."""
        self._check_site(site)
        self._down.add(site)

    def mark_up(self, site: str) -> None:
        self._check_site(site)
        self._down.discard(site)

    def _check_site(self, site: str) -> None:
        if site not in self.frontends:
            raise ValueError(
                f"unknown site {site!r}; federation has: "
                f"{', '.join(self.frontends)}"
            )

    def _split(self, component: str) -> tuple[str, str]:
        site, sep, local = component.partition("/")
        if not sep:
            raise ValueError(
                f"federated component names are 'site/component'; got "
                f"{component!r}"
            )
        self._check_site(site)
        return site, local

    # -- per-site sub-calls, with accounted degradation ---------------------

    def _site_call(self, site: str, fn, default):
        """One fan-out leg; a down or raising site yields ``default``.

        Returns ``(result, ok)`` — the caller folds ``ok`` into the
        partial-answer accounting, mirroring how the sharded store turns
        a failed shard into an accounted partial result instead of an
        exception.
        """
        with self._lock:
            self._fanouts += 1
        if site in self._down:
            return default, False
        try:
            return fn(), True
        except Exception:    # swallow: allowed — degraded sites are
            # accounted in stats(), not raised to the reader
            with self._lock:
                self._site_errors[site] = (
                    self._site_errors.get(site, 0) + 1
                )
            return default, False

    def _note_query(self, complete: bool) -> None:
        with self._lock:
            self._queries += 1
            if not complete:
                self._partial_answers += 1

    # -- the familiar query surface, site-qualified -------------------------

    def components(self, metric: str,
                   tenant: str = DEFAULT_TENANT) -> list[str]:
        """All sites' components, qualified ``site/component``."""
        out: list[str] = []
        complete = True
        for site, fe in self.frontends.items():
            comps, ok = self._site_call(
                site, lambda fe=fe: fe.components(metric, tenant=tenant), []
            )
            complete = complete and ok
            out.extend(f"{site}/{c}" for c in comps)
        self._note_query(complete)
        return out

    def query(self, metric: str, component: str,
              t0: float = -np.inf, t1: float = np.inf,
              tenant: str = DEFAULT_TENANT) -> SeriesBatch:
        site, local = self._split(component)
        fe = self.frontends[site]
        batch, ok = self._site_call(
            site,
            lambda: fe.query(metric, local, t0, t1, tenant=tenant),
            SeriesBatch.empty(metric),
        )
        self._note_query(ok)
        return batch

    def downsample(self, metric: str, component: str, t0: float, t1: float,
                   step: float, agg: str = "mean",
                   tenant: str = DEFAULT_TENANT) -> SeriesBatch:
        """Route one site's downsample; exactness holds site-locally."""
        site, local = self._split(component)
        fe = self.frontends[site]
        batch, ok = self._site_call(
            site,
            lambda: fe.downsample(metric, local, t0, t1, step, agg,
                                  tenant=tenant),
            SeriesBatch.empty(metric),
        )
        self._note_query(ok)
        return batch

    def query_components(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        tenant: str = DEFAULT_TENANT,
    ) -> dict[str, SeriesBatch]:
        """Per-component batches across sites, qualified keys."""
        out: dict[str, SeriesBatch] = {}
        complete = True
        for site, local, ok in self._resolve(metric, components, tenant):
            complete = complete and ok
            if not ok or not local:
                continue
            fe = self.frontends[site]
            batch, got = self._site_call(
                site,
                lambda fe=fe, local=local: fe.query(
                    metric, local, t0, t1, tenant=tenant),
                None,
            )
            complete = complete and got
            if batch is not None:
                out[f"{site}/{local}"] = batch
        self._note_query(complete)
        return out

    # -- the cross-site exact merge -----------------------------------------

    def _resolve(
        self,
        metric: str,
        components: Sequence[str] | None,
        tenant: str,
    ) -> list[tuple[str, str, bool]]:
        """Expand the component selection to ``(site, local, ok)`` rows.

        ``None`` means every component of every site, in site order then
        each site's own component order — exactly the order one merged
        store holding ``site/component`` series site-major would
        enumerate, which is what keeps ``last`` tie-breaks oracle-exact.
        """
        if components is not None:
            return [(*self._split(c), True) for c in components]
        rows: list[tuple[str, str, bool]] = []
        for site, fe in self.frontends.items():
            comps, ok = self._site_call(
                site, lambda fe=fe: fe.components(metric, tenant=tenant),
                [],
            )
            rows.extend((site, c, ok) for c in comps)
            if not ok:
                rows.append((site, "", False))   # unreachable marker
        return rows

    def aggregate_across(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        step: float = 60.0,
        agg: str = "sum",
        tenant: str = DEFAULT_TENANT,
    ) -> SeriesBatch:
        """Cross-site aggregate, exact via partial-column merging.

        Each selected component's raw window is read through its own
        site's front end (per-site admission applies), folded into
        partial columns on the shared ``(anchor, step)`` grid, and
        merged with :func:`reduce_partials` ranked by site-major
        component position — reproducing bit-for-bit the stable
        time-sort concat the raw single-store path performs.
        Unreachable sites contribute nothing and the answer is counted
        partial.
        """
        if agg not in KNOWN_AGGS:
            raise ValueError(f"unknown agg {agg!r}")
        if step <= 0:
            raise ValueError("step must be positive")
        rows = self._resolve(metric, components, tenant)
        complete = all(ok for _, _, ok in rows)
        batches: list[SeriesBatch] = []
        for site, local, ok in rows:
            if not ok or not local:
                continue
            fe = self.frontends[site]
            batch, got = self._site_call(
                site,
                lambda fe=fe, local=local: fe.query(
                    metric, local, t0, t1, tenant=tenant),
                None,
            )
            complete = complete and got
            if batch is not None and len(batch):
                batches.append(batch)
        self._note_query(complete)
        if not batches:
            return SeriesBatch.empty(metric)
        lo = (
            t0 if np.isfinite(t0)
            else min(float(b.times[0]) for b in batches)
        )
        anchor = bucket_anchor(lo, step)
        pieces = [
            fold_partials(b.times, b.values, anchor, step) for b in batches
        ]
        out_t, out_v = reduce_partials(
            pieces, anchor, step, agg, piece_comp=range(len(pieces))
        )
        if not len(out_t):
            return SeriesBatch.empty(metric)
        return SeriesBatch.for_component(metric, f"agg({agg})", out_t, out_v)

    # -- stats ---------------------------------------------------------------

    def stats(self) -> FederatedStats:
        with self._lock:
            return FederatedStats(
                sites=len(self.frontends),
                queries=self._queries,
                fanouts=self._fanouts,
                partial_answers=self._partial_answers,
                site_errors=dict(self._site_errors),
                down=tuple(sorted(self._down)),
            )
