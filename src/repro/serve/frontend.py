"""The multi-tenant query front end over any series store.

:class:`QueryFrontend` exposes the familiar store query surface
(``query`` / ``query_components`` / ``downsample`` / ``aggregate_across``
/ ``components``) with three serving-plane behaviors layered on:

1. **admission** — every call names a ``tenant``; the
   :class:`~repro.serve.quota.TenantGovernor` sheds over-budget tenants
   by returning an *empty* answer (accounted, never raised),
2. **result caching** — answers are cached under their normalized
   :class:`~repro.serve.plan.QueryPlan` and revalidated against the
   store's per-metric mutation epoch, so repeated dashboard reads
   between ingest ticks cost a dict lookup,
3. **pyramid planning** — ``downsample``/``aggregate_across`` on a
   step-aligned grid are answered from the coarsest sufficient rollup
   level (:mod:`repro.storage.rollup`), reading pre-aggregated rows
   instead of decompressing chunks; anything the planner cannot prove
   exact falls back to the store's own (summary-pruned) path.

Every answer — cached, pyramid, or fallback — is exactly the answer the
underlying store would give, which the property suite holds as an
invariant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.metric import SeriesBatch
from ..storage.rollup import (
    MAX_PLANNER_TIME,
    bucket_anchor,
    choose_level,
    reduce_partials,
    series_first_time,
    series_window_partials,
)
from .cache import QueryResultCache, ResultCacheStats
from .plan import KNOWN_AGGS, QueryPlan
from .quota import TenantGovernor, TenantQuota, TenantStats

__all__ = ["DEFAULT_TENANT", "QueryFrontend", "ServeStats"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True, slots=True)
class ServeStats:
    """Lifetime serving-plane counters (the selfmon/introspect surface)."""

    queries: int
    rejected: int
    pyramid_answers: int
    raw_answers: int
    cache: ResultCacheStats

    @property
    def admitted(self) -> int:
        return self.queries - self.rejected

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache.hit_ratio

    @property
    def pyramid_ratio(self) -> float:
        planned = self.pyramid_answers + self.raw_answers
        return self.pyramid_answers / planned if planned else 0.0


class QueryFrontend:
    """Multi-tenant read path over one store (plain or sharded).

    The store is duck-typed: anything with the
    :class:`~repro.storage.tsdb.SeriesQueryMixin` surface works.  Stores
    that also expose ``query_epoch`` get result caching; stores whose
    series carry rollup pyramids (``pyramid_levels=...``) get planner
    answers; everything else transparently falls back — same answers,
    fewer shortcuts.
    """

    def __init__(
        self,
        store,
        quotas: Mapping[str, TenantQuota] | None = None,
        default_quota: TenantQuota = TenantQuota(),
        cache: QueryResultCache | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.store = store
        self.result_cache = cache if cache is not None else QueryResultCache()
        self.governor = TenantGovernor(quotas, default=default_quota,
                                       clock=clock)
        self._epoch_of = getattr(store, "query_epoch", None)
        self._lock = threading.Lock()
        self._queries = 0
        self._rejected = 0
        self._pyramid_answers = 0
        self._raw_answers = 0

    # -- admission / caching scaffolding ------------------------------------

    def _admit(self, tenant: str) -> bool:
        ok = self.governor.admit(tenant)
        with self._lock:
            self._queries += 1
            if not ok:
                self._rejected += 1
        return ok

    def _cached(self, plan: QueryPlan):
        if self._epoch_of is None:
            return None, 0
        epoch = self._epoch_of(plan.metric)
        return self.result_cache.get(plan, epoch), epoch

    def _note_answer(self, pyramid: bool) -> None:
        with self._lock:
            if pyramid:
                self._pyramid_answers += 1
            else:
                self._raw_answers += 1

    # -- the store query surface --------------------------------------------

    def components(self, metric: str,
                   tenant: str = DEFAULT_TENANT) -> list[str]:
        if not self._admit(tenant):
            return []
        try:
            return self.store.components(metric)
        finally:
            self.governor.release(tenant)

    def query(self, metric: str, component: str,
              t0: float = -np.inf, t1: float = np.inf,
              tenant: str = DEFAULT_TENANT) -> SeriesBatch:
        if not self._admit(tenant):
            return SeriesBatch.empty(metric)
        try:
            plan = QueryPlan.range_query(metric, component, t0, t1)
            hit, epoch = self._cached(plan)
            if hit is not None:
                return hit
            batch = self.store.query(metric, component, t0, t1)
            if self._epoch_of is not None:
                self.result_cache.put(plan, epoch, batch)
            return batch
        finally:
            self.governor.release(tenant)

    def query_components(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        tenant: str = DEFAULT_TENANT,
    ) -> dict[str, SeriesBatch]:
        if not self._admit(tenant):
            return {}
        try:
            plan = QueryPlan.sweep(metric, components, t0, t1)
            hit, epoch = self._cached(plan)
            if hit is not None:
                return hit
            out = self.store.query_components(metric, components, t0, t1)
            if self._epoch_of is not None:
                self.result_cache.put(plan, epoch, out)
            return out
        finally:
            self.governor.release(tenant)

    def downsample(self, metric: str, component: str, t0: float, t1: float,
                   step: float, agg: str = "mean",
                   tenant: str = DEFAULT_TENANT) -> SeriesBatch:
        if not self._admit(tenant):
            return SeriesBatch.empty(metric)
        try:
            plan = QueryPlan.downsample(metric, component, t0, t1, step, agg)
            hit, epoch = self._cached(plan)
            if hit is not None:
                return hit
            batch = self._answer_downsample(plan)
            if self._epoch_of is not None:
                self.result_cache.put(plan, epoch, batch)
            return batch
        finally:
            self.governor.release(tenant)

    def aggregate_across(
        self,
        metric: str,
        components: Sequence[str] | None = None,
        t0: float = -np.inf,
        t1: float = np.inf,
        step: float = 60.0,
        agg: str = "sum",
        tenant: str = DEFAULT_TENANT,
    ) -> SeriesBatch:
        if not self._admit(tenant):
            return SeriesBatch.empty(metric)
        try:
            plan = QueryPlan.aggregate(metric, components, t0, t1, step, agg)
            hit, epoch = self._cached(plan)
            if hit is not None:
                return hit
            batch = self._answer_aggregate(plan)
            if self._epoch_of is not None:
                self.result_cache.put(plan, epoch, batch)
            return batch
        finally:
            self.governor.release(tenant)

    # -- the planner --------------------------------------------------------

    def _plannable(self, plan: QueryPlan) -> float | None:
        """The grid anchor when the plan's window/step pass the exactness
        guards, else None (fall back to the store)."""
        if plan.agg not in KNOWN_AGGS or plan.step <= 0:
            return None            # let the store raise its usual errors
        if not np.isfinite(plan.t0):
            return None
        if np.isfinite(plan.t1) and abs(plan.t1) > MAX_PLANNER_TIME:
            return None
        anchor = bucket_anchor(plan.t0, plan.step)
        if abs(anchor) > MAX_PLANNER_TIME:
            return None
        return anchor

    def _series_for(self, metric: str, component: str):
        """(series, chunk cache) when the series is readable and carries
        a pyramid; None otherwise."""
        view = getattr(self.store, "_series_view", None)
        if view is None:
            return None
        readable = getattr(self.store, "series_readable", None)
        if readable is not None and not readable(metric, component):
            return None
        sv = view(metric, component)
        if sv is None or getattr(sv[0], "pyramid", None) is None:
            return None
        return sv

    def _answer_downsample(self, plan: QueryPlan) -> SeriesBatch:
        anchor = self._plannable(plan)
        if anchor is not None:
            sv = self._series_for(plan.metric, plan.component)
            if sv is not None:
                series, chunk_cache = sv
                level = choose_level(series.pyramid.levels, plan.step,
                                     anchor)
                if level is not None:
                    pieces = series_window_partials(
                        series, chunk_cache, level,
                        plan.t0, plan.t1, plan.step, anchor,
                    )
                    if pieces is not None:
                        out_t, out_v = reduce_partials(
                            pieces, anchor, plan.step, plan.agg)
                        self._note_answer(pyramid=True)
                        if not len(out_t):
                            return SeriesBatch.empty(plan.metric)
                        return SeriesBatch.for_component(
                            plan.metric, plan.component, out_t, out_v)
        batch = self.store.downsample(plan.metric, plan.component,
                                      plan.t0, plan.t1, plan.step, plan.agg)
        self._note_answer(pyramid=False)
        return batch

    def _answer_aggregate(self, plan: QueryPlan) -> SeriesBatch:
        batch = self._aggregate_from_pyramid(plan)
        if batch is not None:
            self._note_answer(pyramid=True)
            return batch
        batch = self.store.aggregate_across(
            plan.metric, plan.components, plan.t0, plan.t1,
            plan.step, plan.agg)
        self._note_answer(pyramid=False)
        return batch

    def _aggregate_from_pyramid(self, plan: QueryPlan) -> SeriesBatch | None:
        """Cross-component aggregate from rollup rows, or None to fall back.

        Mirrors the raw path exactly: components iterate in the same
        order (so ``last`` tie-breaks agree), unreadable/missing series
        contribute nothing, and an unbounded ``t0`` anchors at the first
        sample across the selected series.
        """
        if plan.agg not in KNOWN_AGGS or plan.step <= 0:
            return None
        if np.isfinite(plan.t1) and abs(plan.t1) > MAX_PLANNER_TIME:
            return None
        comps = (
            list(plan.components) if plan.components is not None
            else self.store.components(plan.metric)
        )
        views = []
        for c in comps:
            sv = self._series_for(plan.metric, c)
            if sv is None:
                if getattr(self.store, "_series_view", None) is None:
                    return None
                # distinguish "no such readable series" (skip, like the
                # raw path's empty batch) from "series has no pyramid"
                readable = getattr(self.store, "series_readable", None)
                if ((readable is None or readable(plan.metric, c))
                        and self.store._series_view(plan.metric, c)
                        is not None):
                    return None    # pyramid-less series: fall back
                continue
            views.append(sv)
        t0 = plan.t0
        if not np.isfinite(t0):
            if not views:
                return None        # nothing to anchor on; fall back
            t_first = min(series_first_time(s) for s, _ in views)
            if not np.isfinite(t_first):
                return None
            t0 = bucket_anchor(t_first, plan.step)
        if abs(t0) > MAX_PLANNER_TIME:
            return None
        anchor = bucket_anchor(t0, plan.step)
        levels = getattr(self.store, "pyramid_levels", None)
        if not levels:
            return None
        level = choose_level(levels, plan.step, anchor)
        if level is None:
            return None
        pieces: list[tuple[np.ndarray, ...]] = []
        piece_comp: list[int] = []
        for idx, (series, chunk_cache) in enumerate(views):
            ps = series_window_partials(series, chunk_cache, level,
                                        t0, plan.t1, plan.step, anchor)
            if ps is None:
                return None        # window has no full bucket
            pieces.extend(ps)
            piece_comp.extend([idx] * len(ps))
        out_t, out_v = reduce_partials(pieces, anchor, plan.step, plan.agg,
                                       piece_comp=piece_comp)
        if not len(out_t):
            return SeriesBatch.empty(plan.metric)
        return SeriesBatch.for_component(plan.metric, f"agg({plan.agg})",
                                         out_t, out_v)

    # -- stats --------------------------------------------------------------

    def stats(self) -> ServeStats:
        with self._lock:
            return ServeStats(
                queries=self._queries,
                rejected=self._rejected,
                pyramid_answers=self._pyramid_answers,
                raw_answers=self._raw_answers,
                cache=self.result_cache.stats(),
            )

    def tenants(self) -> list[str]:
        return self.governor.tenants()

    def tenant_stats(self, tenant: str) -> TenantStats:
        return self.governor.tenant_stats(tenant)
