"""repro — an end-to-end HPC monitoring stack.

Reproduction of *Large-Scale System Monitoring Experiences and
Recommendations* (Ahlgren et al., IEEE CLUSTER 2018, HPCMASPA workshop):
the complete monitoring capability ten large Cray sites describe building
piecemeal — data sources, transport, storage, analysis, visualization,
and response — demonstrated against a simulated large-scale HPC platform
with realistic failure modes.

Quick tour::

    from repro.cluster import Machine, build_dragonfly, JobGenerator
    from repro.pipeline import MonitoringPipeline, default_pipeline

    machine = Machine(build_dragonfly(groups=4),
                      job_generator=JobGenerator(seed=1))
    pipeline = default_pipeline(machine)
    pipeline.run(hours=2)
    print(pipeline.alerts())

Subpackages:

- :mod:`repro.core`      — metric/event datatypes, schema registry, clocks
- :mod:`repro.cluster`   — the simulated platform (topology, network,
  filesystem, scheduler, workload, faults)
- :mod:`repro.sources`   — collectors: counters, SEDC, ERD, logs, probes,
  benchmarks, health checks, power, queue stats
- :mod:`repro.transport` — pluggable transports: flat pub/sub bus,
  partitioned bus, LDMS-style coalescing aggregator tree, syslog
  forwarding
- :mod:`repro.storage`   — time-series store (single or sharded),
  relational store, log store, hierarchical tiering, job index
- :mod:`repro.analysis`  — anomaly/trend/congestion/power-signature/
  aggressor-victim/queue/log analyses
- :mod:`repro.response`  — SEC-style event correlation, alerting, actions
- :mod:`repro.viz`       — aggregation, drill-down dashboards, figures
- :mod:`repro.obs`       — self-observability: trace spans, ``selfmon.*``
  meta-metrics, pipeline introspection ("monitor the monitoring")
"""

__version__ = "1.0.0"

from . import analysis, cluster, core, obs, response, sources, storage, transport, viz
from .pipeline import MonitoringPipeline, default_collectors, default_pipeline

__all__ = [
    "analysis",
    "cluster",
    "core",
    "obs",
    "response",
    "sources",
    "storage",
    "transport",
    "viz",
    "MonitoringPipeline",
    "default_collectors",
    "default_pipeline",
    "__version__",
]
