"""Benchmark performance-variation detection (NERSC Figure 2).

NERSC "publishes performance over time" of its benchmark suite so that
"occurrences and onset of performance problems are apparent in
visualizations tracking performance over time and are used by staff to
drive further investigation and diagnosis."  Section III-B also notes
that "understanding and attributing this variation has been reported to
be the highest priority question sites seek to answer."

:func:`detect_degradations` turns a benchmark's figure-of-merit series
into explicit degradation windows (onset, recovery, depth);
:func:`attribute_window` does the first step of diagnosis by collecting
which events and fault ground truth overlap a degradation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.events import Event
from ..core.metric import SeriesBatch
from .stats import mad

__all__ = ["DegradationWindow", "detect_degradations", "attribute_window"]


@dataclass(frozen=True, slots=True)
class DegradationWindow:
    """One contiguous stretch where a benchmark ran below expectation."""

    benchmark: str
    t_onset: float
    t_recovery: float | None     # None = still degraded at series end
    depth: float                 # worst fractional drop below baseline
    n_points: int


def detect_degradations(
    fom_series: SeriesBatch,
    baseline_points: int = 5,
    drop_fraction: float = 0.10,
) -> list[DegradationWindow]:
    """Find windows where the FOM sits below baseline by more than
    ``drop_fraction``.

    The baseline is the median of the first ``baseline_points`` samples
    (assumed healthy — acceptance-era data); noise robustness comes from
    requiring the drop to exceed both the fraction and 3 robust sigmas.
    """
    n = len(fom_series)
    if n <= baseline_points:
        return []
    v = fom_series.values
    t = fom_series.times
    base = float(np.median(v[:baseline_points]))
    sigma = mad(v[:baseline_points])
    if not np.isfinite(sigma) or sigma == 0:
        sigma = float(np.std(v[:baseline_points])) or 1e-12
    floor = min(base * (1.0 - drop_fraction), base - 3.0 * sigma)

    name = str(fom_series.components[0]) if n else fom_series.metric
    windows: list[DegradationWindow] = []
    in_window = False
    onset = 0.0
    worst = 0.0
    count = 0
    for i in range(n):
        degraded = v[i] < floor
        if degraded and not in_window:
            in_window = True
            onset = float(t[i])
            worst = 0.0
            count = 0
        if degraded:
            worst = max(worst, (base - v[i]) / base)
            count += 1
        if not degraded and in_window:
            windows.append(
                DegradationWindow(name, onset, float(t[i]), worst, count)
            )
            in_window = False
    if in_window:
        windows.append(DegradationWindow(name, onset, None, worst, count))
    return windows


def attribute_window(
    window: DegradationWindow,
    events: Sequence[Event],
    ground_truth: Sequence[Mapping] = (),
    slack_s: float = 120.0,
) -> dict:
    """Collect everything that overlaps a degradation window.

    Returns the events within [onset - slack, recovery + slack] plus the
    injected-fault ground-truth records overlapping the same span — the
    "drive further investigation" handoff, and the oracle tests use to
    check the detector found the right thing.
    """
    t0 = window.t_onset - slack_s
    t1 = (window.t_recovery if window.t_recovery is not None
          else float("inf")) + slack_s
    overlapping_events = [e for e in events if t0 <= e.time < t1]
    overlapping_faults = [
        g
        for g in ground_truth
        if g["start"] < t1
        and (g["end"] is None or g["end"] > t0)
    ]
    return {
        "window": window,
        "events": overlapping_events,
        "faults": overlapping_faults,
    }
