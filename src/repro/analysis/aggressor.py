"""Aggressor/victim classification from runtime variability (HLRS).

Section II-10: HLRS identifies "'aggressor' and 'victim' applications
based on their runtime variability.  Applications having high runtime
variability are classified as 'victim' applications and those running
concurrently that don't hit the 'victim' variability threshold are
considered as possible 'aggressor' applications where the resource
being contended for is assumed to be the HSN."

Inputs are exactly what a site has: completed-job runtimes per
application, plus the concurrency relation from the job-allocation
index.  No interconnect counters are required — which is the method's
appeal and its documented limitation (it names *suspects*, not
convictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping
import numpy as np

from .stats import coefficient_of_variation

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.jobstore import JobIndex

__all__ = ["AppVariability", "AggressorReport", "classify"]


@dataclass(frozen=True, slots=True)
class AppVariability:
    app: str
    n_runs: int
    mean_runtime: float
    cov: float             # coefficient of variation of runtimes
    is_victim: bool


@dataclass(frozen=True, slots=True)
class AggressorReport:
    victims: tuple[AppVariability, ...]
    aggressors: tuple[str, ...]            # suspect app names
    stable: tuple[AppVariability, ...]
    # victim app -> suspect apps seen running concurrently with its runs
    suspects_by_victim: Mapping[str, tuple[str, ...]]


def classify(
    index: "JobIndex",
    cov_threshold: float = 0.10,
    min_runs: int = 3,
) -> AggressorReport:
    """Classify applications into victims / possible aggressors.

    ``cov_threshold`` is the victim variability threshold; apps with
    fewer than ``min_runs`` completed runs are left unclassified (their
    CoV is statistically meaningless).
    """
    runtimes = index.runtimes_by_app()
    variabilities: dict[str, AppVariability] = {}
    for app, times in runtimes.items():
        if len(times) < min_runs:
            continue
        cov = coefficient_of_variation(np.asarray(times))
        variabilities[app] = AppVariability(
            app=app,
            n_runs=len(times),
            mean_runtime=float(np.mean(times)),
            cov=float(cov),
            is_victim=bool(np.isfinite(cov) and cov >= cov_threshold),
        )

    victims = [v for v in variabilities.values() if v.is_victim]
    stable = [v for v in variabilities.values() if not v.is_victim]
    stable_names = {v.app for v in stable}

    # for each victim app, collect stable apps concurrent with its runs
    suspects_by_victim: dict[str, tuple[str, ...]] = {}
    all_suspects: set[str] = set()
    victim_names = {v.app for v in victims}
    for alloc in list(index.jobs_overlapping(-np.inf, np.inf)):
        if alloc.app not in victim_names or alloc.end is None:
            continue
        concurrent = index.concurrent_with(alloc.job_id)
        suspects = {
            a.app
            for a in concurrent
            if a.app in stable_names and a.app != alloc.app
        }
        if suspects:
            prev = set(suspects_by_victim.get(alloc.app, ()))
            suspects_by_victim[alloc.app] = tuple(
                sorted(prev | suspects)
            )
            all_suspects |= suspects

    return AggressorReport(
        victims=tuple(sorted(victims, key=lambda v: -v.cov)),
        aggressors=tuple(sorted(all_suspects)),
        stable=tuple(sorted(stable, key=lambda v: v.app)),
        suspects_by_victim=suspects_by_victim,
    )
