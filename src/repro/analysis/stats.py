"""Shared robust statistics used across the analysis modules.

Telemetry from a big machine is heavy-tailed and contaminated by the
very anomalies we hunt, so location/scale estimates default to robust
forms (median / MAD) rather than mean / stddev.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mad",
    "robust_zscores",
    "ewma",
    "rolling_mean",
    "coefficient_of_variation",
]

# scale factor making MAD a consistent sigma estimator for normal data
_MAD_TO_SIGMA = 1.4826


def mad(x: np.ndarray) -> float:
    """Median absolute deviation, scaled to estimate sigma."""
    x = np.asarray(x, dtype=float)
    x = x[np.isfinite(x)]
    if len(x) == 0:
        return float("nan")
    med = np.median(x)
    return float(_MAD_TO_SIGMA * np.median(np.abs(x - med)))


def robust_zscores(x: np.ndarray) -> np.ndarray:
    """Z-scores against median/MAD; zero-spread data scores 0 everywhere.

    Contaminated samples barely move the median, so one screaming
    component cannot hide itself by inflating the scale estimate — the
    failure mode plain z-scores have on small sweeps.
    """
    x = np.asarray(x, dtype=float)
    finite = x[np.isfinite(x)]
    if len(finite) == 0:
        return np.zeros_like(x)
    med = float(np.median(finite))
    scale = mad(x)
    if not np.isfinite(scale) or scale == 0.0:
        # degenerate bulk (e.g. every idle node at exactly idle power):
        # fall back to the mean absolute deviation, which a single
        # outlier CAN move — scaled to be sigma-consistent for normals
        scale = 1.2533 * float(np.mean(np.abs(finite - med)))
    if scale == 0.0:
        return np.zeros_like(x)   # literally constant: nothing to flag
    return (x - med) / scale


def ewma(x: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average (vectorized recurrence)."""
    if not (0 < alpha <= 1):
        raise ValueError("alpha must be in (0, 1]")
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    acc = x[0] if len(x) else 0.0
    for i, v in enumerate(x):
        acc = alpha * v + (1 - alpha) * acc
        out[i] = acc
    return out


def rolling_mean(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling mean; the first ``window-1`` points use what's
    available (expanding head) rather than NaN."""
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(x, dtype=float)
    csum = np.concatenate([[0.0], np.cumsum(x)])
    out = np.empty_like(x)
    for i in range(len(x)):
        lo = max(0, i + 1 - window)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


def coefficient_of_variation(x: np.ndarray) -> float:
    """std/mean of finite values; NaN when undefined, 0 for constants."""
    x = np.asarray(x, dtype=float)
    x = x[np.isfinite(x)]
    if len(x) < 2:
        return float("nan")
    m = x.mean()
    if m == 0:
        return float("nan")
    return float(x.std(ddof=1) / abs(m))
