"""Shared robust statistics used across the analysis modules.

Telemetry from a big machine is heavy-tailed and contaminated by the
very anomalies we hunt, so location/scale estimates default to robust
forms (median / MAD) rather than mean / stddev.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mad",
    "robust_zscores",
    "ewma",
    "rolling_mean",
    "coefficient_of_variation",
]

# scale factor making MAD a consistent sigma estimator for normal data
_MAD_TO_SIGMA = 1.4826


def mad(x: np.ndarray) -> float:
    """Median absolute deviation, scaled to estimate sigma."""
    x = np.asarray(x, dtype=float)
    x = x[np.isfinite(x)]
    if len(x) == 0:
        return float("nan")
    med = np.median(x)
    return float(_MAD_TO_SIGMA * np.median(np.abs(x - med)))


def robust_zscores(x: np.ndarray) -> np.ndarray:
    """Z-scores against median/MAD; zero-spread data scores 0 everywhere.

    Contaminated samples barely move the median, so one screaming
    component cannot hide itself by inflating the scale estimate — the
    failure mode plain z-scores have on small sweeps.
    """
    x = np.asarray(x, dtype=float)
    finite = x[np.isfinite(x)]
    if len(finite) == 0:
        return np.zeros_like(x)
    med = float(np.median(finite))
    scale = mad(x)
    if not np.isfinite(scale) or scale == 0.0:
        # degenerate bulk (e.g. every idle node at exactly idle power):
        # fall back to the mean absolute deviation, which a single
        # outlier CAN move — scaled to be sigma-consistent for normals
        scale = 1.2533 * float(np.mean(np.abs(finite - med)))
    if scale == 0.0:
        return np.zeros_like(x)   # literally constant: nothing to flag
    return (x - med) / scale


def ewma(x: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average (vectorized recurrence).

    The recurrence ``o_j = alpha*x_j + w*o_{j-1}`` (``w = 1 - alpha``)
    has the closed form ``o_j = w^j * (w*acc + alpha * sum_l x_l w^-l)``
    within a block, so it reduces to a scaled ``cumsum``.  ``w^-l``
    grows without bound, so blocks are sized to keep it well inside
    float64 range and the accumulator is carried across blocks.
    """
    if not (0 < alpha <= 1):
        raise ValueError("alpha must be in (0, 1]")
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n == 0:
        return np.empty_like(x)
    if alpha == 1.0:
        # still `x[i] + 0*acc` in the recurrence: 0*(nan or inf) = nan,
        # so a non-finite sample poisons every later output (and the
        # seed term poisons out[0] itself)
        out = x.copy()
        bad = np.logical_or.accumulate(~np.isfinite(x))
        prev_bad = np.concatenate(([~np.isfinite(x[0])], bad[:-1]))
        out[prev_bad] = np.nan
        return out
    w = 1.0 - alpha
    # keep w^-(block-1) below ~1e200 so cumsum terms cannot overflow
    block = max(1, min(n, int(200.0 / -np.log10(w))))
    out = np.empty_like(x)
    powers = w ** np.arange(block)
    acc = x[0]
    for start in range(0, n, block):
        xb = x[start: start + block]
        m = len(xb)
        p = powers[:m]
        s = np.cumsum(xb / p)
        ob = p * (w * acc + alpha * s)
        out[start: start + m] = ob
        acc = ob[-1]
    return out


def _ewma_slow(x: np.ndarray, alpha: float) -> np.ndarray:
    """Per-sample reference for :func:`ewma`."""
    if not (0 < alpha <= 1):
        raise ValueError("alpha must be in (0, 1]")
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    acc = x[0] if len(x) else 0.0
    for i, v in enumerate(x):
        acc = alpha * v + (1 - alpha) * acc
        out[i] = acc
    return out


def rolling_mean(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling mean; the first ``window-1`` points use what's
    available (expanding head) rather than NaN."""
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(x, dtype=float)
    csum = np.concatenate([[0.0], np.cumsum(x)])
    idx = np.arange(len(x))
    lo = np.maximum(0, idx + 1 - window)
    return (csum[idx + 1] - csum[lo]) / (idx + 1 - lo)


def _rolling_mean_slow(x: np.ndarray, window: int) -> np.ndarray:
    """Per-sample reference for :func:`rolling_mean`."""
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(x, dtype=float)
    csum = np.concatenate([[0.0], np.cumsum(x)])
    out = np.empty_like(x)
    for i in range(len(x)):
        lo = max(0, i + 1 - window)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


def coefficient_of_variation(x: np.ndarray) -> float:
    """std/mean of finite values; NaN when undefined, 0 for constants."""
    x = np.asarray(x, dtype=float)
    x = x[np.isfinite(x)]
    if len(x) < 2:
        return float("nan")
    m = x.mean()
    if m == 0:
        return float("nan")
    return float(x.std(ddof=1) / abs(m))
