"""Streaming analysis: detectors that run at ingest, not over the store.

Table I (*Analysis and Visualization*): "Analysis capabilities should be
supported at variety of locations within the monitoring infrastructure
(e.g., at data sources, as streaming analysis, at the store, at points
of exposure to consumers)."  The store-side analyses live in the sibling
modules; this module provides the *streaming* location — operators that
subscribe to bus topics and evaluate every batch as it flows past,
with O(1) state per series:

* :class:`StreamingStats` — running mean/min/max/count per series
  (Welford), queryable at any moment without touching a store;
* :class:`StreamingOutlierDetector` — robust sweep-outlier detection on
  every synchronized sweep at ingest; detections are available the
  instant the sweep lands rather than at the next analysis-hook cadence;
* :class:`StreamingRateWatch` — counter-rate watchdog: flags a series
  whose derivative exceeds a limit (e.g. error counters accelerating).

All three attach to a :class:`~repro.transport.bus.MessageBus` with one
call and expose drainable detection queues, so the pipeline can treat
them exactly like analysis hooks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.metric import MetricKey, SeriesBatch
from .anomaly import Detection, sweep_outliers

if TYPE_CHECKING:  # pragma: no cover
    from ..transport.bus import MessageBus, Subscription

__all__ = [
    "RunningMoments",
    "StreamingStats",
    "StreamingOutlierDetector",
    "StreamingRateWatch",
]


@dataclass
class RunningMoments:
    """Welford running moments for one series (O(1) memory)."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, x: float) -> None:
        if not math.isfinite(x):
            return
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    @property
    def variance(self) -> float:
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class _BusAttached:
    """Shared plumbing: subscribe to a topic pattern with a callback."""

    def __init__(self) -> None:
        self._sub: "Subscription | None" = None

    def attach(self, bus: "MessageBus", pattern: str = "metrics.*") -> None:
        self._sub = bus.subscribe(pattern, callback=self._on_envelope,
                                  name=type(self).__name__)

    def _on_envelope(self, env) -> None:
        payload = env.payload
        if isinstance(payload, SeriesBatch):
            self.observe(payload)

    def observe(self, batch: SeriesBatch) -> None:  # pragma: no cover
        raise NotImplementedError


class StreamingStats(_BusAttached):
    """Running per-series statistics maintained at ingest."""

    def __init__(self) -> None:
        super().__init__()
        self._moments: dict[MetricKey, RunningMoments] = {}
        self.batches_seen = 0

    def observe(self, batch: SeriesBatch) -> None:
        self.batches_seen += 1
        for c, v in zip(batch.components, batch.values):
            key = MetricKey(batch.metric, str(c))
            m = self._moments.get(key)
            if m is None:
                m = self._moments[key] = RunningMoments()
            m.update(float(v))

    def get(self, metric: str, component: str) -> RunningMoments | None:
        return self._moments.get(MetricKey(metric, component))

    def series_count(self) -> int:
        return len(self._moments)


class StreamingOutlierDetector(_BusAttached):
    """Per-sweep robust outlier detection, evaluated at ingest."""

    def __init__(
        self,
        metrics: tuple[str, ...],
        z_threshold: float = 5.0,
        min_sweep: int = 8,
    ) -> None:
        super().__init__()
        self.metrics = set(metrics)
        self.z_threshold = float(z_threshold)
        self.min_sweep = int(min_sweep)
        self._detections: list[Detection] = []
        self.sweeps_checked = 0

    def observe(self, batch: SeriesBatch) -> None:
        if batch.metric not in self.metrics or len(batch) < self.min_sweep:
            return
        self.sweeps_checked += 1
        self._detections.extend(
            sweep_outliers(batch, z_threshold=self.z_threshold)
        )

    def drain(self) -> list[Detection]:
        out = self._detections
        self._detections = []
        return out


class StreamingRateWatch(_BusAttached):
    """Flags series whose rate of change exceeds a limit.

    Designed for cumulative counters (``gpu.ecc_dbe``, error tallies):
    remembers only the previous sample per series and fires when
    ``(v - prev_v) / (t - prev_t)`` crosses ``max_rate``.
    """

    def __init__(self, metric: str, max_rate_per_s: float) -> None:
        super().__init__()
        self.metric = metric
        self.max_rate_per_s = float(max_rate_per_s)
        self._last: dict[str, tuple[float, float]] = {}
        self._detections: list[Detection] = []

    def observe(self, batch: SeriesBatch) -> None:
        if batch.metric != self.metric:
            return
        for c, t, v in zip(batch.components, batch.times, batch.values):
            comp = str(c)
            prev = self._last.get(comp)
            self._last[comp] = (float(t), float(v))
            if prev is None:
                continue
            pt, pv = prev
            dt = float(t) - pt
            if dt <= 0:
                continue
            rate = (float(v) - pv) / dt
            if rate > self.max_rate_per_s:
                self._detections.append(
                    Detection(
                        time=float(t),
                        metric=self.metric,
                        component=comp,
                        score=rate / self.max_rate_per_s,
                        kind="threshold",
                        detail=(
                            f"rate {rate:.4g}/s exceeds "
                            f"{self.max_rate_per_s:g}/s"
                        ),
                    )
                )

    def drain(self) -> list[Detection]:
        out = self._detections
        self._detections = []
        return out
