"""Streaming analysis: detectors that run at ingest, not over the store.

Table I (*Analysis and Visualization*): "Analysis capabilities should be
supported at variety of locations within the monitoring infrastructure
(e.g., at data sources, as streaming analysis, at the store, at points
of exposure to consumers)."  The store-side analyses live in the sibling
modules; this module provides the *streaming* location — operators that
subscribe to bus topics and evaluate every batch as it flows past,
with O(1) state per series:

* :class:`StreamingStats` — running mean/min/max/count per series
  (Welford), queryable at any moment without touching a store;
* :class:`StreamingOutlierDetector` — robust sweep-outlier detection on
  every synchronized sweep at ingest; detections are available the
  instant the sweep lands rather than at the next analysis-hook cadence;
* :class:`StreamingRateWatch` — counter-rate watchdog: flags a series
  whose derivative exceeds a limit (e.g. error counters accelerating).

All three attach to a :class:`~repro.transport.bus.MessageBus` with one
call and expose drainable detection queues, so the pipeline can treat
them exactly like analysis hooks.

The hot detectors are *columnar*: per-series state lives in a
:class:`~repro.analysis.soa.ComponentTable` (component -> row index plus
parallel float64 arrays) and each ``observe`` consumes the whole
:class:`~repro.core.metric.SeriesBatch` in a handful of array ops, so a
Trinity-scale 27,648-component sweep costs a few numpy kernels rather
than O(components) interpreter iterations.  The original per-sample
implementations are retained as :class:`ScalarStreamingStats` and
:class:`ScalarStreamingRateWatch` — the reference implementations the
property tests hold the columnar kernels equivalent to, and the
baselines the throughput benchmarks measure against.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.metric import MetricKey, SeriesBatch
from ..obs.hist import LatencyHistogram
from .anomaly import Detection, _sweep_outliers_slow, sweep_outliers
from .soa import ComponentTable

if TYPE_CHECKING:  # pragma: no cover
    from ..transport.bus import MessageBus, Subscription

__all__ = [
    "RunningMoments",
    "StreamingStats",
    "StreamingOutlierDetector",
    "StreamingRateWatch",
    "ScalarStreamingStats",
    "ScalarStreamingRateWatch",
]


@dataclass
class RunningMoments:
    """Welford running moments for one series (O(1) memory)."""

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, x: float) -> None:
        if not math.isfinite(x):
            return
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    @property
    def variance(self) -> float:
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class _BusAttached:
    """Shared plumbing: subscribe to a topic pattern with a callback.

    Every attached detector self-monitors: batches/samples consumed,
    detections produced, and a sweep-latency histogram around each
    ``observe`` — the raw material for the ``selfmon.analysis.*``
    gauges.
    """

    def __init__(self) -> None:
        self._sub: "Subscription | None" = None
        self.name = type(self).__name__
        self.latency = LatencyHistogram()
        self.batches_observed = 0
        self.samples_observed = 0
        self.detections_total = 0

    def attach(self, bus: "MessageBus", pattern: str = "metrics.*") -> None:
        self._sub = bus.subscribe(pattern, callback=self._on_envelope,
                                  name=self.name)

    def _on_envelope(self, env) -> None:
        payload = env.payload
        if isinstance(payload, SeriesBatch):
            t0 = time.perf_counter()
            self.observe(payload)
            self.latency.record(time.perf_counter() - t0)
            self.batches_observed += 1
            self.samples_observed += len(payload)

    def observe(self, batch: SeriesBatch) -> None:  # pragma: no cover
        raise NotImplementedError


class StreamingStats(_BusAttached):
    """Running per-series statistics maintained at ingest (columnar).

    State is one :class:`ComponentTable` per metric with parallel
    ``n / mean / m2 / minimum / maximum`` columns; a sweep with unique
    components is folded in with fancy-indexed Welford updates that are
    bit-identical to the scalar recurrence, and sweeps with repeated
    components fall back to a sort + ``reduceat`` grouped merge (Chan's
    parallel-Welford combination).
    """

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[str, ComponentTable] = {}
        self.batches_seen = 0

    def _table(self, metric: str) -> ComponentTable:
        t = self._tables.get(metric)
        if t is None:
            t = self._tables[metric] = ComponentTable(
                n=0.0, mean=0.0, m2=0.0,
                minimum=math.inf, maximum=-math.inf,
            )
        return t

    def observe(self, batch: SeriesBatch) -> None:
        self.batches_seen += 1
        if not len(batch):
            return
        tbl = self._table(batch.metric)
        # register every component first: a series whose only samples are
        # non-finite still exists (n=0), exactly as the scalar path does
        rows, unique = tbl.rows(batch.components)
        v = batch.values
        finite = np.isfinite(v)
        if not finite.all():
            rows = rows[finite]
            v = v[finite]
        if not len(rows):
            return
        if unique:
            self._fold_unique(tbl, rows, v)
        else:
            self._fold_grouped(tbl, rows, v)

    @staticmethod
    def _fold_unique(tbl: ComponentTable, rows: np.ndarray,
                     v: np.ndarray) -> None:
        mean = tbl.mean[rows]
        n1 = tbl.n[rows] + 1.0
        delta = v - mean
        mean1 = mean + delta / n1
        tbl.n[rows] = n1
        tbl.mean[rows] = mean1
        tbl.m2[rows] += delta * (v - mean1)
        tbl.minimum[rows] = np.minimum(tbl.minimum[rows], v)
        tbl.maximum[rows] = np.maximum(tbl.maximum[rows], v)

    @staticmethod
    def _fold_grouped(tbl: ComponentTable, rows: np.ndarray,
                      v: np.ndarray) -> None:
        order = np.argsort(rows, kind="stable")
        r = rows[order]
        x = v[order]
        starts = np.flatnonzero(np.r_[True, r[1:] != r[:-1]])
        counts = np.diff(np.r_[starts, len(r)])
        g = r[starts]
        cnt = counts.astype(np.float64)
        gmean = np.add.reduceat(x, starts) / cnt
        dev = x - np.repeat(gmean, counts)
        gm2 = np.add.reduceat(dev * dev, starts)
        nA = tbl.n[g]
        nAB = nA + cnt
        delta = gmean - tbl.mean[g]
        tbl.mean[g] += delta * cnt / nAB
        tbl.m2[g] += gm2 + delta * delta * nA * cnt / nAB
        tbl.n[g] = nAB
        tbl.minimum[g] = np.minimum(tbl.minimum[g],
                                    np.minimum.reduceat(x, starts))
        tbl.maximum[g] = np.maximum(tbl.maximum[g],
                                    np.maximum.reduceat(x, starts))

    def get(self, metric: str, component: str) -> RunningMoments | None:
        """Moments snapshot for one series (None if never observed)."""
        tbl = self._tables.get(metric)
        if tbl is None:
            return None
        r = tbl.row(component)
        if r is None:
            return None
        return RunningMoments(
            n=int(tbl.n[r]),
            mean=float(tbl.mean[r]),
            m2=float(tbl.m2[r]),
            minimum=float(tbl.minimum[r]),
            maximum=float(tbl.maximum[r]),
        )

    def series_count(self) -> int:
        return sum(t.size for t in self._tables.values())


class ScalarStreamingStats(_BusAttached):
    """Per-sample reference for :class:`StreamingStats` (one Python
    object per series).  Kept as the equivalence oracle and benchmark
    baseline; do not use on the hot path."""

    def __init__(self) -> None:
        super().__init__()
        self._moments: dict[MetricKey, RunningMoments] = {}
        self.batches_seen = 0

    def observe(self, batch: SeriesBatch) -> None:
        self.batches_seen += 1
        for c, v in zip(batch.components, batch.values):  # per-sample: allowed (scalar reference)
            key = MetricKey(batch.metric, str(c))
            m = self._moments.get(key)
            if m is None:
                m = self._moments[key] = RunningMoments()
            m.update(float(v))

    def get(self, metric: str, component: str) -> RunningMoments | None:
        return self._moments.get(MetricKey(metric, component))

    def series_count(self) -> int:
        return len(self._moments)


class StreamingOutlierDetector(_BusAttached):
    """Per-sweep robust outlier detection, evaluated at ingest."""

    def __init__(
        self,
        metrics: tuple[str, ...],
        z_threshold: float = 5.0,
        min_sweep: int = 8,
    ) -> None:
        super().__init__()
        self.metrics = set(metrics)
        self.z_threshold = float(z_threshold)
        self.min_sweep = int(min_sweep)
        self._detections: list[Detection] = []
        self.sweeps_checked = 0
        self._sweep_fn = sweep_outliers

    def observe(self, batch: SeriesBatch) -> None:
        if batch.metric not in self.metrics or len(batch) < self.min_sweep:
            return
        self.sweeps_checked += 1
        found = self._sweep_fn(batch, z_threshold=self.z_threshold)
        if found:
            self._detections.extend(found)
            self.detections_total += len(found)

    def drain(self) -> list[Detection]:
        out = self._detections
        self._detections = []
        return out


class ScalarStreamingOutlierDetector(StreamingOutlierDetector):
    """Reference variant driving the per-sample ``sweep_outliers``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sweep_fn = _sweep_outliers_slow


class StreamingRateWatch(_BusAttached):
    """Flags series whose rate of change exceeds a limit (columnar).

    Designed for cumulative counters (``gpu.ecc_dbe``, error tallies):
    remembers only the previous sample per series — the
    ``last_t / last_v / seen`` columns of a :class:`ComponentTable` —
    and fires when ``(v - prev_v) / (t - prev_t)`` crosses ``max_rate``.
    A sweep with unique components is one fancy-indexed gather/scatter;
    repeated components take a stable sort so within-sweep pairs chain
    exactly as scalar arrival order would.
    """

    def __init__(self, metric: str, max_rate_per_s: float) -> None:
        super().__init__()
        self.metric = metric
        self.max_rate_per_s = float(max_rate_per_s)
        self._table = ComponentTable(last_t=0.0, last_v=0.0, seen=0.0)
        self._detections: list[Detection] = []

    def observe(self, batch: SeriesBatch) -> None:
        if batch.metric != self.metric or not len(batch):
            return
        tbl = self._table
        rows, unique = tbl.rows(batch.components)
        t = batch.times
        v = batch.values
        if unique:
            pt = tbl.last_t[rows]
            pv = tbl.last_v[rows]
            seen = tbl.seen[rows] > 0.0
            tbl.last_t[rows] = t
            tbl.last_v[rows] = v
            tbl.seen[rows] = 1.0
            dt = t - pt
            with np.errstate(divide="ignore", invalid="ignore"):
                rate = (v - pv) / dt
            idx = np.flatnonzero(seen & (dt > 0.0)
                                 & (rate > self.max_rate_per_s))
            rates = rate[idx]
        else:
            order = np.argsort(rows, kind="stable")
            r = rows[order]
            ts = t[order]
            vs = v[order]
            m = len(r)
            starts = np.flatnonzero(np.r_[True, r[1:] != r[:-1]])
            heads = r[starts]
            pt = np.empty(m)
            pv = np.empty(m)
            seen = np.ones(m, dtype=bool)
            pt[1:] = ts[:-1]
            pv[1:] = vs[:-1]
            pt[starts] = tbl.last_t[heads]
            pv[starts] = tbl.last_v[heads]
            seen[starts] = tbl.seen[heads] > 0.0
            ends = np.r_[starts[1:] - 1, m - 1]
            tbl.last_t[heads] = ts[ends]
            tbl.last_v[heads] = vs[ends]
            tbl.seen[heads] = 1.0
            dt = ts - pt
            with np.errstate(divide="ignore", invalid="ignore"):
                rate = (vs - pv) / dt
            hit = np.flatnonzero(seen & (dt > 0.0)
                                 & (rate > self.max_rate_per_s))
            idx = order[hit]
            back = np.argsort(idx, kind="stable")  # restore arrival order
            idx = idx[back]
            rates = rate[hit][back]
        if len(idx):
            mr = self.max_rate_per_s
            comps = batch.components
            self._detections.extend(
                Detection(
                    time=float(t[i]),
                    metric=self.metric,
                    component=str(comps[i]),
                    score=rv / mr,
                    kind="threshold",
                    detail=f"rate {rv:.4g}/s exceeds {mr:g}/s",
                )
                for i, rv in zip(idx.tolist(), rates.tolist())
            )
            self.detections_total += len(idx)

    def drain(self) -> list[Detection]:
        out = self._detections
        self._detections = []
        return out


class ScalarStreamingRateWatch(_BusAttached):
    """Per-sample reference for :class:`StreamingRateWatch`."""

    def __init__(self, metric: str, max_rate_per_s: float) -> None:
        super().__init__()
        self.metric = metric
        self.max_rate_per_s = float(max_rate_per_s)
        self._last: dict[str, tuple[float, float]] = {}
        self._detections: list[Detection] = []

    def observe(self, batch: SeriesBatch) -> None:
        if batch.metric != self.metric:
            return
        for c, t, v in zip(batch.components, batch.times, batch.values):  # per-sample: allowed (scalar reference)
            comp = str(c)
            prev = self._last.get(comp)
            self._last[comp] = (float(t), float(v))
            if prev is None:
                continue
            pt, pv = prev
            dt = float(t) - pt
            if dt <= 0:
                continue
            rate = (float(v) - pv) / dt
            if rate > self.max_rate_per_s:
                self.detections_total += 1
                self._detections.append(
                    Detection(
                        time=float(t),
                        metric=self.metric,
                        component=comp,
                        score=rate / self.max_rate_per_s,
                        kind="threshold",
                        detail=(
                            f"rate {rate:.4g}/s exceeds "
                            f"{self.max_rate_per_s:g}/s"
                        ),
                    )
                )

    def drain(self) -> list[Detection]:
        out = self._detections
        self._detections = []
        return out
