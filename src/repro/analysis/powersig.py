"""Power-signature analysis: KAUST's approach to anomaly detection.

Section II-7: KAUST found "the power profiles of applications were
repeatable enough that they can, through profiling, characterization,
continuous monitoring, and comparison against power profiles of known
good application runs, identify problems with the system and
applications.  Anomalous power-use behaviors within a job can also be
used to detect problems such as hung nodes or load imbalance."

Three pieces:

* :class:`SignatureLibrary` — record known-good runs; a signature is the
  job's per-node mean power resampled onto a normalized progress axis;
* :func:`match` — compare a new run against its app's signature
  (mean absolute deviation as a fraction of signature level);
* :func:`detect_load_imbalance` / :func:`detect_hung_nodes` — the two
  concrete within-job detectors the paper names, driven by per-cabinet
  power spread (Figure 3) and per-node power/progress contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.metric import SeriesBatch

__all__ = [
    "PowerSignature",
    "SignatureLibrary",
    "MatchResult",
    "match",
    "detect_load_imbalance",
    "detect_hung_nodes",
]

_GRID = 64  # resampled points per signature


def _resample(times: np.ndarray, values: np.ndarray, n: int = _GRID) -> np.ndarray:
    """Resample a series onto a normalized [0, 1] progress axis."""
    if len(times) < 2:
        raise ValueError("need at least two samples to build a signature")
    x = (times - times[0]) / (times[-1] - times[0])
    grid = np.linspace(0.0, 1.0, n)
    return np.interp(grid, x, values)


@dataclass(frozen=True, slots=True)
class PowerSignature:
    """Known-good per-node power profile of one application."""

    app: str
    profile: np.ndarray      # per-node watts on the normalized grid
    n_runs: int

    @property
    def mean_level(self) -> float:
        return float(self.profile.mean())


class SignatureLibrary:
    """Accumulates known-good runs into per-app signatures."""

    def __init__(self) -> None:
        self._profiles: dict[str, list[np.ndarray]] = {}

    def record_run(
        self, app: str, batch: SeriesBatch, n_nodes: int
    ) -> None:
        """Record one known-good run: ``batch`` is the job's power summed
        over nodes against time; normalized per node before storing."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        prof = _resample(batch.times, batch.values / n_nodes)
        self._profiles.setdefault(app, []).append(prof)

    def signature(self, app: str) -> PowerSignature:
        runs = self._profiles.get(app)
        if not runs:
            raise KeyError(f"no known-good runs recorded for {app!r}")
        return PowerSignature(
            app=app,
            profile=np.median(np.stack(runs), axis=0),
            n_runs=len(runs),
        )

    def apps(self) -> list[str]:
        return sorted(self._profiles)


@dataclass(frozen=True, slots=True)
class MatchResult:
    app: str
    deviation: float        # mean |obs - sig| / mean(sig)
    matches: bool
    detail: str = ""


def match(
    library: SignatureLibrary,
    app: str,
    batch: SeriesBatch,
    n_nodes: int,
    tolerance: float = 0.15,
) -> MatchResult:
    """Compare a run's per-node power profile against the known-good
    signature; deviations beyond ``tolerance`` flag a problem run."""
    sig = library.signature(app)
    obs = _resample(batch.times, batch.values / n_nodes)
    level = max(sig.mean_level, 1e-9)
    deviation = float(np.mean(np.abs(obs - sig.profile)) / level)
    return MatchResult(
        app=app,
        deviation=deviation,
        matches=deviation <= tolerance,
        detail=f"deviation={deviation:.3f} tolerance={tolerance:g}",
    )


@dataclass(frozen=True, slots=True)
class ImbalanceFinding:
    detected: bool
    spread_ratio: float        # max/min cabinet power
    cov: float                 # std/mean across cabinets
    hot_cabinets: tuple[str, ...]
    cold_cabinets: tuple[str, ...]


def detect_load_imbalance(
    cabinet_sweep: SeriesBatch,
    spread_threshold: float = 2.0,
) -> ImbalanceFinding:
    """Figure 3 detector: per-cabinet power variation flags imbalance.

    KAUST saw "power usage variation of up to 3 times ... between
    different cabinets"; the detector fires when max/min cabinet power
    exceeds ``spread_threshold`` and names the hot and cold cabinets.
    """
    vals = cabinet_sweep.values
    comps = [str(c) for c in cabinet_sweep.components.tolist()]
    finite = np.isfinite(vals) & (vals > 0)
    v = vals[finite]
    names = [c for c, ok in zip(comps, finite) if ok]
    if len(v) < 2:
        return ImbalanceFinding(False, 1.0, 0.0, (), ())
    spread = float(v.max() / v.min())
    cov = float(v.std() / v.mean())
    detected = spread >= spread_threshold
    med = np.median(v)
    hot = tuple(n for n, x in zip(names, v) if x > 1.25 * med)
    cold = tuple(n for n, x in zip(names, v) if x < 0.75 * med)
    return ImbalanceFinding(detected, spread, cov, hot, cold)


def detect_hung_nodes(
    node_power_sweep: SeriesBatch,
    allocated_nodes: Sequence[str],
    power_floor_w: float = 150.0,
) -> list[str]:
    """Nodes burning busy-level power while the scheduler says idle.

    The hung-node signature KAUST describes (and the machine model
    produces): the job left — crashed, was killed, or completed around
    the wedge — but the node still draws compute-level power because its
    cores spin.  Cross-referencing the power sweep against the current
    allocation table is the whole detector: power says busy, scheduler
    says nothing runs there.
    """
    allocated = set(allocated_nodes)
    power = node_power_sweep.component_values()
    return sorted(
        node
        for node, p in power.items()
        if node not in allocated and p >= power_floor_w
    )
