"""Analyses: the methodologies the ten sites describe, as library code."""

from .aggressor import AggressorReport, AppVariability, classify
from .anomaly import (
    CusumDetector,
    Detection,
    EwmaDetector,
    ThresholdDetector,
    iqr_outliers,
    sweep_outliers,
)
from .congestion import (
    LEVEL_THRESHOLDS,
    CongestionRegion,
    congestion_levels,
    congestion_regions,
    jobs_touching_region,
)
from .correlate import (
    Cascade,
    Incident,
    cluster_events,
    link_failure_cascades,
    order_accuracy,
)
from .logpatterns import (
    DEFAULT_PATTERNS,
    KnownPattern,
    KnownPatternScanner,
    RateAnomaly,
    TemplateTracker,
    template_of,
)
from .powersig import (
    ImbalanceFinding,
    MatchResult,
    PowerSignature,
    SignatureLibrary,
    detect_hung_nodes,
    detect_load_imbalance,
    match,
)
from .queueing import QueueEpisode, characterize, estimate_wait
from .soa import ComponentTable
from .stats import (
    coefficient_of_variation,
    ewma,
    mad,
    robust_zscores,
    rolling_mean,
)
from .streaming import (
    RunningMoments,
    ScalarStreamingRateWatch,
    ScalarStreamingStats,
    StreamingOutlierDetector,
    StreamingRateWatch,
    StreamingStats,
)
from .trend import FailureRateTracker, TrendFit, fit_trend, time_to_threshold
from .variability import (
    DegradationWindow,
    attribute_window,
    detect_degradations,
)

__all__ = [
    "AggressorReport",
    "AppVariability",
    "classify",
    "CusumDetector",
    "Detection",
    "EwmaDetector",
    "ThresholdDetector",
    "iqr_outliers",
    "sweep_outliers",
    "LEVEL_THRESHOLDS",
    "CongestionRegion",
    "congestion_levels",
    "congestion_regions",
    "jobs_touching_region",
    "Cascade",
    "Incident",
    "cluster_events",
    "link_failure_cascades",
    "order_accuracy",
    "DEFAULT_PATTERNS",
    "KnownPattern",
    "KnownPatternScanner",
    "RateAnomaly",
    "TemplateTracker",
    "template_of",
    "ImbalanceFinding",
    "MatchResult",
    "PowerSignature",
    "SignatureLibrary",
    "detect_hung_nodes",
    "detect_load_imbalance",
    "match",
    "QueueEpisode",
    "characterize",
    "estimate_wait",
    "ComponentTable",
    "coefficient_of_variation",
    "ewma",
    "mad",
    "robust_zscores",
    "rolling_mean",
    "RunningMoments",
    "ScalarStreamingRateWatch",
    "ScalarStreamingStats",
    "StreamingOutlierDetector",
    "StreamingRateWatch",
    "StreamingStats",
    "FailureRateTracker",
    "TrendFit",
    "fit_trend",
    "time_to_threshold",
    "DegradationWindow",
    "attribute_window",
    "detect_degradations",
]
