"""Log-pattern analysis: templates, occurrence variation, novelty.

Section III-B: "Log analysis has significant research history involving
techniques of abnormality detection and/or variation in occurrences of
log lines.  However, in production most log analysis involves detection
of well-known log lines ... new or infrequent events may be missed
until manual observation of events leads to identification of relevant
log lines to include in the scan."

This module provides both halves:

* the production idiom — :class:`KnownPatternScanner` with a list of
  well-known regexes;
* the research idiom — :func:`template_of` mines message *templates*
  (numbers/ids masked out), :class:`TemplateTracker` counts occurrences
  per template per time bucket, flags **novel** templates the known-
  pattern scan would have missed, and flags **rate anomalies** on known
  templates.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.events import Event
from .stats import mad

__all__ = [
    "KnownPattern",
    "KnownPatternScanner",
    "template_of",
    "TemplateTracker",
    "RateAnomaly",
]


@dataclass(frozen=True, slots=True)
class KnownPattern:
    """A well-known log line worth scanning for (the production idiom)."""

    name: str
    regex: str
    severity_hint: str = "warning"


DEFAULT_PATTERNS: tuple[KnownPattern, ...] = (
    KnownPattern("soft_lockup", r"soft lockup", "error"),
    KnownPattern("mce", r"machine check", "critical"),
    KnownPattern("link_failed", r"HSN link .* failed", "error"),
    KnownPattern("gpu_falloff", r"fallen off the bus", "critical"),
    KnownPattern("mount_stale", r"mount stale|connection to MDS lost",
                 "error"),
    KnownPattern("service_exit", r"main process exited", "error"),
    KnownPattern("slow_io", r"slow_io|request queue growing", "warning"),
)


class KnownPatternScanner:
    """Regex scan for well-known lines; counts hits per pattern."""

    def __init__(
        self, patterns: Sequence[KnownPattern] = DEFAULT_PATTERNS
    ) -> None:
        self.patterns = list(patterns)
        self._compiled = [(p, re.compile(p.regex)) for p in self.patterns]
        self.hits: Counter = Counter()

    def scan(self, events: Iterable[Event]) -> dict[str, list[Event]]:
        """Match events against every pattern; returns hits per pattern."""
        out: dict[str, list[Event]] = defaultdict(list)
        for ev in events:
            for p, rx in self._compiled:
                if rx.search(ev.message):
                    out[p.name].append(ev)
                    self.hits[p.name] += 1
        return dict(out)


_MASKS = (
    (re.compile(r"\b0x[0-9a-fA-F]+\b"), "<hex>"),
    (re.compile(r"\b\d+(\.\d+)?\b"), "<n>"),
    (re.compile(r"\bc\d+-\d+c\d+s\d+(n\d+)?(a0|g0)?\b"), "<cname>"),
    (re.compile(r"\bjob[= ]?<n>\b"), "job=<n>"),
)


def template_of(message: str) -> str:
    """Mask volatile tokens, leaving the message's stable shape.

    ``"job 4312 started on 64 nodes"`` and ``"job 99 started on 8
    nodes"`` share the template ``"job <n> started on <n> nodes"`` —
    the clustering that lets occurrence statistics work per message
    *type* instead of per literal string.
    """
    out = message
    for rx, repl in _MASKS:
        out = rx.sub(repl, out)
    return out


@dataclass(frozen=True, slots=True)
class RateAnomaly:
    template: str
    bucket_t: float
    count: int
    expected: float
    score: float


class TemplateTracker:
    """Per-template occurrence tracking, novelty, and rate variation."""

    def __init__(self, bucket_s: float = 300.0) -> None:
        self.bucket_s = float(bucket_s)
        # template -> {bucket_index: count}
        self._buckets: dict[str, Counter] = defaultdict(Counter)
        self._first_seen: dict[str, float] = {}

    def observe(self, events: Iterable[Event]) -> list[str]:
        """Ingest events; returns templates never seen before (novel)."""
        novel: list[str] = []
        for ev in events:
            tpl = template_of(ev.message)
            if tpl not in self._first_seen:
                self._first_seen[tpl] = ev.time
                novel.append(tpl)
            b = int(ev.time // self.bucket_s)
            self._buckets[tpl][b] += 1
        return novel

    def templates(self) -> list[str]:
        return sorted(self._buckets)

    def counts(self, template: str, t0: float, t1: float) -> np.ndarray:
        """Occurrences per bucket over [t0, t1), empty buckets included."""
        b0 = int(t0 // self.bucket_s)
        b1 = max(b0 + 1, int(np.ceil(t1 / self.bucket_s)))
        buckets = self._buckets.get(template, Counter())
        return np.array(
            [buckets.get(b, 0) for b in range(b0, b1)], dtype=np.int64
        )

    def first_seen(self, template: str) -> float | None:
        return self._first_seen.get(template)

    def rate_anomalies(
        self,
        t0: float,
        t1: float,
        z_threshold: float = 5.0,
        min_count: int = 5,
    ) -> list[RateAnomaly]:
        """Buckets where a template's rate deviates from its own history.

        A known message suddenly appearing 50x more often is as
        actionable as a novel one — the "variation in occurrences of
        log lines" technique.
        """
        out: list[RateAnomaly] = []
        for tpl in self.templates():
            counts = self.counts(tpl, t0, t1).astype(float)
            if len(counts) < 4:
                continue
            med = float(np.median(counts))
            sigma = mad(counts)
            if not np.isfinite(sigma) or sigma == 0:
                sigma = max(np.sqrt(med), 1.0)   # Poisson floor
            for i, c in enumerate(counts):
                if c < min_count:
                    continue
                z = (c - med) / sigma
                if z >= z_threshold:
                    out.append(
                        RateAnomaly(
                            template=tpl,
                            bucket_t=t0 + i * self.bucket_s,
                            count=int(c),
                            expected=med,
                            score=float(z),
                        )
                    )
        out.sort(key=lambda a: -a.score)
        return out
