"""Network congestion levels and regions from HSN counters (SNL).

Section II-9: SNL uses "functional combinations of High Speed Network
(HSN) performance counters, collected periodically ... and synchronously
across a whole system, to determine congestion levels, congestion
regions, and impact on application performance", on both Aries dragonfly
and Gemini torus networks.

Given one synchronized sweep of per-link stall ratios:

* :func:`congestion_levels` bins each link into none/low/medium/high;
* :func:`congestion_regions` finds connected *regions* of congested
  links over the router graph (a hot spot is a subgraph, not a link);
* :func:`jobs_touching_region` attributes which running jobs have
  traffic crossing a region — the "impact on application performance"
  step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import networkx as nx
import numpy as np

from ..cluster.topology import NoRouteError, Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.jobstore import Allocation

__all__ = [
    "LEVEL_THRESHOLDS",
    "congestion_levels",
    "CongestionRegion",
    "congestion_regions",
    "jobs_touching_region",
]

# stall-ratio thresholds for none/low/medium/high, from the observation
# that stalls below ~5% are noise and beyond ~25% applications visibly slow
LEVEL_THRESHOLDS: tuple[float, float, float] = (0.05, 0.12, 0.25)
LEVEL_NAMES = ("none", "low", "medium", "high")


def congestion_levels(stall_ratio: np.ndarray) -> np.ndarray:
    """Map per-link stall ratios to level indices 0..3."""
    r = np.asarray(stall_ratio, dtype=float)
    lo, mid, hi = LEVEL_THRESHOLDS
    levels = np.zeros(len(r), dtype=np.int64)
    levels[r >= lo] = 1
    levels[r >= mid] = 2
    levels[r >= hi] = 3
    return levels


@dataclass(frozen=True, slots=True)
class CongestionRegion:
    """One connected hot spot in the interconnect."""

    link_indices: tuple[int, ...]
    routers: tuple[str, ...]
    mean_stall: float
    max_stall: float
    groups: tuple[int, ...]        # topology groups the region touches

    @property
    def size(self) -> int:
        return len(self.link_indices)


def congestion_regions(
    topo: Topology,
    stall_ratio: np.ndarray,
    min_level: int = 2,
    min_links: int = 1,
) -> list[CongestionRegion]:
    """Connected components of links at or above ``min_level``.

    Two congested links belong to the same region when they share a
    router — congestion spreads hop-by-hop through backpressure, so
    physical adjacency is the right notion of "same event".
    """
    levels = congestion_levels(stall_ratio)
    hot = np.nonzero(levels >= min_level)[0]
    if len(hot) == 0:
        return []
    sub = nx.Graph()
    for idx in hot:
        link = topo.links[idx]
        sub.add_edge(link.a, link.b, index=int(idx))
    # group lookup per router: use any attached node's group; routers
    # host nodes, so derive via the topology's node->router mapping
    router_group: dict[str, int] = {}
    for node, router in topo.node_router.items():
        router_group.setdefault(router, topo.node_group[node])
    regions = []
    for comp in nx.connected_components(sub):
        idxs = sorted(
            sub.edges[u, v]["index"]
            for u, v in sub.subgraph(comp).edges
        )
        if len(idxs) < min_links:
            continue
        stalls = np.asarray([stall_ratio[i] for i in idxs])
        groups = sorted(
            {router_group[r] for r in comp if r in router_group}
        )
        regions.append(
            CongestionRegion(
                link_indices=tuple(idxs),
                routers=tuple(sorted(comp)),
                mean_stall=float(stalls.mean()),
                max_stall=float(stalls.max()),
                groups=tuple(groups),
            )
        )
    regions.sort(key=lambda r: (-r.max_stall, -r.size))
    return regions


def jobs_touching_region(
    topo: Topology,
    region: CongestionRegion,
    allocations: Sequence["Allocation"],
    sample_pairs: int = 32,
    seed: int = 0,
) -> list[int]:
    """Job ids whose traffic plausibly crosses the region.

    Routes a bounded sample of intra-job node pairs and checks for
    intersection with the region's links; exact for small jobs, sampled
    for large ones.
    """
    rng = np.random.default_rng(seed)
    region_links = set(region.link_indices)
    touched: list[int] = []
    for alloc in allocations:
        nodes = list(alloc.nodes)
        if len(nodes) < 2:
            continue
        n = len(nodes)
        pairs: list[tuple[int, int]]
        if n * (n - 1) // 2 <= sample_pairs:
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        else:
            pairs = [
                tuple(rng.choice(n, size=2, replace=False))
                for _ in range(sample_pairs)
            ]
        for i, j in pairs:
            try:
                route = topo.route(nodes[i], nodes[j])
            except NoRouteError:
                continue
            if region_links.intersection(route):
                touched.append(alloc.job_id)
                break
    return touched
