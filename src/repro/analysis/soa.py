"""Struct-of-arrays state for streaming detectors.

The streaming analysis plane consumes whole synchronized sweeps
(27,648-component batches at Trinity scale), so per-series detector
state must be addressable as arrays, not as one Python object per
series.  :class:`ComponentTable` mirrors the
:class:`~repro.cluster.node.NodeStore` design: a ``component -> row``
index plus parallel float64 state columns, grown amortized-doubling as
new components appear.  Detectors fancy-index whole sweeps against the
columns in a handful of numpy operations.

The only irreducibly per-component work is the string -> row mapping;
the table memoizes it by the *identity* of the components array, so
collectors that republish the same component array (the common steady
state) pay for the mapping once.  Component arrays must therefore be
treated as immutable once published — the same rule
:class:`~repro.core.metric.SeriesBatch` already implies by exposing
views, not copies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ComponentTable"]


class ComponentTable:
    """Component -> row index plus parallel float64 state columns.

    ``columns`` maps column name -> fill value for newly added rows
    (e.g. ``n=0.0, mean=0.0, minimum=math.inf``).  Columns are exposed
    as attributes; rows beyond :attr:`size` are uninitialized capacity.
    """

    def __init__(self, **columns: float) -> None:
        if not columns:
            raise ValueError("ComponentTable needs at least one column")
        self._fill = {k: float(v) for k, v in columns.items()}
        self.index: dict[str, int] = {}
        self.size = 0
        self._cap = 0
        for name, fill in self._fill.items():
            setattr(self, name, np.empty(0, dtype=np.float64))
        # identity-memoized mapping of the most recent components array
        self._memo_comps: np.ndarray | None = None
        self._memo_rows: np.ndarray | None = None
        self._memo_unique = True

    def __len__(self) -> int:
        return self.size

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._fill)

    def _ensure(self, need: int) -> None:
        """Grow every column to hold ``need`` rows (amortized doubling)."""
        if need <= self._cap:
            return
        cap = max(16, self._cap)
        while cap < need:
            cap *= 2
        for name, fill in self._fill.items():
            old = getattr(self, name)
            new = np.full(cap, fill, dtype=np.float64)
            new[: len(old)] = old
            setattr(self, name, new)
        self._cap = cap

    def rows(self, components: np.ndarray) -> tuple[np.ndarray, bool]:
        """Row index per component, registering new components.

        Returns ``(rows, unique)`` where ``unique`` is True when no
        component repeats within ``components`` — the signal detectors
        use to take the sort-free fancy-indexing fast path.  The result
        is memoized by array identity, so repeated sweeps over the same
        component array skip the per-component mapping entirely.
        """
        if components is self._memo_comps:
            return self._memo_rows, self._memo_unique
        comps = components.tolist()
        index = self.index
        before = self.size
        size = before
        rows = np.empty(len(comps), dtype=np.intp)
        for i, c in enumerate(comps):
            r = index.get(c)
            if r is None:
                r = index[c] = size
                size += 1
            rows[i] = r
        self.size = size
        self._ensure(size)
        # all-new components are unique by construction; otherwise check
        unique = (size - before == len(comps)) or len(set(comps)) == len(comps)
        self._memo_comps = components
        self._memo_rows = rows
        self._memo_unique = unique
        return rows, unique

    def row(self, component: str) -> int | None:
        """Row of one component, or None when it was never observed."""
        return self.index.get(component)
