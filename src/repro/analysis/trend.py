"""Trend analysis: degradation prediction and failure-rate growth.

ALCF "performs trend analysis ... on component error rates (e.g., High
Speed Network (HSN) link Bit Error Rates (BER)) and the datacenter
environmental conditions.  Based on these trends, ALCF personnel can
flag and diagnose unusual behaviors on component and subsystem levels"
(Section II-8).  ORNL's GPU story began with "an increasing rate of GPU
failures" 2.5 years into production (Section II-6).

Two primitives:

* :func:`fit_trend` / :func:`time_to_threshold` — (log-)linear trend of
  one series and the projected crossing time of a limit (when will this
  link's BER hit the FEC budget?);
* :class:`FailureRateTracker` — windowed event-rate growth detection
  (is the GPU failure rate above its historical baseline?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import SeriesBatch

__all__ = [
    "TrendFit",
    "fit_trend",
    "time_to_threshold",
    "FailureRateTracker",
]


@dataclass(frozen=True, slots=True)
class TrendFit:
    """Least-squares line fit (possibly in log space)."""

    slope: float           # units (or decades) per second
    intercept: float       # value (or log10 value) at t=0
    r2: float
    log_space: bool

    def predict(self, t: float) -> float:
        y = self.intercept + self.slope * t
        return 10 ** y if self.log_space else y


def fit_trend(batch: SeriesBatch, log_space: bool = False) -> TrendFit:
    """Fit a line to one series; ``log_space=True`` fits log10(value),
    appropriate for exponentially growing quantities like BER."""
    if len(batch) < 2:
        raise ValueError("need at least two samples to fit a trend")
    t = batch.times
    v = batch.values
    if log_space:
        if (v <= 0).any():
            raise ValueError("log-space fit requires positive values")
        y = np.log10(v)
    else:
        y = v
    slope, intercept = np.polyfit(t, y, 1)
    pred = intercept + slope * t
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TrendFit(float(slope), float(intercept), r2, log_space)


def time_to_threshold(
    fit: TrendFit, threshold: float, now: float
) -> float | None:
    """Projected seconds from ``now`` until the trend crosses
    ``threshold`` (None if the trend never gets there)."""
    target = np.log10(threshold) if fit.log_space else threshold
    # a numerically-flat fit projects crossings centuries out; report
    # "never" rather than a meaningless astronomical number
    _NEVER_S = 100 * 365 * 86400.0
    if fit.slope == 0 or abs(target - (fit.intercept + fit.slope * now)) / max(abs(fit.slope), 1e-300) > _NEVER_S:
        cur = fit.intercept + fit.slope * now
        if cur >= target and fit.slope >= 0:
            return 0.0
        return None
    t_cross = (target - fit.intercept) / fit.slope
    remaining = t_cross - now
    current = fit.intercept + fit.slope * now
    if remaining <= 0:
        return 0.0 if current >= target or fit.slope > 0 else None
    # only meaningful when trending toward the threshold
    if (fit.slope > 0 and current < target) or (
        fit.slope < 0 and current > target
    ):
        return float(remaining)
    return None


class FailureRateTracker:
    """Windowed failure-rate growth detector (ORNL GPU wave).

    Record failure timestamps as they happen; :meth:`rate_ratio` compares
    the failure rate of the most recent window against the long-run
    baseline rate, and :meth:`elevated` applies a Poisson-aware minimum
    count so a single unlucky failure doesn't page anyone.
    """

    def __init__(self, window_s: float = 30 * 86400.0) -> None:
        self.window_s = float(window_s)
        self._times: list[float] = []

    def record(self, time: float) -> None:
        self._times.append(float(time))

    def count(self) -> int:
        return len(self._times)

    def recent_rate(self, now: float) -> float:
        """Failures per second over the trailing window."""
        t0 = now - self.window_s
        recent = sum(1 for t in self._times if t >= t0)
        return recent / self.window_s

    def baseline_rate(self, now: float) -> float:
        """Failures per second before the trailing window began."""
        t0 = now - self.window_s
        old = [t for t in self._times if t < t0]
        if not old:
            return 0.0
        span = t0 - min(old)
        return len(old) / span if span > 0 else 0.0

    def rate_ratio(self, now: float) -> float:
        """recent/baseline rate; inf when there was no baseline failure."""
        base = self.baseline_rate(now)
        recent = self.recent_rate(now)
        if base == 0.0:
            return float("inf") if recent > 0 else 1.0
        return recent / base

    def elevated(
        self, now: float, ratio_threshold: float = 3.0, min_recent: int = 5
    ) -> bool:
        t0 = now - self.window_s
        recent = sum(1 for t in self._times if t >= t0)
        return (
            recent >= min_recent
            and self.rate_ratio(now) >= ratio_threshold
        )
