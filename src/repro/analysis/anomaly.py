"""Anomaly detectors over sweeps and series.

Section III-B: "Sites have long been interested in early detection ...
based on trend and outlier analysis."  Detectors here come in two
shapes:

* **sweep detectors** — given one synchronized sweep (one metric across
  many components at one instant), flag the outlying components
  (:func:`sweep_outliers`, :class:`ThresholdDetector`);
* **series detectors** — given one component's history, flag the times
  where behaviour changed (:class:`EwmaDetector`,
  :class:`CusumDetector`, :func:`iqr_outliers`).

All detectors return :class:`Detection` records so the response layer
can treat them uniformly.

Every detector is columnar: masks and cumulative statistics are
computed over whole value arrays and :class:`Detection` objects are
materialized only for ``np.flatnonzero`` hit indices.  The per-sample
originals are retained as ``*_slow`` paths — the reference
implementations the hypothesis property tests hold the kernels
equivalent to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import SeriesBatch
from .stats import ewma, mad, robust_zscores

__all__ = [
    "Detection",
    "sweep_outliers",
    "ThresholdDetector",
    "iqr_outliers",
    "EwmaDetector",
    "CusumDetector",
]


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector firing."""

    time: float
    metric: str
    component: str
    score: float          # detector-specific magnitude (z, excess, ...)
    kind: str             # "outlier" | "threshold" | "shift" | "changepoint"
    detail: str = ""


def sweep_outliers(
    batch: SeriesBatch, z_threshold: float = 4.0
) -> list[Detection]:
    """Components whose value in a synchronized sweep is a robust outlier.

    The workhorse for "one of 10,000 like components is misbehaving":
    hung nodes in power sweeps, one slow OST in a latency sweep, one hot
    link in a stall sweep.  The finite+threshold mask is computed over
    the whole sweep first; ``Detection`` objects exist only for the
    (rare) hits, already ordered by descending |z|.
    """
    if len(batch) < 4:
        return []
    z = robust_zscores(batch.values)
    az = np.abs(z)
    idx = np.flatnonzero(np.isfinite(z) & (az >= z_threshold))
    if not len(idx):
        return []
    idx = idx[np.argsort(-az[idx], kind="stable")]
    t = batch.times
    v = batch.values
    comps = batch.components
    return [
        Detection(
            time=float(t[i]),
            metric=batch.metric,
            component=str(comps[i]),
            score=float(z[i]),
            kind="outlier",
            detail=f"value={v[i]:.4g} z={z[i]:.1f}",
        )
        for i in idx
    ]


def _sweep_outliers_slow(
    batch: SeriesBatch, z_threshold: float = 4.0
) -> list[Detection]:
    """Per-sample reference for :func:`sweep_outliers`."""
    if len(batch) < 4:
        return []
    z = robust_zscores(batch.values)
    out = []
    for c, t, v, zi in zip(batch.components, batch.times, batch.values, z):  # per-sample: allowed
        if np.isfinite(zi) and abs(zi) >= z_threshold:
            out.append(
                Detection(
                    time=float(t),
                    metric=batch.metric,
                    component=str(c),
                    score=float(zi),
                    kind="outlier",
                    detail=f"value={v:.4g} z={zi:.1f}",
                )
            )
    out.sort(key=lambda d: -abs(d.score))
    return out


class ThresholdDetector:
    """Fixed-threshold detector with hysteresis (alert once per episode)."""

    def __init__(
        self,
        metric: str,
        threshold: float,
        above: bool = True,
        clear_fraction: float = 0.9,
    ) -> None:
        self.metric = metric
        self.threshold = float(threshold)
        self.above = above
        self.clear_level = threshold * clear_fraction if above else (
            threshold / clear_fraction if clear_fraction else threshold
        )
        self._firing: set[str] = set()

    def check(self, batch: SeriesBatch) -> list[Detection]:
        if batch.metric != self.metric:
            return []
        comps = batch.components
        clist = comps.tolist()
        if len(set(clist)) != len(clist):
            # repeated components interleave breach/clear per sample;
            # only the scalar walk preserves that ordering
            return self._check_slow(batch)
        v = batch.values
        if self.above:
            breached = v > self.threshold
            cleared = v < self.clear_level
        else:
            breached = v < self.threshold
            cleared = v > self.clear_level
        firing = self._firing
        if firing:
            f0 = np.fromiter((c in firing for c in clist),
                             dtype=bool, count=len(clist))
        else:
            f0 = np.zeros(len(clist), dtype=bool)
        t = batch.times
        out = []
        for i in np.flatnonzero(breached & ~f0).tolist():
            comp = str(comps[i])
            firing.add(comp)
            out.append(
                Detection(
                    time=float(t[i]),
                    metric=self.metric,
                    component=comp,
                    score=float(v[i] - self.threshold)
                    if self.above
                    else float(self.threshold - v[i]),
                    kind="threshold",
                    detail=f"value={v[i]:.4g} threshold={self.threshold:g}",
                )
            )
        if firing:
            # scalar elif semantics: a comp already firing is discarded
            # whenever it clears, breached or not (the elif is only
            # skipped when the comp was *added* by this very sample)
            for i in np.flatnonzero(f0 & cleared).tolist():
                firing.discard(str(comps[i]))
        return out

    def _check_slow(self, batch: SeriesBatch) -> list[Detection]:
        """Per-sample reference for :meth:`check`."""
        out = []
        for c, t, v in zip(batch.components, batch.times, batch.values):  # per-sample: allowed
            comp = str(c)
            breached = v > self.threshold if self.above else v < self.threshold
            cleared = v < self.clear_level if self.above else v > self.clear_level
            if breached and comp not in self._firing:
                self._firing.add(comp)
                out.append(
                    Detection(
                        time=float(t),
                        metric=self.metric,
                        component=comp,
                        score=float(v - self.threshold)
                        if self.above
                        else float(self.threshold - v),
                        kind="threshold",
                        detail=f"value={v:.4g} threshold={self.threshold:g}",
                    )
                )
            elif cleared and comp in self._firing:
                self._firing.discard(comp)
        return out


def iqr_outliers(values: np.ndarray, k: float = 1.5) -> np.ndarray:
    """Boolean mask of Tukey-fence outliers in a 1-D array."""
    v = np.asarray(values, dtype=float)
    finite = v[np.isfinite(v)]
    if len(finite) < 4:
        return np.zeros(len(v), dtype=bool)
    q1, q3 = np.percentile(finite, [25, 75])
    iqr = q3 - q1
    lo, hi = q1 - k * iqr, q3 + k * iqr
    return (v < lo) | (v > hi)


class EwmaDetector:
    """Detects level shifts in one series via an EWMA control band."""

    def __init__(
        self,
        alpha: float = 0.2,
        band_sigmas: float = 4.0,
        warmup: int = 10,
    ) -> None:
        self.alpha = alpha
        self.band_sigmas = band_sigmas
        self.warmup = warmup

    def _sigma(self, v: np.ndarray) -> float:
        return mad(np.diff(v[: self.warmup])) or float(
            np.std(v[: self.warmup]) or 1e-12
        )

    def detect(self, batch: SeriesBatch) -> list[Detection]:
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        smooth = ewma(v, self.alpha)
        sigma = self._sigma(v)
        # residual of each post-warmup sample vs the smooth one step back
        # (warmup=0 wraps to smooth[-1], matching the scalar reference's
        # Python negative-index semantics)
        if self.warmup == 0:
            prev = np.r_[smooth[-1], smooth[:-1]]
        else:
            prev = smooth[self.warmup - 1: n - 1]
        resid = v[self.warmup:] - prev
        with np.errstate(invalid="ignore"):
            breach = np.abs(resid) > self.band_sigmas * sigma
        rising = breach.copy()
        rising[1:] &= ~breach[:-1]      # fire on not-breach -> breach edges
        out = []
        for j in np.flatnonzero(rising).tolist():
            i = self.warmup + j
            out.append(
                Detection(
                    time=float(batch.times[i]),
                    metric=batch.metric,
                    component=str(batch.components[i]),
                    score=float(resid[j] / sigma),
                    kind="shift",
                    detail=f"resid={resid[j]:.4g} sigma={sigma:.4g}",
                )
            )
        return out

    def _detect_slow(self, batch: SeriesBatch) -> list[Detection]:
        """Per-sample reference for :meth:`detect`."""
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        smooth = ewma(v, self.alpha)
        sigma = self._sigma(v)
        out = []
        firing = False
        for i in range(self.warmup, n):
            resid = v[i] - smooth[i - 1]
            breach = abs(resid) > self.band_sigmas * sigma
            if breach and not firing:
                out.append(
                    Detection(
                        time=float(batch.times[i]),
                        metric=batch.metric,
                        component=str(batch.components[i]),
                        score=float(resid / sigma),
                        kind="shift",
                        detail=f"resid={resid:.4g} sigma={sigma:.4g}",
                    )
                )
            firing = breach
        return out


class CusumDetector:
    """Two-sided CUSUM changepoint detector on one series.

    Flags sustained mean shifts (benchmark-FOM degradation onsets in
    Figure 2) rather than single spikes; ``k`` is the slack and ``h``
    the decision threshold, both in units of the series' robust sigma.

    The clamped recurrence ``s = max(0, s + z - k)`` is a reflected
    random walk, so over any segment it equals
    ``max(s0 + c_j, c_j - min_{l<=j} c_l)`` where ``c`` is the running
    sum of ``z - k`` — one ``cumsum`` plus one ``minimum.accumulate``
    per side instead of a Python loop.  Segments restart after each
    detection (``mu`` is re-estimated) and at every NaN sample (the
    scalar ``max(0.0, nan)`` collapses to 0.0, i.e. a reset).
    """

    # block size bounds the rescan cost after each detection/NaN restart
    _BLOCK = 4096

    def __init__(self, k: float = 0.5, h: float = 5.0, warmup: int = 10) -> None:
        self.k = k
        self.h = h
        self.warmup = warmup

    def _estimate(self, v: np.ndarray) -> tuple[float, float]:
        mu = float(np.median(v[: self.warmup]))
        sigma = mad(v[: self.warmup])
        if not np.isfinite(sigma) or sigma == 0:
            sigma = float(np.std(v[: self.warmup])) or 1e-12
        return mu, sigma

    def detect(self, batch: SeriesBatch) -> list[Detection]:
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        mu, sigma = self._estimate(v)
        nan_v = np.isnan(v)
        out: list[Detection] = []
        s_hi = s_lo = 0.0
        i = self.warmup
        while i < n:
            if not (np.isfinite(mu) and np.isfinite(sigma)):
                break               # z stays NaN forever: nothing can fire
            if nan_v[i]:
                s_hi = s_lo = 0.0
                i += 1
                continue
            block = v[i: i + self._BLOCK]
            with np.errstate(invalid="ignore"):
                z = np.clip((block - mu) / sigma, -4.0, 4.0)
            nan_rel = np.flatnonzero(np.isnan(z))
            limit = int(nan_rel[0]) if len(nan_rel) else len(z)
            seg = z[:limit]
            c = np.cumsum(seg - self.k)
            hi = np.maximum(s_hi + c, c - np.minimum.accumulate(c))
            c = np.cumsum(-seg - self.k)
            lo = np.maximum(s_lo + c, c - np.minimum.accumulate(c))
            trip = np.flatnonzero((hi > self.h) | (lo > self.h))
            if len(trip):
                j = int(trip[0])
                gi = i + j
                direction = "up" if hi[j] > self.h else "down"
                out.append(
                    Detection(
                        time=float(batch.times[gi]),
                        metric=batch.metric,
                        component=str(batch.components[gi]),
                        score=float(max(hi[j], lo[j])),
                        kind="changepoint",
                        detail=f"direction={direction}",
                    )
                )
                s_hi = s_lo = 0.0   # restart after signalling
                mu = float(np.median(v[max(0, gi - self.warmup): gi + 1]))
                i = gi + 1
                continue
            s_hi = float(hi[-1])
            s_lo = float(lo[-1])
            if limit < len(z):      # NaN inside the block: reset there
                s_hi = s_lo = 0.0
                i += limit + 1
            else:
                i += len(z)
        return out

    def _detect_slow(self, batch: SeriesBatch) -> list[Detection]:
        """Per-sample reference for :meth:`detect`."""
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        mu, sigma = self._estimate(v)
        s_hi = 0.0
        s_lo = 0.0
        out = []
        for i in range(self.warmup, n):
            # winsorize so one wild sample cannot trip the statistic on
            # its own; only *sustained* shifts accumulate past h
            z = float(np.clip((v[i] - mu) / sigma, -4.0, 4.0))
            s_hi = max(0.0, s_hi + z - self.k)
            s_lo = max(0.0, s_lo - z - self.k)
            if s_hi > self.h or s_lo > self.h:
                direction = "up" if s_hi > self.h else "down"
                out.append(
                    Detection(
                        time=float(batch.times[i]),
                        metric=batch.metric,
                        component=str(batch.components[i]),
                        score=float(max(s_hi, s_lo)),
                        kind="changepoint",
                        detail=f"direction={direction}",
                    )
                )
                s_hi = s_lo = 0.0   # restart after signalling
                mu = float(np.median(v[max(0, i - self.warmup): i + 1]))
        return out
