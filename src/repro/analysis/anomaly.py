"""Anomaly detectors over sweeps and series.

Section III-B: "Sites have long been interested in early detection ...
based on trend and outlier analysis."  Detectors here come in two
shapes:

* **sweep detectors** — given one synchronized sweep (one metric across
  many components at one instant), flag the outlying components
  (:func:`sweep_outliers`, :class:`ThresholdDetector`);
* **series detectors** — given one component's history, flag the times
  where behaviour changed (:class:`EwmaDetector`,
  :class:`CusumDetector`, :func:`iqr_outliers`).

All detectors return :class:`Detection` records so the response layer
can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import SeriesBatch
from .stats import ewma, mad, robust_zscores

__all__ = [
    "Detection",
    "sweep_outliers",
    "ThresholdDetector",
    "iqr_outliers",
    "EwmaDetector",
    "CusumDetector",
]


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector firing."""

    time: float
    metric: str
    component: str
    score: float          # detector-specific magnitude (z, excess, ...)
    kind: str             # "outlier" | "threshold" | "shift" | "changepoint"
    detail: str = ""


def sweep_outliers(
    batch: SeriesBatch, z_threshold: float = 4.0
) -> list[Detection]:
    """Components whose value in a synchronized sweep is a robust outlier.

    The workhorse for "one of 10,000 like components is misbehaving":
    hung nodes in power sweeps, one slow OST in a latency sweep, one hot
    link in a stall sweep.
    """
    if len(batch) < 4:
        return []
    z = robust_zscores(batch.values)
    out = []
    for c, t, v, zi in zip(batch.components, batch.times, batch.values, z):
        if np.isfinite(zi) and abs(zi) >= z_threshold:
            out.append(
                Detection(
                    time=float(t),
                    metric=batch.metric,
                    component=str(c),
                    score=float(zi),
                    kind="outlier",
                    detail=f"value={v:.4g} z={zi:.1f}",
                )
            )
    out.sort(key=lambda d: -abs(d.score))
    return out


class ThresholdDetector:
    """Fixed-threshold detector with hysteresis (alert once per episode)."""

    def __init__(
        self,
        metric: str,
        threshold: float,
        above: bool = True,
        clear_fraction: float = 0.9,
    ) -> None:
        self.metric = metric
        self.threshold = float(threshold)
        self.above = above
        self.clear_level = threshold * clear_fraction if above else (
            threshold / clear_fraction if clear_fraction else threshold
        )
        self._firing: set[str] = set()

    def check(self, batch: SeriesBatch) -> list[Detection]:
        if batch.metric != self.metric:
            return []
        out = []
        for c, t, v in zip(batch.components, batch.times, batch.values):
            comp = str(c)
            breached = v > self.threshold if self.above else v < self.threshold
            cleared = v < self.clear_level if self.above else v > self.clear_level
            if breached and comp not in self._firing:
                self._firing.add(comp)
                out.append(
                    Detection(
                        time=float(t),
                        metric=self.metric,
                        component=comp,
                        score=float(v - self.threshold)
                        if self.above
                        else float(self.threshold - v),
                        kind="threshold",
                        detail=f"value={v:.4g} threshold={self.threshold:g}",
                    )
                )
            elif cleared and comp in self._firing:
                self._firing.discard(comp)
        return out


def iqr_outliers(values: np.ndarray, k: float = 1.5) -> np.ndarray:
    """Boolean mask of Tukey-fence outliers in a 1-D array."""
    v = np.asarray(values, dtype=float)
    finite = v[np.isfinite(v)]
    if len(finite) < 4:
        return np.zeros(len(v), dtype=bool)
    q1, q3 = np.percentile(finite, [25, 75])
    iqr = q3 - q1
    lo, hi = q1 - k * iqr, q3 + k * iqr
    return (v < lo) | (v > hi)


class EwmaDetector:
    """Detects level shifts in one series via an EWMA control band."""

    def __init__(
        self,
        alpha: float = 0.2,
        band_sigmas: float = 4.0,
        warmup: int = 10,
    ) -> None:
        self.alpha = alpha
        self.band_sigmas = band_sigmas
        self.warmup = warmup

    def detect(self, batch: SeriesBatch) -> list[Detection]:
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        smooth = ewma(v, self.alpha)
        sigma = mad(np.diff(v[: self.warmup])) or float(
            np.std(v[: self.warmup]) or 1e-12
        )
        out = []
        firing = False
        for i in range(self.warmup, n):
            resid = v[i] - smooth[i - 1]
            breach = abs(resid) > self.band_sigmas * sigma
            if breach and not firing:
                out.append(
                    Detection(
                        time=float(batch.times[i]),
                        metric=batch.metric,
                        component=str(batch.components[i]),
                        score=float(resid / sigma),
                        kind="shift",
                        detail=f"resid={resid:.4g} sigma={sigma:.4g}",
                    )
                )
            firing = breach
        return out


class CusumDetector:
    """Two-sided CUSUM changepoint detector on one series.

    Flags sustained mean shifts (benchmark-FOM degradation onsets in
    Figure 2) rather than single spikes; ``k`` is the slack and ``h``
    the decision threshold, both in units of the series' robust sigma.
    """

    def __init__(self, k: float = 0.5, h: float = 5.0, warmup: int = 10) -> None:
        self.k = k
        self.h = h
        self.warmup = warmup

    def detect(self, batch: SeriesBatch) -> list[Detection]:
        n = len(batch)
        if n <= self.warmup:
            return []
        v = batch.values
        mu = float(np.median(v[: self.warmup]))
        sigma = mad(v[: self.warmup])
        if not np.isfinite(sigma) or sigma == 0:
            sigma = float(np.std(v[: self.warmup])) or 1e-12
        s_hi = 0.0
        s_lo = 0.0
        out = []
        for i in range(self.warmup, n):
            # winsorize so one wild sample cannot trip the statistic on
            # its own; only *sustained* shifts accumulate past h
            z = float(np.clip((v[i] - mu) / sigma, -4.0, 4.0))
            s_hi = max(0.0, s_hi + z - self.k)
            s_lo = max(0.0, s_lo - z - self.k)
            if s_hi > self.h or s_lo > self.h:
                direction = "up" if s_hi > self.h else "down"
                out.append(
                    Detection(
                        time=float(batch.times[i]),
                        metric=batch.metric,
                        component=str(batch.components[i]),
                        score=float(max(s_hi, s_lo)),
                        kind="changepoint",
                        detail=f"direction={direction}",
                    )
                )
                s_hi = s_lo = 0.0   # restart after signalling
                mu = float(np.median(v[max(0, i - self.warmup): i + 1]))
        return out
