"""Cross-component event association, and what clock drift does to it.

Section III-B: "Events that propagate over components are especially
complex and might span long time periods - for example, delays in
recovery from HSN link failures may impact other components using the
HSN ... Associating numerical or log events over components and time is
particularly tricky when a single global timestamp is unavailable as
local clock drift can result in erroneous associations."

* :func:`cluster_events` — time-window incident clustering: events
  within ``gap_s`` of each other join one incident, across components;
* :func:`order_accuracy` — given a known true ordering, how often do
  (possibly drift-corrupted) timestamps reproduce the true pairwise
  order — the metric the clock-drift ablation bench sweeps;
* :func:`link_failure_cascades` — stitch a NETWORK failure event to the
  events that follow it within a propagation window (the recovery-delay
  cascade the paper names).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.events import Event, EventKind

__all__ = [
    "Incident",
    "cluster_events",
    "order_accuracy",
    "Cascade",
    "link_failure_cascades",
]


@dataclass(frozen=True, slots=True)
class Incident:
    """One cluster of temporally associated events."""

    t_start: float
    t_end: float
    events: tuple[Event, ...]

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(sorted({e.component for e in self.events}))

    @property
    def size(self) -> int:
        return len(self.events)


def cluster_events(
    events: Sequence[Event], gap_s: float = 30.0
) -> list[Incident]:
    """Single-linkage clustering on the time axis.

    Two events belong to the same incident when they are within
    ``gap_s`` — the standard first-pass association for "what happened
    together", and exactly the operation clock drift corrupts.
    """
    if not events:
        return []
    ordered = sorted(events, key=lambda e: e.time)
    incidents: list[Incident] = []
    bucket: list[Event] = [ordered[0]]
    for ev in ordered[1:]:
        if ev.time - bucket[-1].time <= gap_s:
            bucket.append(ev)
        else:
            incidents.append(
                Incident(bucket[0].time, bucket[-1].time, tuple(bucket))
            )
            bucket = [ev]
    incidents.append(
        Incident(bucket[0].time, bucket[-1].time, tuple(bucket))
    )
    return incidents


def order_accuracy(
    true_order: Sequence[Event],
    stamped: Sequence[Event],
    min_separation_s: float = 0.0,
    max_separation_s: float = float("inf"),
) -> float:
    """Fraction of event pairs whose stamped order matches truth.

    ``true_order`` carries ground-truth times; ``stamped`` is the same
    events (same order!) with producer-local timestamps.  Pairs closer
    than ``min_separation_s`` in truth are skipped (their order is not
    meaningful); pairs farther than ``max_separation_s`` apart can be
    skipped too — clock error only corrupts *nearby* pairs, and those
    are exactly the ones cross-component causality analysis needs, so
    scoring only them avoids diluting the metric with trivially ordered
    distant pairs.  1.0 = perfect ordering; 0.5 = coin flip.
    """
    if len(true_order) != len(stamped):
        raise ValueError("event lists must be parallel")
    pairs = 0
    correct = 0
    for i, j in combinations(range(len(true_order)), 2):
        dt_true = true_order[j].time - true_order[i].time
        if abs(dt_true) < min_separation_s or dt_true == 0.0:
            continue
        if abs(dt_true) > max_separation_s:
            continue
        dt_obs = stamped[j].time - stamped[i].time
        pairs += 1
        if np.sign(dt_obs) == np.sign(dt_true):
            correct += 1
    return correct / pairs if pairs else 1.0


@dataclass(frozen=True, slots=True)
class Cascade:
    """A link failure and the trail of events that followed it."""

    root: Event
    followers: tuple[Event, ...]

    @property
    def span_s(self) -> float:
        if not self.followers:
            return 0.0
        return max(e.time for e in self.followers) - self.root.time

    @property
    def affected_components(self) -> tuple[str, ...]:
        return tuple(sorted({e.component for e in self.followers}))


def link_failure_cascades(
    events: Sequence[Event],
    window_s: float = 300.0,
) -> list[Cascade]:
    """Stitch each HSN link *failure* to the events within its window.

    A follower is any event after the root failure and within
    ``window_s``, excluding the root itself; the matching restore event
    ends the window early when it comes sooner.
    """
    ordered = sorted(events, key=lambda e: e.time)
    roots = [
        e
        for e in ordered
        if e.kind is EventKind.NETWORK and " failed:" in e.message
    ]
    cascades = []
    for root in roots:
        end = root.time + window_s
        # if the link recovers sooner, close the window there
        for e in ordered:
            if (
                e.kind is EventKind.NETWORK
                and e.time > root.time
                and "restored" in e.message
                and e.fields.get("link_index") == root.fields.get("link_index")
            ):
                end = min(end, e.time)
                break
        followers = tuple(
            e
            for e in ordered
            if root.time < e.time <= end and e is not root
        )
        cascades.append(Cascade(root=root, followers=followers))
    return cascades
