"""Queue-backlog characterization (NERSC) and wait-time estimation (CSC).

NERSC: "large or sudden changes in outstanding demand can indicate for
example a spike in jobs that fail immediately upon starting (quickly
emptying the queue) or a blockage in the queue (quickly filling it)."
CSC: queue-length monitoring "to provide users a realistic view into
the expected wait time for the currently submitted workload."

:func:`characterize` segments a backlog series into episodes
(normal / filling / draining / blockage) from robust derivative and
level statistics; :func:`estimate_wait` converts backlog into an
expected start delay for a hypothetical new job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import SeriesBatch
from .stats import mad, rolling_mean

__all__ = ["QueueEpisode", "characterize", "estimate_wait"]


@dataclass(frozen=True, slots=True)
class QueueEpisode:
    """One classified stretch of queue behaviour."""

    t_start: float
    t_end: float
    label: str              # "normal" | "filling" | "draining" | "blockage"
    mean_level: float
    slope: float            # backlog units per second


def _label(slope: float, slope_sigma: float, level: float,
           level_median: float) -> str:
    fast = abs(slope) > 4.0 * max(slope_sigma, 1e-12)
    if fast and slope > 0:
        # sustained fast fill with elevated level = blockage signature
        if level > 1.5 * max(level_median, 1e-12):
            return "blockage"
        return "filling"
    if fast and slope < 0:
        return "draining"
    return "normal"


def characterize(
    backlog: SeriesBatch,
    window: int = 5,
) -> list[QueueEpisode]:
    """Segment a backlog series into labeled episodes.

    Adjacent samples with the same label merge into one episode; the
    slope statistics are robust to the heavy-tailed arrivals real queues
    have.
    """
    n = len(backlog)
    if n < window + 2:
        return []
    t = backlog.times
    v = rolling_mean(backlog.values, window)
    dt = np.diff(t)
    dv = np.diff(v)
    slopes = np.divide(dv, dt, out=np.zeros_like(dv), where=dt > 0)
    # noise scale from slope *changes*, not slopes themselves — a long
    # sustained fill/drain would otherwise inflate the scale and hide
    # itself (the contamination problem robust stats exist for)
    slope_sigma = mad(np.diff(slopes)) if len(slopes) > 2 else mad(slopes)
    if not np.isfinite(slope_sigma) or slope_sigma == 0:
        slope_sigma = float(np.std(np.diff(slopes))) or 1e-12
    level_median = float(np.median(v))

    labels = [
        _label(slopes[i], slope_sigma, v[i + 1], level_median)
        for i in range(n - 1)
    ]
    episodes: list[QueueEpisode] = []
    start = 0
    for i in range(1, n):
        if i == n - 1 or labels[i] != labels[start]:
            seg = slice(start, i + 1)
            seg_t = t[seg]
            seg_v = backlog.values[seg]
            slope = (
                (seg_v[-1] - seg_v[0]) / (seg_t[-1] - seg_t[0])
                if seg_t[-1] > seg_t[0]
                else 0.0
            )
            episodes.append(
                QueueEpisode(
                    t_start=float(seg_t[0]),
                    t_end=float(seg_t[-1]),
                    label=labels[start],
                    mean_level=float(seg_v.mean()),
                    slope=float(slope),
                )
            )
            start = i
    return episodes


def estimate_wait(
    backlog_node_hours: float,
    machine_nodes: int,
    utilization: float = 0.9,
) -> float:
    """Expected seconds before a newly submitted job can start (CSC view).

    First-order estimate: the queued node-hours must drain through the
    machine's effective capacity before the new arrival reaches the
    head.  Deliberately simple — it is a user-facing expectation, not a
    simulation.
    """
    if machine_nodes < 1:
        raise ValueError("machine_nodes must be >= 1")
    capacity_node_hours_per_s = machine_nodes * utilization / 3600.0
    if capacity_node_hours_per_s <= 0:
        return float("inf")
    return backlog_node_hours / capacity_node_hours_per_s
