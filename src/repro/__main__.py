"""Command-line demo driver: ``python -m repro [scenario]``.

Runs a monitored machine scenario and prints the live outcome — the
fastest way to see the stack end to end without writing code.

Scenarios:

* ``demo``        (default) — mixed workload, hung node + slow OST,
                  full pipeline, alerts + dashboard;
* ``figures``     — regenerate Figure 3 and Figure 4 style output from
                  a fresh simulation;
* ``registry``    — print the metric data dictionary (every metric's
                  unit, meaning, and derivation);
* ``dashboard``   — run a workload and render the shareable operations
                  dashboard spec;
* ``obs``         — run a workload and introspect the monitoring plane
                  itself: per-stage span timings, data-path
                  completeness, slowest spans, and the ``selfmon.*``
                  meta-metric series it stored about itself;
* ``scale``       — run the same machine on all three transport tiers
                  (flat bus, partitioned bus, aggregator tree) and
                  print a comparison table: message volumes, drops,
                  completeness, stored samples, and wall time — plus a
                  storage-plane section (columnar ingest rate, cold vs
                  warm query latency, compression ratio) and an
                  analysis-plane section (streaming-detector sweep
                  throughput at 27,648 components, columnar vs scalar);
                  with ``--workers N``, also a parallel-runtime section
                  sweeping the threaded execution model from 1 to N
                  workers over a remote-RTT-dominated monitored run;
* ``chaos``       — break the monitoring plane itself (raising
                  collector, hung collector, transport stall, transport
                  drop storm, TSDB shard outage) and show the
                  supervised lifecycle riding it out: the
                  health-transition timeline, the self-alerts the SEC
                  raised about its own degradation — including the
                  freshness-SLO breach naming the stalled hop — and the
                  delivery ledger reconciling every published point as
                  stored or accounted loss;
* ``slo``         — run the same workload on all three transport tiers
                  and print the ingest-to-queryable latency waterfall
                  each produced: per-hop attribution whose hop sums
                  telescope *exactly* to the end-to-end latency, plus
                  the freshness-SLO burn status;
* ``store``       — out-of-core storage demo: run a sharded store with
                  a deliberately tiny hot-tier byte budget so sealed
                  chunks spill to mmap-backed segment files, snapshot,
                  then hard-crash the store (files truncated to the
                  last fsync) mid-campaign and recover from disk — the
                  delivery ledger accounts every point across the
                  crash, with unsynced loss a named cause, never a
                  silence;
* ``serve``       — ingest on a sharded store, then drive dashboard
                  query rounds for two tenants through the serving
                  plane: rollup-pyramid planner answers, result-cache
                  hit ratios, per-tenant admission accounting (a
                  burst-limited guest is shed), and an exactness
                  spot-check of every planner answer against the raw
                  decompress path;
* ``sites``       — stand up all ten paper sites from their declarative
                  configs on one simulated clock, run a short campaign,
                  and print the regenerated Table I capability matrix
                  (declared vs live-introspected, drift flagged), a
                  cross-site federated query answered exactly through
                  the partial-column merge, the merged health timeline,
                  and every site's delivery-ledger identity — exits
                  nonzero if any ledger fails to balance or any
                  declared capability drifts from the built stack.

``obs --json`` emits the full health report and the stored ``selfmon.*``
series as machine-readable JSON instead of text.
"""

from __future__ import annotations

import argparse
import sys


def _build_machine(seed: int):
    from .cluster import (
        HungNode,
        JobGenerator,
        Machine,
        PackedPlacement,
        SlowOst,
        build_dragonfly,
    )

    topo = build_dragonfly(groups=2, chassis_per_group=3,
                           blades_per_chassis=4)
    machine = Machine(
        topo,
        placement=PackedPlacement(),
        job_generator=JobGenerator(mean_interarrival_s=180,
                                   max_nodes=32, seed=seed),
        gpu_nodes="all",
        seed=seed,
    )
    machine.faults.add(HungNode(start=900.0, duration=1200.0,
                                node=topo.nodes[5]))
    machine.faults.add(SlowOst(start=1800.0, duration=1200.0, ost=0,
                               bw_factor=0.1))
    return machine


def cmd_demo(args) -> int:
    from .pipeline import default_pipeline

    machine = _build_machine(args.seed)
    print(f"simulating {len(machine.topo.nodes)} nodes for "
          f"{args.hours:g} h with a hung node and a slow OST...")
    pipeline = default_pipeline(machine, seed=args.seed)
    pipeline.run(hours=args.hours, dt=10.0)
    print("\nalerts:")
    for a in pipeline.alerts.alerts:
        print(f"  t={a.time:6.0f}s [{a.severity.name:8}] "
              f"{a.rule:18} {a.component}: {a.message[:54]}")
    print()
    print(pipeline.dashboard().render(machine.now, window_s=1200.0))
    stats = pipeline.tsdb.stats()
    print(f"\n{stats.samples} samples / {stats.series} series stored, "
          f"{len(pipeline.logs)} log events, "
          f"{len(pipeline.jobs)} jobs indexed")
    return 0


def cmd_figures(args) -> int:
    from .pipeline import default_pipeline
    from .viz.figures import figure3_power, figure4_drilldown

    machine = _build_machine(args.seed)
    pipeline = default_pipeline(machine, seed=args.seed)
    pipeline.run(hours=args.hours, dt=10.0)
    fig3 = figure3_power(pipeline.tsdb, 0.0, machine.now)
    print(fig3.render(height=7))
    fig4, result = figure4_drilldown(pipeline.tsdb, pipeline.jobs,
                                     0.0, machine.now)
    print()
    print(fig4.render(height=7))
    return 0


def cmd_registry(args) -> int:
    from .core.registry import default_registry

    print(default_registry().document())
    return 0


def cmd_dashboard(args) -> int:
    from .pipeline import default_pipeline
    from .viz.dashspec import operations_dashboard

    machine = _build_machine(args.seed)
    pipeline = default_pipeline(machine, seed=args.seed)
    pipeline.run(hours=args.hours, dt=10.0)
    spec = operations_dashboard()
    print("shareable spec (JSON):")
    print(spec.to_json())
    print()
    print(spec.render(pipeline.tsdb, machine.now))
    return 0


def cmd_obs(args) -> int:
    from .analysis.streaming import (
        StreamingOutlierDetector,
        StreamingRateWatch,
        StreamingStats,
    )
    from .pipeline import default_pipeline

    as_json = getattr(args, "json", False)
    machine = _build_machine(args.seed)
    if not as_json:
        print(f"simulating {len(machine.topo.nodes)} nodes for "
              f"{args.hours:g} h, monitoring the monitoring...")
    pipeline = default_pipeline(machine, seed=args.seed)
    # streaming detectors on the hot sweeps, so the analysis plane has
    # something to self-report (selfmon.analysis.* gauges below)
    pipeline.add_streaming(StreamingStats())
    pipeline.add_streaming(
        StreamingOutlierDetector(("node.power_w",), z_threshold=6.0))
    pipeline.add_streaming(
        StreamingRateWatch("gpu.ecc_dbe", max_rate_per_s=0.01))
    pipeline.run(hours=args.hours, dt=10.0)
    selfmon = sorted(
        {k.metric for k in pipeline.tsdb.keys()
         if k.metric.startswith("selfmon.")}
    )
    if as_json:
        import dataclasses
        import json

        report = pipeline.introspect().report()
        series = {}
        for name in selfmon:
            comps = pipeline.tsdb.components(name)
            b = pipeline.tsdb.query(name, comps[0])
            series[name] = {
                "components": len(comps),
                "latest": float(b.values[-1]),
            }
        print(json.dumps(
            {"report": dataclasses.asdict(report), "selfmon": series},
            indent=2, sort_keys=True, default=str,
        ))
        return 0
    print()
    print(pipeline.introspect().render())
    print()
    print(f"selfmon series stored ({len(selfmon)} metrics):")
    for name in selfmon:
        comps = pipeline.tsdb.components(name)
        b = pipeline.tsdb.query(name, comps[0])
        print(f"  {name:<35} {len(comps):3d} component(s), "
              f"latest={b.values[-1]:.3f}")
    return 0


def cmd_scale(args) -> int:
    import time as _time

    from .pipeline import default_pipeline

    specs = [
        ("flat", dict(transport="flat")),
        ("partitioned", dict(transport="partitioned", shards=4)),
        ("tree", dict(transport="tree", shards=4)),
    ]
    print(f"running the same {args.hours:g} h scenario on each "
          f"transport tier...")
    rows = []
    for label, kw in specs:
        machine = _build_machine(args.seed)
        pipeline = default_pipeline(machine, seed=args.seed, **kw)
        t0 = _time.perf_counter()
        pipeline.run(hours=args.hours, dt=10.0)
        pipeline.bus.flush()     # deliver anything still windowed
        wall = _time.perf_counter() - t0
        stats = pipeline.bus.stats()
        upstream = getattr(stats, "upstream_messages", stats.published)
        from .obs.selfmetrics import completeness_ratio
        rows.append((
            label,
            stats.published,
            upstream,
            stats.delivered,
            stats.dropped,
            completeness_ratio(stats.delivered, stats.dropped,
                               stats.errors),
            pipeline.tsdb.stats().samples,
            len(pipeline.alerts.alerts),
            wall,
        ))
    hdr = (f"{'transport':<12} {'published':>10} {'upstream':>10} "
           f"{'delivered':>10} {'dropped':>8} {'complete':>9} "
           f"{'samples':>9} {'alerts':>7} {'wall s':>7}")
    print()
    print(hdr)
    print("-" * len(hdr))
    for r in rows:
        print(f"{r[0]:<12} {r[1]:>10} {r[2]:>10} {r[3]:>10} {r[4]:>8} "
              f"{r[5]:>9.4f} {r[6]:>9} {r[7]:>7} {r[8]:>7.2f}")
    flat_up, tree_up = rows[0][2], rows[2][2]
    if tree_up:
        print(f"\naggregator tree upstream reduction: "
              f"{flat_up / tree_up:.1f}x fewer messages than flat "
              f"fan-out")
    _scale_storage_plane(args)
    _scale_analysis_plane(args)
    if getattr(args, "workers", None):
        _scale_parallel_plane(args)
    return 0


def _scale_storage_plane(args) -> None:
    """The storage-plane rows of ``scale``: ingest rate, cold/warm query
    latency, and compression ratio of the vectorized TSDB data plane."""
    import time as _time

    import numpy as np

    from .core.metric import SeriesBatch
    from .storage.chunkcache import ChunkCache
    from .storage.tsdb import TimeSeriesStore

    n_comps, n_sweeps, chunk_size = 256, 2048, 512
    comps = np.array([f"n{i:04d}" for i in range(n_comps)])
    rng = np.random.default_rng(args.seed)
    store = TimeSeriesStore(chunk_size=chunk_size)
    t0 = _time.perf_counter()
    for s in range(n_sweeps):
        store.append(SeriesBatch("node.power_w", comps,
                                 np.full(n_comps, 60.0 * s),
                                 rng.normal(250.0, 15.0, n_comps)))
    ingest_wall = _time.perf_counter() - t0
    store.flush()
    stats = store.stats()
    span = n_sweeps * 60.0
    step = chunk_size * 60.0 * 2    # buckets swallow whole chunks

    def timed(prune, cache):
        st = TimeSeriesStore(chunk_size=chunk_size, cache=cache)
        st._series = store._series    # share the sealed data read-only
        best = float("inf")
        for _ in range(5):
            w0 = _time.perf_counter()
            for c in comps[:8]:
                st.downsample("node.power_w", str(c), 0.0, span, step,
                              "mean", prune=prune)
            best = min(best, _time.perf_counter() - w0)
        return best / 8.0

    cold = timed(prune=False, cache=ChunkCache(max_bytes=0))
    warm = timed(prune=True, cache=ChunkCache())
    print(f"\nstorage plane ({n_comps} series x {n_sweeps} sweeps, "
          f"chunk_size={chunk_size}):")
    print(f"  ingest rate       {stats.samples / ingest_wall:12,.0f} "
          f"samples/s (batch append)")
    print(f"  cold query        {1e3 * cold:12.3f} ms/series "
          f"(decompress every chunk)")
    print(f"  warm query        {1e3 * warm:12.3f} ms/series "
          f"(chunk summaries, {cold / warm:.1f}x faster)")
    print(f"  compression ratio {stats.compression_ratio:12.1f}x "
          f"({stats.compressed_bytes:,} B for "
          f"{stats.raw_bytes:,} B raw)")


def _scale_analysis_plane(args) -> None:
    """The analysis-plane rows of ``scale``: streaming-detector sweep
    throughput at Trinity scale, columnar kernels vs the retained
    scalar references."""
    import time as _time

    import numpy as np

    from .analysis.anomaly import _sweep_outliers_slow, sweep_outliers
    from .analysis.streaming import (
        ScalarStreamingRateWatch,
        ScalarStreamingStats,
        StreamingRateWatch,
        StreamingStats,
    )
    from .core.metric import SeriesBatch

    n, n_sweeps = 27648, 3
    comps = np.array([f"n{i:05d}" for i in range(n)], dtype=object)
    rng = np.random.default_rng(args.seed)
    power = [SeriesBatch("node.power_w", comps, np.full(n, 60.0 * k),
                         rng.normal(250.0, 15.0, n))
             for k in range(n_sweeps)]
    base = rng.integers(0, 3, n).astype(float)
    counter = [SeriesBatch("gpu.ecc_dbe", comps, np.full(n, 60.0 * k),
                           base + 0.05 * k)
               for k in range(n_sweeps)]

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = _time.perf_counter()
            fn()
            best = min(best, _time.perf_counter() - t0)
        return best

    def run_stats(cls):
        st = cls()
        for b in power:
            st.observe(b)

    def run_outliers(fn):
        for b in power:
            fn(b, z_threshold=5.0)

    def run_watch(cls):
        w = cls("gpu.ecc_dbe", max_rate_per_s=0.5)
        for b in counter:
            w.observe(b)

    pairs = [
        ("streaming stats",
         lambda: run_stats(ScalarStreamingStats),
         lambda: run_stats(StreamingStats)),
        ("sweep outliers",
         lambda: run_outliers(_sweep_outliers_slow),
         lambda: run_outliers(sweep_outliers)),
        ("rate watch",
         lambda: run_watch(ScalarStreamingRateWatch),
         lambda: run_watch(StreamingRateWatch)),
    ]
    total = n * n_sweeps
    print(f"\nanalysis plane ({n:,}-component sweeps x {n_sweeps}):")
    slow_sum = fast_sum = 0.0
    for label, slow_fn, fast_fn in pairs:
        slow = best_of(slow_fn)
        fast = best_of(fast_fn)
        slow_sum += slow
        fast_sum += fast
        print(f"  {label:<17} scalar {total / slow:11,.0f} samples/s"
              f" -> columnar {total / fast:12,.0f} samples/s"
              f" ({slow / fast:5.1f}x)")
    print(f"  combined detector speedup: {slow_sum / fast_sum:.1f}x")


def _scale_parallel_plane(args) -> None:
    """The parallel-runtime rows of ``scale --workers N``: the full
    monitored sweep at Trinity scale on 1, 2, ..., N workers, with the
    remote-I/O latency model on the scrape and store-write edges."""
    from .runtime.scaling import (
        DEFAULT_COMPONENTS,
        DEFAULT_FLEETS,
        sweep_workers,
    )

    top = max(1, int(args.workers))
    counts = sorted({1, min(2, top), top})
    n_steps = max(2, int(args.hours * 3600.0 / 10.0) // 18) \
        if args.hours < 1.0 else 20
    print(f"\nparallel runtime ({DEFAULT_COMPONENTS:,} components / "
          f"{DEFAULT_FLEETS} remote fleets, {n_steps} monitored steps "
          f"per arm):")
    rows = sweep_workers(counts, n_steps=n_steps, seed=args.seed)
    hdr = (f"  {'workers':>7} {'wall s':>8} {'steps/s':>8} "
           f"{'speedup':>8} {'busy':>6} {'samples':>9}")
    print(hdr)
    print("  " + "-" * (len(hdr) - 2))
    for r in rows:
        busy = r["executor"]["busy_fraction"]
        print(f"  {r['workers']:>7} {r['wall_s']:>8.2f} "
              f"{r['steps_per_s']:>8.2f} {r['speedup']:>7.2f}x "
              f"{busy:>6.2f} {r['samples']:>9,}")
    best = rows[-1]
    print(f"  -> {best['workers']} workers hide "
          f"{best['rtt_paid_s']:.1f} s of remote RTT per arm: "
          f"{best['speedup']:.1f}x the serial step loop")


def cmd_chaos(args) -> int:
    from .obs.chaos import (
        ChaosTransport,
        CollectorHang,
        CollectorRaise,
        MonitorFaultInjector,
        ShardOutage,
        TransportDropStorm,
        TransportStall,
    )
    from .pipeline import default_pipeline
    from .transport.partitioned import PartitionedBus

    machine = _build_machine(args.seed)
    print(f"simulating {len(machine.topo.nodes)} nodes for "
          f"{args.hours:g} h while injecting faults into the "
          f"monitoring plane itself...")
    pipeline = default_pipeline(
        machine,
        seed=args.seed,
        transport=ChaosTransport(PartitionedBus()),
        shards=4,
        collector_budget_s=0.01,
    )
    inj = MonitorFaultInjector([
        CollectorRaise(start=600.0, duration=900.0, target="sedc"),
        CollectorHang(start=1200.0, duration=600.0,
                      target="node_counters"),
        TransportStall(start=1400.0, duration=400.0),
        TransportDropStorm(start=2000.0, duration=800.0, drop_every=3),
        ShardOutage(start=3000.0, duration=1000.0, shard=1),
    ])
    print("\nfault schedule (monitor-side ground truth):")
    for g in inj.ground_truth():
        tgt = f" target={g['target']}" if g["target"] else ""
        print(f"  {g['name']:<22} t=[{g['start']:.0f}, {g['end']:.0f})"
              f"{tgt}")

    dt = 10.0
    end = machine.now + args.hours * 3600.0
    while machine.now < end - 1e-9:
        inj.step(pipeline, machine.now)
        pipeline.step(dt)
    inj.step(pipeline, machine.now)   # revert anything still open
    pipeline.bus.flush()

    print("\nhealth-transition timeline:")
    print(pipeline.supervisor.timeline())

    impaired = [
        (name, rec) for name, rec in pipeline.health_report().items()
        if rec["state"] != "ok"
    ]
    n = len(pipeline.health_report())
    if impaired:
        print(f"\nfinal health: {len(impaired)}/{n} components "
              f"still impaired:")
        for name, rec in impaired:
            print(f"  {name}: {rec['state'].upper()} ({rec['reason']})")
    else:
        print(f"\nfinal health: all {n} supervised components OK "
              f"(every fault healed)")

    self_alerts = [a for a in pipeline.alerts.alerts
                   if a.rule.startswith("monitor_self")]
    print(f"\nself-alerts raised about the monitoring plane "
          f"({len(self_alerts)}):")
    for a in self_alerts[:8]:
        print(f"  t={a.time:6.0f}s [{a.severity.name:8}] "
              f"{a.rule:22} {a.message[:52]}")
    if len(self_alerts) > 8:
        print(f"  ... and {len(self_alerts) - 8} more")

    fresh_alerts = [a for a in pipeline.alerts.alerts
                    if a.rule.startswith("freshness_slo")]
    print(f"\nfreshness-SLO breaches escalated ({len(fresh_alerts)}):")
    for a in fresh_alerts[:4]:
        print(f"  t={a.time:6.0f}s [{a.severity.name:8}] "
              f"{a.rule:22} {a.message[:100]}")
    if len(fresh_alerts) > 4:
        print(f"  ... and {len(fresh_alerts) - 4} more")
    stall_named = any("worst hop pump" in a.message
                      for a in fresh_alerts)
    if stall_named:
        print("  -> the breach exemplar names the stalled hop (pump): "
              "the alert points at where the latency lives")

    report = pipeline.delivery_report()
    print()
    print(report.render())
    ok = (impaired == [] and report.balanced and inj.all_reverted()
          and stall_named)
    print()
    if ok:
        print("chaos campaign PASSED: zero uncaught exceptions, all "
              "components recovered, ledger reconciles exactly, "
              "freshness breach attributed to the stalled hop")
    else:
        print("chaos campaign FAILED: see above")
    return 0 if ok else 1


def cmd_store(args) -> int:
    import tempfile

    from .obs.chaos import MonitorFaultInjector, StoreCrash
    from .pipeline import default_pipeline

    from .storage.rollup import DEFAULT_LEVELS
    from .storage.sharded import ShardedTimeSeriesStore

    machine = _build_machine(args.seed)
    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    hot_budget = 16 << 10    # deliberately tiny: force spill to disk
    print(f"simulating {len(machine.topo.nodes)} nodes for "
          f"{args.hours:g} h on a disk-backed sharded store\n"
          f"  store dir   {store_dir}\n"
          f"  hot budget  {hot_budget} B/shard (sealed chunks past "
          f"this spill to mmap-backed segments)")
    # small chunks + small fsync batches so a short demo run actually
    # seals, spills, and syncs (the defaults are sized for long runs)
    tsdb = ShardedTimeSeriesStore(
        shards=4, chunk_size=24, pyramid_levels=DEFAULT_LEVELS,
        disk_dir=store_dir, hot_bytes=hot_budget,
        sync_every_bytes=64 << 10,
    )
    pipeline = default_pipeline(machine, seed=args.seed, tsdb=tsdb)

    dt = 10.0
    total_s = args.hours * 3600.0
    snap_at = machine.now + total_s * 0.5
    crash_at = machine.now + total_s * 0.75
    inj = MonitorFaultInjector([StoreCrash(start=crash_at)])
    crash = inj.faults[0]

    end = machine.now + total_s
    snapped = False
    while machine.now < end - 1e-9:
        if not snapped and machine.now >= snap_at:
            paths = pipeline.tsdb.snapshot()
            print(f"\nt={machine.now:6.0f}s snapshot: "
                  f"{len(paths)} per-shard manifests written "
                  f"(series index + pyramid partials + heads)")
            snapped = True
        was_applied = crash.applied
        if not was_applied and machine.now >= crash_at:
            d0 = pipeline.tsdb.disk_stats()
            print(f"\nt={machine.now:6.0f}s pre-crash tier: "
                  f"{d0.spills} spills, {d0.hot_bytes} hot B in "
                  f"{d0.hot_chunks} chunks, {d0.disk_bytes} B on disk")
        inj.step(pipeline, machine.now)
        if crash.applied and not was_applied:
            r = crash.recovery
            print(f"t={machine.now:6.0f}s CRASH: files truncated to "
                  f"last fsync, store rebuilt from disk")
            print(f"  recovered {r.points} points in {r.series} series "
                  f"({r.manifest_chunks} manifest chunks, "
                  f"{r.scanned_chunks} scanned from segments, "
                  f"{r.wal_points_replayed} WAL points replayed, "
                  f"{r.wal_points_skipped} deduped)")
            print(f"  torn tails truncated: "
                  f"{r.torn_segment_bytes} segment B, "
                  f"{r.torn_wal_bytes} WAL B")
            print(f"  {crash.points_accounted} unsynced points moved "
                  f"to accounted loss ('crash-unsynced')")
        pipeline.step(dt)
    inj.step(pipeline, machine.now)
    pipeline.bus.flush()

    # cold query sweep: full-range reads hit spilled chunks through the
    # mmap (decode straight from the mapped buffer, no staging copy)
    pipeline.tsdb.cache.clear()
    metrics = sorted(pipeline.tsdb.points_by_metric())[:50]
    swept = sum(
        len(pipeline.tsdb.query(m, c, 0.0, machine.now + 1.0).times)
        for m in metrics
        for c in pipeline.tsdb.components(m)
    )
    print(f"\ncold query sweep: {swept} points read back over "
          f"{len(metrics)} metrics (spilled chunks decoded from mmap)")

    d = pipeline.tsdb.disk_stats()
    print(f"\ndisk tier after {args.hours:g} h:")
    print(f"  on disk     {d.disk_bytes:10d} B "
          f"({d.segments} segments, {d.wal_bytes} B WAL)")
    print(f"  hot tier    {d.hot_bytes:10d} B in {d.hot_chunks} chunks "
          f"(budget {4 * hot_budget} B across 4 shards)")
    print(f"  spills {d.spills}  loads {d.loads}  "
          f"map_hits {d.map_hits}  remaps {d.remaps}")
    print(f"  wal records {d.wal_records}  wal fsync batches "
          f"{d.wal_syncs}")
    budget_held = d.hot_bytes <= 4 * hot_budget

    report = pipeline.delivery_report()
    print()
    print(report.render())

    ok = (crash.applied and report.balanced and budget_held
          and "crash-unsynced" in report.lost_by_cause)
    print()
    if ok:
        print("store scenario PASSED: hot tier held its byte budget, "
              "the store survived a hard crash, and the ledger "
              "reconciles exactly — crash loss is a named number, "
              "not a silence")
    else:
        print("store scenario FAILED: see above")
    return 0 if ok else 1


def cmd_slo(args) -> int:
    from .pipeline import default_pipeline
    from .transport.base import make_transport

    # a 120 s aggregation window makes the tree's merge latency visible
    # in the waterfall (the flat/partitioned tiers deliver same-tick)
    specs = [
        ("flat", lambda: make_transport("flat")),
        ("partitioned", lambda: make_transport("partitioned")),
        ("tree", lambda: make_transport("tree", window_s=120.0)),
    ]
    print(f"tracing ingest-to-queryable freshness over {args.hours:g} h "
          f"on each transport tier...")
    all_exact = True
    for label, build in specs:
        machine = _build_machine(args.seed)
        pipeline = default_pipeline(machine, seed=args.seed,
                                    transport=build())
        pipeline.run(hours=args.hours, dt=10.0)
        pipeline.bus.flush()     # deliver anything still windowed
        fr = pipeline.freshness
        fr.tier = label
        print()
        print(fr.render_waterfall())
        for s in fr.slo_status():
            state = "BREACHED" if s["active"] else "ok"
            print(f"  slo {s['name']}: p{100 * s['quantile']:g} <= "
                  f"{s['max_latency_s']:g}s  burn={s['burn_rate']:.2f}x"
                  f"  breaches={s['breaches']}  [{state}]")
        # the acceptance bar: hop attribution telescopes to the
        # end-to-end latency with no epsilon — exact equality on the
        # simulated clock
        exact = (fr.hop_total() == fr.e2e_total()
                 and fr.waterfall_exact())
        all_exact = all_exact and exact
        if not exact:
            print(f"  !! hop sums diverge from end-to-end on {label}")
    print()
    if all_exact:
        print("all tiers: sum(per-hop latency) == end-to-end latency "
              "exactly (no epsilon)")
    else:
        print("EXACTNESS VIOLATION: at least one tier's hop sums "
              "diverge from its end-to-end latency")
    return 0 if all_exact else 1


def cmd_serve(args) -> int:
    import numpy as np

    from .pipeline import default_pipeline
    from .serve.quota import TenantQuota

    machine = _build_machine(args.seed)
    print(f"ingesting {args.hours:g} h across 4 shards, then serving "
          f"dashboard queries through the multi-tenant front end...")
    pipeline = default_pipeline(
        machine, seed=args.seed, shards=4,
        serve_quotas={
            "ops": TenantQuota(qps=1000.0),
            # the sim clock is frozen between ticks, so the guest's
            # bucket never refills mid-burst: burst admissions, then shed
            "guest": TenantQuota(qps=1.0, burst=8.0),
        },
    )
    pipeline.run(hours=args.hours, dt=10.0)
    fe = pipeline.frontend
    t1 = machine.now
    metrics = ["node.load1", "node.power_w", "node.temp_c",
               "fs.read_bps", "queue.depth"]
    # two dashboard refresh rounds per tenant: round two should be
    # all result-cache hits (no ingest between them)
    for tenant in ("ops", "guest"):
        for _round in range(2):
            for m in metrics:
                fe.aggregate_across(m, t0=0.0, t1=t1, step=60.0,
                                    agg="mean", tenant=tenant)
                fe.aggregate_across(m, t0=0.0, t1=t1, step=600.0,
                                    agg="max", tenant=tenant)
                comps = fe.components(m, tenant=tenant)
                if comps:
                    fe.downsample(m, comps[0], 0.0, t1, 60.0,
                                  agg="mean", tenant=tenant)
    # exactness spot-check: planner answers against the store's
    # forced-decompress raw path
    exact = True
    for m in metrics:
        got = fe.aggregate_across(m, t0=0.0, t1=t1, step=60.0, agg="max",
                                  tenant="ops")
        want = pipeline.tsdb.aggregate_across(m, t0=0.0, t1=t1,
                                              step=60.0, agg="max")
        ok = (np.array_equal(got.times, want.times)
              and np.array_equal(got.values, want.values, equal_nan=True))
        exact = exact and ok
        if not ok:
            print(f"  !! serving-plane answer diverges from raw on {m}")
    s = fe.stats()
    print()
    print(f"queries: {s.queries} total, {s.admitted} admitted, "
          f"{s.rejected} shed")
    print(f"planner: {s.pyramid_answers} pyramid answers, "
          f"{s.raw_answers} raw fallbacks "
          f"({100 * s.pyramid_ratio:.0f}% from rollups)")
    print(f"result cache: {s.cache.hits} hits / "
          f"{s.cache.hits + s.cache.misses} lookups "
          f"(hit ratio {s.cache_hit_ratio:.2f}), "
          f"{s.cache.bytes} B resident")
    print()
    print(f"{'tenant':<10} {'admitted':>9} {'shed(rate)':>11} "
          f"{'shed(conc)':>11}")
    for t in fe.tenants():
        ts = fe.tenant_stats(t)
        print(f"{t:<10} {ts.admitted:>9} {ts.rejected_rate:>11} "
              f"{ts.rejected_concurrency:>11}")
    print()
    if exact:
        print("serving-plane answers match the raw decompress path "
              "exactly")
    else:
        print("EXACTNESS VIOLATION: serving plane diverged from the "
              "raw path")
    return 0 if exact else 1


def cmd_sites(args) -> int:
    from .sites import Federation, site_capabilities
    from .viz.sitematrix import capability_matrix

    fed = Federation.from_presets(executor=args.workers)
    nodes = sum(len(p.machine.topo.nodes)
                for p in fed.pipelines.values())
    print(f"standing up {len(fed.pipelines)} paper sites "
          f"({nodes} nodes total) on one simulated clock, "
          f"{args.hours:g} h campaign...")
    fed.run(hours=args.hours)
    fed.flush()
    t1 = fed.now

    # Table I, regenerated: declared capabilities checked cell-by-cell
    # against live introspection of each built stack
    rows, drift = [], {}
    for name, p in fed.pipelines.items():
        declared = p.site_config.capabilities()
        live = site_capabilities(p)
        rows.append(live)
        bad = sorted(k for k in declared if declared[k] != live.get(k))
        if bad:
            drift[name] = bad
    print()
    print(capability_matrix(rows, drift))

    fe = fed.frontend()
    metric = "cabinet.power_w"
    comps = fe.components(metric)
    batch = fe.aggregate_across(metric, t0=0.0, t1=t1, step=600.0,
                                agg="sum")
    print()
    print(f"federated query: sum({metric}) across {len(comps)} "
          f"cabinets at {len(fed.pipelines)} sites, 600 s buckets -> "
          f"{len(batch)} buckets")
    if len(batch):
        import numpy as np

        finite = batch.values[np.isfinite(batch.values)]
        if len(finite):
            print(f"  cross-site power envelope: "
                  f"min {finite.min():,.0f} W, "
                  f"mean {finite.mean():,.0f} W, "
                  f"max {finite.max():,.0f} W")
    s = fe.stats()
    print(f"  fan-out: {s.fanouts} site calls over {s.queries} "
          f"federated queries, {s.partial_answers} partial, "
          f"{sum(s.site_errors.values())} site errors")

    timeline = fed.timeline()
    print()
    print("merged health timeline (site-qualified):")
    lines = timeline.splitlines()
    for line in lines[:12]:
        print(f"  {line}")
    if len(lines) > 12:
        print(f"  ... {len(lines) - 12} more transitions")

    print()
    print(f"{'site':<8} {'published':>10} {'stored':>10} {'lost':>6} "
          f"{'pending':>8} {'in_flight':>9} {'unacct':>6}")
    balanced = True
    for name, r in fed.delivery_reports().items():
        if r is None:
            print(f"{name:<8} (unsupervised)")
            continue
        ok = r.balanced and r.unaccounted == 0
        balanced = balanced and ok
        print(f"{name:<8} {r.published:>10} {r.stored:>10} {r.lost:>6} "
              f"{r.pending:>8} {r.in_flight:>9} {r.unaccounted:>6}"
              f"{'' if ok else '  !! IMBALANCED'}")
    fed.shutdown()

    print()
    if balanced and not drift:
        print("every site's delivery identity holds exactly and the "
              "built stacks match their declared capabilities")
        return 0
    if not balanced:
        print("LEDGER VIOLATION: a site's delivery identity failed "
              "to balance")
    if drift:
        print("CAPABILITY DRIFT: built stacks diverge from declared "
              f"configs at {', '.join(sorted(drift))}")
    return 1


COMMANDS = {
    "demo": cmd_demo,
    "figures": cmd_figures,
    "registry": cmd_registry,
    "dashboard": cmd_dashboard,
    "obs": cmd_obs,
    "scale": cmd_scale,
    "chaos": cmd_chaos,
    "store": cmd_store,
    "slo": cmd_slo,
    "serve": cmd_serve,
    "sites": cmd_sites,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("scenario", nargs="?", default="demo",
                        choices=sorted(COMMANDS))
    parser.add_argument("--hours", type=float, default=1.0,
                        help="simulated hours (default 1.0)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output (obs scenario)")
    parser.add_argument("--workers", type=int, default=None,
                        help="scale scenario: also sweep the parallel "
                             "runtime up to N workers; sites scenario: "
                             "fan site ticks over N threads")
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.scenario](args)
    except BrokenPipeError:
        # output piped into head/less that closed early: not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
