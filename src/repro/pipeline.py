"""End-to-end monitoring pipeline: the system Table I specifies.

One :class:`MonitoringPipeline` wires together every layer against a
:class:`~repro.cluster.machine.Machine`:

  sources  — collectors on synchronized intervals (counters, SEDC,
             probes, benchmarks, health, queue, power, environment)
  events   — the ERD-analog router draining machine events, decoded by
             a Deluge-style tap
  transport— a pub/sub bus fanning data to *multiple consumers*
             (Table I: "direct the data and analysis results to
             multiple consumers")
  storage  — TSDB for numeric series, log store for events, job index
             for per-job extraction, relational store for jobs/tests
  response — SEC rule engine + action engine with alert dedup
  analysis — hooks that run user-supplied analyses on a cadence

``default_pipeline`` assembles the stack the way a site would deploy it;
everything is swappable (Table I: "Extensibility and modularity are
fundamental").
"""

from __future__ import annotations

from typing import Callable, Sequence

from .analysis.anomaly import Detection
from .cluster.machine import Machine
from .core.events import Event
from .core.metric import SeriesBatch
from .core.registry import MetricRegistry, default_registry
from .obs.introspect import PipelineIntrospector
from .obs.selfmetrics import SelfMonitor
from .obs.trace import Tracer
from .response.actions import ActionEngine, AlertManager
from .response.policy import default_sec_engine, detections_to_requests
from .response.sec import SecEngine
from .sources.base import CollectionScheduler, Collector
from .sources.benchmarks import BenchmarkSuite
from .sources.counters import (
    InjectionCollector,
    NetLinkCollector,
    NodeCounterCollector,
)
from .sources.environment import EnvironmentCollector
from .sources.erd import DelugeTap, EventRouter
from .sources.fsprobes import FsProbeCollector, OstCounterCollector
from .sources.health import HealthGate, NodeHealthSuite
from .sources.powermon import PowerCollector
from .sources.queuestats import QueueStatsCollector
from .sources.sedc import SedcCollector
from .storage.jobstore import JobIndex
from .storage.logstore import LogStore
from .storage.sqlstore import SqlStore
from .storage.tsdb import TimeSeriesStore
from .transport.bus import MessageBus
from .viz.dashboard import Dashboard

__all__ = ["MonitoringPipeline", "default_pipeline", "default_collectors"]

AnalysisHook = Callable[["MonitoringPipeline", float], Sequence[Detection]]


class MonitoringPipeline:
    """The assembled end-to-end monitoring system over one machine."""

    def __init__(
        self,
        machine: Machine,
        collectors: Sequence[Collector] = (),
        registry: MetricRegistry | None = None,
        sec: SecEngine | None = None,
        tick_s: float = 10.0,
        renotify_s: float = 3600.0,
        tracer: Tracer | None = None,
        selfmon_interval_s: float | None = 60.0,
    ) -> None:
        self.machine = machine
        self.registry = registry or default_registry()
        self.tick_s = float(tick_s)

        self.bus = MessageBus()
        self.tsdb = TimeSeriesStore()
        self.logs = LogStore()
        self.jobs = JobIndex()
        self.sql = SqlStore()

        # self-observability plane: span tracing + meta-metrics
        # identity check: an empty tracer is falsy (len == ring size),
        # and a disabled one must stay disabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.scheduler = CollectionScheduler(
            self.bus, self.registry, tracer=self.tracer
        )
        for c in collectors:
            self.scheduler.add(c)

        self.router = EventRouter()
        self.tap = self.router.attach(DelugeTap())

        self.sec = sec or default_sec_engine()
        self.alerts = AlertManager(renotify_s=renotify_s)
        self.actions = ActionEngine(machine, self.alerts)

        self._analysis_hooks: list[tuple[float, float, AnalysisHook]] = []
        self._streaming: list = []

        # metric fan-out: one subscription stores everything numeric;
        # selfmon.* meta-metrics ride the same path into the same TSDB
        self.bus.subscribe(
            "metrics.*", callback=self._on_metric, name="tsdb-ingest"
        )
        self.bus.subscribe(
            "selfmon.*", callback=self._on_metric, name="selfmon-ingest"
        )
        self.bus.subscribe(
            "events.*", callback=self._on_event, name="log-ingest"
        )
        self._tracked_jobs: set[int] = set()
        self._known_done: set[int] = set()

        self.selfmon: SelfMonitor | None = None
        if selfmon_interval_s is not None:
            self.selfmon = SelfMonitor(self, interval_s=selfmon_interval_s)
            self.selfmon.verify_registered(self.registry)

    # -- bus sinks ---------------------------------------------------------------

    def _on_metric(self, env) -> None:
        payload = env.payload
        if isinstance(payload, SeriesBatch):
            self.tsdb.append(payload)

    def _on_event(self, env) -> None:
        payload = env.payload
        if isinstance(payload, Event):
            self.logs.append(payload)

    # -- analysis hooks ---------------------------------------------------------------

    def add_analysis(self, interval_s: float, hook: AnalysisHook) -> None:
        """Run ``hook(pipeline, now)`` every ``interval_s``; returned
        detections flow through the response policy into actions."""
        self._analysis_hooks.append((interval_s, 0.0, hook))

    def add_streaming(self, detector, pattern: str = "metrics.*"):
        """Attach a streaming analysis operator (Table I's "streaming"
        analysis location): it observes every matching batch at ingest,
        and any detections it queues drain into the response path each
        tick."""
        detector.attach(self.bus, pattern)
        self._streaming.append(detector)
        return detector

    # -- job tracking ----------------------------------------------------------------------

    def _track_jobs(self, now: float) -> None:
        sched = self.machine.scheduler
        for job in sched.running:
            if job.id not in self._tracked_jobs and job.start_time is not None:
                self.jobs.record_start(
                    job.id, job.app.name, job.nodes, job.start_time,
                    user=job.user,
                )
                self.sql.upsert_job(
                    job.id, job.app.name, job.n_nodes, job.submit_time,
                    "running", start_time=job.start_time, nodes=job.nodes,
                )
                self._tracked_jobs.add(job.id)
        for job in sched.completed:
            if job.id in self._known_done:
                continue
            if job.id not in self._tracked_jobs and job.start_time is not None:
                self.jobs.record_start(
                    job.id, job.app.name, job.nodes, job.start_time,
                    user=job.user,
                )
                self._tracked_jobs.add(job.id)
            if job.id in self._tracked_jobs and job.end_time is not None:
                self.jobs.record_end(job.id, job.end_time)
                self.sql.upsert_job(
                    job.id, job.app.name, job.n_nodes, job.submit_time,
                    job.state.value, start_time=job.start_time,
                    end_time=job.end_time, nodes=job.nodes,
                )
                self._known_done.add(job.id)
                # CSCS post-job check: when a health gate is installed,
                # every finished job's nodes are re-validated and
                # failures drained before anything else lands on them
                gate = getattr(self, "health_gate", None)
                if gate is not None:
                    gate.post_job(job)

    # -- main loop -------------------------------------------------------------------------

    def step(self, dt: float | None = None) -> None:
        """Advance the machine one tick and run the monitoring plane.

        Every tick opens a root ``tick`` span with one child span per
        stage, so the introspector can attribute wall time to exactly
        the stage that spent it.
        """
        dt = self.tick_s if dt is None else dt
        tracer = self.tracer
        with tracer.span("tick"):
            self.machine.step(dt)
            now = self.machine.now

            # event plane: machine events -> router -> decoded -> log
            # store + SEC
            with tracer.span("event-plane"):
                self.router.pump(self.machine)
                fresh_events = self.tap.drain()
                for ev in fresh_events:
                    self.bus.publish(f"events.{ev.kind.value}", ev,
                                     source="erd")
                requests = self.sec.feed(fresh_events)
                requests += self.sec.tick(now)

            # metric plane: due collectors sweep the machine; events they
            # emit (benchmark DEGRADED, health failures) also feed the SEC
            # rules — "triggered based on arbitrary locations in the data
            # and analysis pathways" (Table I)
            with tracer.span("metric-plane"):
                collected = self.scheduler.poll(self.machine, now)
                if collected.events:
                    requests += self.sec.feed(collected.events)

            # job tenancy
            with tracer.span("job-tracking"):
                self._track_jobs(now)

            # streaming detectors saw the sweeps at ingest; drain them now
            with tracer.span("streaming"):
                for det in self._streaming:
                    drain = getattr(det, "drain", None)
                    if drain is not None:
                        found = drain()
                        if found:
                            requests += detections_to_requests(
                                list(found), rule_prefix="stream"
                            )

            # analysis hooks on their cadence
            with tracer.span("analysis-hooks"):
                for i, (interval, next_due, hook) in enumerate(
                    self._analysis_hooks
                ):
                    if now >= next_due:
                        detections = hook(self, now)
                        if detections:
                            requests += detections_to_requests(
                                list(detections)
                            )
                        self._analysis_hooks[i] = (
                            interval, now + interval, hook
                        )

            # response plane
            with tracer.span("response"):
                if requests:
                    self.actions.execute(requests)

            # the stack's own vitals, on their cadence
            if self.selfmon is not None:
                with tracer.span("selfmon"):
                    self.selfmon.maybe_emit(now)

    def run(
        self,
        duration_s: float | None = None,
        hours: float | None = None,
        dt: float | None = None,
    ) -> None:
        if (duration_s is None) == (hours is None):
            raise ValueError("pass exactly one of duration_s or hours")
        total = duration_s if duration_s is not None else hours * 3600.0
        end = self.machine.now + total
        while self.machine.now < end - 1e-9:
            self.step(dt)

    # -- convenience surfaces -------------------------------------------------------------------

    def dashboard(self) -> Dashboard:
        return Dashboard(self.tsdb)

    def active_alerts(self):
        return self.alerts.active()

    def overhead_report(self) -> dict:
        return self.scheduler.overhead_report()

    def introspect(self) -> PipelineIntrospector:
        """Health-report view over the monitoring plane itself."""
        return PipelineIntrospector(self)


def default_collectors(
    machine: Machine,
    metric_interval_s: float = 60.0,
    probe_interval_s: float = 60.0,
    bench_interval_s: float = 600.0,
    health_interval_s: float = 600.0,
    seed: int = 0,
) -> list[Collector]:
    """The full collector complement the sites describe."""
    return [
        NodeCounterCollector(metric_interval_s),
        InjectionCollector(metric_interval_s),
        NetLinkCollector(metric_interval_s),
        SedcCollector(metric_interval_s),
        PowerCollector(machine, metric_interval_s),
        FsProbeCollector(probe_interval_s),
        OstCounterCollector(probe_interval_s),
        QueueStatsCollector(metric_interval_s),
        EnvironmentCollector(max(probe_interval_s, 300.0)),
        BenchmarkSuite(interval_s=bench_interval_s, seed=seed),
        NodeHealthSuite(interval_s=health_interval_s),
    ]


def default_pipeline(
    machine: Machine,
    metric_interval_s: float = 60.0,
    with_health_gate: bool = True,
    seed: int = 0,
    **kw,
) -> MonitoringPipeline:
    """Assemble the full stack against ``machine`` (CSCS gate included)."""
    pipeline = MonitoringPipeline(
        machine,
        collectors=default_collectors(
            machine, metric_interval_s=metric_interval_s, seed=seed
        ),
        **kw,
    )
    if with_health_gate and machine.scheduler.health_gate is None:
        gate = HealthGate(machine)
        machine.scheduler.health_gate = gate.gate
        pipeline.health_gate = gate
    return pipeline
