"""End-to-end monitoring pipeline: the system Table I specifies.

One :class:`MonitoringPipeline` wires together every layer against a
:class:`~repro.cluster.machine.Machine`:

  sources  — collectors on synchronized intervals (counters, SEDC,
             probes, benchmarks, health, queue, power, environment)
  events   — the ERD-analog router draining machine events, decoded by
             a Deluge-style tap
  transport— any :class:`~repro.transport.base.Transport` fanning data
             to *multiple consumers* (Table I: "direct the data and
             analysis results to multiple consumers"): the flat bus,
             the partitioned bus, or the LDMS-style aggregator tree
  storage  — TSDB (single or sharded) for numeric series, log store
             for events, job index for per-job extraction, relational
             store for jobs/tests
  response — SEC rule engine + action engine with alert dedup
  analysis — hooks that run user-supplied analyses on a cadence

The tick loop itself is a sequence of :class:`~repro.stages.Stage`
objects iterated under trace spans — each plane of the data path is a
swappable unit, and ``default_pipeline`` assembles the stack the way a
site would deploy it with ``transport=``/``tsdb=``/``shards=`` knobs
(Table I: "Extensibility and modularity are fundamental").
"""

from __future__ import annotations

from typing import Callable, Sequence

from .analysis.anomaly import Detection
from .cluster.machine import Machine
from .core.events import Event
from .core.ledger import BalanceReport, DeliveryLedger
from .core.lifecycle import Supervisor
from .core.metric import SeriesBatch
from .core.registry import MetricRegistry, default_registry
from .core.tracectx import HOP_INGEST
from .obs.freshness import FreshnessSLO, FreshnessTracker, default_slos
from .obs.introspect import PipelineIntrospector
from .obs.selfmetrics import SelfMonitor
from .obs.trace import Tracer
from .response.actions import ActionEngine, AlertManager
from .response.policy import default_sec_engine
from .response.sec import ActionRequest, SecEngine
from .runtime.executor import ExecutionModel, make_executor
from .serve.frontend import QueryFrontend
from .serve.quota import TenantQuota
from .sources.base import CollectionScheduler, Collector
from .sources.benchmarks import BenchmarkSuite
from .sources.counters import (
    InjectionCollector,
    NetLinkCollector,
    NodeCounterCollector,
)
from .sources.environment import EnvironmentCollector
from .sources.erd import DelugeTap, EventRouter
from .sources.fsprobes import FsProbeCollector, OstCounterCollector
from .sources.health import NodeHealthSuite
from .sources.powermon import PowerCollector
from .sources.queuestats import QueueStatsCollector
from .sources.sedc import SedcCollector
from .stages import (
    AnalysisHooksStage,
    Stage,
    StreamingStage,
    default_stages,
    schedule_stages,
)
from .storage.jobstore import JobIndex
from .storage.logstore import LogStore
from .storage.rollup import DEFAULT_LEVELS
from .storage.sqlstore import SqlStore
from .storage.tsdb import TimeSeriesStore
from .transport.base import Transport
from .transport.bus import MessageBus
from .viz.dashboard import Dashboard

__all__ = ["MonitoringPipeline", "default_pipeline", "default_collectors"]

AnalysisHook = Callable[["MonitoringPipeline", float], Sequence[Detection]]


class MonitoringPipeline:
    """The assembled end-to-end monitoring system over one machine."""

    def __init__(
        self,
        machine: Machine,
        collectors: Sequence[Collector] = (),
        registry: MetricRegistry | None = None,
        sec: SecEngine | None = None,
        tick_s: float = 10.0,
        renotify_s: float = 3600.0,
        tracer: Tracer | None = None,
        selfmon_interval_s: float | None = 60.0,
        transport: Transport | None = None,
        tsdb=None,
        stages: Sequence[Stage] | None = None,
        supervision: bool = True,
        collector_budget_s: float | None = None,
        freshness: bool = True,
        freshness_slos: Sequence[FreshnessSLO] | None = None,
        executor: "ExecutionModel | int | str | None" = None,
        serve_quotas: "dict[str, TenantQuota] | None" = None,
        site: str = "",
    ) -> None:
        self.machine = machine
        # federation identity: non-empty when this stack is one site of
        # several in a process; namespaces the selfmon publisher and the
        # merged supervisor/ledger views (per-site surfaces stay local,
        # so a site federated with others reports identically to solo)
        self.site = site
        self.registry = registry or default_registry()
        self.tick_s = float(tick_s)

        # execution model: how the data-parallel planes run each tick.
        # Serial (the default) is today's behaviour, bit-identical;
        # a parallel executor fans collection / shard ingest / aggtree
        # coalescing across workers between tick barriers.
        self.executor: ExecutionModel = make_executor(executor)
        # envelope staging buffer used by parallel_sweep: non-None only
        # while a parallel metric-plane sweep is routing store appends
        # through the shard-concurrent ingest path
        self._staged_ingest: list | None = None

        # transport and numeric store are pluggable tiers; the defaults
        # are the flat bus + single store every existing example assumes
        self.bus: Transport = transport if transport is not None else MessageBus()
        self.tsdb = (
            tsdb if tsdb is not None
            else TimeSeriesStore(pyramid_levels=DEFAULT_LEVELS)
        )
        if self.executor.parallel:
            # transports that fan out internal work (aggtree leaf
            # coalescing) pick the executor up from this attribute
            self.bus.executor = self.executor
        self.logs = LogStore()
        self.jobs = JobIndex()
        self.sql = SqlStore()

        # supervised lifecycle + exact delivery accounting: every plane
        # reports into one Supervisor, every tracked point into one
        # DeliveryLedger (attached to the transport's publish edge and
        # the store's redo path)
        self.supervisor: Supervisor | None = (
            Supervisor() if supervision else None
        )
        self.ledger: DeliveryLedger | None = (
            DeliveryLedger() if supervision else None
        )
        if self.ledger is not None:
            self.bus.ledger = self.ledger
            if hasattr(self.tsdb, "redo_pending_points"):
                self.tsdb.ledger = self.ledger

        # self-observability plane: span tracing + meta-metrics
        # identity check: an empty tracer is falsy (len == ring size),
        # and a disabled one must stay disabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.scheduler = CollectionScheduler(
            self.bus, self.registry, tracer=self.tracer,
            supervisor=self.supervisor, budget_s=collector_budget_s,
        )
        for c in collectors:
            self.scheduler.add(c)

        # freshness plane: collectors open a trace context per batch,
        # transports and the store stamp their hop edges against the
        # simulated clock, _on_metric folds the finished journey
        self.ticks = 0
        self.freshness: FreshnessTracker | None = None
        if freshness:
            slos = (list(freshness_slos) if freshness_slos is not None
                    else default_slos(self.tick_s))
            self.freshness = FreshnessTracker(
                slos=slos, tier=type(self.bus).__name__
            )
            # the stamp clock fires three times per traced batch, so it
            # reads the sim clock's slot directly instead of going
            # through two property descriptors (Machine.now -> SimClock.now)
            try:
                sim = self.machine.clock
                sim._now
                clock = lambda c=sim: c._now   # noqa: E731
            except AttributeError:             # custom machine/clock
                clock = lambda: self.machine.now   # noqa: E731
            self.bus.clock = clock
            try:
                self.tsdb.clock = clock
            except AttributeError:      # slotted custom store
                pass
            self.scheduler.trace_batches = True

        # serving plane: the multi-tenant read path every dashboard-shaped
        # consumer goes through (pipeline.dashboard() reads via this);
        # the governor runs on the simulated clock so quota behavior is
        # deterministic in scenarios and tests
        try:
            sim = self.machine.clock
            sim._now
            serve_clock = lambda c=sim: c._now   # noqa: E731
        except AttributeError:                   # custom machine/clock
            serve_clock = lambda: self.machine.now   # noqa: E731
        self.frontend = QueryFrontend(self.tsdb, quotas=serve_quotas,
                                      clock=serve_clock)

        self.router = EventRouter()
        self.tap = self.router.attach(DelugeTap())

        self.sec = sec or default_sec_engine()
        self.alerts = AlertManager(renotify_s=renotify_s)
        self.actions = ActionEngine(machine, self.alerts)

        # the tick loop: stages ordered by their declared data
        # dependencies (declaration order breaks ties, so the default
        # set schedules into the historic Table I order)
        self.stages: list[Stage] = schedule_stages(
            list(stages) if stages is not None else default_stages()
        )
        self._pending_requests: list[ActionRequest] = []
        # supervision component names, built lazily (hot loop: no
        # per-tick string formatting)
        self._stage_keys: dict[str, str] = {}

        # metric fan-out: one subscription stores everything numeric;
        # selfmon.* meta-metrics ride the same path into the same TSDB
        self.bus.subscribe(
            "metrics.*", callback=self._on_metric, name="tsdb-ingest"
        )
        self.bus.subscribe(
            "selfmon.*", callback=self._on_metric, name="selfmon-ingest"
        )
        self.bus.subscribe(
            "events.*", callback=self._on_event, name="log-ingest"
        )

        self.selfmon: SelfMonitor | None = None
        if selfmon_interval_s is not None:
            self.selfmon = SelfMonitor(
                self, interval_s=selfmon_interval_s,
                source=f"{site}/selfmon" if site else "selfmon",
            )
            self.selfmon.verify_registered(self.registry)

    # -- transport alias ---------------------------------------------------------

    @property
    def transport(self) -> Transport:
        """The installed transport (``.bus`` kept as the historic name)."""
        return self.bus

    # -- bus sinks ---------------------------------------------------------------

    def _on_metric(self, env) -> None:
        payload = env.payload
        if not isinstance(payload, SeriesBatch):
            return
        staged = self._staged_ingest
        if staged is not None:
            # parallel metric-plane sweep in progress: park the
            # envelope; _ingest_staged appends shard-concurrently at
            # the barrier and applies the identical ledger/freshness
            # accounting in publish order
            staged.append(env)
            return
        try:
            stored = self.tsdb.append(payload)
        except Exception as exc:
            # a raising store degrades the tick, never kills ingest of
            # later batches; the points become accounted loss
            self._account_store_error(env.topic, payload, exc)
            return
        self._account_stored(env.topic, payload, stored)

    def _account_store_error(self, topic, payload, exc) -> None:
        """Ledger + supervision accounting for one failed store append."""
        ledger = self.ledger
        if ledger is not None and ledger.tracks(topic):
            ledger.lost_batch("store-error", payload)
        if self.supervisor is not None:
            self.supervisor.record(
                "store", False, self.machine.now,
                reason=f"append raised {type(exc).__name__}",
            )

    def _account_stored(self, topic, payload, stored: int) -> None:
        """Ledger + freshness accounting for one successful append."""
        ledger = self.ledger
        if ledger is not None and ledger.tracks(topic):
            ledger.stored_batch(payload, stored)
            # points the store neither stored nor parked in a redo
            # buffer (single-store partial ingest) would surface here
            # as unaccounted; the sharded store defers the difference,
            # so nothing extra to stamp
        fr = self.freshness
        if fr is not None:
            ctx = payload.trace
            if ctx is not None:
                if not ctx.hops or ctx.hops[-1][0] != HOP_INGEST:
                    # custom store without a clock hook: stamp
                    # queryable-at here so the journey still closes
                    ctx.stamp(HOP_INGEST, self.machine.now)
                stack = self.tracer._stack
                fr.record(payload, span=stack[-1].name if stack else "")

    def _on_event(self, env) -> None:
        payload = env.payload
        if isinstance(payload, Event):
            self.logs.append(payload)

    # -- parallel metric plane ---------------------------------------------------

    def parallel_sweep(self, now: float, executor: ExecutionModel):
        """One metric-plane sweep with worker fan-out at both ends.

        Collection fans out inside :meth:`CollectionScheduler.poll`;
        store appends are *staged* — ``_on_metric`` parks each delivered
        envelope instead of appending inline — and executed
        shard-concurrently at the barrier when the store supports it
        (``append_parallel``).  All ledger, supervision, and freshness
        accounting happens here afterwards, in publish order, so the
        totals are identical to the serial path.
        """
        if hasattr(self.tsdb, "append_parallel"):
            self._staged_ingest = []
        try:
            collected = self.scheduler.poll(
                self.machine, now, tick=self.ticks, executor=executor
            )
            self.bus.pump(now)
        finally:
            staged, self._staged_ingest = self._staged_ingest, None
        if staged:
            self._ingest_staged(staged, executor)
        return collected

    def _ingest_staged(self, staged, executor: ExecutionModel) -> None:
        """Append the staged envelopes shard-concurrently, then account.

        ``append_parallel`` preserves per-shard append order (every
        series lives on exactly one shard, and each shard consumes its
        pieces in publish order), so query results match the serial
        path; the accounting loop below runs in publish order, so the
        ledger and freshness totals match too.
        """
        results = self.tsdb.append_parallel(
            [env.payload for env in staged], executor
        )
        for env, res in zip(staged, results):
            if isinstance(res, BaseException):
                self._account_store_error(env.topic, env.payload, res)
            else:
                self._account_stored(env.topic, env.payload, res)

    # -- stage access ---------------------------------------------------------------

    def stage(self, name: str) -> Stage:
        """Look up an installed stage by its span name."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(
            f"no stage named {name!r}; installed: "
            f"{[s.name for s in self.stages]}"
        )

    def take_pending(self) -> list[ActionRequest]:
        """Drain the requests accumulated by earlier stages this tick."""
        out = self._pending_requests
        self._pending_requests = []
        return out

    # -- analysis hooks ---------------------------------------------------------------

    def add_analysis(self, interval_s: float, hook: AnalysisHook) -> None:
        """Run ``hook(pipeline, now)`` every ``interval_s``; returned
        detections flow through the response policy into actions."""
        stage = self.stage("analysis-hooks")
        assert isinstance(stage, AnalysisHooksStage)
        stage.add(interval_s, hook)

    def add_streaming(self, detector, pattern: str = "metrics.*"):
        """Attach a streaming analysis operator (Table I's "streaming"
        analysis location): it observes every matching batch at ingest,
        and any detections it queues drain into the response path each
        tick.  Detector names are uniquified before attaching, so the
        per-detector ``selfmon.analysis.*`` gauges stay unambiguous when
        two detectors of the same class are installed."""
        stage = self.stage("streaming")
        assert isinstance(stage, StreamingStage)
        base = getattr(detector, "name", type(detector).__name__)
        taken = {getattr(d, "name", "") for d in stage.detectors}
        name, k = base, 2
        while name in taken:
            name = f"{base}-{k}"
            k += 1
        try:
            detector.name = name
        except AttributeError:     # read-only / slotted custom detector
            pass
        detector.attach(self.bus, pattern)
        stage.detectors.append(detector)
        return detector

    # -- main loop -------------------------------------------------------------------------

    def step(self, dt: float | None = None) -> None:
        """Advance the machine one tick and run the monitoring plane.

        The tick body lives on the installed execution model
        (:meth:`~repro.runtime.executor.ExecutionModel.run_tick`): the
        stage loop itself always runs serially under trace spans, and
        parallel executors fan out inside the data-parallel planes,
        synchronizing at the tick barrier.
        """
        self.executor.run_tick(self, self.tick_s if dt is None else dt)

    def run(
        self,
        duration_s: float | None = None,
        hours: float | None = None,
        dt: float | None = None,
    ) -> None:
        if (duration_s is None) == (hours is None):
            raise ValueError("pass exactly one of duration_s or hours")
        total = duration_s if duration_s is not None else hours * 3600.0
        end = self.machine.now + total
        while self.machine.now < end - 1e-9:
            self.step(dt)

    # -- supervision / accounting surfaces ------------------------------------------------------

    def delivery_report(self) -> BalanceReport | None:
        """Reconcile the ledger against live pending/in-flight gauges.

        ``pending`` is whatever is parked in the store's redo buffers,
        ``in_flight`` whatever sits in transport queues/windows — after
        ``bus.flush()`` with all shards recovered, both are zero and the
        identity collapses to ``published == stored + accounted_lost``.
        """
        if self.ledger is None:
            return None
        pending = 0
        redo = getattr(self.tsdb, "redo_pending_points", None)
        if redo is not None:
            pending = redo()
        return self.ledger.balance(
            pending=pending, in_flight=self.bus.in_flight_points()
        )

    def health_report(self) -> dict[str, dict]:
        """Per-component supervision summary (empty when unsupervised)."""
        if self.supervisor is None:
            return {}
        return self.supervisor.report()

    # -- convenience surfaces -------------------------------------------------------------------

    def dashboard(self) -> Dashboard:
        # viz reads go through the serving plane: cached, planned,
        # quota-accounted — and provably identical to direct store reads
        return Dashboard(self.frontend)

    def active_alerts(self):
        return self.alerts.active()

    def overhead_report(self) -> dict:
        return self.scheduler.overhead_report()

    def introspect(self) -> PipelineIntrospector:
        """Health-report view over the monitoring plane itself."""
        return PipelineIntrospector(self)


def default_collectors(
    machine: Machine,
    metric_interval_s: float = 60.0,
    probe_interval_s: float = 60.0,
    bench_interval_s: float = 600.0,
    health_interval_s: float = 600.0,
    seed: int = 0,
) -> list[Collector]:
    """The full collector complement the sites describe."""
    return [
        NodeCounterCollector(metric_interval_s),
        InjectionCollector(metric_interval_s),
        NetLinkCollector(metric_interval_s),
        SedcCollector(metric_interval_s),
        PowerCollector(machine, metric_interval_s),
        FsProbeCollector(probe_interval_s),
        OstCounterCollector(probe_interval_s),
        QueueStatsCollector(metric_interval_s),
        EnvironmentCollector(max(probe_interval_s, 300.0)),
        BenchmarkSuite(interval_s=bench_interval_s, seed=seed),
        NodeHealthSuite(interval_s=health_interval_s),
    ]


def default_pipeline(
    machine: Machine,
    metric_interval_s: float = 60.0,
    with_health_gate: bool = True,
    seed: int = 0,
    transport: Transport | str | None = None,
    tsdb=None,
    shards: int | None = None,
    workers: int | None = None,
    store_dir: str | None = None,
    hot_bytes: int = 64 << 20,
    **kw,
) -> MonitoringPipeline:
    """Assemble the full stack against ``machine`` (CSCS gate included).

    ``transport`` picks the data-movement tier: ``None``/``"flat"`` is
    the single bus, ``"partitioned"`` the topic-hash partitioned bus,
    ``"tree"`` the LDMS-style aggregator tree — or pass any
    :class:`~repro.transport.base.Transport` instance.  ``shards=K``
    swaps the numeric store for a
    :class:`~repro.storage.sharded.ShardedTimeSeriesStore` over K
    shards (mutually exclusive with an explicit ``tsdb=``).
    ``workers=N`` (or ``executor=``, which it aliases) picks the
    execution model: N > 1 runs the data-parallel planes on a
    ``ThreadedExecutor`` over N workers; the default stays serial.
    ``store_dir=`` attaches the out-of-core disk tier (per-shard
    subdirectories when combined with ``shards=``): sealed chunks
    persist to segment files, appends are WAL-logged, and resident
    sealed bytes stay under ``hot_bytes``.

    This is a thin shim over the declarative site layer: the knobs
    validate through :meth:`~repro.sites.config.SiteConfig.from_knobs`
    (the one home of the mutual-exclusion rules) and the stack
    assembles through :func:`~repro.sites.build.build_site` against a
    one-site config.
    """
    from .sites.build import build_site
    from .sites.config import SITE_FIELD_NAMES, SiteConfig

    declarative, overrides = {}, {}
    aliases = {"serve_quotas": "quotas", "site": "name"}
    for key in list(kw):
        name = aliases.get(key, key)
        if name in SITE_FIELD_NAMES:
            declarative[name] = kw.pop(key)
    config, instance_overrides = SiteConfig.from_knobs(
        metric_interval_s=metric_interval_s,
        with_health_gate=with_health_gate,
        seed=seed,
        transport=transport,
        tsdb=tsdb,
        shards=shards,
        store_dir=store_dir,
        workers=workers,
        executor=kw.pop("executor", None),
        hot_bytes=hot_bytes,
        **declarative,
    )
    overrides.update(instance_overrides)
    overrides.update(kw)      # pipeline-only plumbing: sec/registry/...
    return build_site(config, machine=machine, overrides=overrides)
