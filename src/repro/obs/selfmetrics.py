"""Meta-metrics: the stack's own vitals as ordinary telemetry.

DCDB (Netti et al.) treats the monitoring system's own overhead and
throughput as first-class monitoring data.  :class:`SelfMonitor` does
the same here: on a configurable cadence it samples the pipeline's
vitals — bus publish/deliver/drop rates and callback errors,
per-subscription queue depth, per-collector sweep-latency percentiles,
TSDB ingest rate and resident points, LogStore/SqlStore sizes, SEC
rule-fire and action-execution counts, and the pipeline tick time —
and publishes them as ordinary :class:`~repro.core.metric.SeriesBatch`es
on ``selfmon.*`` topics.

Because they ride the same bus, they land in the same TSDB, dashboards,
streaming detectors, and analysis hooks as machine telemetry: the
monitoring plane is monitored by itself, with no parallel plumbing.
Every name is declared in :mod:`repro.core.registry` so the
``verify_registered`` discipline covers the self-monitoring plane too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.metric import SeriesBatch
from ..core.registry import MetricRegistry
from ..core.tracectx import TraceContext

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline import MonitoringPipeline

__all__ = ["SELFMON_METRICS", "SelfMonitor", "completeness_ratio"]

#: every metric the self-monitoring plane publishes (registry contract)
SELFMON_METRICS: tuple[str, ...] = (
    "selfmon.bus.publish_rate",
    "selfmon.bus.deliver_rate",
    "selfmon.bus.drop_rate",
    "selfmon.bus.dropped",
    "selfmon.bus.errors",
    "selfmon.bus.queue_depth",
    "selfmon.bus.completeness",
    "selfmon.bus.partition_depth",
    "selfmon.bus.partition_dropped",
    "selfmon.collector.sweep_p50_ms",
    "selfmon.collector.sweep_p95_ms",
    "selfmon.collector.sweep_max_ms",
    "selfmon.collector.sweeps",
    "selfmon.store.tsdb_ingest_rate",
    "selfmon.store.tsdb_points",
    "selfmon.store.tsdb_bytes",
    "selfmon.store.shard_points",
    "selfmon.store.shard_series",
    "selfmon.store.shard_bytes",
    "selfmon.store.cache_hits",
    "selfmon.store.cache_misses",
    "selfmon.store.cache_evictions",
    "selfmon.store.cache_bytes",
    "selfmon.store.disk_bytes",
    "selfmon.store.disk_hot_bytes",
    "selfmon.store.disk_spill_rate",
    "selfmon.store.disk_load_rate",
    "selfmon.store.disk_map_hits",
    "selfmon.store.log_events",
    "selfmon.store.sql_bytes",
    "selfmon.sec.rule_fires",
    "selfmon.sec.events_seen",
    "selfmon.actions.executed",
    "selfmon.analysis.batches",
    "selfmon.analysis.detections",
    "selfmon.analysis.sweep_p50_ms",
    "selfmon.analysis.sweep_p95_ms",
    "selfmon.analysis.sweep_max_ms",
    "selfmon.pipeline.tick_ms",
    "selfmon.exec.busy_fraction",
    "selfmon.exec.barrier_wait_ms",
    "selfmon.exec.handoff_depth",
    "selfmon.health.state",
    "selfmon.health.transitions",
    "selfmon.ledger.published_points",
    "selfmon.ledger.stored_points",
    "selfmon.ledger.lost_points",
    "selfmon.ledger.pending_points",
    "selfmon.ledger.inflight_points",
    "selfmon.ledger.unaccounted_points",
    "selfmon.freshness.e2e_p50_s",
    "selfmon.freshness.e2e_p99_s",
    "selfmon.freshness.e2e_max_s",
    "selfmon.freshness.hop_mean_s",
    "selfmon.freshness.hop_p99_s",
    "selfmon.freshness.batches",
    "selfmon.freshness.slo_burn_rate",
    "selfmon.freshness.slo_breaches",
    "selfmon.trace.dropped",
    "selfmon.serve.qps",
    "selfmon.serve.queries",
    "selfmon.serve.rejected",
    "selfmon.serve.cache_hit_ratio",
    "selfmon.serve.cache_bytes",
    "selfmon.serve.pyramid_answers",
    "selfmon.serve.raw_answers",
)


def _tsdb_stats(tsdb):
    """Stats of the numeric store, tolerating swapped-in backends.

    ``pipeline.tsdb`` is replaceable (e.g. by a ``TieredStore`` whose
    hot tier holds the stats surface); self-monitoring must observe
    whatever is installed rather than constrain it.
    """
    stats = getattr(tsdb, "stats", None)
    if callable(stats):
        return stats()
    hot = getattr(tsdb, "hot", None)
    if hot is not None and callable(getattr(hot, "stats", None)):
        return hot.stats()
    return None


def _cache_stats(tsdb):
    """Chunk-cache counters of the numeric store, if it has any.

    Duck-typed like :func:`_tsdb_stats`: plain, sharded, and tiered
    stores all expose ``cache_stats()``; anything else (or a store
    built without a cache) simply reports nothing.
    """
    cache_stats = getattr(tsdb, "cache_stats", None)
    if callable(cache_stats):
        return cache_stats()
    hot = getattr(tsdb, "hot", None)
    if hot is not None and callable(getattr(hot, "cache_stats", None)):
        return hot.cache_stats()
    return None


def completeness_ratio(delivered: int, dropped: int, errors: int) -> float:
    """Data-path completeness: fraction of attempted deliveries that
    reached (or still await) a consumer.

    ``delivered`` counts successful hand-offs (callback returned, or the
    envelope was enqueued); ``dropped`` counts envelopes later evicted
    by the drop-oldest policy; ``errors`` counts callback raises.  Under
    no-drop, no-error conditions the ratio is exactly 1.0.
    """
    attempted = delivered + errors
    if attempted <= 0:
        return 1.0
    return (delivered - dropped) / attempted


class SelfMonitor:
    """Samples the pipeline's vitals on a cadence and publishes them."""

    metrics = SELFMON_METRICS

    def __init__(
        self,
        pipeline: "MonitoringPipeline",
        interval_s: float = 60.0,
        source: str = "selfmon",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.pipeline = pipeline
        self.interval_s = float(interval_s)
        self.source = source
        self.emissions = 0
        self._last_t: float | None = None
        self._next_due = 0.0
        self._prev_bus: tuple[int, int, int] = (0, 0, 0)
        self._prev_tsdb_samples = 0
        self._prev_tick: tuple[int, float] = (0, 0.0)
        self._prev_serve_queries = 0
        self._prev_disk: tuple[int, int] = (0, 0)   # (spills, loads)

    def verify_registered(self, registry: MetricRegistry) -> None:
        """Fail fast if any self-metric is undocumented (Table I)."""
        for m in self.metrics:
            registry.get(m)

    def _streaming_detectors(self) -> list:
        """Instrumented detectors on the streaming stage (duck-typed:
        custom detectors without the self-report surface are skipped)."""
        for stage in getattr(self.pipeline, "stages", ()):
            if getattr(stage, "name", "") == "streaming":
                return [d for d in getattr(stage, "detectors", ())
                        if hasattr(d, "latency") and hasattr(d, "name")]
        return []

    # -- cadence -----------------------------------------------------------

    def maybe_emit(self, now: float) -> list[SeriesBatch]:
        """Emit one self-metric sweep when the cadence is due.

        The first call only establishes the counter baseline (rates need
        a prior sample); returns the batches published, empty when not
        due.
        """
        if self._last_t is None:
            self._baseline(now)
            return []
        if now + 1e-9 < self._next_due:
            return []
        batches = self.sample(now, elapsed_s=now - self._last_t)
        p = self.pipeline
        bus = p.bus
        traced = getattr(p, "freshness", None) is not None
        for b in batches:
            if traced:
                # the selfmon plane's own batches are freshness-traced
                # too — meta-metrics get the same timeliness guarantee
                b.trace = TraceContext.start(
                    now, tick=getattr(p, "ticks", 0)
                )
            bus.publish(b.metric, b, source=self.source)
        self.emissions += 1
        return batches

    def _baseline(self, now: float) -> None:
        p = self.pipeline
        stats = p.bus.stats()
        self._prev_bus = (stats.published, stats.delivered, stats.dropped)
        tstats = _tsdb_stats(p.tsdb)
        self._prev_tsdb_samples = tstats.samples if tstats else 0
        agg = p.tracer.snapshot_counts().get("tick")
        self._prev_tick = agg if agg is not None else (0, 0.0)
        fe = getattr(p, "frontend", None)
        self._prev_serve_queries = fe.stats().queries if fe is not None else 0
        disk = getattr(p.tsdb, "disk_stats", None)
        dstats = disk() if callable(disk) else None
        self._prev_disk = ((dstats.spills, dstats.loads)
                           if dstats is not None else (0, 0))
        self._last_t = now
        self._next_due = now + self.interval_s

    # -- one sweep ---------------------------------------------------------

    def sample(self, now: float, elapsed_s: float) -> list[SeriesBatch]:
        """Build (without publishing) one full self-metric sweep.

        The counters read here also become the next baseline — one
        stats walk per cadence, not two.
        """
        p = self.pipeline
        elapsed = max(float(elapsed_s), 1e-9)
        out: list[SeriesBatch] = []

        def one(metric: str, component: str, value: float) -> None:
            out.append(SeriesBatch.sweep(metric, now, [component], [value]))

        # -- bus -----------------------------------------------------------
        stats = p.bus.stats()
        d_pub = stats.published - self._prev_bus[0]
        d_del = stats.delivered - self._prev_bus[1]
        d_drop = stats.dropped - self._prev_bus[2]
        one("selfmon.bus.publish_rate", "bus", d_pub / elapsed)
        one("selfmon.bus.deliver_rate", "bus", d_del / elapsed)
        one("selfmon.bus.drop_rate", "bus", d_drop / elapsed)
        one("selfmon.bus.dropped", "bus", float(stats.dropped))
        one("selfmon.bus.errors", "bus", float(stats.errors))
        one("selfmon.bus.completeness", "bus",
            completeness_ratio(stats.delivered, stats.dropped, stats.errors))
        self._prev_bus = (stats.published, stats.delivered, stats.dropped)
        depths = stats.queue_depths
        if depths:
            out.append(SeriesBatch.sweep(
                "selfmon.bus.queue_depth", now,
                list(depths), [float(v) for v in depths.values()],
            ))

        # -- partitioned transports expose per-partition surfaces ---------
        # (duck-typed: the flat bus has neither, the tree reports leaves)
        part_depths = getattr(p.bus, "partition_depths", None)
        if callable(part_depths):
            d = part_depths()
            if d:
                out.append(SeriesBatch.sweep(
                    "selfmon.bus.partition_depth", now,
                    list(d), [float(v) for v in d.values()],
                ))
        part_drops = getattr(p.bus, "partition_drops", None)
        if callable(part_drops):
            d = part_drops()
            if d:
                out.append(SeriesBatch.sweep(
                    "selfmon.bus.partition_dropped", now,
                    list(d), [float(v) for v in d.values()],
                ))
        leaf_depths = getattr(p.bus, "leaf_depths", None)
        if callable(leaf_depths):
            d = leaf_depths()
            if d:
                out.append(SeriesBatch.sweep(
                    "selfmon.bus.partition_depth", now,
                    list(d), [float(v) for v in d.values()],
                ))

        # -- collectors ----------------------------------------------------
        names, p50, p95, mx, sweeps = [], [], [], [], []
        for c in p.scheduler.collectors:
            hist = p.scheduler.latency.get(c.name)
            if hist is None or not len(hist):
                continue
            s = hist.summary()
            names.append(c.name)
            p50.append(1000.0 * s["p50_s"])
            p95.append(1000.0 * s["p95_s"])
            mx.append(1000.0 * s["max_s"])
            sweeps.append(float(c.sweeps))
        if names:
            out.append(SeriesBatch.sweep(
                "selfmon.collector.sweep_p50_ms", now, names, p50))
            out.append(SeriesBatch.sweep(
                "selfmon.collector.sweep_p95_ms", now, names, p95))
            out.append(SeriesBatch.sweep(
                "selfmon.collector.sweep_max_ms", now, names, mx))
            out.append(SeriesBatch.sweep(
                "selfmon.collector.sweeps", now, names, sweeps))

        # -- stores --------------------------------------------------------
        tstats = _tsdb_stats(p.tsdb)
        if tstats is not None:
            d_samples = tstats.samples - self._prev_tsdb_samples
            self._prev_tsdb_samples = tstats.samples
            one("selfmon.store.tsdb_ingest_rate", "tsdb",
                d_samples / elapsed)
            one("selfmon.store.tsdb_points", "tsdb", float(tstats.samples))
            one("selfmon.store.tsdb_bytes", "tsdb",
                float(tstats.compressed_bytes))
        per_shard = getattr(p.tsdb, "per_shard_stats", None)
        if callable(per_shard):
            shard_stats = per_shard()
            names = [f"shard-{i}" for i in range(len(shard_stats))]
            out.append(SeriesBatch.sweep(
                "selfmon.store.shard_points", now, names,
                [float(s.samples) for s in shard_stats],
            ))
            out.append(SeriesBatch.sweep(
                "selfmon.store.shard_series", now, names,
                [float(s.series) for s in shard_stats],
            ))
            out.append(SeriesBatch.sweep(
                "selfmon.store.shard_bytes", now, names,
                [float(s.compressed_bytes) for s in shard_stats],
            ))
        cstats = _cache_stats(p.tsdb)
        if cstats is not None:
            one("selfmon.store.cache_hits", "chunk-cache", float(cstats.hits))
            one("selfmon.store.cache_misses", "chunk-cache",
                float(cstats.misses))
            one("selfmon.store.cache_evictions", "chunk-cache",
                float(cstats.evictions))
            one("selfmon.store.cache_bytes", "chunk-cache",
                float(cstats.bytes))
        disk = getattr(p.tsdb, "disk_stats", None)
        dstats = disk() if callable(disk) else None
        if dstats is not None:
            d_spills = dstats.spills - self._prev_disk[0]
            d_loads = dstats.loads - self._prev_disk[1]
            self._prev_disk = (dstats.spills, dstats.loads)
            one("selfmon.store.disk_bytes", "disk-tier",
                float(dstats.disk_bytes))
            one("selfmon.store.disk_hot_bytes", "disk-tier",
                float(dstats.hot_bytes))
            one("selfmon.store.disk_spill_rate", "disk-tier",
                d_spills / elapsed)
            one("selfmon.store.disk_load_rate", "disk-tier",
                d_loads / elapsed)
            one("selfmon.store.disk_map_hits", "disk-tier",
                float(dstats.map_hits))
        one("selfmon.store.log_events", "logstore", float(len(p.logs)))
        one("selfmon.store.sql_bytes", "sqlstore",
            float(p.sql.footprint_bytes()))

        # -- response plane ------------------------------------------------
        one("selfmon.sec.rule_fires", "sec", float(len(p.sec.requests)))
        one("selfmon.sec.events_seen", "sec", float(p.sec.events_seen))
        one("selfmon.actions.executed", "actions", float(len(p.actions.audit)))

        # -- streaming analysis plane --------------------------------------
        dets = self._streaming_detectors()
        if dets:
            names = [d.name for d in dets]
            out.append(SeriesBatch.sweep(
                "selfmon.analysis.batches", now, names,
                [float(d.batches_observed) for d in dets]))
            out.append(SeriesBatch.sweep(
                "selfmon.analysis.detections", now, names,
                [float(d.detections_total) for d in dets]))
            timed = [d for d in dets if len(d.latency)]
            if timed:
                tnames = [d.name for d in timed]
                summaries = [d.latency.summary() for d in timed]
                out.append(SeriesBatch.sweep(
                    "selfmon.analysis.sweep_p50_ms", now, tnames,
                    [1000.0 * s["p50_s"] for s in summaries]))
                out.append(SeriesBatch.sweep(
                    "selfmon.analysis.sweep_p95_ms", now, tnames,
                    [1000.0 * s["p95_s"] for s in summaries]))
                out.append(SeriesBatch.sweep(
                    "selfmon.analysis.sweep_max_ms", now, tnames,
                    [1000.0 * s["max_s"] for s in summaries]))

        # -- supervised lifecycle + delivery ledger ------------------------
        sup = getattr(p, "supervisor", None)
        if sup is not None and sup.components:
            names = sorted(sup.components)
            out.append(SeriesBatch.sweep(
                "selfmon.health.state", now, names,
                [float(sup.components[n].health.code) for n in names]))
            one("selfmon.health.transitions", "supervisor",
                float(len(sup.transitions)))
        report = (p.delivery_report()
                  if callable(getattr(p, "delivery_report", None)) else None)
        if report is not None:
            one("selfmon.ledger.published_points", "ledger",
                float(report.published))
            one("selfmon.ledger.stored_points", "ledger",
                float(report.stored))
            one("selfmon.ledger.lost_points", "ledger", float(report.lost))
            one("selfmon.ledger.pending_points", "ledger",
                float(report.pending))
            one("selfmon.ledger.inflight_points", "ledger",
                float(report.in_flight))
            one("selfmon.ledger.unaccounted_points", "ledger",
                float(report.unaccounted))

        # -- freshness plane -----------------------------------------------
        fr = getattr(p, "freshness", None)
        if fr is not None and fr.batches:
            e2e = fr.e2e.summary()
            one("selfmon.freshness.e2e_p50_s", "freshness", e2e["p50_s"])
            one("selfmon.freshness.e2e_p99_s", "freshness", e2e["p99_s"])
            one("selfmon.freshness.e2e_max_s", "freshness", e2e["max_s"])
            one("selfmon.freshness.batches", "freshness",
                float(fr.batches))
            hops = fr.hop_summaries()
            if hops:
                hnames = list(hops)
                out.append(SeriesBatch.sweep(
                    "selfmon.freshness.hop_mean_s", now, hnames,
                    [hops[h]["mean_s"] for h in hnames]))
                out.append(SeriesBatch.sweep(
                    "selfmon.freshness.hop_p99_s", now, hnames,
                    [hops[h]["p99_s"] for h in hnames]))
            slos = fr.slo_status()
            if slos:
                snames = [s["name"] for s in slos]
                out.append(SeriesBatch.sweep(
                    "selfmon.freshness.slo_burn_rate", now, snames,
                    [s["burn_rate"] for s in slos]))
                out.append(SeriesBatch.sweep(
                    "selfmon.freshness.slo_breaches", now, snames,
                    [float(s["breaches"]) for s in slos]))

        # -- execution model (worker topology vitals) ----------------------
        ex = getattr(p, "executor", None)
        if ex is not None:
            snap = ex.snapshot()
            one("selfmon.exec.busy_fraction", ex.name,
                float(snap["busy_fraction"]))
            one("selfmon.exec.barrier_wait_ms", ex.name,
                float(snap["barrier_wait_ms"]))
            one("selfmon.exec.handoff_depth", ex.name,
                float(snap["handoff_depth"]))

        # -- trace exporter loss (ring evictions are accounted) ------------
        one("selfmon.trace.dropped", "tracer", float(p.tracer.dropped))

        # -- serving plane (front end, result cache, planner) --------------
        fe = getattr(p, "frontend", None)
        if fe is not None:
            sstats = fe.stats()
            d_queries = sstats.queries - self._prev_serve_queries
            self._prev_serve_queries = sstats.queries
            one("selfmon.serve.qps", "frontend", d_queries / elapsed)
            one("selfmon.serve.queries", "frontend", float(sstats.queries))
            one("selfmon.serve.rejected", "frontend", float(sstats.rejected))
            one("selfmon.serve.cache_hit_ratio", "result-cache",
                sstats.cache_hit_ratio)
            one("selfmon.serve.cache_bytes", "result-cache",
                float(sstats.cache.bytes))
            one("selfmon.serve.pyramid_answers", "planner",
                float(sstats.pyramid_answers))
            one("selfmon.serve.raw_answers", "planner",
                float(sstats.raw_answers))

        # -- pipeline tick time (from the tracer's root spans) -------------
        agg = p.tracer.snapshot_counts().get("tick")
        if agg is not None:
            d_count = agg[0] - self._prev_tick[0]
            d_total = agg[1] - self._prev_tick[1]
            self._prev_tick = agg
            if d_count > 0:
                one("selfmon.pipeline.tick_ms", "pipeline",
                    1000.0 * d_total / d_count)
        self._last_t = now
        self._next_due = now + self.interval_s
        return out
