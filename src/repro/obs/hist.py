"""Fixed-footprint latency histograms for the self-monitoring plane.

Per-collector sweep latencies feed p50/p95/max summaries on a cadence
(DCDB-style: the monitoring system's own overhead is first-class
telemetry).  A bounded deque of recent observations keeps memory
constant over arbitrarily long runs while still answering percentile
queries over the recent window — the window *is* the cadence the
self-monitor samples on, so nothing older matters.
"""

from __future__ import annotations

from collections import deque

__all__ = ["LatencyHistogram"]


def _quantile(xs: list[float], p: float) -> float:
    """Linear-interpolated percentile of a pre-sorted list.

    Matches ``numpy.percentile``'s default method, but without the
    ~100x array-conversion overhead on the small windows kept here —
    this runs on every self-monitor cadence for every collector.
    """
    n = len(xs)
    if n == 1:
        return xs[0]
    idx = (p / 100.0) * (n - 1)
    lo = int(idx)
    hi = lo + 1 if lo + 1 < n else n - 1
    frac = idx - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


class LatencyHistogram:
    """Sliding window of latency observations with percentile queries."""

    __slots__ = ("_window", "count", "total_s", "max_s")

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window: deque[float] = deque(maxlen=int(window))
        self.count = 0          # lifetime observations
        self.total_s = 0.0      # lifetime sum
        self.max_s = 0.0        # lifetime maximum

    def record(self, seconds: float) -> None:
        s = float(seconds)
        self._window.append(s)
        self.count += 1
        self.total_s += s
        if s > self.max_s:
            self.max_s = s

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, p: float) -> float:
        """p-th percentile (0..100) over the recent window; NaN if empty."""
        if not self._window:
            return float("nan")
        return _quantile(sorted(self._window), p)

    def summary(self) -> dict[str, float]:
        """p50/p95/max over the window plus lifetime count and mean."""
        if self._window:
            xs = sorted(self._window)
            p50 = _quantile(xs, 50.0)
            p95 = _quantile(xs, 95.0)
            w_max = xs[-1]
        else:
            p50 = p95 = w_max = float("nan")
        return {
            "p50_s": p50,
            "p95_s": p95,
            "max_s": w_max,
            "count": float(self.count),
            "mean_s": self.total_s / self.count if self.count else float("nan"),
        }
