"""Pipeline introspection: one structured health report over the stack.

The paper's Table I asks that operators be able to see *data-path
completeness* end to end and that monitoring overhead be documented.
:class:`PipelineIntrospector` assembles both into a single
:class:`HealthReport`: per-stage span timings (from the tracer), bus
drop/backpressure status with per-subscription queue depths, the
slowest recent spans, per-collector latency summaries, store sizes, and
the completeness ratio — rendered by ``python -m repro obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .selfmetrics import _cache_stats, _tsdb_stats, completeness_ratio

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline import MonitoringPipeline

__all__ = ["StageReport", "HealthReport", "PipelineIntrospector", "STAGES"]

#: the per-tick child spans MonitoringPipeline.step() opens, in data-path order
STAGES: tuple[str, ...] = (
    "event-plane",
    "metric-plane",
    "job-tracking",
    "streaming",
    "analysis-hooks",
    "supervision",
    "freshness",
    "response",
    "selfmon",
)


@dataclass(frozen=True, slots=True)
class StageReport:
    """Wall-time accounting for one pipeline stage."""

    name: str
    calls: int
    total_s: float
    mean_ms: float
    max_ms: float


@dataclass(frozen=True, slots=True)
class HealthReport:
    """Structured end-to-end health of the monitoring plane itself."""

    ticks: int
    stages: tuple[StageReport, ...]
    completeness: float
    bus: dict[str, int]
    queue_depths: dict[str, int] = field(default_factory=dict)
    slowest_spans: tuple[tuple[str, float, str], ...] = ()
    collectors: dict[str, dict[str, float]] = field(default_factory=dict)
    stores: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    #: per-partition (or per-leaf) backlog when the transport is tiered
    partitions: dict[str, int] = field(default_factory=dict)
    #: per-shard store counters when the TSDB is sharded
    shards: dict[str, dict[str, float]] = field(default_factory=dict)
    #: decompressed-chunk cache counters when the store carries a cache
    chunk_cache: dict[str, float] = field(default_factory=dict)
    #: out-of-core disk-tier counters when the store spills to disk
    disk: dict[str, float] = field(default_factory=dict)
    #: per-detector streaming-analysis counters (batches, detections,
    #: sweep-latency percentiles) when streaming detectors are installed
    analysis: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-component supervised health when supervision is enabled
    health: dict[str, dict] = field(default_factory=dict)
    #: delivery-ledger reconciliation when the ledger is attached
    ledger: dict[str, float] = field(default_factory=dict)
    #: freshness-tracker snapshot (hop waterfall, SLO burn) when tracing
    #: is enabled
    freshness: dict = field(default_factory=dict)
    #: execution-model snapshot (worker topology, barrier/handoff vitals)
    executor: dict = field(default_factory=dict)
    #: serving-plane snapshot (query front end, result cache, planner,
    #: per-tenant admission) when a front end is attached
    serve: dict = field(default_factory=dict)

    @property
    def backpressured(self) -> list[str]:
        """Subscriptions currently holding a non-trivial backlog."""
        return [n for n, d in self.queue_depths.items() if d > 0]


class PipelineIntrospector:
    """Reads every layer's stats surfaces into one health report."""

    def __init__(self, pipeline: "MonitoringPipeline") -> None:
        self.pipeline = pipeline

    def report(self, slowest_n: int = 5) -> HealthReport:
        p = self.pipeline
        agg = p.tracer.aggregate()
        ticks = int(agg.get("tick", {}).get("count", 0))
        stages = tuple(
            StageReport(
                name=name,
                calls=int(a["count"]),
                total_s=a["total_s"],
                mean_ms=a["mean_ms"],
                max_ms=1000.0 * a["max_s"],
            )
            for name in STAGES
            if (a := agg.get(name)) is not None
        )
        stats = p.bus.stats()
        slowest = tuple(
            (
                s.name,
                1000.0 * s.duration_s,
                ",".join(f"{k}={v}" for k, v in s.attrs.items()),
            )
            for s in p.tracer.slowest(slowest_n)
        )
        collectors = {}
        for c in p.scheduler.collectors:
            entry: dict[str, float] = {
                "sweeps": float(c.sweeps),
                "samples": float(c.samples_produced),
                "wall_per_sweep_ms": (
                    1000.0 * c.collect_wall_s / c.sweeps if c.sweeps else 0.0
                ),
            }
            hist = p.scheduler.latency.get(c.name)
            if hist is not None and len(hist):
                s = hist.summary()
                entry["p50_ms"] = 1000.0 * s["p50_s"]
                entry["p95_ms"] = 1000.0 * s["p95_s"]
                entry["max_ms"] = 1000.0 * s["max_s"]
            collectors[c.name] = entry
        tstats = _tsdb_stats(p.tsdb)
        stores = {
            "log_events": float(len(p.logs)),
            "sql_bytes": float(p.sql.footprint_bytes()),
        }
        if tstats is not None:
            stores.update(
                tsdb_points=float(tstats.samples),
                tsdb_series=float(tstats.series),
                tsdb_bytes=float(tstats.compressed_bytes),
            )
        # tiered-transport / sharded-store surfaces (duck-typed: absent
        # on the flat bus and the single store)
        partitions: dict[str, int] = {}
        for probe in ("partition_depths", "leaf_depths"):
            fn = getattr(p.bus, probe, None)
            if callable(fn):
                partitions.update(fn())
        shards: dict[str, dict[str, float]] = {}
        per_shard = getattr(p.tsdb, "per_shard_stats", None)
        if callable(per_shard):
            shards = {
                f"shard-{i}": {
                    "points": float(s.samples),
                    "series": float(s.series),
                    "bytes": float(s.compressed_bytes),
                }
                for i, s in enumerate(per_shard())
            }
        analysis: dict[str, dict[str, float]] = {}
        for stage_obj in p.stages:
            if getattr(stage_obj, "name", "") != "streaming":
                continue
            for det in getattr(stage_obj, "detectors", ()):
                entry = {
                    "batches": float(getattr(det, "batches_observed", 0)),
                    "samples": float(getattr(det, "samples_observed", 0)),
                    "detections": float(getattr(det, "detections_total", 0)),
                }
                hist = getattr(det, "latency", None)
                if hist is not None and len(hist):
                    s = hist.summary()
                    entry["p50_ms"] = 1000.0 * s["p50_s"]
                    entry["p95_ms"] = 1000.0 * s["p95_s"]
                    entry["max_ms"] = 1000.0 * s["max_s"]
                analysis[getattr(det, "name", type(det).__name__)] = entry
        chunk_cache: dict[str, float] = {}
        cstats = _cache_stats(p.tsdb)
        if cstats is not None:
            chunk_cache = {
                "hits": float(cstats.hits),
                "misses": float(cstats.misses),
                "evictions": float(cstats.evictions),
                "bytes": float(cstats.bytes),
                "hit_ratio": cstats.hit_ratio,
            }
        disk: dict[str, float] = {}
        dfn = getattr(p.tsdb, "disk_stats", None)
        dstats = dfn() if callable(dfn) else None
        if dstats is not None:
            disk = {
                "segments": float(dstats.segments),
                "disk_bytes": float(dstats.disk_bytes),
                "wal_bytes": float(dstats.wal_bytes),
                "hot_bytes": float(dstats.hot_bytes),
                "hot_chunks": float(dstats.hot_chunks),
                "spills": float(dstats.spills),
                "loads": float(dstats.loads),
                "map_hits": float(dstats.map_hits),
                "remaps": float(dstats.remaps),
                "wal_records": float(dstats.wal_records),
                "wal_syncs": float(dstats.wal_syncs),
            }
        health = (p.health_report()
                  if callable(getattr(p, "health_report", None)) else {})
        fresh: dict = {}
        tracker = getattr(p, "freshness", None)
        if tracker is not None and tracker.batches:
            fresh = tracker.snapshot()
        ledger: dict[str, float] = {}
        balance = (p.delivery_report()
                   if callable(getattr(p, "delivery_report", None)) else None)
        if balance is not None:
            ledger = {
                "published": float(balance.published),
                "stored": float(balance.stored),
                "lost": float(balance.lost),
                "pending": float(balance.pending),
                "in_flight": float(balance.in_flight),
                "unaccounted": float(balance.unaccounted),
            }
        executor: dict = {}
        ex = getattr(p, "executor", None)
        if ex is not None:
            executor = ex.snapshot()
        serve: dict = {}
        fe = getattr(p, "frontend", None)
        if fe is not None:
            sstats = fe.stats()
            serve = {
                "queries": float(sstats.queries),
                "rejected": float(sstats.rejected),
                "pyramid_answers": float(sstats.pyramid_answers),
                "raw_answers": float(sstats.raw_answers),
                "cache_hits": float(sstats.cache.hits),
                "cache_misses": float(sstats.cache.misses),
                "cache_stale": float(sstats.cache.stale),
                "cache_bytes": float(sstats.cache.bytes),
                "cache_hit_ratio": sstats.cache.hit_ratio,
                "tenants": {
                    t: {
                        "admitted": float(ts.admitted),
                        "rejected_rate": float(ts.rejected_rate),
                        "rejected_concurrency":
                            float(ts.rejected_concurrency),
                    }
                    for t in fe.tenants()
                    for ts in (fe.tenant_stats(t),)
                },
            }
        return HealthReport(
            ticks=ticks,
            stages=stages,
            completeness=completeness_ratio(
                stats.delivered, stats.dropped, stats.errors
            ),
            bus={
                "published": stats.published,
                "delivered": stats.delivered,
                "dropped": stats.dropped,
                "errors": stats.errors,
                "subscriptions": stats.subscriptions,
            },
            queue_depths=p.bus.queue_depths(),
            slowest_spans=slowest,
            collectors=collectors,
            stores=stores,
            counts={
                "sec_rule_fires": len(p.sec.requests),
                "sec_events_seen": p.sec.events_seen,
                "actions_executed": len(p.actions.audit),
                "alerts": len(p.alerts.alerts),
            },
            partitions=partitions,
            shards=shards,
            chunk_cache=chunk_cache,
            disk=disk,
            analysis=analysis,
            health=health,
            ledger=ledger,
            freshness=fresh,
            executor=executor,
            serve=serve,
        )

    def render(self, slowest_n: int = 5) -> str:
        """Human-readable health report (the CLI surface)."""
        r = self.report(slowest_n=slowest_n)
        lines = [f"=== monitoring-plane health ({r.ticks} ticks) ==="]
        lines.append(
            f"data-path completeness: {r.completeness:.4f}"
            + ("  (no loss)" if r.completeness >= 1.0 - 1e-12 else "  (LOSSY)")
        )
        b = r.bus
        lines.append(
            f"bus: published={b['published']} delivered={b['delivered']} "
            f"dropped={b['dropped']} errors={b['errors']} "
            f"subs={b['subscriptions']}"
        )
        backlog = r.backpressured
        lines.append(
            "backpressure: "
            + (", ".join(f"{n}={r.queue_depths[n]}" for n in backlog)
               if backlog else "none (all queues drained)")
        )
        if r.partitions:
            lines.append(
                "partitions: "
                + ", ".join(f"{n}={d}" for n, d in r.partitions.items())
            )
        if r.shards:
            lines.append("shards:")
            for name, s in r.shards.items():
                lines.append(
                    f"  {name:<10} {int(s['points'])} points / "
                    f"{int(s['series'])} series / {int(s['bytes'])} B"
                )
        if r.executor:
            e = r.executor
            lines.append(
                f"executor: {e['name']} workers={e['workers']} "
                f"barriers={e['barriers']} tasks={e['tasks']} "
                f"busy={e['busy_fraction']:.2f} "
                f"barrier_wait={e['barrier_wait_ms']:.1f} ms "
                f"handoff_depth={e['handoff_depth']}"
            )
        lines.append("stage timings (per tick):")
        for s in r.stages:
            lines.append(
                f"  {s.name:<15} calls={s.calls:<6} mean={s.mean_ms:8.3f} ms"
                f"  max={s.max_ms:8.3f} ms  total={s.total_s:8.3f} s"
            )
        if r.slowest_spans:
            lines.append("slowest spans:")
            for name, ms, attrs in r.slowest_spans:
                suffix = f" [{attrs}]" if attrs else ""
                lines.append(f"  {ms:9.3f} ms  {name}{suffix}")
        if r.collectors:
            lines.append("collector sweep latency:")
            for name, c in sorted(r.collectors.items()):
                if "p50_ms" in c:
                    lines.append(
                        f"  {name:<18} sweeps={int(c['sweeps']):<5}"
                        f" p50={c['p50_ms']:7.3f} ms"
                        f" p95={c['p95_ms']:7.3f} ms"
                        f" max={c['max_ms']:7.3f} ms"
                    )
        tsdb_part = (
            f"tsdb {int(r.stores['tsdb_points'])} points / "
            f"{int(r.stores['tsdb_series'])} series / "
            f"{int(r.stores['tsdb_bytes'])} B compressed; "
            if "tsdb_points" in r.stores else ""
        )
        lines.append(
            f"stores: {tsdb_part}"
            f"logs {int(r.stores['log_events'])} events; "
            f"sql {int(r.stores['sql_bytes'])} B"
        )
        if r.chunk_cache:
            c = r.chunk_cache
            lines.append(
                f"chunk cache: hits={int(c['hits'])} "
                f"misses={int(c['misses'])} "
                f"evictions={int(c['evictions'])} "
                f"resident={int(c['bytes'])} B "
                f"(hit ratio {c['hit_ratio']:.2f})"
            )
        if r.disk:
            d = r.disk
            lines.append(
                f"disk tier: {int(d['disk_bytes'])} B on disk "
                f"({int(d['segments'])} segments, "
                f"{int(d['wal_bytes'])} B WAL); "
                f"hot {int(d['hot_bytes'])} B "
                f"({int(d['hot_chunks'])} chunks); "
                f"spills={int(d['spills'])} loads={int(d['loads'])} "
                f"map_hits={int(d['map_hits'])} remaps={int(d['remaps'])}"
            )
        if r.serve:
            s = r.serve
            lines.append(
                f"serve: queries={int(s['queries'])} "
                f"rejected={int(s['rejected'])} "
                f"pyramid={int(s['pyramid_answers'])} "
                f"raw={int(s['raw_answers'])} "
                f"cache hit ratio {s['cache_hit_ratio']:.2f} "
                f"({int(s['cache_bytes'])} B)"
            )
            for t, ts in sorted(s["tenants"].items()):
                lines.append(
                    f"  tenant {t:<12} admitted={int(ts['admitted']):<6}"
                    f" shed_rate={int(ts['rejected_rate']):<5}"
                    f" shed_conc={int(ts['rejected_concurrency'])}"
                )
        if r.analysis:
            lines.append("streaming detectors:")
            for name, a in sorted(r.analysis.items()):
                row = (
                    f"  {name:<26} batches={int(a['batches']):<6}"
                    f" detections={int(a['detections']):<5}"
                )
                if "p50_ms" in a:
                    row += (
                        f" p50={a['p50_ms']:7.3f} ms"
                        f" p95={a['p95_ms']:7.3f} ms"
                    )
                lines.append(row)
        if r.health:
            impaired = {n: h for n, h in r.health.items()
                        if h.get("state") != "ok"}
            lines.append(
                f"supervised components: {len(r.health)} "
                f"({len(impaired)} impaired)"
            )
            for name, h in sorted(impaired.items()):
                lines.append(
                    f"  {name:<24} {h['state'].upper():<9}"
                    f" failures={int(h['failures'])}"
                    f" trips={int(h['trips'])}"
                    + (f"  ({h['reason']})" if h.get("reason") else "")
                )
        if r.freshness:
            f = r.freshness
            e2e = f["e2e"]
            lines.append(
                f"freshness: {f['batches']} traced batches, e2e "
                f"p50={e2e['p50_s']:g}s p99={e2e['p99_s']:g}s "
                f"max={e2e['max_s']:g}s "
                + ("(hop sums exact)" if f["exact"]
                   else "(hop sums INEXACT)")
            )
            for row in f["waterfall"]:
                lines.append(
                    f"  hop {row['hop']:<8} mean={row['mean_s']:8.3f} s"
                    f"  p99={row['p99_s']:8.3f} s"
                    f"  share={100.0 * row['share']:5.1f}%"
                )
            for s in f["slos"]:
                state = "BREACHED" if s["active"] else "ok"
                lines.append(
                    f"  slo {s['name']:<12} p{100 * s['quantile']:g} <= "
                    f"{s['max_latency_s']:g}s  burn={s['burn_rate']:.2f}x"
                    f"  breaches={s['breaches']}  [{state}]"
                )
            if f.get("worst_exemplar"):
                lines.append(f"  worst exemplar: {f['worst_exemplar']}")
        if r.ledger:
            lg = r.ledger
            verdict = ("balanced" if lg["unaccounted"] == 0
                       else "IMBALANCED")
            lines.append(
                f"delivery ledger: published={int(lg['published'])} "
                f"stored={int(lg['stored'])} lost={int(lg['lost'])} "
                f"pending={int(lg['pending'])} "
                f"in_flight={int(lg['in_flight'])} "
                f"unaccounted={int(lg['unaccounted'])} ({verdict})"
            )
        lines.append(
            f"response: {r.counts['sec_rule_fires']} rule fires over "
            f"{r.counts['sec_events_seen']} events, "
            f"{r.counts['actions_executed']} actions, "
            f"{r.counts['alerts']} alerts"
        )
        return "\n".join(lines)
