"""Lightweight trace spans over the monitoring pipeline's own execution.

Balis et al. ("Towards observability of scientific applications") argue
that the data path itself — not just the data — needs span-based
tracing.  A :class:`Tracer` provides exactly that for this stack:

* ``with tracer.span("collect", collector=name):`` times a region,
* spans nest (a stack tracks the active span; children record their
  parent and depth), so one pipeline tick produces a root ``tick`` span
  with a child per stage,
* finished spans land in a bounded ring buffer (the exporter surface:
  recent history without unbounded growth); a full ring evicts the
  oldest span and *counts* the eviction (``dropped``, exported as the
  ``selfmon.trace.dropped`` gauge) — history loss is accounted, never
  silent,
* per-name aggregates (count / total / max wall time) are maintained
  incrementally, so reading summary timings never walks the ring.

Overhead is the design constraint (Table I: monitoring must have
documented, *bounded* impact): a disabled tracer returns a shared no-op
span, and an enabled one costs two ``perf_counter`` calls plus a few
attribute writes per span — the self-monitoring overhead benchmark
holds the whole plane under a 10% step-loop regression.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterator

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region of the pipeline; usable as a context manager."""

    __slots__ = ("tracer", "name", "attrs", "parent_name", "depth",
                 "started_at", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.parent_name: str | None = None
        self.depth = 0
        self.started_at = 0.0
        self.duration_s = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack
        if stack:
            top = stack[-1]
            self.parent_name = top.name
            self.depth = top.depth + 1
        stack.append(self)
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self.started_at
        self.tracer._stack.pop()
        self.tracer._record(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {1000 * self.duration_s:.3f} ms, "
                f"depth={self.depth})")


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and keeps a bounded history plus running aggregates."""

    def __init__(self, enabled: bool = True, maxlen: int = 4096) -> None:
        self.enabled = enabled
        self.maxlen = int(maxlen)
        self._ring: deque[Span] = deque(maxlen=self.maxlen)
        self._stack: list[Span] = []
        #: spans evicted from the full ring (accounted exporter loss)
        self.dropped = 0
        # name -> [count, total_s, max_s]
        self._agg: dict[str, list[float]] = {}

    # -- producing spans ---------------------------------------------------

    def span(self, name: str, **attrs) -> Span | _NullSpan:
        """Open a span; use as ``with tracer.span("stage"):``."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        if self.maxlen and len(self._ring) >= self.maxlen:
            self.dropped += 1      # deque eviction is about to fire
        self._ring.append(span)
        agg = self._agg.get(span.name)
        if agg is None:
            self._agg[span.name] = [1, span.duration_s, span.duration_s]
        else:
            agg[0] += 1
            agg[1] += span.duration_s
            if span.duration_s > agg[2]:
                agg[2] = span.duration_s

    # -- reading back ------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans still in the ring, oldest first."""
        if name is None:
            return list(self._ring)
        return [s for s in self._ring if s.name == name]

    def __iter__(self) -> Iterator[Span]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def slowest(self, n: int = 5, name: str | None = None) -> list[Span]:
        """The ``n`` slowest spans currently held in the ring."""
        pool = self._ring if name is None else self.spans(name)
        return sorted(pool, key=lambda s: -s.duration_s)[:n]

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals over the tracer's whole lifetime."""
        return {
            name: {
                "count": int(c),
                "total_s": t,
                "max_s": mx,
                "mean_ms": 1000.0 * t / c if c else 0.0,
            }
            for name, (c, t, mx) in self._agg.items()
        }

    def snapshot_counts(self) -> dict[str, tuple[int, float]]:
        """(count, total_s) per name — cheap deltas for cadence sampling."""
        return {name: (int(c), t) for name, (c, t, _) in self._agg.items()}

    def clear(self) -> None:
        self._ring.clear()
        self._agg.clear()
        self.dropped = 0
