"""Monitor-side fault injection: breaking the monitoring system itself.

:mod:`repro.cluster.faults` injects *machine* conditions so detectors
can be tested against ground truth.  This module injects faults into
the *monitoring pipeline* — a raising collector, a hung (over-budget)
collector, dropped or duplicated transport deliveries, a failed TSDB
shard — so the supervised lifecycle (:mod:`repro.core.lifecycle`) and
the delivery ledger (:mod:`repro.core.ledger`) can be exercised with
known ground truth: the paper's sites report silent syslog/LDMS loss as
a top pain point precisely because nothing ever *tested* the monitoring
plane's failure modes.

:class:`MonitorFault` mirrors the machine-fault idiom (active over
``[start, start + duration)``, ``apply``/``revert``), but targets a
:class:`~repro.pipeline.MonitoringPipeline`.  The
:class:`MonitorFaultInjector` steps the schedule each tick, *before*
``pipeline.step`` — injection is part of the experiment loop, not a
pipeline stage.

:class:`ChaosTransport` wraps any transport with deterministic drop and
duplicate injection.  Drops are stamped on the ledger as accounted loss
(``chaos-drop``); duplicates are delivered through the inner transport
(stamped ``published`` twice there) with the extra copy recorded on the
diagnostic ``duplicated`` counter, so the balance identity holds under
both fault kinds.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from ..core.metric import SeriesBatch
from ..transport.base import BusStats, Subscription, Transport

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline import MonitoringPipeline

__all__ = [
    "ChaosTransport",
    "MonitorFault",
    "CollectorRaise",
    "CollectorHang",
    "TransportDropStorm",
    "TransportDuplication",
    "TransportStall",
    "ShardOutage",
    "StoreCrash",
    "crash_and_recover",
    "MonitorFaultInjector",
]


class ChaosTransport(Transport):
    """Transport wrapper injecting deterministic delivery faults.

    ``drop_every=N`` swallows every Nth tracked batch publish (counted
    and ledger-stamped as ``chaos-drop`` loss); ``duplicate_every=M``
    publishes every Mth tracked batch twice.  Both default to off; the
    drop/duplicate fault objects toggle them over their windows.
    Determinism on purpose: same seed, same losses, same ledger.
    """

    def __init__(self, inner: Transport) -> None:
        self.inner = inner
        self.drop_every = 0        # 0 = off
        self.duplicate_every = 0   # 0 = off
        self.stall_pumps = False   # freeze delivery (backlog builds)
        self._publish_count = 0
        self.chaos_dropped = 0
        self.chaos_duplicated = 0

    # the pipeline assigns `bus.ledger = ...`; forward it to the inner
    # transport, whose publish edge does the actual stamping
    @property
    def ledger(self):
        return self.inner.ledger

    @ledger.setter
    def ledger(self, value) -> None:
        self.inner.ledger = value

    # same forwarding for the freshness clock: Transport declares
    # `clock = None` as a class attribute, so without this property the
    # pipeline's assignment would land on the wrapper (shadowing
    # __getattr__) and the inner hop edges would never see it
    @property
    def clock(self):
        return self.inner.clock

    @clock.setter
    def clock(self, value) -> None:
        self.inner.clock = value

    def subscribe(
        self,
        pattern: str,
        callback: Callable | None = None,
        maxlen: int | None = None,
        name: str = "",
    ) -> Subscription:
        return self.inner.subscribe(pattern, callback, maxlen, name)

    def unsubscribe(self, sub: Subscription) -> None:
        self.inner.unsubscribe(sub)

    def publish(self, topic: str, payload, source: str = "") -> int:
        target = (isinstance(payload, SeriesBatch)
                  and (self.drop_every > 0 or self.duplicate_every > 0))
        if target:
            self._publish_count += 1
            if (self.drop_every > 0
                    and self._publish_count % self.drop_every == 0):
                self.chaos_dropped += 1
                ledger = self.inner.ledger
                if ledger is not None and ledger.tracks(topic):
                    # the producer believes it published; account the
                    # point as published-then-lost, never as silence
                    ledger.published_batch(source, payload)
                    ledger.lost_batch("chaos-drop", payload)
                return 0
            if (self.duplicate_every > 0
                    and self._publish_count % self.duplicate_every == 0):
                self.chaos_duplicated += 1
                ledger = self.inner.ledger
                if ledger is not None and ledger.tracks(topic):
                    ledger.duplicated_batch(payload)
                self.inner.publish(topic, payload, source)
        return self.inner.publish(topic, payload, source)

    def pump(self, now: float | None = None) -> int:
        if self.stall_pumps:
            return 0           # delivery frozen: backlog accumulates
        return self.inner.pump(now)

    def stats(self) -> BusStats:
        """Inner stats with injected drops folded into ``dropped`` —
        from the pipeline's perspective a chaos drop *is* a transport
        drop, so supervision sees the storm."""
        inner = self.inner.stats()
        if self.chaos_dropped == 0:
            return inner
        return replace(inner, dropped=inner.dropped + self.chaos_dropped)

    def queue_depths(self) -> dict[str, int]:
        return self.inner.queue_depths()

    def in_flight_points(self) -> int:
        return self.inner.in_flight_points()

    def __getattr__(self, name: str):
        # duck-typed selfmon surfaces (partition_depths, leaf_depths,
        # match_cache_info, ...) pass through to the wrapped transport
        return getattr(self.inner, name)


@dataclass
class MonitorFault:
    """Base monitor fault: active over [start, start + duration)."""

    start: float
    duration: float | None = None
    name: str = "monitor-fault"
    target: str = ""

    applied: bool = field(default=False, init=False)
    reverted: bool = field(default=False, init=False)

    def apply(self, p: "MonitoringPipeline") -> None:  # pragma: no cover
        raise NotImplementedError

    def revert(self, p: "MonitoringPipeline") -> None:
        """Default: nothing to undo."""

    def active_at(self, t: float) -> bool:
        if t < self.start:
            return False
        return self.duration is None or t < self.start + self.duration


def _find_collector(p: "MonitoringPipeline", name: str):
    for c in p.scheduler.collectors:
        if c.name == name:
            return c
    raise KeyError(
        f"no collector named {name!r}; installed: "
        f"{[c.name for c in p.scheduler.collectors]}"
    )


@dataclass
class CollectorRaise(MonitorFault):
    """Make one collector raise on every sweep during the window."""

    name: str = "collector-raise"
    _orig: Callable = field(default=None, init=False, repr=False)

    def apply(self, p):
        c = _find_collector(p, self.target)
        self._orig = c.collect

        def broken(machine, now):
            raise RuntimeError(
                f"injected fault: collector {c.name} is broken"
            )

        c.collect = broken

    def revert(self, p):
        _find_collector(p, self.target).collect = self._orig


@dataclass
class CollectorHang(MonitorFault):
    """Make one collector stall past the sweep budget (hang signature).

    The stall is a real (tiny) wall-clock sleep so the scheduler's
    ``budget_s`` over-budget detection fires; pair with a pipeline built
    with a smaller ``collector_budget_s``.
    """

    name: str = "collector-hang"
    stall_s: float = 0.02
    _orig: Callable = field(default=None, init=False, repr=False)

    def apply(self, p):
        c = _find_collector(p, self.target)
        self._orig = c.collect
        stall, orig = self.stall_s, self._orig

        def hanging(machine, now):
            _time.sleep(stall)
            return orig(machine, now)

        c.collect = hanging

    def revert(self, p):
        _find_collector(p, self.target).collect = self._orig


@dataclass
class TransportDropStorm(MonitorFault):
    """Drop every Nth tracked batch at the transport edge."""

    name: str = "transport-drop-storm"
    drop_every: int = 3

    def apply(self, p):
        if not isinstance(p.bus, ChaosTransport):
            raise TypeError(
                "TransportDropStorm needs the pipeline built over a "
                "ChaosTransport wrapper"
            )
        p.bus.drop_every = self.drop_every

    def revert(self, p):
        p.bus.drop_every = 0


@dataclass
class TransportDuplication(MonitorFault):
    """Deliver every Nth tracked batch twice."""

    name: str = "transport-duplication"
    duplicate_every: int = 5

    def apply(self, p):
        if not isinstance(p.bus, ChaosTransport):
            raise TypeError(
                "TransportDuplication needs the pipeline built over a "
                "ChaosTransport wrapper"
            )
        p.bus.duplicate_every = self.duplicate_every

    def revert(self, p):
        p.bus.duplicate_every = 0


@dataclass
class TransportStall(MonitorFault):
    """Freeze pumps: nothing is lost, everything arrives *late*.

    The backlog sits in the inner transport's queues as ledger
    ``in_flight`` (the balance identity keeps holding); on revert the
    flood of stale batches lands with hop latencies up to the stall
    duration — the freshness-SLO breach signature, as opposed to the
    loss signature of :class:`TransportDropStorm`.
    """

    name: str = "transport-stall"

    def apply(self, p):
        if not isinstance(p.bus, ChaosTransport):
            raise TypeError(
                "TransportStall needs the pipeline built over a "
                "ChaosTransport wrapper"
            )
        p.bus.stall_pumps = True

    def revert(self, p):
        p.bus.stall_pumps = False


@dataclass
class ShardOutage(MonitorFault):
    """Fail one TSDB shard; recovery replays its redo buffer."""

    name: str = "shard-outage"
    shard: int = 0

    def apply(self, p):
        p.tsdb.fail_shard(self.shard)

    def revert(self, p):
        p.tsdb.recover_shard(self.shard)
        if p.supervisor is not None:
            p.supervisor.heal(
                f"store:shard-{self.shard}", p.machine.now,
                reason="shard recovered, redo replayed",
            )


def crash_and_recover(
    p: "MonitoringPipeline", cause: str = "crash-unsynced"
) -> int:
    """Hard-kill the pipeline's disk-backed store and recover from disk.

    Models a power-loss crash: every disk tier is truncated to its last
    fsynced extent (:meth:`~repro.storage.diskier.DiskTier.simulate_crash`
    — pessimistic versus a plain SIGKILL, which would leave the OS page
    cache intact), a fresh store is rebuilt from the surviving manifest,
    segments and WAL, and the pipeline is rewired onto it.  Points that
    were acknowledged ``stored`` but sat past the fsync horizon are moved
    to accounted loss under ``cause`` via
    :meth:`~repro.core.ledger.DeliveryLedger.account_crash` — the balance
    identity stays exact across the crash.  Returns ``(moved, report)``:
    the number of points so accounted and the
    :class:`~repro.storage.diskier.RecoveryReport`.

    Requires the pipeline's store to have been built with a disk tier
    (``default_pipeline(store_dir=...)``); raises :class:`TypeError`
    otherwise.
    """
    from pathlib import Path

    from ..storage.diskier import recover_sharded, recover_store

    old = p.tsdb
    if hasattr(old, "shards"):
        tiers = [s.disk for s in old.shards]
        if any(t is None for t in tiers):
            raise TypeError("crash_and_recover needs a disk-backed store")
        root = Path(old.disk_dir)
        for t in tiers:
            t.simulate_crash()
        first = tiers[0]
        new, report = recover_sharded(
            root,
            shards=old.n_shards,
            hot_bytes=first.hot_bytes,
            segment_bytes=first.segment_bytes,
            sync_every_bytes=first.sync_every_bytes,
            redo_points=old.redo_points,
        )
    else:
        tier = getattr(old, "disk", None)
        if tier is None:
            raise TypeError("crash_and_recover needs a disk-backed store")
        tier.simulate_crash()
        new, report = recover_store(
            tier.root,
            hot_bytes=tier.hot_bytes,
            segment_bytes=tier.segment_bytes,
            sync_every_bytes=tier.sync_every_bytes,
        )

    # Rewire the pipeline onto the recovered store, mirroring the wiring
    # in MonitoringPipeline.__init__.
    try:
        new.clock = old.clock
    except AttributeError:
        pass
    if hasattr(new, "redo_pending_points"):
        new.ledger = p.ledger
    p.tsdb = new
    fe = p.frontend
    fe.store = new
    # recovered stores restart query epochs at 0 — stale cache entries
    # would otherwise validate against the wrong store generation
    fe._epoch_of = getattr(new, "query_epoch", None)
    fe.result_cache.clear()

    moved = p.ledger.account_crash(new.points_by_metric(), cause=cause)
    if p.supervisor is not None:
        p.supervisor.heal(
            "store", p.machine.now,
            reason=f"store recovered from disk, {moved} points to {cause}",
        )
    return moved, report


@dataclass
class StoreCrash(MonitorFault):
    """Kill-and-recover the disk-backed store at ``start``.

    A point-in-time fault: ``duration`` defaults to ``0.0`` so the
    injector applies *and* reverts it inside the same step —
    :func:`crash_and_recover` does the whole crash, restore and ledger
    reconciliation in ``apply``; there is nothing left to revert.
    """

    name: str = "store-crash"
    duration: float | None = 0.0
    cause: str = "crash-unsynced"
    points_accounted: int = field(default=0, init=False)
    recovery: object = field(default=None, init=False, repr=False)

    def apply(self, p):
        self.points_accounted, self.recovery = crash_and_recover(
            p, cause=self.cause
        )


class MonitorFaultInjector:
    """Applies scheduled monitor faults as the experiment loop advances.

    Call :meth:`step` *before* ``pipeline.step`` each tick (mirrors
    :class:`repro.cluster.faults.FaultInjector` driven against the
    machine).
    """

    def __init__(self, faults: list[MonitorFault] | None = None) -> None:
        self.faults: list[MonitorFault] = list(faults or [])

    def add(self, fault: MonitorFault) -> MonitorFault:
        self.faults.append(fault)
        return fault

    def step(self, p: "MonitoringPipeline", now: float) -> None:
        for f in self.faults:
            if not f.applied and now >= f.start:
                f.apply(p)
                f.applied = True
            if (
                f.applied
                and not f.reverted
                and f.duration is not None
                and now >= f.start + f.duration
            ):
                f.revert(p)
                f.reverted = True

    def clear(self, p: "MonitoringPipeline", fault: MonitorFault) -> None:
        """Explicitly end an open-ended fault."""
        if fault.applied and not fault.reverted:
            fault.revert(p)
            fault.reverted = True

    def all_reverted(self) -> bool:
        return all(f.reverted or not f.applied for f in self.faults)

    def ground_truth(self) -> list[dict]:
        return [
            {
                "name": f.name,
                "target": f.target,
                "start": f.start,
                "end": None if f.duration is None else f.start + f.duration,
                "applied": f.applied,
            }
            for f in self.faults
        ]
